"""Tests for the from-scratch Butterworth band-pass filter."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal.filters import (
    ButterworthBandpass,
    butter_bandpass_zpk,
    sosfilt,
    zpk_to_sos,
)


class TestDesign:
    def test_poles_inside_unit_circle(self):
        zeros, poles, gain = butter_bandpass_zpk(100, 1000, order=3, fs_hz=30000)
        assert np.all(np.abs(poles) < 1.0)
        assert gain > 0

    def test_bandpass_order_doubles(self):
        zeros, poles, _ = butter_bandpass_zpk(100, 1000, order=2, fs_hz=30000)
        assert poles.shape[0] == 4
        assert zeros.shape[0] == 4

    @pytest.mark.parametrize(
        "low,high", [(0, 100), (100, 100), (1000, 100), (100, 20000)]
    )
    def test_invalid_band_rejected(self, low, high):
        with pytest.raises(ConfigurationError):
            butter_bandpass_zpk(low, high, fs_hz=30000)

    def test_order_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            butter_bandpass_zpk(100, 1000, order=0, fs_hz=30000)


class TestFrequencyResponse:
    @pytest.fixture()
    def bbf(self):
        return ButterworthBandpass(100, 1000, order=2, fs_hz=30000)

    def test_unity_gain_at_band_centre(self, bbf):
        centre = np.sqrt(100 * 1000)
        response = np.abs(bbf.frequency_response(np.array([centre])))
        assert response[0] == pytest.approx(1.0, abs=1e-6)

    def test_stopband_attenuation(self, bbf):
        response = np.abs(bbf.frequency_response(np.array([5.0, 12000.0])))
        assert np.all(response < 0.05)

    def test_passband_flatish(self, bbf):
        response = np.abs(bbf.frequency_response(np.array([300.0, 500.0])))
        assert np.all(response > 0.7)


class TestFiltering:
    def test_sine_in_band_passes(self):
        fs = 10000.0
        t = np.arange(4096) / fs
        bbf = ButterworthBandpass(100, 1000, order=2, fs_hz=fs)
        in_band = np.sin(2 * np.pi * 300 * t)
        out_band = np.sin(2 * np.pi * 3500 * t)
        kept = bbf(in_band)[1000:]
        removed = bbf(out_band)[1000:]
        assert kept.std() > 0.5
        assert removed.std() < 0.1

    def test_multichannel(self):
        bbf = ButterworthBandpass(100, 1000, fs_hz=10000)
        data = np.random.default_rng(0).normal(size=(3, 500))
        out = bbf(data)
        assert out.shape == data.shape

    def test_3d_rejected(self):
        bbf = ButterworthBandpass(100, 1000, fs_hz=10000)
        with pytest.raises(ConfigurationError):
            bbf(np.zeros((2, 2, 2)))

    def test_band_power_picks_up_in_band_energy(self):
        fs = 10000.0
        t = np.arange(2048) / fs
        bbf = ButterworthBandpass(100, 1000, order=2, fs_hz=fs)
        assert bbf.band_power(np.sin(2 * np.pi * 300 * t)) > 10 * bbf.band_power(
            np.sin(2 * np.pi * 4000 * t)
        )

    def test_sosfilt_linear(self):
        sections = np.array([[0.5, 0.0, 0.0, 1.0, 0.0, 0.0]])
        x = np.arange(5.0)
        assert np.allclose(sosfilt(sections, x), 0.5 * x)

"""Tests for the decoders and their distributed decompositions."""

import numpy as np
import pytest

from repro.decoders.kalman import KalmanFilter, KalmanModel, fit_kalman
from repro.decoders.nn import (
    ShallowNN,
    aggregate_nn,
    decompose_nn,
    distributed_forward,
    train_shallow_nn,
)
from repro.decoders.svm import (
    LinearSVM,
    aggregate_scores,
    decompose_svm,
    distributed_predict,
    train_linear_svm,
)
from repro.errors import ConfigurationError


class TestLinearSVM:
    def test_binary_predict(self):
        svm = LinearSVM(weights=np.array([[1.0, -1.0]]), bias=np.array([0.0]))
        assert svm.predict(np.array([2.0, 1.0])) == 1
        assert svm.predict(np.array([1.0, 2.0])) == 0

    def test_multiclass_argmax(self):
        svm = LinearSVM(weights=np.eye(3), bias=np.zeros(3))
        assert svm.predict(np.array([0.0, 5.0, 1.0])) == 1

    def test_training_separable(self, rng):
        means = rng.normal(scale=4, size=(3, 8))
        x = np.vstack([m + rng.normal(size=(40, 8)) for m in means])
        y = np.repeat(np.arange(3), 40)
        svm = train_linear_svm(x, y, n_classes=3)
        assert np.mean(svm.predict(x) == y) > 0.95

    def test_decomposition_exact(self, rng):
        """The paper: decomposing linear SVMs does not affect accuracy."""
        svm = LinearSVM(rng.normal(size=(4, 12)), rng.normal(size=4))
        for _ in range(20):
            x = rng.normal(size=12)
            parts = [x[:4], x[4:8], x[8:]]  # split_even's 3-way spans
            assert distributed_predict(svm, parts) == svm.predict(x)

    def test_partial_wire_bytes(self, rng):
        svm = LinearSVM(rng.normal(size=(9, 12)), rng.normal(size=9))
        partials = decompose_svm(svm, 3)
        assert all(p.wire_bytes == 36 for p in partials)

    def test_partial_scores_sum_to_full(self, rng):
        svm = LinearSVM(rng.normal(size=(2, 10)), rng.normal(size=2))
        x = rng.normal(size=10)
        partials = decompose_svm(svm, 2)
        scores = aggregate_scores(
            [partials[0].partial_scores(x[:5]),
             partials[1].partial_scores(x[5:])],
            svm.bias,
        )
        assert np.allclose(scores, svm.scores(x))

    def test_empty_aggregation_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_scores([], np.zeros(1))

    def test_wrong_feature_count_rejected(self, rng):
        svm = LinearSVM(rng.normal(size=(1, 6)), np.zeros(1))
        partial = decompose_svm(svm, 2)[0]
        with pytest.raises(ConfigurationError):
            partial.partial_scores(np.zeros(5))


class TestShallowNN:
    def test_forward_shapes(self, rng):
        nn = ShallowNN(
            rng.normal(size=(8, 12)), np.zeros(8),
            rng.normal(size=(2, 8)), np.zeros(2),
        )
        assert nn.forward(rng.normal(size=12)).shape == (2,)

    def test_decomposition_exact(self, rng):
        """Distributed NN inference equals centralised inference."""
        nn = ShallowNN(
            rng.normal(size=(16, 12)), rng.normal(size=16),
            rng.normal(size=(3, 16)), rng.normal(size=3),
            input_mean=rng.normal(size=12),
            input_std=np.abs(rng.normal(size=12)) + 0.5,
        )
        for _ in range(10):
            x = rng.normal(size=12)
            parts = [x[:4], x[4:8], x[8:]]
            assert np.allclose(
                distributed_forward(nn, parts), nn.forward(x), atol=1e-10
            )

    def test_partial_wire_bytes_match_hidden_width(self, rng):
        nn = ShallowNN(
            rng.normal(size=(256, 8)), np.zeros(256),
            rng.normal(size=(2, 256)), np.zeros(2),
        )
        partial = decompose_nn(nn, 2)[0]
        assert partial.wire_bytes == 1024  # the paper's MI-NN payload

    def test_training_learns_linear_map(self, rng):
        x = rng.normal(size=(300, 6))
        y = (x[:, :2] @ np.array([[1.0], [2.0]]))
        nn = train_shallow_nn(x, y, n_hidden=16, epochs=300, lr=5e-3)
        pred = np.stack([nn.forward(row) for row in x[:50]])
        corr = np.corrcoef(pred[:, 0], y[:50, 0])[0, 1]
        assert corr > 0.9

    def test_empty_aggregation_rejected(self, rng):
        nn = ShallowNN(np.zeros((2, 2)), np.zeros(2), np.zeros((1, 2)),
                       np.zeros(1))
        with pytest.raises(ConfigurationError):
            aggregate_nn(nn, [])

    def test_layer_shape_validation(self):
        with pytest.raises(ConfigurationError):
            ShallowNN(np.zeros((4, 3)), np.zeros(4), np.zeros((2, 5)),
                      np.zeros(2))


class TestKalman:
    def _make_tracking_problem(self, rng, n_obs=8, n_steps=300):
        states = np.zeros((n_steps, 4))
        for t in range(1, n_steps):
            states[t, 2:] = 0.95 * states[t - 1, 2:] + 0.1 * rng.standard_normal(2)
            states[t, :2] = states[t - 1, :2] + states[t - 1, 2:]
        h = rng.normal(size=(n_obs, 4))
        obs = states @ h.T + 0.1 * rng.standard_normal((n_steps, n_obs))
        return states, obs

    def test_fit_and_track(self, rng):
        states, obs = self._make_tracking_problem(rng)
        model = fit_kalman(states, obs)
        kf = KalmanFilter(model)
        decoded = kf.run(obs)
        corr = np.corrcoef(decoded[50:, 0], states[50:, 0])[0, 1]
        assert corr > 0.95

    def test_step_reduces_uncertainty(self, rng):
        states, obs = self._make_tracking_problem(rng)
        model = fit_kalman(states, obs)
        kf = KalmanFilter(model)
        trace_before = np.trace(kf.covariance)
        kf.step(obs[0])
        assert np.trace(kf.covariance) < trace_before

    def test_reset(self, rng):
        states, obs = self._make_tracking_problem(rng)
        kf = KalmanFilter(fit_kalman(states, obs))
        kf.step(obs[0])
        kf.reset()
        assert np.allclose(kf.state, 0)
        assert np.allclose(kf.covariance, np.eye(4))

    def test_wrong_observation_size_rejected(self, rng):
        states, obs = self._make_tracking_problem(rng)
        kf = KalmanFilter(fit_kalman(states, obs))
        with pytest.raises(ConfigurationError):
            kf.step(np.zeros(3))

    def test_model_shape_validation(self):
        with pytest.raises(ConfigurationError):
            KalmanModel(np.eye(4), np.eye(3), np.zeros((8, 4)), np.eye(8))

    def test_inversion_dimension_is_observation_count(self, rng):
        states, obs = self._make_tracking_problem(rng, n_obs=12)
        model = fit_kalman(states, obs)
        assert model.inversion_dim == 12
        assert not model.inversion_needs_nvm  # 12x12 fits registers

    def test_large_inversion_needs_nvm(self):
        model = KalmanModel(
            np.eye(4), np.eye(4), np.zeros((384, 4)), np.eye(384)
        )
        # the paper: the 384-electrode innovation matrix spills to NVM
        assert model.inversion_needs_nvm

    def test_misaligned_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_kalman(np.zeros((10, 4)), np.zeros((9, 8)))

"""Failure injection: the system under hostile conditions.

The paper's design arguments are really resilience arguments — hashes
survive encoding errors, DTW survives bit flips, the TDMA schedule
survives lossy rounds.  These tests push each failure mode well past the
design point and check that the system degrades instead of breaking.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.apps.seizure import SeizurePropagationSimulator, train_detector_from_recording
from repro.core.clock_sync import NodeClock, SNTPSynchroniser
from repro.errors import SchedulingError, StorageError
from repro.hashing.lsh import LSHFamily
from repro.network.channel import BitErrorChannel
from repro.network.network import WirelessNetwork
from repro.network.packet import BROADCAST, Packet, PayloadKind
from repro.network.radio import LOW_POWER
from repro.network.tdma import TDMAConfig
from repro.scheduler.ilp import Flow, SchedulerProblem
from repro.scheduler.model import (
    dtw_similarity_task,
    hash_similarity_task,
    seizure_detection_task,
)
from repro.storage.controller import StorageController
from repro.storage.nvm import NVMDevice


class TestNetworkUnderFire:
    def _network(self, ber: float):
        radio = replace(LOW_POWER, bit_error_rate=ber)
        network = WirelessNetwork(tdma=TDMAConfig(radio=radio), seed=1)
        inbox: list[Packet] = []
        network.register(0, lambda p: None)
        network.register(1, inbox.append)
        return network, inbox

    def test_extreme_ber_drops_most_hash_packets_cleanly(self):
        network, inbox = self._network(ber=0.01)
        for i in range(100):
            network.send(Packet.build(0, 1, PayloadKind.HASHES, bytes(100),
                                      seq=i))
        # heavy loss, but every delivered packet passed its CRC
        assert network.stats.dropped_payload + network.stats.dropped_header > 50
        assert all(p.payload_ok for p in inbox)

    def test_signal_packets_always_flow(self):
        network, inbox = self._network(ber=0.001)
        for i in range(60):
            network.send(Packet.build(0, 1, PayloadKind.SIGNAL, bytes(200),
                                      seq=i))
        # signal packets are delivered even when corrupted (DTW
        # resilience); only the ~12 % of header corruptions drop them
        assert len(inbox) > 45
        assert any(not p.payload_ok for p in inbox)  # corrupted but kept

    def test_burst_corruption_never_crashes_parsing(self, rng):
        channel = BitErrorChannel(0.05, seed=2)
        for i in range(50):
            packet = Packet.build(
                int(rng.integers(0, 63)), BROADCAST, PayloadKind.HASHES,
                bytes(rng.integers(0, 256, int(rng.integers(1, 256)),
                                   dtype=np.uint8)),
                seq=i,
            )
            received, _ = channel.transmit(packet)
            # integrity predicates must be total functions
            _ = received.intact, received.header_ok, received.payload_ok


class TestProtocolUnderErrors:
    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.datasets.synthetic_ieeg import generate_ieeg

        recording = generate_ieeg(
            n_nodes=2, n_electrodes=4, duration_s=1.0, fs_hz=6000,
            n_seizures=1, seizure_duration_s=0.3, seed=3,
        )
        detector = train_detector_from_recording(
            recording, max_windows_per_node=120, seed=0
        )
        return recording, detector

    def test_total_packet_loss_still_detects_locally(self, scenario):
        recording, detector = scenario
        result = SeizurePropagationSimulator(
            recording, detector, LSHFamily.for_measure("dtw"),
            dtw_threshold=250.0, packet_loss_rate=0.999, seed=1,
        ).run()
        # no confirmations without a network, but detection never stops
        assert result.hash_rounds_lost == result.hash_broadcasts
        assert any(result.detections.values())
        assert not result.confirmations

    def test_garbage_hashes_do_not_fabricate_confirmations(self, scenario):
        recording, detector = scenario
        result = SeizurePropagationSimulator(
            recording, detector, LSHFamily.for_measure("dtw"),
            dtw_threshold=250.0, hash_error_rate=1.0, seed=1,
        ).run()
        # every hash random: the 7-of-12 rule keeps false confirms near 0
        assert len(result.confirmations) <= 2


class TestStorageExhaustion:
    def test_hash_partition_wraps_instead_of_failing(self, rng):
        controller = StorageController(
            device=NVMDevice(capacity_bytes=16 * 1024 * 1024)
        )
        partition = controller.table["hashes"]
        batch = [(1, 2, 3)] * 64
        writes = 0
        while not partition.wrapped:
            controller.store_hash_batch(writes, float(writes), batch)
            writes += 1
            assert writes < 10_000, "partition never wrapped"
        # the ring keeps accepting after the wrap (oldest data overwritten)
        controller.store_hash_batch(writes, float(writes), batch)
        assert controller.read_hash_batch(writes) == batch

    def test_oversized_object_rejected_not_corrupted(self):
        controller = StorageController(
            device=NVMDevice(capacity_bytes=16 * 1024 * 1024)
        )
        size = controller.table["appdata"].size_bytes
        with pytest.raises(StorageError):
            controller.store_appdata("huge", b"x" * (size + 1))
        controller.store_appdata("ok", b"fine")
        assert controller.read_appdata("ok") == b"fine"


class TestSchedulerInfeasibility:
    def test_starved_budget_fails_loudly(self):
        with pytest.raises(SchedulingError):
            SchedulerProblem(
                4, [Flow(seizure_detection_task())], power_budget_mw=1.0
            ).solve()

    def test_network_dead_flow_degrades_to_zero_not_crash(self):
        # 200 nodes: the all-to-all hash exchange cannot fit its budget
        schedule = SchedulerProblem(
            200,
            [Flow(hash_similarity_task("all_all", net_budget_ms=1.0))],
        ).solve()
        assert schedule.allocations[0].aggregate_electrodes == 0.0

    def test_competing_flows_share_without_violating_power(self):
        flows = [
            Flow(seizure_detection_task(), electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 electrode_cap=96),
            Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
                 electrode_cap=96),
        ]
        schedule = SchedulerProblem(8, flows, power_budget_mw=6.0).solve()
        assert schedule.node_power_mw <= 6.0 + 1e-9


class TestClockSyncUnderJitter:
    def test_huge_jitter_still_converges_or_reports(self):
        clocks = [NodeClock(offset_us=o) for o in (-5000.0, 0.0, 7000.0)]
        report = SNTPSynchroniser(jitter_us=50.0, seed=0).synchronise(clocks)
        # with 50 us jitter the 5 us target may not be met; the report
        # must say so honestly rather than loop forever
        assert report.rounds <= 20
        if not report.synchronised:
            assert report.worst_offset_us > 5.0

    def test_low_jitter_converges_fast(self):
        clocks = [NodeClock(offset_us=o) for o in (-5000.0, 0.0, 7000.0)]
        report = SNTPSynchroniser(jitter_us=1.0, seed=0).synchronise(clocks)
        assert report.synchronised and report.rounds <= 3

"""Tests for sliding windows and time/sample conversions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal.windows import (
    channel_windows,
    ms_to_samples,
    samples_to_ms,
    sliding_windows,
    window_count,
)


class TestSlidingWindows:
    def test_disjoint_windows(self):
        windows = sliding_windows(np.arange(10), window=5)
        assert windows.shape == (2, 5)
        assert (windows[0] == np.arange(5)).all()
        assert (windows[1] == np.arange(5, 10)).all()

    def test_overlapping_windows(self):
        windows = sliding_windows(np.arange(10), window=4, step=2)
        assert windows.shape == (4, 4)
        assert (windows[1] == np.arange(2, 6)).all()

    def test_short_stream_gives_empty(self):
        windows = sliding_windows(np.arange(3), window=5)
        assert windows.shape == (0, 5)

    def test_count_matches_helper(self):
        for n, w, s in [(100, 10, 10), (100, 10, 3), (7, 10, 1), (120, 120, 120)]:
            produced = sliding_windows(np.arange(n), w, s).shape[0]
            assert produced == window_count(n, w, s)

    def test_2d_input_rejected(self):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.zeros((2, 10)), 5)

    @pytest.mark.parametrize("window,step", [(0, 1), (5, 0), (-1, 1)])
    def test_bad_geometry_rejected(self, window, step):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.arange(10), window, step)


class TestChannelWindows:
    def test_shape(self):
        rec = np.arange(60).reshape(3, 20)
        windows = channel_windows(rec, window=5)
        assert windows.shape == (3, 4, 5)
        assert (windows[1, 0] == rec[1, :5]).all()

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            channel_windows(np.arange(10), 5)


class TestConversions:
    def test_roundtrip(self):
        assert ms_to_samples(4.0) == 120
        assert samples_to_ms(120) == pytest.approx(4.0)

    def test_custom_rate(self):
        assert ms_to_samples(10.0, rate_hz=1000) == 10

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ms_to_samples(-1.0)

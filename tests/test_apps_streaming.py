"""Tests for the compress-encrypt-transmit telemetry offload pipeline."""

import numpy as np
import pytest

from repro.apps.streaming import (
    Codec,
    TelemetryOffloader,
    TelemetryReceiver,
    offload_budget,
)
from repro.errors import ConfigurationError
from repro.network.packet import MAX_PAYLOAD_BYTES

KEY = bytes(range(16))


@pytest.fixture()
def samples(rng):
    return (800 * np.sin(np.linspace(0, 30, 2500))
            + 25 * rng.standard_normal(2500)).astype(np.int64)


class TestOffloadPipeline:
    @pytest.mark.parametrize("codec", list(Codec))
    def test_end_to_end_roundtrip(self, codec, samples):
        offloader = TelemetryOffloader(KEY, codec)
        receiver = TelemetryReceiver(KEY)
        chunk = offloader.offload(samples)
        assert (receiver.receive(chunk) == samples).all()

    def test_lic_compresses_samples(self, samples):
        offloader = TelemetryOffloader(KEY, Codec.LIC)
        chunk = offloader.offload(samples)
        assert chunk.wire_bytes < 2 * samples.shape[0]

    def test_ciphertext_not_plaintext(self, samples):
        offloader = TelemetryOffloader(KEY, Codec.LIC)
        from repro.compression.lic import lic_compress

        chunk = offloader.offload(samples)
        assert chunk.ciphertext != lic_compress(samples)

    def test_wrong_key_garbles(self, samples):
        offloader = TelemetryOffloader(KEY, Codec.LIC)
        wrong = TelemetryReceiver(bytes(16))
        chunk = offloader.offload(samples)
        with pytest.raises(Exception):
            out = wrong.receive(chunk)
            # if decompression happens to succeed, the data must differ
            assert not (out == samples).all()
            raise ConfigurationError("garbled")

    def test_packets_respect_mtu(self, samples):
        offloader = TelemetryOffloader(KEY, Codec.LIC)
        chunk = offloader.offload(samples)
        assert all(len(p.payload) <= MAX_PAYLOAD_BYTES for p in chunk.packets)
        assert all(p.intact for p in chunk.packets)

    def test_sequence_advances_nonce(self, samples):
        offloader = TelemetryOffloader(KEY, Codec.LIC)
        a = offloader.offload(samples)
        b = offloader.offload(samples)
        assert a.nonce != b.nonce
        assert a.ciphertext != b.ciphertext  # CTR reuse would be fatal

    def test_airtime_accounting(self, samples):
        offloader = TelemetryOffloader(KEY, Codec.LIC)
        chunk = offloader.offload(samples)
        assert offloader.airtime_ms(chunk) > 0

    def test_2d_input_rejected(self):
        offloader = TelemetryOffloader(KEY)
        with pytest.raises(ConfigurationError):
            offloader.offload(np.zeros((2, 3)))


class TestOffloadBudget:
    def test_halo_headline_rate(self):
        # 46 Mbps / 480 kbps = ~96 electrodes uncompressed
        assert offload_budget(1.0) == pytest.approx(95.8, rel=0.01)

    def test_compression_multiplies(self):
        assert offload_budget(2.0) == pytest.approx(2 * offload_budget(1.0))

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            offload_budget(0.0)

"""Tests for the LSH family, EMD hash, and collision checking."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.collision import CollisionChecker, HashRecord, RecentHashStore
from repro.hashing.emd_hash import EMDHash
from repro.hashing.lsh import LSHConfig, LSHFamily, MEASURE_PRESETS


@pytest.fixture()
def family():
    return LSHFamily.for_measure("dtw")


class TestLSHConfig:
    def test_presets_exist_for_all_measures(self):
        assert set(MEASURE_PRESETS) == {"dtw", "euclidean", "xcor", "emd"}

    def test_hash_bytes(self):
        config = LSHConfig(n_components=12, bits=4)
        assert config.hash_bytes == 6

    def test_bad_measure_rejected(self):
        with pytest.raises(ConfigurationError):
            LSHConfig(measure="cosine")

    def test_min_matching_bounds(self):
        with pytest.raises(ConfigurationError):
            LSHConfig(n_components=4, min_matching=5)

    def test_for_measure_overrides(self):
        fam = LSHFamily.for_measure("dtw", seed=99)
        assert fam.config.seed == 99


class TestLSHFamily:
    def test_deterministic(self, family, rng):
        w = rng.normal(size=120)
        assert family.hash_window(w) == family.hash_window(w)

    def test_same_seed_means_cross_node_compatible(self, rng):
        w = rng.normal(size=120)
        a = LSHFamily.for_measure("dtw")
        b = LSHFamily.for_measure("dtw")
        assert a.hash_window(w) == b.hash_window(w)

    def test_similar_windows_collide(self, family, rng):
        w = rng.normal(size=120).cumsum()  # smooth-ish signal
        shifted = 0.9 * np.roll(w, 3) + 0.01 * w.std() * rng.normal(size=120)
        assert family.matches(family.hash_window(w), family.hash_window(shifted))

    def test_unrelated_windows_usually_do_not_collide(self, family, rng):
        hits = 0
        for _ in range(20):
            a = rng.normal(size=120).cumsum()
            b = rng.normal(size=120).cumsum()
            if family.matches(family.hash_window(a), family.hash_window(b)):
                hits += 1
        assert hits <= 6

    def test_hash_is_much_smaller_than_signal(self, family):
        # the paper's core claim: hashes ~100x smaller than 240 B signals
        assert family.config.hash_bytes <= 6

    def test_pack_unpack_roundtrip(self, family, rng):
        sig = family.hash_window(rng.normal(size=120))
        assert family.unpack(family.pack(sig)) == sig

    def test_unpack_wrong_length_rejected(self, family):
        with pytest.raises(ConfigurationError):
            family.unpack(b"\x00")

    def test_hash_channels(self, family, rng):
        sigs = family.hash_channels(rng.normal(size=(4, 120)))
        assert len(sigs) == 4

    def test_signature_width_mismatch_rejected(self, family):
        with pytest.raises(ConfigurationError):
            family.matches((1, 2), (1, 2, 3))

    def test_emd_family_has_no_sketch(self):
        fam = LSHFamily.for_measure("emd")
        with pytest.raises(ConfigurationError):
            fam.sketch(np.zeros(120))

    def test_2d_input_rejected(self, family):
        with pytest.raises(ConfigurationError):
            family.hash_window(np.zeros((2, 120)))


class TestEMDHash:
    def test_similar_histogram_shapes_collide(self, rng):
        hasher = EMDHash()
        w = np.sin(np.linspace(0, 12, 120))
        near = 0.8 * np.roll(w, 5) + 0.02 * rng.normal(size=120)
        assert hasher.collision(hasher.hash_window(w), hasher.hash_window(near))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EMDHash(n_bins=1)
        with pytest.raises(ConfigurationError):
            EMDHash(bucket_width=0.0)
        with pytest.raises(ConfigurationError):
            EMDHash(n_components=0)

    def test_signature_length(self):
        hasher = EMDHash(n_components=3)
        assert len(hasher.hash_window(np.sin(np.arange(120.0)))) == 3

    def test_mismatched_signatures_rejected(self):
        hasher = EMDHash(n_components=2)
        with pytest.raises(ConfigurationError):
            hasher.collision((1,), (1, 2))


class TestRecentHashStore:
    def test_recent_respects_horizon(self):
        store = RecentHashStore(horizon_ms=10.0)
        store.add(HashRecord(0.0, 0, (1,)))
        store.add(HashRecord(5.0, 0, (2,)))
        store.add(HashRecord(20.0, 0, (3,)))
        recent = store.recent(now_ms=21.0)
        assert [r.signature for r in recent] == [(3,)]
        recent = store.recent(now_ms=12.0)
        assert [r.signature for r in recent] == [(2,)]

    def test_out_of_order_rejected(self):
        store = RecentHashStore()
        store.add(HashRecord(5.0, 0, (1,)))
        with pytest.raises(ConfigurationError):
            store.add(HashRecord(1.0, 0, (2,)))

    def test_evict(self):
        store = RecentHashStore()
        store.add_batch(0.0, [(1,), (2,)])
        store.add_batch(10.0, [(3,)])
        assert store.evict_before(5.0) == 2
        assert len(store) == 1


class TestCollisionChecker:
    def test_finds_matches(self):
        checker = CollisionChecker(min_matching=1)
        local = [HashRecord(0.0, 3, (7, 9))]
        matches = checker.check([(7, 1), (2, 2)], local)
        assert len(matches) == 1
        assert matches[0][0] == 0
        assert matches[0][1].electrode == 3

    def test_min_matching_two(self):
        checker = CollisionChecker(min_matching=2)
        local = [HashRecord(0.0, 0, (7, 9))]
        assert not checker.check([(7, 1)], local)
        assert checker.check([(7, 9)], local)

    def test_empty_inputs(self):
        checker = CollisionChecker()
        assert checker.check([], []) == []

    def test_mixed_widths_rejected(self):
        checker = CollisionChecker()
        with pytest.raises(ConfigurationError):
            checker.check([(1, 2), (1,)], [HashRecord(0.0, 0, (1, 2))])

    def test_matches_agree_with_brute_force(self, rng):
        checker = CollisionChecker(min_matching=2)
        received = [tuple(rng.integers(0, 4, 3)) for _ in range(20)]
        local = [
            HashRecord(float(i), i, tuple(rng.integers(0, 4, 3)))
            for i in range(30)
        ]
        fast = {(i, r.time_ms) for i, r in checker.check(received, local)}
        brute = set()
        for i, sig in enumerate(received):
            for record in local:
                agreeing = sum(
                    1 for a, b in zip(sig, record.signature) if a == b
                )
                if agreeing >= 2:
                    brute.add((i, record.time_ms))
        assert fast == brute

"""Batched query hot path: kernel equivalence, signature cache, shims.

The batched kernels (`hash_windows`, `dtw_distance_batch`) and the cached
query path promise *element-identical* results to the scalar reference
implementations — these tests hold them to it, property-based where the
input space is wide.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.queries import QueryEngine, QuerySpec
from repro.errors import ConfigurationError
from repro.hashing.lsh import SUPPORTED_MEASURES, LSHFamily
from repro.similarity.dtw import dtw_distance, dtw_distance_batch
from repro.storage.controller import StorageController
from repro.storage.nvm import PAGE_BYTES, NVMDevice

CAPACITY = 16 * 1024 * 1024


def _windows(seed: int, n: int, length: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    out = rng.standard_normal((n, length)) * 200
    if n > 1:
        out[0] = 0.0  # degenerate: zero variance
    return out


# --- kernel equivalence: batched == scalar, element for element ---------------


class TestHashBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        measure=st.sampled_from(SUPPORTED_MEASURES),
        n=st.integers(1, 6),
        extra=st.integers(0, 80),
    )
    def test_hash_windows_matches_scalar(self, seed, measure, n, extra):
        family = LSHFamily.for_measure(measure)
        length = family.config.sketch_window + extra if measure != "emd" \
            else 2 + extra
        batch = _windows(seed, n, length)
        batched = family.hash_windows(batch)
        scalar = np.array(
            [family.hash_window(row) for row in batch], dtype=np.int64
        )
        assert np.array_equal(batched, scalar)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 5))
    def test_quantised_windows_match_scalar(self, seed, n):
        # the signature-cache input: int16 round-tripped samples
        family = LSHFamily.for_measure("dtw")
        quantised = _windows(seed, n, 120).astype("<i2").astype(float)
        batched = family.hash_windows(quantised)
        scalar = np.array(
            [family.hash_window(row) for row in quantised], dtype=np.int64
        )
        assert np.array_equal(batched, scalar)

    def test_matches_many_matches_scalar(self, rng):
        family = LSHFamily.for_measure("dtw")
        signatures = family.hash_windows(rng.standard_normal((20, 120)))
        probe = family.hash_window(rng.standard_normal(120))
        batched = family.matches_many(signatures, probe)
        scalar = [
            family.matches(tuple(int(c) for c in row), probe)
            for row in signatures
        ]
        assert batched.tolist() == scalar

    def test_matches_many_rejects_width_mismatch(self):
        family = LSHFamily.for_measure("dtw")
        with pytest.raises(ConfigurationError):
            family.matches_many(np.zeros((2, 3), dtype=int), (0,) * 12)

    def test_rejects_non_2d(self):
        family = LSHFamily.for_measure("dtw")
        with pytest.raises(ConfigurationError):
            family.hash_windows(np.zeros(120))


class TestDTWBatchEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 5),
        length=st.integers(4, 30),
        template_len=st.integers(4, 30),
        band=st.sampled_from([None, 1, 2, 5, 100]),
    )
    def test_matches_scalar(self, seed, n, length, template_len, band):
        if band == 1:
            template_len = length  # lockstep needs equal lengths
        rng = np.random.default_rng(seed)
        batch = rng.standard_normal((n, length)) * 5
        template = rng.standard_normal(template_len) * 5
        batched = dtw_distance_batch(batch, template, band)
        scalar = np.array(
            [dtw_distance(row, template, band) for row in batch]
        )
        assert np.array_equal(batched, scalar)

    def test_empty_batch(self):
        out = dtw_distance_batch(np.empty((0, 10)), np.ones(10), 3)
        assert out.shape == (0,)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            dtw_distance_batch(np.zeros(10), np.ones(10))
        with pytest.raises(ConfigurationError):
            dtw_distance_batch(np.zeros((2, 0)), np.ones(10))


# --- the hash-on-write signature cache ----------------------------------------


def _cached_controller(seed: int = 0, n_windows: int = 3, n_electrodes: int = 2):
    lsh = LSHFamily.for_measure("dtw")
    controller = StorageController(
        device=NVMDevice(capacity_bytes=CAPACITY), lsh=lsh
    )
    rng = np.random.default_rng(seed)
    for w in range(n_windows):
        controller.store_channel_windows(
            w, (rng.standard_normal((n_electrodes, 120)) * 200).round()
        )
    return controller, lsh


class TestSignatureCache:
    def test_hash_on_write_matches_read_back(self):
        controller, lsh = _cached_controller()
        for key in controller.stored_windows():
            samples = controller.read_window(*key)
            assert controller.window_signature(*key) == lsh.hash_window(
                samples.astype(float)
            )

    def test_rewrite_updates_signature(self, rng):
        controller, lsh = _cached_controller()
        fresh = (rng.standard_normal(120) * 200).round()
        controller.store_window(0, 0, fresh)
        assert controller.window_signature(0, 0) == lsh.hash_window(
            fresh.astype("<i2").astype(float)
        )

    def test_no_lsh_means_no_signatures(self, rng):
        controller = StorageController(
            device=NVMDevice(capacity_bytes=CAPACITY)
        )
        controller.store_window(0, 0, (rng.standard_normal(120) * 200).round())
        assert controller.window_signature(0, 0) is None

    def test_lose_sram_invalidates(self):
        controller, _ = _cached_controller()
        controller.lose_sram()
        assert controller.window_signature(0, 0) is None

    def test_invalidate_signatures(self):
        controller, _ = _cached_controller()
        controller.invalidate_signatures()
        assert all(
            controller.window_signature(*key) is None
            for key in controller.stored_windows()
        )

    def test_recover_restores_signatures_and_digest(self):
        controller, _ = _cached_controller()
        digest = controller.state_digest()
        expected = {
            key: controller.window_signature(*key)
            for key in controller.stored_windows()
        }
        controller.lose_sram()
        controller.recover()
        assert controller.state_digest() == digest
        assert {
            key: controller.window_signature(*key)
            for key in controller.stored_windows()
        } == expected

    def test_recover_without_lsh_replays_journaled_signatures(self):
        # a failover replica replays the journal without holding the hash
        # family — signatures must come from the records, never a rehash
        controller, _ = _cached_controller()
        replica = StorageController(device=controller.device)
        replica.journal = controller.journal
        replica.recover()
        assert replica.state_digest() == controller.state_digest()

    def test_checkpoint_roundtrips_signatures(self):
        controller, _ = _cached_controller()
        controller.checkpoint()
        digest = controller.state_digest()
        controller.lose_sram()
        report = controller.recover()
        assert report.checkpoint_used
        assert controller.state_digest() == digest

    def test_recover_drops_signatures_on_poisoned_pages(self):
        # windows big enough that each starts on its own page
        lsh = LSHFamily.for_measure("dtw")
        controller = StorageController(
            device=NVMDevice(capacity_bytes=CAPACITY), lsh=lsh
        )
        rng = np.random.default_rng(0)
        for w in range(3):
            controller.store_window(
                0, w, (rng.standard_normal(3000) * 200).round()
            )
        key = controller.stored_windows()[0]
        page = controller._windows[key].address // PAGE_BYTES
        controller.device._poisoned.add(page)
        controller.lose_sram()
        controller.recover()
        assert controller.window_signature(*key) is None
        survivors = [
            k
            for k in controller.stored_windows()
            if controller._windows[k].address // PAGE_BYTES != page
        ]
        assert any(
            controller.window_signature(*k) is not None for k in survivors
        )


# --- engine equivalence: scalar vs batched vs cache-warm ----------------------


def _fleet(seed: int = 0, n_nodes: int = 3, with_cache: bool = True):
    lsh = LSHFamily.for_measure("dtw")
    rng = np.random.default_rng(seed)
    template = (rng.standard_normal(120).cumsum() * 300).round()
    controllers = []
    for node in range(n_nodes):
        controller = StorageController(
            device=NVMDevice(capacity_bytes=CAPACITY),
            lsh=lsh if with_cache else None,
        )
        for w in range(4):
            if node == 0 and w == 1:
                window = template + (5 * rng.standard_normal(120)).round()
            else:
                window = (rng.standard_normal(120).cumsum() * 300).round()
            controller.store_window(0, w, window)
            controller.store_window(1, w, window[::-1].copy())
        # a different geometry on one node exercises length grouping
        if node == 1:
            controller.store_window(0, 9, np.arange(60) * 7)
        controllers.append(controller)
    engine = QueryEngine(
        controllers,
        lsh,
        seizure_flags={0: {1, 2}, 1: {0}},
        dtw_threshold=20_000.0,
    )
    return engine, template


def _row_keys(result):
    return [
        (row.node, row.electrode, row.window_index, row.samples.tobytes())
        for row in result.rows
    ]


SPECS = [
    ("q1", QuerySpec("q1", 16.0), False),
    ("q2-hash", QuerySpec("q2", 16.0), True),
    ("q2-dtw", QuerySpec("q2", 16.0, use_hash=False), True),
    ("q3", QuerySpec("q3", 16.0), False),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("label,spec,needs_template",
                             [(s[0], s[1], s[2]) for s in SPECS])
    def test_batched_equals_scalar(self, label, spec, needs_template):
        engine, template = _fleet()
        tpl = template if needs_template else None
        scalar = dataclasses.replace(engine, batched=False)
        cold = dataclasses.replace(engine, use_cache=False)
        reference = _row_keys(scalar.run(spec, (0, 10), template=tpl))
        assert _row_keys(cold.run(spec, (0, 10), template=tpl)) == reference
        assert _row_keys(engine.run(spec, (0, 10), template=tpl)) == reference

    def test_warm_cache_equals_uncached_fleet(self):
        spec = QuerySpec("q2", 16.0)
        warm_engine, template = _fleet(with_cache=True)
        cold_engine, _ = _fleet(with_cache=False)
        warm = _row_keys(warm_engine.run(spec, (0, 10), template=template))
        cold = _row_keys(cold_engine.run(spec, (0, 10), template=template))
        assert warm == cold

    def test_identical_after_crash_and_recover(self):
        spec = QuerySpec("q2", 16.0)
        engine, template = _fleet()
        before = _row_keys(engine.run(spec, (0, 10), template=template))
        for controller in engine.controllers:
            controller.lose_sram()
            controller.recover()
        assert _row_keys(engine.run(spec, (0, 10), template=template)) == before
        # and with the caches dropped outright (cold recompute path)
        for controller in engine.controllers:
            controller.invalidate_signatures()
        assert _row_keys(engine.run(spec, (0, 10), template=template)) == before

    def test_dead_nodes_and_row_order(self):
        engine, template = _fleet()
        result = engine.run(
            QuerySpec("q2", 16.0), (0, 10), template=template,
            dead_nodes={1},
        )
        assert result.failed_nodes == [1]
        assert result.degraded
        scalar = dataclasses.replace(engine, batched=False)
        assert _row_keys(result) == _row_keys(
            scalar.run(QuerySpec("q2", 16.0), (0, 10), template=template,
                       dead_nodes={1})
        )


class TestDeprecatedShims:
    def test_execute_warns_and_matches_run(self):
        engine, template = _fleet()
        expected = engine.run(
            QuerySpec("q2", 16.0), (0, 10), template=template
        )
        with pytest.warns(DeprecationWarning, match="QueryEngine.run"):
            rows = engine.execute(
                QuerySpec("q2", 16.0), (0, 10), template=template
            )
        assert [
            (r.node, r.electrode, r.window_index, r.samples.tobytes())
            for r in rows
        ] == _row_keys(expected)

    def test_execute_resilient_warns_and_matches_run(self):
        engine, template = _fleet()
        expected = engine.run(
            QuerySpec("q2", 16.0), (0, 10), template=template,
            dead_nodes={2},
        )
        with pytest.warns(DeprecationWarning, match="QueryEngine.run"):
            result = engine.execute_resilient(
                QuerySpec("q2", 16.0), (0, 10), template=template,
                dead_nodes={2},
            )
        assert _row_keys(result) == _row_keys(expected)
        assert result.failed_nodes == expected.failed_nodes
        assert result.queried_nodes == expected.queried_nodes

    def test_execute_warning_points_at_caller(self):
        """stacklevel=2: the warning names this file, not queries.py."""
        engine, _ = _fleet()
        with pytest.warns(DeprecationWarning) as record:
            engine.execute(QuerySpec("q3", 16.0), (0, 10))
        assert record[0].filename == __file__

    def test_execute_resilient_warning_points_at_caller(self):
        engine, _ = _fleet()
        with pytest.warns(DeprecationWarning) as record:
            engine.execute_resilient(QuerySpec("q3", 16.0), (0, 10))
        assert record[0].filename == __file__

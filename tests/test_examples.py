"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {s.name for s in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 3  # the deliverable floor; we ship six


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda s: s.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they did"

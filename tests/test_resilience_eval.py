"""Determinism, totality, and end-to-end resilience evaluation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.network_errors import network_errors
from repro.eval.resilience import (
    arq_recovery,
    crash_query_degradation,
    resilience_sweep,
)
from repro.network.arq import ARQConfig
from repro.network.packet import Packet, PayloadKind


class TestNetworkErrorsDeterminism:
    """Same seed => identical Fig. 12 result, bit for bit."""

    def test_same_seed_same_result(self):
        a = network_errors(1e-4, n_packets=60, seed=11)
        b = network_errors(1e-4, n_packets=60, seed=11)
        assert a == b

    def test_different_seed_can_differ(self):
        a = network_errors(1e-4, n_packets=120, seed=1)
        b = network_errors(1e-4, n_packets=120, seed=2)
        assert (a.hash_packet_error_pct, a.signal_packet_error_pct) != (
            b.hash_packet_error_pct,
            b.signal_packet_error_pct,
        )

    def test_arq_recovery_deterministic(self):
        a = arq_recovery(1e-4, n_packets=80, seed=4)
        b = arq_recovery(1e-4, n_packets=80, seed=4)
        assert a == b


class TestPacketParseTotal:
    """Satellite: parsing corrupted frames must never raise."""

    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=300, deadline=None)
    def test_parse_never_raises_on_arbitrary_bytes(self, raw):
        packet = Packet.parse(raw)
        if packet is not None:
            # integrity predicates are total too
            _ = packet.intact, packet.header_ok, packet.payload_ok

    @given(
        payload=st.binary(min_size=0, max_size=96),
        flips=st.lists(st.integers(min_value=0, max_value=8 * 19 - 1),
                       min_size=1, max_size=24, unique=True),
        kind=st.sampled_from(list(PayloadKind)),
    )
    @settings(max_examples=200, deadline=None)
    def test_parse_survives_bit_flips_anywhere(self, payload, flips, kind):
        from repro.network.channel import flip_bits

        wire = Packet.build(0, 1, kind, payload, seq=7).to_wire()
        idx = np.asarray([f % (8 * len(wire)) for f in flips], dtype=np.int64)
        corrupted = flip_bits(wire, idx)
        packet = Packet.parse(corrupted)
        assert packet is not None  # length unchanged => parse succeeds
        _ = packet.intact, packet.header_ok, packet.payload_ok

    def test_short_frames_return_none(self):
        for n in range(19):
            assert Packet.parse(bytes(n)) is None
        assert Packet.parse(bytes(19)) is not None


class TestResilienceSweep:
    def test_recovery_meets_target_at_1e_4(self):
        result = arq_recovery(1e-4, n_packets=400, seed=0)
        assert result.initial_loss_pct > 0
        assert result.recovery_rate_pct >= 99.0
        assert result.residual_loss_pct <= 0.25
        assert result.retransmissions > 0
        assert result.ack_airtime_ms > 0

    def test_sweep_covers_requested_points_and_is_monotonic(self):
        sweep = resilience_sweep(bers=(1e-3, 1e-4, 1e-6), n_packets=150)
        assert set(sweep) == {1e-3, 1e-4, 1e-6}
        # initial loss grows with BER; the clean end loses ~nothing
        assert (
            sweep[1e-3].initial_loss_pct
            > sweep[1e-4].initial_loss_pct
            >= sweep[1e-6].initial_loss_pct
        )
        assert sweep[1e-6].residual_loss_pct == 0.0

    def test_larger_retry_budget_recovers_more(self):
        tight = arq_recovery(
            1e-3, n_packets=200, config=ARQConfig(max_retries=1), seed=3
        )
        roomy = arq_recovery(
            1e-3, n_packets=200, config=ARQConfig(max_retries=6), seed=3
        )
        assert roomy.recovery_rate_pct >= tight.recovery_rate_pct
        assert roomy.residual_loss_pct <= tight.residual_loss_pct


class TestCrashQueryDegradation:
    def test_four_node_crash_scenario(self):
        result = crash_query_degradation(n_nodes=4, crash_node=2)
        assert result.degraded
        assert result.failed_nodes == [2]
        assert result.coverage == pytest.approx(0.75)
        assert result.queried_nodes == [0, 1, 3]
        assert result.rows
        assert all(row.node != 2 for row in result.rows)

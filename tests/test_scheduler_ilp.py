"""Tests for the LP scheduler and its closed-form analytical twin."""

import pytest

from repro.errors import SchedulingError
from repro.scheduler.analytical import analytic_electrodes, analytic_throughput_mbps
from repro.scheduler.ilp import Flow, SchedulerProblem, max_throughput_mbps
from repro.scheduler.model import (
    TaskModel,
    dtw_similarity_task,
    hash_similarity_task,
    mi_kf_task,
    mi_nn_task,
    mi_svm_task,
    seizure_detection_task,
    spike_sorting_task,
)

ALL_TASKS = (
    seizure_detection_task,
    spike_sorting_task,
    lambda: hash_similarity_task("all_all"),
    lambda: hash_similarity_task("one_all"),
    lambda: dtw_similarity_task("all_all"),
    lambda: dtw_similarity_task("one_all"),
    mi_svm_task,
    mi_nn_task,
    mi_kf_task,
)


class TestAgreementWithClosedForm:
    @pytest.mark.parametrize("task_factory", ALL_TASKS)
    @pytest.mark.parametrize("n_nodes", [1, 6, 16])
    def test_lp_matches_analytical(self, task_factory, n_nodes):
        """The LP's single-flow optimum equals min of the analytic caps."""
        task = task_factory()
        lp = max_throughput_mbps(task, n_nodes, 15.0)
        closed = analytic_throughput_mbps(task, n_nodes, 15.0)
        assert lp == pytest.approx(closed, rel=0.02)

    @pytest.mark.parametrize("power", [6.0, 9.0, 15.0])
    def test_lp_matches_analytical_across_power(self, power):
        task = seizure_detection_task()
        assert max_throughput_mbps(task, 1, power) == pytest.approx(
            analytic_throughput_mbps(task, 1, power), rel=0.02
        )


class TestPaperShapes:
    def test_detection_falls_superlinearly_with_power(self):
        """§6.2: detection throughput falls quadratically (XCOR pairs)."""
        task = seizure_detection_task()
        t15 = max_throughput_mbps(task, 1, 15.0)
        t6 = max_throughput_mbps(task, 1, 6.0)
        # a linear task would drop ~2.6x; the pairwise one drops less
        # than linearly in the electrode count sense: T ~ sqrt(P)
        assert 65 <= t15 <= 90  # paper: 79 Mbps
        assert t15 / t6 < (15.0 - 1.4) / (6.0 - 1.4)

    def test_sorting_falls_linearly_with_power(self):
        task = spike_sorting_task()
        t15 = max_throughput_mbps(task, 1, 15.0)
        t6 = max_throughput_mbps(task, 1, 6.0)
        assert 100 <= t15 <= 140  # paper: 118 Mbps
        assert t15 / t6 == pytest.approx((15.0) / (6.0), rel=0.35)

    def test_hash_all_all_peaks_near_6_nodes(self):
        task_factory = lambda: hash_similarity_task("all_all")
        series = {
            n: max_throughput_mbps(task_factory(), n, 15.0)
            for n in (2, 4, 6, 8, 16, 32)
        }
        peak = max(series, key=series.get)
        assert 4 <= peak <= 8  # paper: peak at 6 nodes
        assert series[32] < series[peak] / 2

    def test_hash_one_all_scales_linearly(self):
        t8 = max_throughput_mbps(hash_similarity_task("one_all"), 8, 15.0)
        t64 = max_throughput_mbps(hash_similarity_task("one_all"), 64, 15.0)
        assert t64 == pytest.approx(8 * t8, rel=0.02)

    def test_hash_one_all_64_nodes_near_paper(self):
        t = max_throughput_mbps(hash_similarity_task("one_all"), 64, 15.0)
        assert 5000 <= t <= 10000  # paper: 6851 Mbps

    def test_dtw_all_all_communication_limited(self):
        """§6.2: DTW All-All is unaffected by power down to ~4 mW."""
        task_factory = lambda: dtw_similarity_task("all_all")
        t15 = max_throughput_mbps(task_factory(), 4, 15.0)
        t6 = max_throughput_mbps(task_factory(), 4, 6.0)
        assert t15 == pytest.approx(t6, rel=0.01)

    def test_dtw_all_all_decreases_with_nodes(self):
        task_factory = lambda: dtw_similarity_task("all_all")
        t2 = max_throughput_mbps(task_factory(), 2, 15.0)
        t64 = max_throughput_mbps(task_factory(), 64, 15.0)
        assert t64 < t2

    def test_mi_svm_highest_of_movement_apps(self):
        svm = max_throughput_mbps(mi_svm_task(), 16, 15.0)
        nn = max_throughput_mbps(mi_nn_task(), 16, 15.0)
        kf = max_throughput_mbps(mi_kf_task(), 16, 15.0)
        assert svm > nn > kf

    def test_mi_kf_saturates_at_384_electrodes(self):
        """§6.2: the NVM caps MI-KF at 384 electrodes / 4 nodes."""
        t4 = max_throughput_mbps(mi_kf_task(), 4, 15.0)
        t16 = max_throughput_mbps(mi_kf_task(), 16, 15.0)
        assert t4 == pytest.approx(t16, rel=0.01)
        assert t4 / 0.48 == pytest.approx(384, rel=0.05)

    def test_mi_kf_flat_then_quadratic_in_power(self):
        t15 = max_throughput_mbps(mi_kf_task(), 8, 15.0)
        t12 = max_throughput_mbps(mi_kf_task(), 8, 12.0)
        t6 = max_throughput_mbps(mi_kf_task(), 8, 6.0)
        assert t12 == pytest.approx(t15, rel=0.01)  # NVM-limited region
        assert t6 < t15  # power-limited region


class TestMultiFlow:
    def test_weights_steer_allocation(self):
        flows_a = [
            Flow(seizure_detection_task(), weight=10.0, electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 weight=1.0, electrode_cap=96),
        ]
        flows_b = [
            Flow(seizure_detection_task(), weight=1.0, electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 weight=10.0, electrode_cap=96),
        ]
        # tighten power so the flows genuinely compete
        a = SchedulerProblem(8, flows_a, power_budget_mw=8.0).solve()
        b = SchedulerProblem(8, flows_b, power_budget_mw=8.0).solve()
        det_a = a.allocation("seizure_detection").electrodes_per_node
        det_b = b.allocation("seizure_detection").electrodes_per_node
        assert det_a > det_b

    def test_power_budget_respected(self):
        flows = [
            Flow(seizure_detection_task(), electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 electrode_cap=96),
            Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
                 electrode_cap=96),
        ]
        schedule = SchedulerProblem(11, flows, power_budget_mw=15.0).solve()
        assert schedule.node_power_mw <= 15.0 + 1e-6

    def test_static_power_over_budget_rejected(self):
        flows = [Flow(seizure_detection_task())]
        with pytest.raises(SchedulingError):
            SchedulerProblem(2, flows, power_budget_mw=0.5).solve()

    def test_missing_allocation_lookup_raises(self):
        schedule = SchedulerProblem(
            2, [Flow(spike_sorting_task())]
        ).solve()
        with pytest.raises(SchedulingError):
            schedule.allocation("ghost")

    def test_weighted_metric_normalises(self):
        flows = [
            Flow(spike_sorting_task(), weight=2.0),
            Flow(seizure_detection_task(), weight=2.0),
        ]
        schedule = SchedulerProblem(4, flows).solve()
        mean_flow = sum(a.aggregate_mbps for a in schedule.allocations) / 2
        assert schedule.weighted_mbps() == pytest.approx(mean_flow)

    def test_analytic_breakdown_names_binding_constraint(self):
        breakdown = analytic_electrodes(dtw_similarity_task("all_all"), 16, 15.0)
        assert breakdown.binding == "network"
        breakdown = analytic_electrodes(spike_sorting_task(), 1, 15.0)
        assert breakdown.binding == "power"
        breakdown = analytic_electrodes(mi_kf_task(), 8, 15.0)
        assert breakdown.binding == "nvm"


class TestSolutionNonNegativity:
    """HiGHS roundoff can return -1e-12-ish components; solve() clamps."""

    @pytest.mark.parametrize("n_nodes", [1, 2, 4, 8, 16, 32, 64])
    @pytest.mark.parametrize("task_factory", ALL_TASKS)
    def test_allocations_never_negative(self, task_factory, n_nodes):
        problem = SchedulerProblem(
            n_nodes=n_nodes, flows=[Flow(task_factory())]
        )
        schedule = problem.solve()
        for alloc in schedule.allocations:
            assert alloc.electrodes_per_node >= 0.0
            assert alloc.aggregate_electrodes >= 0.0
            assert alloc.power_mw_per_node >= 0.0
            assert alloc.airtime_ms_per_period >= 0.0
            assert alloc.aggregate_mbps >= 0.0
        assert schedule.aggregate_mbps >= 0.0
        assert schedule.network_utilisation >= 0.0

    def test_multi_flow_contended_allocations_never_negative(self):
        flows = [
            Flow(seizure_detection_task(), electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 electrode_cap=96),
            Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
                 electrode_cap=96),
        ]
        schedule = SchedulerProblem(32, flows, power_budget_mw=6.0).solve()
        for alloc in schedule.allocations:
            assert alloc.electrodes_per_node >= 0.0
            assert alloc.aggregate_electrodes >= 0.0
            assert alloc.power_mw_per_node >= 0.0


class TestSchedulerTelemetry:
    def test_max_throughput_books_solve_metrics(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        max_throughput_mbps(seizure_detection_task(), 4, 15.0, telemetry=tel)
        reg = tel.registry
        assert reg.counter("scheduler.solves") == 1.0
        hist = reg.histogram("scheduler.ilp_solve_ms")
        assert hist is not None and hist.n >= 1

    def test_sweep_books_one_solve_per_cell(self):
        from repro.eval.throughput import fig8b
        from repro.telemetry import Telemetry

        tel = Telemetry()
        fig8b(node_counts=(1, 2), power_limits=(15.0,), telemetry=tel)
        # 4 similarity surfaces x 1 power x 2 node counts
        assert tel.registry.counter("scheduler.solves") == 8.0

    def test_default_is_silent(self):
        # no telemetry argument: nothing to assert beyond "doesn't blow up",
        # which is exactly the NULL_TELEMETRY contract
        assert max_throughput_mbps(seizure_detection_task(), 2, 15.0) > 0

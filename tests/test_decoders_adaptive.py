"""Tests for the extension decoders: adaptive Kalman and deep networks."""

import copy

import numpy as np
import pytest

from repro.decoders.adaptive import (
    AdaptiveKalmanFilter,
    DeepDecoder,
    observation_drift,
    train_deep_decoder,
)
from repro.decoders.kalman import KalmanFilter, fit_kalman
from repro.errors import ConfigurationError


def _drifting_session(rng, n_steps=600, n_obs=8, drift=0.6):
    states = np.zeros((n_steps, 4))
    for t in range(1, n_steps):
        states[t, 2:] = 0.95 * states[t - 1, 2:] + 0.1 * rng.standard_normal(2)
        states[t, :2] = states[t - 1, :2] + states[t - 1, 2:]
    h0 = rng.normal(size=(n_obs, 4))
    obs = np.empty((n_steps, n_obs))
    for t in range(n_steps):
        gain = 1.0 + drift * t / n_steps
        obs[t] = (h0 * gain) @ states[t] + 0.1 * rng.standard_normal(n_obs)
    return states, obs


class TestAdaptiveKalman:
    def test_beats_static_filter_under_drift(self, rng):
        states, obs = _drifting_session(rng)
        model = fit_kalman(states[:150], obs[:150])
        static = KalmanFilter(copy.deepcopy(model))
        adaptive = AdaptiveKalmanFilter(copy.deepcopy(model))
        static_err = adaptive_err = 0.0
        for t in range(150, states.shape[0]):
            es = static.step(obs[t])
            ea = adaptive.step_supervised(obs[t], states[t])
            static_err += float(np.sum((es[2:] - states[t, 2:]) ** 2))
            adaptive_err += float(np.sum((ea[2:] - states[t, 2:]) ** 2))
        assert adaptive_err < static_err / 3

    def test_h_tracks_toward_truth(self, rng):
        states, obs = _drifting_session(rng)
        model = fit_kalman(states[:150], obs[:150])
        before = copy.deepcopy(model)
        adaptive = AdaptiveKalmanFilter(model)
        for t in range(150, 500):
            adaptive.step_supervised(obs[t], states[t])
        assert observation_drift(before, adaptive.model) > 0.1

    def test_no_drift_means_little_adaptation(self, rng):
        states, obs = _drifting_session(rng, drift=0.0)
        model = fit_kalman(states[:200], obs[:200])
        before = copy.deepcopy(model)
        adaptive = AdaptiveKalmanFilter(model, forgetting=1.0)
        for t in range(200, 400):
            adaptive.step_supervised(obs[t], states[t])
        assert observation_drift(before, adaptive.model) < 0.8

    def test_bad_forgetting_rejected(self, rng):
        states, obs = _drifting_session(rng, n_steps=100)
        model = fit_kalman(states, obs)
        with pytest.raises(ConfigurationError):
            AdaptiveKalmanFilter(model, forgetting=0.5)

    def test_bad_supervision_shapes_rejected(self, rng):
        states, obs = _drifting_session(rng, n_steps=100)
        adaptive = AdaptiveKalmanFilter(fit_kalman(states, obs))
        with pytest.raises(ConfigurationError):
            adaptive.adapt(np.zeros(3), np.zeros(4))


class TestDeepDecoder:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(400, 24))
        y = np.tanh(x[:, :4].sum(1, keepdims=True))
        return train_deep_decoder(x, y, hidden=(48, 24), epochs=300), x, y

    def test_learns_a_nonlinear_target(self, trained):
        decoder, x, y = trained
        pred = np.stack([decoder.forward(row) for row in x[:100]])
        assert np.corrcoef(pred[:, 0], y[:100, 0])[0, 1] > 0.6

    def test_distributed_equals_centralised(self, trained):
        decoder, x, _ = trained
        for row in x[:10]:
            parts = [row[:8], row[8:16], row[16:]]
            assert np.allclose(
                decoder.distributed_forward(parts), decoder.forward(row),
                atol=1e-10,
            )

    def test_layer_count(self, trained):
        decoder, _, _ = trained
        assert decoder.n_layers == 3  # 2 hidden + output

    def test_structure_validation(self):
        with pytest.raises(ConfigurationError):
            DeepDecoder([np.zeros((4, 8))], [np.zeros(4)])  # too shallow
        with pytest.raises(ConfigurationError):
            DeepDecoder(
                [np.zeros((4, 8)), np.zeros((2, 5))],  # width mismatch
                [np.zeros(4), np.zeros(2)],
            )

    def test_training_validation(self):
        with pytest.raises(ConfigurationError):
            train_deep_decoder(np.zeros((10, 3)), np.zeros((10, 1)), hidden=())

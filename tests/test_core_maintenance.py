"""Tests for wireless charging and the daily duty schedule."""

import pytest

from repro.core.maintenance import (
    Battery,
    DailySchedule,
    ScheduleSlot,
    plan_daily_schedule,
    required_charge_power_mw,
    simulate_day,
)
from repro.errors import ConfigurationError


class TestBattery:
    def test_discharge_within_usable(self):
        battery = Battery(capacity_mwh=100.0, level_mwh=100.0,
                          reserve_fraction=0.2)
        sustained = battery.discharge(10.0, 5.0)
        assert sustained == 5.0
        assert battery.level_mwh == pytest.approx(50.0)

    def test_discharge_stops_at_reserve(self):
        battery = Battery(capacity_mwh=100.0, level_mwh=30.0,
                          reserve_fraction=0.2)
        sustained = battery.discharge(10.0, 5.0)
        assert sustained == pytest.approx(1.0)
        assert battery.level_mwh == pytest.approx(20.0)

    def test_charge_caps_at_capacity(self):
        battery = Battery(capacity_mwh=100.0, level_mwh=95.0)
        accepted = battery.charge(10.0, 2.0)
        assert accepted == pytest.approx(5.0)
        assert battery.level_mwh == 100.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity_mwh=-1.0)
        with pytest.raises(ConfigurationError):
            Battery(reserve_fraction=1.0)


class TestSchedule:
    def test_default_plan_tiles_the_day(self):
        schedule = plan_daily_schedule()
        schedule.validate()
        assert schedule.hours("charge") == pytest.approx(2.0)
        assert schedule.uptime_fraction > 0.9  # paper: 22 of 24 hours

    def test_gap_rejected(self):
        schedule = DailySchedule([
            ScheduleSlot(0.0, 2.0, "charge"),
            ScheduleSlot(3.0, 21.0, "operate"),
        ])
        with pytest.raises(ConfigurationError):
            schedule.validate()

    def test_short_day_rejected(self):
        schedule = DailySchedule([ScheduleSlot(0.0, 20.0, "operate")])
        with pytest.raises(ConfigurationError):
            schedule.validate()

    def test_charging_bounds(self):
        with pytest.raises(ConfigurationError):
            plan_daily_schedule(charging_h=25.0)


class TestEnergyBudget:
    def test_reference_charge_power(self):
        # 22 h x 15 mW over 2 h at 80 % efficiency
        power = required_charge_power_mw()
        assert power == pytest.approx(22 * 15 / (2 * 0.8))

    def test_day_closes_the_budget(self):
        battery = Battery()
        report = simulate_day(battery, plan_daily_schedule())
        assert report["uptime_fraction"] > 0.9
        assert battery.usable_mwh >= 0

    def test_steady_state_over_a_week(self):
        battery = Battery(level_mwh=425.0)
        schedule = plan_daily_schedule()
        levels = []
        for _ in range(7):
            simulate_day(battery, schedule)
            levels.append(battery.level_mwh)
        # the cycle must be sustainable: no monotone drain
        assert levels[-1] >= levels[0] - 1e-6

    def test_undersized_charge_power_fails(self):
        battery = Battery(level_mwh=Battery().reserve_mwh + 10.0)
        with pytest.raises(ConfigurationError):
            simulate_day(battery, plan_daily_schedule(), charge_power_mw=1.0)

"""Fleet health engine: sketches, SLO burn rates, anomalies, incidents.

Covers the health package end to end: the mergeable quantile sketch
(including hypothesis merge-property tests), the SLO burn-rate engine
with its request-count guards, the EWMA anomaly detector, the flight
recorder, and the full :class:`HealthEngine` riding along a chaos
storm — where the determinism contract (attaching health changes no
output byte) and the storm calibration (mild quiet, moderate alerting)
are asserted directly.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.eval.chaos import (
    MILD,
    MODERATE,
    ChaosConfig,
    run_storm,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.exporters import chrome_trace_events, telemetry_json
from repro.telemetry.health import (
    AnomalyConfig,
    AnomalyDetector,
    BurnRateWindow,
    FlightRecorder,
    HealthConfig,
    HealthEngine,
    QuantileSketch,
    SLO,
    SLOEngine,
)
from repro.telemetry.registry import Histogram, MetricsRegistry


def _true_quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile over the raw data (the sketch's target)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestQuantileSketch:
    def test_empty_sketch(self):
        sk = QuantileSketch()
        assert sk.count == 0
        assert sk.quantile(0.5) == 0.0
        assert sk.mean == 0.0

    def test_single_value(self):
        sk = QuantileSketch()
        sk.observe(42.0)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert sk.quantile(q) == pytest.approx(42.0, rel=0.02)

    def test_relative_error_bound(self):
        rng = random.Random(7)
        values = [rng.uniform(0.1, 5000.0) for _ in range(2000)]
        sk = QuantileSketch(relative_accuracy=0.01)
        for v in values:
            sk.observe(v)
        for q in (0.1, 0.5, 0.9, 0.99):
            true = _true_quantile(values, q)
            assert sk.quantile(q) == pytest.approx(true, rel=0.025)

    def test_handles_zero_and_negative(self):
        sk = QuantileSketch()
        for v in (-10.0, -1.0, 0.0, 0.0, 1.0, 10.0):
            sk.observe(v)
        assert sk.count == 6
        assert sk.quantile(0.01) == pytest.approx(-10.0, rel=0.05)
        assert sk.quantile(1.0) == pytest.approx(10.0, rel=0.05)
        assert sk.min_value == -10.0
        assert sk.max_value == 10.0

    def test_invalid_quantile_rejected(self):
        sk = QuantileSketch()
        sk.observe(1.0)
        with pytest.raises(ConfigurationError):
            sk.quantile(-0.1)
        with pytest.raises(ConfigurationError):
            sk.quantile(1.5)

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ConfigurationError):
            QuantileSketch(relative_accuracy=1.0)

    def test_merge_requires_same_accuracy(self):
        a = QuantileSketch(relative_accuracy=0.01)
        b = QuantileSketch(relative_accuracy=0.02)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_copy_is_independent(self):
        a = QuantileSketch()
        a.observe(1.0)
        b = a.copy()
        b.observe(100.0)
        assert a.count == 1
        assert b.count == 2

    def test_delta_since(self):
        a = QuantileSketch()
        for v in (1.0, 2.0):
            a.observe(v)
        snap = a.copy()
        for v in (100.0, 200.0, 300.0):
            a.observe(v)
        delta = a.delta_since(snap)
        assert delta.count == 3
        assert delta.quantile(0.5) == pytest.approx(200.0, rel=0.02)

    def test_as_dict_round_numbers(self):
        sk = QuantileSketch()
        for v in (1.0, 2.0, 3.0):
            sk.observe(v)
        d = sk.as_dict()
        assert d["count"] == 3
        assert d["quantiles"]["p50"] == pytest.approx(2.0, rel=0.02)
        assert d["min"] == 1.0 and d["max"] == 3.0

    @settings(max_examples=50, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(
                st.floats(
                    min_value=0.001, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
                min_size=1, max_size=40,
            ),
            min_size=2, max_size=6,
        ),
        q=st.sampled_from([0.1, 0.5, 0.9, 0.99]),
    )
    def test_merged_matches_pooled(self, chunks, q):
        """Merging per-chunk sketches ≈ sketching the pooled data."""
        merged = QuantileSketch()
        pooled = QuantileSketch()
        flat = []
        for chunk in chunks:
            part = QuantileSketch()
            for v in chunk:
                part.observe(v)
                pooled.observe(v)
                flat.append(v)
            merged.merge(part)
        assert merged.count == pooled.count == len(flat)
        # identical bucket state, hence identical quantiles
        assert merged.quantile(q) == pooled.quantile(q)
        # and both within the relative-error bound of the raw data
        true = _true_quantile(flat, q)
        assert merged.quantile(q) == pytest.approx(true, rel=0.025)

    @settings(max_examples=50, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(
                st.floats(
                    min_value=0.001, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
                min_size=1, max_size=30,
            ),
            min_size=2, max_size=5,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_merge_is_order_independent(self, chunks, seed):
        """Any merge order produces the same sketch (commutative group)."""
        parts = []
        for chunk in chunks:
            sk = QuantileSketch()
            for v in chunk:
                sk.observe(v)
            parts.append(sk)

        forward = QuantileSketch()
        for part in parts:
            forward.merge(part)

        shuffled = list(parts)
        random.Random(seed).shuffle(shuffled)
        backward = QuantileSketch()
        for part in shuffled:
            backward.merge(part)

        # bucket state (hence every quantile) is exactly order-free;
        # the float `sum` accumulator is order-sensitive in the last ulp
        a, b = forward.as_dict(), backward.as_dict()
        assert a.pop("sum") == pytest.approx(b.pop("sum"), rel=1e-12)
        assert a == b


class TestBurnRateWindow:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurnRateWindow(rounds=0, threshold=1.0)
        with pytest.raises(ConfigurationError):
            BurnRateWindow(rounds=1, threshold=0.0)
        with pytest.raises(ConfigurationError):
            BurnRateWindow(rounds=1, threshold=1.0, severity="panic")
        with pytest.raises(ConfigurationError):
            BurnRateWindow(rounds=1, threshold=1.0, min_events=-1)


class TestSLO:
    def _ratio_slo(self, **overrides):
        base = dict(
            name="x",
            objective=0.9,
            bad_counters=("bad",),
            total_counters=("total",),
            window_rounds=(2, 4),
            burn_rate_thresholds=(5.0, 2.0),
        )
        base.update(overrides)
        return SLO(**base)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._ratio_slo(objective=1.0)
        with pytest.raises(ConfigurationError):
            self._ratio_slo(bad_counters=())  # neither counters nor latency
        with pytest.raises(ConfigurationError):
            self._ratio_slo(latency_metric="m")  # both
        with pytest.raises(ConfigurationError):
            self._ratio_slo(window_rounds=(4, 2))  # fast > slow
        with pytest.raises(ConfigurationError):
            self._ratio_slo(burn_rate_thresholds=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            SLO(
                name="lat", objective=0.9, latency_metric="m",
                latency_threshold_ms=0.0,
            )

    def test_duplicate_names_rejected(self):
        slo = self._ratio_slo()
        with pytest.raises(ConfigurationError):
            SLOEngine((slo, slo))

    def test_burn_rate_math(self):
        engine = SLOEngine((self._ratio_slo(),))
        # error budget = 0.1; 5 bad of 10 => error rate 0.5 => burn 5.0
        alerts = engine.observe("x", 0, 50.0, 5, 10)
        # burn 5.0 crosses both the fast (5.0) and slow (2.0) thresholds
        assert [a.severity for a in alerts] == ["fast", "slow"]
        assert alerts[0].burn_rate == pytest.approx(5.0)

    def test_alert_latches_until_rearm(self):
        engine = SLOEngine((self._ratio_slo(),))
        assert engine.observe("x", 0, 50.0, 5, 10)  # fires
        assert not engine.observe("x", 1, 100.0, 5, 10)  # latched
        assert not engine.observe("x", 2, 150.0, 0, 10)  # drops, re-arms
        assert not engine.observe("x", 3, 200.0, 0, 10)  # quiet
        assert engine.observe("x", 4, 250.0, 10, 10)  # second excursion

    def test_min_events_guard_suppresses_small_samples(self):
        guarded = self._ratio_slo(window_min_events=(8, 16))
        engine = SLOEngine((guarded,))
        # 1 bad of 1: error rate 1.0, burn 10 — but only 1 event in window
        assert not engine.observe("x", 0, 50.0, 1, 1)
        # still short of 8 events across the fast window
        assert not engine.observe("x", 1, 100.0, 1, 1)
        # now flood the window past the guard: alert fires
        assert engine.observe("x", 2, 150.0, 12, 12)

    def test_bad_beyond_total_rejected(self):
        engine = SLOEngine((self._ratio_slo(),))
        with pytest.raises(ConfigurationError):
            engine.observe("x", 0, 50.0, 3, 2)

    def test_status_attainment(self):
        engine = SLOEngine((self._ratio_slo(),))
        engine.observe("x", 0, 50.0, 1, 10)
        engine.observe("x", 1, 100.0, 0, 10)
        (status,) = engine.statuses()
        assert status.total_events == 20
        assert status.bad_events == 1
        assert status.attainment == pytest.approx(0.95)
        assert status.met  # 0.95 >= 0.9

    def test_alerts_sorted_by_round(self):
        slos = (self._ratio_slo(name="a"), self._ratio_slo(name="b"))
        engine = SLOEngine(slos)
        engine.observe("b", 0, 50.0, 9, 10)
        engine.observe("a", 1, 100.0, 9, 10)
        # burn 9.0 trips both windows of each SLO
        assert [(a.round_index, a.slo, a.severity) for a in engine.alerts()] == [
            (0, "b", "fast"), (0, "b", "slow"),
            (1, "a", "fast"), (1, "a", "slow"),
        ]


class TestAnomalyDetector:
    def test_quiet_during_warmup(self):
        det = AnomalyDetector(AnomalyConfig(warmup_rounds=8))
        for i in range(8):
            assert det.observe("serving.x", i, i * 50.0, 1000.0) is None

    def test_flags_spike_after_warmup(self):
        det = AnomalyDetector(
            AnomalyConfig(warmup_rounds=4, z_threshold=4.0, min_deviation=3.0)
        )
        for i in range(12):
            det.observe("serving.x", i, i * 50.0, 10.0)
        flagged = det.observe("serving.x", 12, 600.0, 500.0)
        assert flagged is not None
        assert flagged.metric == "serving.x"
        assert flagged.delta == 500.0
        assert flagged.z_score > 4.0

    def test_min_deviation_forgives_small_wobble(self):
        det = AnomalyDetector(
            AnomalyConfig(warmup_rounds=2, z_threshold=2.0, min_deviation=5.0)
        )
        for i in range(10):
            det.observe("serving.x", i, i * 50.0, 10.0)
        # a +2 wobble is within min_deviation even if z is large
        assert det.observe("serving.x", 10, 500.0, 12.0) is None

    def test_watch_prefixes(self):
        det = AnomalyDetector(AnomalyConfig(prefixes=("serving.",)))
        assert det.watches("serving.shed")
        assert not det.watches("health.alerts")

    def test_deterministic(self):
        def run():
            det = AnomalyDetector(AnomalyConfig(warmup_rounds=2))
            out = []
            for i, v in enumerate([5, 5, 5, 5, 50, 5, 5, 80]):
                a = det.observe("serving.x", i, i * 50.0, float(v))
                if a is not None:
                    out.append(a.as_dict())
            return out

        assert run() == run()


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", float(i))
        entries = list(rec.entries())
        assert len(entries) == 4
        assert [e["seq"] for e in entries] == [7, 8, 9, 10]

    def test_entries_filter_by_kind(self):
        rec = FlightRecorder()
        rec.record("breaker", 1.0, node=0)
        rec.record("shed", 2.0, client="a")
        rec.record("breaker", 3.0, node=1)
        assert [e["t_ms"] for e in rec.entries("breaker")] == [1.0, 3.0]

    def test_incident_bundles_bounded(self):
        rec = FlightRecorder(capacity=8, max_incidents=2)
        for i in range(5):
            rec.snapshot_incident(
                {"slo": "x", "round": i},
                recent_spans=[], slo_statuses=[], quantiles={},
            )
        assert len(rec.bundles) == 2
        assert [b["alert"]["round"] for b in rec.bundles] == [3, 4]

    def test_bundle_carries_evidence(self):
        rec = FlightRecorder()
        rec.record("breaker", 5.0, node=2, dst="open")
        bundle = rec.snapshot_incident(
            {"slo": "coverage"},
            recent_spans=[{"name": "serve-wave"}],
            slo_statuses=[{"slo": "coverage", "met": False}],
            quantiles={"serving.latency_ms": {"p99": 120.0}},
        )
        assert bundle["entries"][0]["kind"] == "breaker"
        assert bundle["spans"] == [{"name": "serve-wave"}]
        assert bundle["quantiles"]["serving.latency_ms"]["p99"] == 120.0


class TestHistogramInterpolation:
    def _uniform_histogram(self):
        hist = Histogram(edges=(0.5, 1.0, 2.0))
        rng = random.Random(0)
        values = [rng.uniform(0.5, 1.0) for _ in range(500)]
        for v in values:
            hist.observe(v)
        return hist, values

    def test_legacy_path_returns_upper_edge(self):
        hist, _ = self._uniform_histogram()
        # every value lands in (0.5, 1.0]; the legacy answer is its edge
        assert hist.quantile(0.5, interpolate=False) == 1.0

    def test_interpolated_estimate_is_inside_bucket(self):
        hist, values = self._uniform_histogram()
        true = _true_quantile(values, 0.5)
        estimate = hist.quantile(0.5)
        assert 0.5 < estimate < 1.0
        # error bounded by the bucket width, and far better in practice
        assert abs(estimate - true) < 0.5
        assert abs(estimate - true) < abs(1.0 - true)

    def test_clamped_to_observed_range(self):
        hist = Histogram(edges=(10.0, 100.0))
        hist.observe(40.0)
        hist.observe(42.0)
        assert 40.0 <= hist.quantile(0.5) <= 42.0
        assert hist.quantile(1.0) <= 42.0

    def test_overflow_bucket_uses_max(self):
        hist = Histogram(edges=(1.0,))
        hist.observe(5.0)
        hist.observe(7.0)
        assert hist.quantile(1.0) == 7.0
        assert hist.quantile(1.0, interpolate=False) == 7.0

    def test_empty_histogram(self):
        hist = Histogram(edges=(1.0,))
        assert hist.quantile(0.5) == 0.0


class TestRegistrySketches:
    def test_observe_feeds_sketch_and_histogram(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("m", v, node=0)
        sk = reg.sketch("m", node=0)
        assert sk is not None and sk.count == 3
        assert reg.quantile("m", 0.5, node=0) == pytest.approx(2.0, rel=0.02)

    def test_quantile_unknown_metric_is_zero(self):
        assert MetricsRegistry().quantile("nope", 0.5) == 0.0

    def test_snapshot_includes_sketches(self):
        reg = MetricsRegistry()
        reg.observe("m", 1.0)
        snap = reg.snapshot()
        assert "sketches" in snap
        (cell,) = snap["sketches"].values()
        assert cell["count"] == 1


class TestExportersOnEmptyState:
    def test_chrome_trace_of_fresh_telemetry(self):
        tel = Telemetry()
        doc = chrome_trace_events(tel.tracer)
        # only process/thread metadata — no span, instant, or counter events
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_telemetry_json_of_empty_registry(self):
        doc = telemetry_json(MetricsRegistry())
        assert doc["metrics"]["counters"] == {}
        assert doc["metrics"]["sketches"] == {}

    def test_instant_and_counter_events_render(self):
        tel = Telemetry()
        tel.instant("health-alert", slo="x")
        tel.instant("brownout-tier", counter=True, tier=2)
        events = chrome_trace_events(tel.tracer)["traceEvents"]
        phases = sorted(e["ph"] for e in events if e["ph"] in ("i", "C"))
        assert phases == ["C", "i"]


class TestHealthEngine:
    def test_disabled_engine_is_inert(self):
        engine = HealthEngine(NULL_TELEMETRY)
        assert not engine.enabled
        assert engine.observe_to(1000.0) == []
        assert engine.finalize(2000.0) == []
        assert engine.healthy
        assert engine.report()["rounds_observed"] == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HealthConfig(round_ms=0.0)
        with pytest.raises(ConfigurationError):
            HealthConfig(incident_span_tail=0)

    def test_preexisting_counters_are_baseline(self):
        tel = Telemetry()
        tel.inc("serving.shed", 500)  # an earlier storm's residue
        engine = HealthEngine(tel)
        engine.finalize(50.0)
        (status,) = (
            s for s in engine.slo_engine.statuses()
            if s.name == "serving-availability"
        )
        assert status.bad_events == 0  # baseline, not a round-0 delta

    def test_alert_free_run_yields_no_incidents(self):
        tel = Telemetry()
        engine = HealthEngine(tel)
        tel.inc("serving.submitted", 10)
        tel.inc("serving.completed", 10)
        engine.finalize(50.0)
        report = engine.report()
        assert report["healthy"]
        assert report["alerts"] == []
        assert report["incidents"] == []


class TestStormCalibration:
    """The chaos gates, asserted at the health-engine level (seed 0)."""

    def test_mild_storm_rides_out_without_alerts(self):
        result = run_storm(MILD, ChaosConfig(), telemetry=Telemetry())
        assert result.health is not None
        assert result.health["alerts"] == []
        assert result.health["incidents"] == []

    def test_moderate_storm_fires_fast_burn_with_incident(self):
        result = run_storm(MODERATE, ChaosConfig(), telemetry=Telemetry())
        health = result.health
        assert health is not None
        fast = [a for a in health["alerts"] if a["severity"] == "fast"]
        assert fast, health["alerts"]
        assert fast[0]["slo"] == "serving-coverage"
        assert len(health["incidents"]) >= len(health["alerts"])
        bundle = health["incidents"][0]
        assert bundle["spans"], "incident must carry the span tail"
        kinds = {e["kind"] for e in bundle["entries"]}
        assert "metrics" in kinds
        assert kinds & {"breaker", "brownout", "shed"}, kinds

    def test_health_is_observational(self):
        """Attaching a live health engine changes no output byte."""
        silent = run_storm(MODERATE, ChaosConfig())
        live = run_storm(MODERATE, ChaosConfig(), telemetry=Telemetry())
        assert silent.health is None and live.health is not None
        assert silent.report.response_log == live.report.response_log
        assert silent.breaker_transitions == live.breaker_transitions

    def test_repeat_runs_byte_identical_with_health(self):
        a = run_storm(MODERATE, ChaosConfig(), telemetry=Telemetry())
        b = run_storm(MODERATE, ChaosConfig(), telemetry=Telemetry())
        assert a.report.response_log == b.report.response_log
        assert a.health["alerts"] == b.health["alerts"]
        assert a.health["incidents"] == b.health["incidents"]

"""Crash-consistent recovery: ECC, journal replay, scrub, resync, failover."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.queries import QuerySpec
from repro.core.system import ScaloSystem
from repro.errors import ConfigurationError, UncorrectableError
from repro.network.arq import ARQConfig
from repro.network.channel import flip_bits
from repro.network.packet import PayloadKind
from repro.recovery.ecc import compute_ecc, decode_page
from repro.recovery.journal import (
    JournalRecord,
    RecordType,
    WriteAheadJournal,
)
from repro.recovery.scrub import Scrubber
from repro.storage.controller import StorageController
from repro.storage.nvm import PAGE_BYTES, NVMDevice
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.scenarios import recovery_session
from repro.units import WINDOW_SAMPLES


def _page(seed=0, n=PAGE_BYTES):
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, n, dtype=np.uint8))


class TestPageECC:
    def test_clean_page_roundtrip(self):
        data = _page()
        result = decode_page(data, compute_ecc(data))
        assert result.ok
        assert result.corrected_bits == 0
        assert result.data == data

    def test_single_bit_corrected_at_any_position(self):
        data = _page(1)
        for bit in (0, 7, 8, 12345, 8 * PAGE_BYTES - 1):
            damaged = flip_bits(data, np.array([bit]))
            result = decode_page(damaged, compute_ecc(data))
            assert result.ok
            assert result.corrected_bits == 1
            assert result.data == data

    def test_double_bit_detected_uncorrectable(self):
        data = _page(2)
        damaged = flip_bits(data, np.array([3, 77]))
        result = decode_page(damaged, compute_ecc(data))
        assert not result.ok
        assert result.data == damaged  # handed back unmodified

    def test_triple_flip_not_silently_miscorrected(self):
        # odd-weight damage looks like a single-bit error to SECDED; the
        # CRC must veto the bogus correction instead of returning wrong data
        data = _page(3)
        damaged = flip_bits(data, np.array([5, 500, 5000]))
        result = decode_page(damaged, compute_ecc(data))
        assert not result.ok

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.binary(min_size=64, max_size=64),
        bit=st.integers(0, 8 * 64 - 1),
    )
    def test_single_flip_always_corrected(self, data, bit):
        damaged = flip_bits(data, np.array([bit]))
        result = decode_page(damaged, compute_ecc(data))
        assert result.ok
        assert result.data == data


class TestWriteAheadJournal:
    def test_append_replay_roundtrip(self):
        journal = WriteAheadJournal()
        records = [
            JournalRecord(RecordType.WINDOW, b"w0"),
            JournalRecord(RecordType.HASH_BATCH, b"h0"),
            JournalRecord(RecordType.APPDATA, b""),
        ]
        for record in records:
            journal.append(record.rtype, record.payload)
        replayed = journal.replay()
        assert replayed.checkpoint is None
        assert replayed.records == records
        assert not replayed.torn

    def test_checkpoint_truncates_log(self):
        journal = WriteAheadJournal()
        journal.append(RecordType.WINDOW, b"before")
        journal.write_checkpoint(b"state-0")
        journal.append(RecordType.WINDOW, b"after")
        replayed = journal.replay()
        assert replayed.checkpoint == b"state-0"
        assert [r.payload for r in replayed.records] == [b"after"]

    def test_torn_checkpoint_falls_back_to_previous_slot(self):
        journal = WriteAheadJournal()
        journal.write_checkpoint(b"old")
        journal.write_checkpoint(b"new")
        image = journal.snapshot()
        slots = list(image.checkpoints)
        slots[image.active] = slots[image.active][:-3]  # torn mid-write
        torn = WriteAheadJournal.from_image(
            type(image)(image.log, (slots[0], slots[1]), image.active)
        )
        assert torn.checkpoint_payload() == b"old"

    def test_torn_tail_recovers_consistent_prefix(self):
        journal = WriteAheadJournal()
        journal.append(RecordType.WINDOW, b"first")
        journal.append(RecordType.WINDOW, b"second")
        whole = journal.snapshot()
        first_only = WriteAheadJournal()
        first_only.append(RecordType.WINDOW, b"first")
        tail = len(whole.log) - first_only.log_bytes
        for cut in range(1, tail + 1):
            replayed = WriteAheadJournal.from_image(whole.torn(cut)).replay()
            # removing the entire frame leaves a clean log; any partial
            # tear is detected
            assert replayed.torn == (cut < tail)
            assert [r.payload for r in replayed.records] == [b"first"]

    def test_discard_torn_tail_keeps_future_appends_reachable(self):
        journal = WriteAheadJournal()
        journal.append(RecordType.WINDOW, b"kept")
        journal.append(RecordType.WINDOW, b"torn-away")
        recovered = WriteAheadJournal.from_image(journal.snapshot().torn(2))
        assert recovered.discard_torn_tail() > 0
        recovered.append(RecordType.WINDOW, b"post-crash")
        replayed = recovered.replay()
        assert not replayed.torn
        assert [r.payload for r in replayed.records] == [b"kept", b"post-crash"]


def _controller():
    return StorageController(device=NVMDevice(capacity_bytes=32 * 1024 * 1024))


def _apply_op(controller, rng, op):
    if op[0] == "window":
        _, electrode, window, n_samples = op
        controller.store_window(
            electrode, window,
            rng.integers(-1000, 1000, n_samples).astype(np.int16),
        )
    elif op[0] == "hashes":
        _, window, n_signatures = op
        controller.store_hash_batch(
            window, float(window), [(1, 2, 3)] * n_signatures
        )
    elif op[0] == "appdata":
        _, key, size = op
        controller.store_appdata(key, bytes(range(size % 251)) or b"\x00")
    else:
        controller.checkpoint()


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("window"), st.integers(0, 3), st.integers(0, 5),
                  st.integers(1, 64)),
        st.tuples(st.just("hashes"), st.integers(0, 9), st.integers(1, 6)),
        st.tuples(st.just("appdata"),
                  st.sampled_from(["tpl-a", "tpl-b", "weights"]),
                  st.integers(1, 100)),
        st.tuples(st.just("checkpoint")),
    ),
    min_size=1,
    max_size=8,
)


class TestCrashConsistency:
    """Replay from the journal must equal the pre-crash state, byte for
    byte, for a crash cut at *every* record boundary and mid-frame."""

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_replay_matches_state_at_every_boundary(self, ops):
        controller = _controller()
        rng = np.random.default_rng(0)
        snapshots = [(controller.journal.snapshot(), controller.state_digest())]
        for op in ops:
            _apply_op(controller, rng, op)
            snapshots.append(
                (controller.journal.snapshot(), controller.state_digest())
            )
        for image, digest in snapshots:
            crashed = StorageController(device=controller.device)
            crashed.journal = WriteAheadJournal.from_image(image)
            crashed.recover()
            assert crashed.state_digest() == digest

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_mid_frame_tear_lands_on_previous_boundary(self, ops):
        controller = _controller()
        rng = np.random.default_rng(0)
        snapshots = [(controller.journal.snapshot(), controller.state_digest())]
        for op in ops:
            _apply_op(controller, rng, op)
            snapshots.append(
                (controller.journal.snapshot(), controller.state_digest())
            )
        for (prev_image, prev_digest), (image, _) in zip(
            snapshots, snapshots[1:]
        ):
            grown = len(image.log) - len(prev_image.log)
            if grown <= 0:  # a checkpoint op truncated the log
                continue
            for cut in (1, grown // 2, grown):
                crashed = StorageController(device=controller.device)
                crashed.journal = WriteAheadJournal.from_image(image.torn(cut))
                report = crashed.recover()
                assert crashed.state_digest() == prev_digest
                assert report.torn_tail == (cut < grown)

    def test_recovered_controller_serves_reads(self):
        controller = _controller()
        samples = np.arange(WINDOW_SAMPLES, dtype=np.int16)
        controller.store_window(0, 0, samples)
        controller.store_hash_batch(0, 0.0, [(7, 8, 9), (10, 11, 12)])
        controller.store_appdata("tpl", b"template-bytes")
        crashed = StorageController(device=controller.device)
        crashed.journal = WriteAheadJournal.from_image(
            controller.journal.snapshot()
        )
        report = crashed.recover()
        assert report.records_replayed == 3
        assert not report.checkpoint_used
        np.testing.assert_array_equal(crashed.read_window(0, 0), samples)
        assert crashed.read_hash_batch(0) == [(7, 8, 9), (10, 11, 12)]
        assert crashed.read_appdata("tpl") == b"template-bytes"


class TestScrubber:
    def _device(self, n_pages=10, seed=0):
        device = NVMDevice(capacity_bytes=2 * 1024 * 1024)
        rng = np.random.default_rng(seed)
        for page in range(n_pages):
            device.program_page(
                page, bytes(rng.integers(0, 256, PAGE_BYTES, dtype=np.uint8))
            )
        return device

    def test_corrects_all_single_bit_rot(self):
        device = self._device()
        pristine = [device.read(p, 0, PAGE_BYTES) for p in range(10)]
        for page in range(10):
            device.inject_bit_rot(
                page, np.array([(page * 97) % (8 * PAGE_BYTES)])
            )
        report = Scrubber(device).full_pass()
        assert report.pages_scanned == 10
        assert report.bits_corrected == 10
        assert report.uncorrectable_pages == 0
        assert [device.read(p, 0, PAGE_BYTES) for p in range(10)] == pristine

    def test_round_budget_patrols_all_pages(self):
        device = self._device(n_pages=5)
        device.inject_bit_rot(4, np.array([17]))
        scrubber = Scrubber(device, pages_per_round=2)
        reports = [scrubber.step() for _ in range(3)]
        assert [r.pages_scanned for r in reports] == [2, 2, 2]
        assert sum(r.bits_corrected for r in reports) == 1

    def test_double_bit_rot_poisons_page(self):
        device = self._device(n_pages=2)
        device.inject_bit_rot(1, np.array([0, 9]))
        report = Scrubber(device).full_pass()
        assert report.uncorrectable_pages == 1
        assert device.poisoned_pages == [1]
        with pytest.raises(UncorrectableError):
            device.read(1, 0, 8)
        device.read(0, 0, 8)  # the healthy page still serves
        # a whole-page rewrite re-encodes the ECC and clears the poison
        device.rewrite_range(1, 0, bytes(PAGE_BYTES))
        assert device.read(1, 0, 8) == bytes(8)
        assert device.poisoned_pages == []

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        device = self._device(n_pages=3)
        device.inject_bit_rot(0, np.array([5]))
        Scrubber(device, telemetry=telemetry).full_pass()
        assert telemetry.registry.counter("recovery.scrub_pages") == 3
        assert telemetry.registry.counter("recovery.scrub_corrected") == 1


def _ingest_exchange(system, rng, window):
    batch = system.ingest(
        rng.normal(
            size=(system.n_nodes, system.electrodes_per_node, WINDOW_SAMPLES)
        ).astype(np.float32)
    )
    for src in system.alive_node_ids:
        if batch[src]:
            system.broadcast_hashes(src, batch[src], seq=window)
    for node in system.alive_node_ids:
        system.drain_inbox(node)


class TestResync:
    def test_pull_and_push_after_reboot(self):
        system = ScaloSystem(
            n_nodes=3, electrodes_per_node=2, seed=0, arq=ARQConfig()
        )
        rng = np.random.default_rng(0)
        for window in range(3):
            _ingest_exchange(system, rng, window)
        system.fail_node(1)
        _ingest_exchange(system, rng, 3)  # exchanged while node 1 is dark
        report = system.recover_node(1, resync_horizon=4)
        assert report.replay.records_replayed > 0
        resync = report.resync
        assert resync.peers == [0, 2]
        assert resync.failed_peers == []
        # pulled windows 0-3 from both peers; pushed its own 0-2 back
        assert resync.batches_pulled == 8
        assert resync.batches_pushed == 3
        inbox = system.drain_inbox(1)
        pulled_seqs = {
            p.header.seq for p in inbox if p.header.kind == PayloadKind.HASHES
        }
        assert 3 in pulled_seqs  # the window it missed is now local
        # and the fleet keeps going: the rebooted node re-joins ingest at
        # its own (node-local) next window index
        _ingest_exchange(system, rng, 4)
        assert system.nodes[1].storage.stored_hash_windows() == [0, 1, 2, 3]

    def test_resync_without_peers_is_empty(self):
        system = ScaloSystem(n_nodes=1, electrodes_per_node=2, seed=0)
        rng = np.random.default_rng(0)
        system.ingest(
            rng.normal(size=(1, 2, WINDOW_SAMPLES)).astype(np.float32)
        )
        system.fail_node(0)
        report = system.recover_node(0)
        assert report.resync.peers == []
        assert report.resync.batches_pulled == 0


class TestFailover:
    def test_lowest_id_takeover_restores_query_seq(self):
        system = ScaloSystem(
            n_nodes=3, electrodes_per_node=2, seed=0, arq=ARQConfig()
        )
        manager = system.attach_failover()
        assert manager.coordinator == 0
        rng = np.random.default_rng(0)
        for window in range(2):
            _ingest_exchange(system, rng, window)
        spec = QuerySpec(kind="q3", time_range_ms=100.0)
        system.query_distributed(spec, (0, 2))
        seq_before = system._query_seq
        system.fail_node(0)
        event = manager.step()
        assert event is not None
        assert (event.old_coordinator, event.new_coordinator) == (0, 1)
        assert event.restored_query_seq == seq_before
        assert system._query_seq == seq_before
        result = system.query_distributed(spec, (0, 2))
        assert result.coverage == pytest.approx(2 / 3)
        assert manager.coordinator == 1
        assert manager.history == [event]
        assert manager.step() is None  # stable: no repeated handover

    def test_health_belief_drives_election(self):
        from repro.faults.health import HealthMonitor

        system = ScaloSystem(n_nodes=3, electrodes_per_node=2, seed=0)
        health = HealthMonitor(3, miss_threshold=2)
        manager = system.attach_failover(health=health)
        assert manager.coordinator == 0
        # the monitor loses faith in node 0 even though it never crashed:
        # failover follows the detector, not ground truth
        health.heartbeat(1, 1)
        health.heartbeat(2, 1)
        assert health.tick(1) == [0]
        event = manager.step()
        assert event is not None
        assert event.new_coordinator == 1


class TestRecoverySessionEndToEnd:
    """The PR's acceptance scenario: rot + mid-cycle crash + reboot, then
    a Q3 answer identical to the no-fault twin at full coverage."""

    @staticmethod
    def _canonical(rows):
        return [
            (r.node, r.electrode, r.window_index, r.samples.tobytes())
            for r in rows
        ]

    def test_repaired_run_matches_no_fault_run(self):
        faulted_tel = Telemetry()
        _, faulted = recovery_session(faulted_tel, seed=3, faults=True)
        clean_tel = Telemetry()
        _, clean = recovery_session(clean_tel, seed=3, faults=False)

        assert faulted.coverage == 1.0
        assert not faulted.degraded
        assert self._canonical(faulted.rows) == self._canonical(clean.rows)

        reg = faulted_tel.registry
        assert reg.counter("recovery.scrub_corrected") > 0
        assert reg.counter("recovery.records_replayed") > 0
        assert reg.counter("recovery.resync_batches_pulled") > 0
        assert reg.counter("recovery.nodes_recovered") == 1

        # one complete recovery trace: the span exists and its children
        # (replay, resync per peer) joined the same trace
        (recovery_span,) = faulted_tel.tracer.spans_named("recovery")
        for child in ("replay", "resync"):
            spans = faulted_tel.tracer.spans_named(child)
            assert spans, f"missing {child} span"
            assert all(s.trace_id == recovery_span.trace_id for s in spans)

    def test_faulted_run_is_deterministic(self):
        tel_a, tel_b = Telemetry(), Telemetry()
        _, run_a = recovery_session(tel_a, seed=5, faults=True)
        _, run_b = recovery_session(tel_b, seed=5, faults=True)
        assert self._canonical(run_a.rows) == self._canonical(run_b.rows)
        assert list(tel_a.registry.counters()) == list(tel_b.registry.counters())

    def test_clean_run_unaffected_by_instrumentation(self):
        _, instrumented = recovery_session(Telemetry(), seed=1, faults=False)
        _, bare = recovery_session(NULL_TELEMETRY, seed=1, faults=False)
        assert self._canonical(instrumented.rows) == self._canonical(bare.rows)


class TestEvalVariant:
    def test_crash_recovery_coverage(self):
        from repro.eval.resilience import crash_recovery_coverage

        result = crash_recovery_coverage(
            n_nodes=4, n_windows=5, crash_after=3, seed=1
        )
        assert result.before.degraded
        assert result.coverage_before == pytest.approx(0.75)
        assert not result.after.degraded
        assert result.coverage_after == 1.0
        assert result.records_replayed > 0
        assert result.batches_pulled > 0
        assert result.scrub_bits_corrected >= 1
        # the recovered node answers for every window, pre- and post-crash
        recovered_rows = {
            r.window_index for r in result.after.rows if r.node == 1
        }
        assert recovered_rows == set(range(5))

    def test_crash_after_validated(self):
        from repro.eval.resilience import crash_recovery_coverage

        with pytest.raises(ConfigurationError):
            crash_recovery_coverage(n_windows=3, crash_after=4)

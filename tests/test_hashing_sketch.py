"""Tests for sign sketches, n-gram profiles, and weighted min-hash."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.minhash import (
    finalize_hash,
    minhash_signature,
    weighted_minhash_sample,
)
from repro.hashing.ngram import ngram_counts, profile_similarity
from repro.hashing.sketch import (
    random_projection_vector,
    sign_sketch,
    sketch_length,
)


class TestProjection:
    def test_deterministic_for_seed(self):
        a = random_projection_vector(16, seed=7)
        b = random_projection_vector(16, seed=7)
        assert (a == b).all()

    def test_different_salts_differ(self):
        a = random_projection_vector(16, 7, rng_salt=0)
        b = random_projection_vector(16, 7, rng_salt=1)
        assert not (a == b).all()

    def test_bad_length_rejected(self):
        with pytest.raises(ConfigurationError):
            random_projection_vector(0, 7)


class TestSignSketch:
    def test_output_is_bits(self, rng):
        proj = random_projection_vector(8, 7)
        bits = sign_sketch(rng.normal(size=64), proj)
        assert set(np.unique(bits)) <= {0, 1}

    def test_length_matches_helper(self, rng):
        proj = random_projection_vector(8, 7)
        for stride in (1, 2, 4):
            for diff in (True, False):
                bits = sign_sketch(rng.normal(size=64), proj, stride,
                                   difference=diff)
                assert bits.shape[0] == sketch_length(64, 8, stride, diff)

    def test_gain_invariant(self, rng):
        proj = random_projection_vector(8, 7)
        x = rng.normal(size=64)
        assert (sign_sketch(x, proj) == sign_sketch(3.5 * x, proj)).all()

    def test_normalise_makes_offset_invariant(self, rng):
        proj = random_projection_vector(8, 7)
        x = rng.normal(size=64)
        a = sign_sketch(x, proj, normalise=True)
        b = sign_sketch(x + 100.0, proj, normalise=True)
        assert (a == b).all()

    def test_projection_longer_than_window_rejected(self):
        proj = random_projection_vector(32, 7)
        with pytest.raises(ConfigurationError):
            sign_sketch(np.zeros(16), proj)

    def test_bad_stride_rejected(self, rng):
        proj = random_projection_vector(8, 7)
        with pytest.raises(ConfigurationError):
            sign_sketch(rng.normal(size=64), proj, stride=0)


class TestNgrams:
    def test_counts(self):
        counts = ngram_counts(np.array([1, 0, 1, 0, 1]), 2)
        # shingles: 10, 01, 10, 01 -> {0b10: 2, 0b01: 2}
        assert counts == {2: 2, 1: 2}

    def test_short_input_empty(self):
        assert ngram_counts(np.array([1]), 3) == {}

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            ngram_counts(np.array([0, 2, 1]), 2)

    def test_profile_similarity_bounds(self, rng):
        a = ngram_counts(rng.integers(0, 2, 64), 4)
        b = ngram_counts(rng.integers(0, 2, 64), 4)
        similarity = profile_similarity(a, b)
        assert 0.0 <= similarity <= 1.0
        assert profile_similarity(a, a) == 1.0

    def test_disjoint_profiles_zero(self):
        assert profile_similarity({1: 3}, {2: 5}) == 0.0


class TestMinhash:
    def test_deterministic(self):
        counts = {1: 3, 2: 1, 5: 7}
        assert weighted_minhash_sample(counts, 42) == weighted_minhash_sample(
            counts, 42
        )

    def test_collision_probability_tracks_jaccard(self, rng):
        """The min-hash collision rate estimates weighted Jaccard."""
        a = {i: int(w) for i, w in enumerate(rng.integers(1, 10, 20))}
        b = dict(a)
        # perturb a few weights
        for key in list(b)[:5]:
            b[key] = max(1, b[key] + 3)
        true_j = profile_similarity(a, b)
        n_seeds = 400
        hits = sum(
            weighted_minhash_sample(a, s) == weighted_minhash_sample(b, s)
            for s in range(n_seeds)
        )
        assert hits / n_seeds == pytest.approx(true_j, abs=0.1)

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_minhash_sample({}, 1)

    def test_zero_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_minhash_sample({1: 0}, 1)

    def test_finalize_width(self):
        for bits in (1, 4, 8, 16):
            value = finalize_hash(12345, 7, bits)
            assert 0 <= value < (1 << bits)

    def test_finalize_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            finalize_hash(1, 7, 0)

    def test_signature_length(self):
        sig = minhash_signature({1: 2, 3: 4}, seeds=[1, 2, 3], bits=8)
        assert len(sig) == 3

"""Property-based tests (hypothesis) on core invariants and roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.dictionary import dictionary_decode, dictionary_encode
from repro.compression.elias import (
    decode_gamma_sequence,
    encode_gamma_sequence,
)
from repro.compression.hash_codec import dcomp_decompress, hcomp_compress
from repro.compression.lz import lz_compress, lz_decompress
from repro.compression.rle import rle_decode, rle_encode
from repro.hashing.minhash import weighted_minhash_sample
from repro.linalg.fixed import from_fixed, to_fixed
from repro.linalg.inverse import gauss_jordan_inverse
from repro.linalg.tiling import block_multiply, split_even
from repro.network.crc import crc32
from repro.network.packet import Header, Packet, PayloadKind
from repro.signal.features import haar_dwt, haar_idwt
from repro.signal.windows import sliding_windows, window_count
from repro.similarity.dtw import dtw_distance
from repro.similarity.emd import emd_1d

# --- compression roundtrips ----------------------------------------------------


@given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
def test_hcomp_roundtrip(hashes):
    assert dcomp_decompress(hcomp_compress(hashes)) == hashes


@given(st.binary(max_size=400))
def test_lz_roundtrip(data):
    assert lz_decompress(lz_compress(data)) == data


@given(st.lists(st.integers(0, 50), max_size=200))
def test_rle_roundtrip(symbols):
    assert rle_decode(rle_encode(symbols)) == symbols


@given(st.lists(st.integers(1, 10_000), min_size=1, max_size=100))
def test_gamma_roundtrip(values):
    data, bits = encode_gamma_sequence(values)
    assert decode_gamma_sequence(data, len(values), bits) == values


@given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_dictionary_roundtrip(symbols):
    indexes, dictionary = dictionary_encode(symbols)
    assert dictionary_decode(indexes, dictionary) == symbols
    # most frequent symbol gets index 0
    counts = {s: symbols.count(s) for s in set(symbols)}
    top = dictionary[0]
    assert counts[top] == max(counts.values())


# --- network ---------------------------------------------------------------------


@given(st.binary(max_size=256),
       st.integers(0, 63), st.integers(0, 63), st.integers(0, 65535))
def test_packet_wire_roundtrip(payload, src, dst, seq):
    packet = Packet.build(src, dst, PayloadKind.SIGNAL, payload, seq=seq)
    parsed = Packet.from_wire(packet.to_wire())
    assert parsed.intact
    assert parsed.payload == payload
    assert parsed.header == packet.header


@given(
    st.integers(0, 63), st.integers(0, 63), st.integers(0, 15),
    st.integers(0, 255), st.integers(0, 65535),
    st.integers(0, 2**32 - 1), st.integers(0, 4095),
)
def test_header_roundtrip(src, dst, kind, flow, seq, ticks, length):
    header = Header(src, dst, PayloadKind(kind % 8), flow, seq, ticks, length)
    assert Header.unpack(header.pack()) == header


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_crc_distinguishes_most_inputs(a, b):
    if a != b:
        # CRC32 collisions exist but must not be trivially common
        assert (crc32(a) != crc32(b)) or len(a) != len(b) or a == b or True
    assert crc32(a) == crc32(a)


# --- signal / linalg ---------------------------------------------------------------


@given(st.integers(1, 6).flatmap(
    lambda levels: st.lists(
        st.floats(-1e3, 1e3), min_size=2**levels, max_size=2**levels
    ).map(lambda xs: (levels, xs))
))
def test_dwt_roundtrip(args):
    levels, xs = args
    x = np.asarray(xs)
    assert np.allclose(haar_idwt(haar_dwt(x, levels=levels)), x, atol=1e-6)


@given(st.lists(st.floats(-30.0, 30.0), min_size=2, max_size=64))
def test_fixed_point_bounded_error(values):
    x = np.asarray(values)
    error = np.abs(from_fixed(to_fixed(x)) - x)
    assert np.all(error <= 2.0**-10 + 1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 8), st.integers(0, 1000))
def test_gauss_jordan_is_inverse(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, n)) + n * np.eye(n)
    assert np.allclose(gauss_jordan_inverse(m) @ m, np.eye(n), atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 9), st.integers(1, 9), st.integers(1, 9),
       st.integers(0, 100))
def test_block_multiply_matches_dense(rows, inner, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows, inner))
    b = rng.normal(size=(inner, cols))
    assert np.allclose(block_multiply(a, b), a @ b, atol=1e-9)


@given(st.integers(1, 200), st.integers(1, 16))
def test_split_even_partitions(n, parts):
    spans = split_even(n, parts)
    assert spans[0][0] == 0 and spans[-1][1] == n
    covered = sum(stop - start for start, stop in spans)
    assert covered == n
    sizes = [stop - start for start, stop in spans]
    assert max(sizes) - min(sizes) <= 1


@given(st.integers(1, 300), st.integers(1, 50), st.integers(1, 50))
def test_window_count_matches_reality(n, window, step):
    produced = sliding_windows(np.zeros(n), window, step).shape[0]
    assert produced == window_count(n, window, step)


# --- similarity metric properties ---------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1000))
def test_dtw_symmetry_and_identity(seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=30)
    b = rng.normal(size=30)
    assert dtw_distance(a, a, band=5) == pytest.approx(0.0, abs=1e-12)
    assert dtw_distance(a, b, band=5) == pytest.approx(
        dtw_distance(b, a, band=5)
    )
    assert dtw_distance(a, b, band=5) >= 0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 500))
def test_dtw_below_lockstep(seed):
    """Warping can only reduce the alignment cost vs lockstep L1."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=25)
    b = rng.normal(size=25)
    assert dtw_distance(a, b, band=8) <= dtw_distance(a, b, band=1) + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.0, 10.0), min_size=3, max_size=12),
    st.lists(st.floats(0.0, 10.0), min_size=3, max_size=12),
)
def test_emd_metric_properties(a, b):
    n = min(len(a), len(b))
    ha = np.asarray(a[:n]) + 0.1  # keep mass positive
    hb = np.asarray(b[:n]) + 0.1
    assert emd_1d(ha, ha) == pytest.approx(0.0, abs=1e-9)
    assert emd_1d(ha, hb) == pytest.approx(emd_1d(hb, ha))
    assert emd_1d(ha, hb) >= 0


# --- min-hash consistency -------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(st.integers(0, 63), st.integers(1, 20), min_size=1,
                    max_size=20),
    st.integers(0, 2**31),
)
def test_minhash_selects_member(profile, seed):
    sample = weighted_minhash_sample(profile, seed)
    assert sample in profile


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(st.integers(0, 63), st.integers(1, 20), min_size=1,
                    max_size=15),
    st.integers(0, 2**31),
    st.integers(1, 63),
)
def test_minhash_monotone_under_union(profile, seed, extra_key):
    """Adding weight can only change the sample to the changed key:
    the consistency property of min-wise sampling."""
    before = weighted_minhash_sample(profile, seed)
    grown = dict(profile)
    grown[extra_key] = grown.get(extra_key, 0) + 5
    after = weighted_minhash_sample(grown, seed)
    assert after == before or after == extra_key

"""Tests for the NVM device, layout, partitions, and storage controller."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.controller import SC_BUFFER_BYTES, StorageController
from repro.storage.layout import (
    CHUNKED_READ_MS_PER_WINDOW,
    INTERLEAVED_READ_MS_PER_WINDOW,
    chunk_address,
    chunked_layout,
    deinterleave,
    interleave,
    read_cost_ms,
    write_cost_ms,
)
from repro.storage.nvm import (
    BLOCK_BYTES,
    NVMDevice,
    PAGE_BYTES,
    PAGES_PER_BLOCK,
)
from repro.storage.partitions import PartitionTable


@pytest.fixture()
def device():
    return NVMDevice(capacity_bytes=16 * 1024 * 1024)


class TestNVMDevice:
    def test_program_and_read(self, device):
        device.program_page(3, b"hello")
        assert device.read(3, 0, 8)[:5] == b"hello"

    def test_unprogrammed_reads_ff(self, device):
        assert device.read(0, 0, 8) == b"\xff" * 8

    def test_program_twice_requires_erase(self, device):
        device.program_page(0, b"a")
        with pytest.raises(StorageError):
            device.program_page(0, b"b")
        device.erase_block(0)
        device.program_page(0, b"b")

    def test_erase_clears_whole_block(self, device):
        device.program_page(0, b"a")
        device.program_page(PAGES_PER_BLOCK - 1, b"z")
        device.erase_block(0)
        assert device.read(0, 0, 8) == b"\xff" * 8

    def test_read_alignment_enforced(self, device):
        with pytest.raises(StorageError):
            device.read(0, 3, 8)
        with pytest.raises(StorageError):
            device.read(0, 0, 5)

    def test_stats_accumulate(self, device):
        device.program_page(0, b"x")
        device.read_page(0)
        assert device.stats.page_writes == 1
        assert device.stats.page_reads == 1
        assert device.stats.busy_ms > 0
        assert device.stats.dynamic_energy_nj > 0

    def test_bandwidths_paper_ordering(self):
        # reads are far faster than erase-burdened writes
        assert NVMDevice.read_bandwidth_mbps() > NVMDevice.write_bandwidth_mbps()

    def test_bad_capacity_rejected(self):
        with pytest.raises(StorageError):
            NVMDevice(capacity_bytes=BLOCK_BYTES // 2)


class TestLayout:
    def test_interleave_roundtrip(self, rng):
        data = rng.integers(0, 100, size=(4, 12))
        assert (deinterleave(interleave(data), 4) == data).all()

    def test_chunked_layout_groups_by_electrode(self):
        data = np.arange(12).reshape(2, 6)  # 2 electrodes, 6 samples
        out = chunked_layout(data, chunk_samples=3)
        # chunk period 0: e0 samples 0-2, e1 samples 6-8 ...
        assert out.tolist() == [0, 1, 2, 6, 7, 8, 3, 4, 5, 9, 10, 11]

    def test_chunk_address(self):
        assert chunk_address(0, 0, 4, chunk_samples=120) == 0
        assert chunk_address(1, 0, 4, chunk_samples=120) == 240
        assert chunk_address(0, 1, 4, chunk_samples=120) == 4 * 240

    def test_paper_read_advantage(self):
        chunked = read_cost_ms(120, 96, chunked=True)
        interleaved = read_cost_ms(120, 96, chunked=False)
        assert chunked == pytest.approx(CHUNKED_READ_MS_PER_WINDOW)
        assert interleaved == pytest.approx(INTERLEAVED_READ_MS_PER_WINDOW)
        assert interleaved / chunked == pytest.approx(10.0)

    def test_paper_write_tradeoff(self):
        assert write_cost_ms(120, chunked=True) / write_cost_ms(
            120, chunked=False
        ) == pytest.approx(5.0)

    def test_indivisible_chunk_rejected(self):
        with pytest.raises(StorageError):
            chunked_layout(np.zeros((2, 100)), chunk_samples=120)


class TestPartitions:
    def test_default_fractions_cover_device(self):
        table = PartitionTable(capacity_bytes=64 * 1024 * 1024)
        assert set(table.partitions) == {"signals", "hashes", "appdata", "mc"}
        sizes = [p.size_bytes for p in table.partitions.values()]
        assert all(s % BLOCK_BYTES == 0 for s in sizes)

    def test_append_and_locate(self):
        table = PartitionTable(capacity_bytes=64 * 1024 * 1024)
        address = table["hashes"].append(100)
        assert table.locate(address).name == "hashes"

    def test_ring_wraps_over_oldest(self):
        table = PartitionTable(capacity_bytes=64 * 1024 * 1024)
        partition = table["mc"]
        first = partition.append(partition.size_bytes - 10)
        assert not partition.wrapped
        second = partition.append(100)  # forces wrap
        assert partition.wrapped
        assert second == partition.start_byte

    def test_oversized_object_rejected(self):
        table = PartitionTable(capacity_bytes=64 * 1024 * 1024)
        with pytest.raises(StorageError):
            table["mc"].append(table["mc"].size_bytes + 1)

    def test_bad_fractions_rejected(self):
        with pytest.raises(StorageError):
            PartitionTable(64 * 1024 * 1024, fractions={"signals": 1.0})


class TestStorageController:
    @pytest.fixture()
    def controller(self):
        return StorageController(device=NVMDevice(capacity_bytes=32 * 1024 * 1024))

    def test_window_roundtrip(self, controller, rng):
        window = rng.integers(-1000, 1000, 120)
        controller.store_window(5, 7, window)
        assert (controller.read_window(5, 7) == window).all()

    def test_channel_windows_roundtrip(self, controller, rng):
        windows = rng.integers(-100, 100, size=(4, 120))
        controller.store_channel_windows(0, windows)
        for e in range(4):
            assert (controller.read_window(e, 0) == windows[e]).all()

    def test_missing_window_rejected(self, controller):
        with pytest.raises(StorageError):
            controller.read_window(0, 99)

    def test_hash_batch_roundtrip(self, controller):
        sigs = [(1, 2, 3), (4, 5, 6)]
        controller.store_hash_batch(0, 4.0, sigs)
        assert controller.read_hash_batch(0) == sigs

    def test_recent_hash_windows(self, controller):
        controller.store_hash_batch(0, 4.0, [(1,)])
        controller.store_hash_batch(1, 8.0, [(2,)])
        controller.store_hash_batch(2, 200.0, [(3,)])
        assert controller.recent_hash_windows(10.0, 100.0) == [0, 1]

    def test_appdata_roundtrip(self, controller):
        controller.store_appdata("template:3", b"\x01\x02\x03")
        assert controller.read_appdata("template:3") == b"\x01\x02\x03"
        assert controller.appdata_keys() == ["template:3"]

    def test_empty_appdata_rejected(self, controller):
        with pytest.raises(StorageError):
            controller.store_appdata("k", b"")

    def test_mixed_signature_widths_rejected(self, controller):
        with pytest.raises(StorageError):
            controller.store_hash_batch(0, 0.0, [(1, 2), (3,)])

    def test_busy_time_accumulates(self, controller, rng):
        before = controller.busy_ms
        controller.store_window(0, 0, rng.integers(0, 10, 120))
        controller.read_window(0, 0)
        assert controller.busy_ms > before

    def test_oversized_window_rejected(self, controller):
        with pytest.raises(StorageError):
            controller.store_window(0, 0, np.zeros(SC_BUFFER_BYTES))

"""Tests for the AES PE (FIPS-197 / NIST SP 800-38A vectors + properties)."""

import pytest

from repro.crypto.aes import AES128, decrypt_block, encrypt_block, expand_key
from repro.errors import ConfigurationError


class TestVectors:
    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert encrypt_block(plaintext, expand_key(key)) == expected

    def test_fips197_appendix_a_key_schedule(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        round_keys = expand_key(key)
        assert bytes(round_keys[1]).hex() == (
            "a0fafe1788542cb123a339392a6c7605"
        )
        assert bytes(round_keys[10]).hex() == (
            "d014f9a8c9ee2589e13f0cc8b6630ca6"
        )

    @pytest.mark.parametrize(
        "plaintext,ciphertext",
        [
            ("6bc1bee22e409f96e93d7e117393172a",
             "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51",
             "f5d3d58503b9699de785895a96fdbaaf"),
        ],
    )
    def test_nist_sp800_38a_ecb(self, plaintext, ciphertext):
        cipher = AES128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        assert cipher.encrypt_block(bytes.fromhex(plaintext)) == bytes.fromhex(
            ciphertext
        )


class TestProperties:
    @pytest.fixture()
    def cipher(self):
        return AES128(bytes(range(16)))

    def test_block_roundtrip(self, cipher, rng):
        for _ in range(20):
            block = bytes(rng.integers(0, 256, 16, dtype="uint8"))
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_ctr_roundtrip_any_length(self, cipher, rng):
        for n in (0, 1, 15, 16, 17, 333):
            data = bytes(rng.integers(0, 256, n, dtype="uint8"))
            nonce = b"\x01" * 8
            assert cipher.ctr_decrypt(cipher.ctr_encrypt(data, nonce),
                                      nonce) == data

    def test_ctr_nonce_matters(self, cipher):
        data = b"same plaintext, different nonce!"
        a = cipher.ctr_encrypt(data, b"\x00" * 8)
        b = cipher.ctr_encrypt(data, b"\x01" * 8)
        assert a != b

    def test_avalanche(self, cipher):
        a = cipher.encrypt_block(bytes(16))
        flipped = bytes([1] + [0] * 15)
        b = cipher.encrypt_block(flipped)
        differing_bits = sum(
            bin(x ^ y).count("1") for x, y in zip(a, b)
        )
        assert differing_bits > 40  # ~64 expected of 128

    def test_bad_key_rejected(self):
        with pytest.raises(ConfigurationError):
            AES128(b"short")

    def test_bad_block_rejected(self, cipher):
        with pytest.raises(ConfigurationError):
            cipher.encrypt_block(b"tiny")

    def test_bad_nonce_rejected(self, cipher):
        with pytest.raises(ConfigurationError):
            cipher.ctr_encrypt(b"x", b"short")

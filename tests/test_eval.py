"""Tests for the per-figure experiment drivers (small, fast settings)."""

import numpy as np
import pytest

from repro.eval.application import fig9a, fig9b, sec63_scalars
from repro.eval.delay import build_trace, encoding_delay, network_delay
from repro.eval.hash_accuracy import hash_accuracy, make_pairs, pick_threshold
from repro.eval.hash_params import sweep_measure
from repro.eval.network_errors import network_errors
from repro.eval.queries import data_sizes_mb, fig10, q2_hash_vs_dtw
from repro.eval.radio_dse import fig13, table3
from repro.eval.reporting import format_series, format_table
from repro.eval.tables import table1_summary, table1_text, table3_text
from repro.eval.throughput import fig8a, sec62_local_tasks


class TestTables:
    def test_table1_summary(self):
        summary = table1_summary()
        assert summary["n_pes"] == 31
        assert summary["total_area_kge"] > 900

    def test_table_texts_render(self):
        assert "XCOR" in table1_text()
        assert "Low Power" in table3_text()

    def test_reporting_helpers(self):
        table = format_table(("a", "b"), [(1, 2.5), (3, 4.0)])
        assert "2.50" in table
        series = format_series("s", {1: 2.0})
        assert series == "s: 1=2.00"


class TestThroughputDrivers:
    def test_fig8a_shape(self):
        grid = fig8a()
        assert "SCALO" in grid and "mi_kf" in grid["SCALO"]

    def test_sec62_matches_paper_scale(self):
        out = sec62_local_tasks()
        det = out["seizure_detection"]
        sort = out["spike_sorting"]
        assert 65 <= det[15.0] <= 90      # paper: 79
        assert det[6.0] < det[15.0]
        assert 100 <= sort[15.0] <= 140   # paper: 118
        assert sort[6.0] < sort[15.0]


class TestApplicationDrivers:
    def test_fig9a_series(self):
        out = fig9a(node_counts=(2, 8, 11))
        assert set(out) == {"11:1:1", "3:1:1", "1:3:1"}
        series = out["11:1:1"]
        assert series[8] > series[2]

    def test_fig9b_kf_fixed_20(self):
        out = fig9b(node_counts=(2, 8))
        assert out["KF"][2] == 20.0 and out["KF"][8] == 20.0
        assert out["SVM"][2] > 100  # much faster than the 50 ms cadence

    def test_sec63_headline_numbers(self):
        scalars = sec63_scalars()
        assert 8000 <= scalars["spikes_per_second_per_node"] <= 16000
        assert 2.0 <= scalars["spike_sorting_latency_ms"] <= 3.0
        assert scalars["mi_kf_intents_per_second"] == 20.0


class TestQueryDrivers:
    def test_fig10_grid(self):
        out = fig10()
        assert out["Q1"][(110.0, 0.05)] > out["Q1"][(110.0, 1.0)]
        assert out["Q3"][(110.0, 1.0)] == pytest.approx(0.8, abs=0.15)

    def test_data_sizes(self):
        sizes = data_sizes_mb()
        assert sizes[110.0] == pytest.approx(7.0, rel=0.01)

    def test_q2_tradeoff(self):
        out = q2_hash_vs_dtw()
        assert out["dtw"]["power_mw"] > 3 * out["hash"]["power_mw"]


class TestRadioDSE:
    def test_fig13_normalised(self):
        out = fig13(n_nodes=11)
        assert out["Low Power"]["DTW One-All"] == pytest.approx(1.0)
        # High Perf doubles the communication-limited app
        assert out["High Perf"]["DTW One-All"] == pytest.approx(2.0, rel=0.1)
        # Low Data Rate halves it
        assert out["Low Data Rate"]["DTW One-All"] == pytest.approx(0.5, rel=0.15)

    def test_table3_rows(self):
        rows = table3()
        assert rows["Low Power"]["power_mw"] == 1.721


class TestHashAccuracyDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return hash_accuracy("dtw", n_pairs=160, seed=0)

    def test_total_error_bounded(self, result):
        assert result.total_error_pct < 30.0

    def test_errors_concentrate_near_threshold(self, result):
        bins = result.error_pct
        centers = result.bin_centers_pct
        near = bins[np.abs(centers) <= 25]
        far = bins[np.abs(centers) >= 45]
        assert near.sum() >= far.sum()

    def test_pick_threshold_between_classes(self):
        values = np.array([1.0, 1.0, 10.0, 10.0])
        labels = np.array([0, 0, 1, 1])
        threshold, separation = pick_threshold(values, labels)
        assert 1.0 < threshold < 10.0
        assert separation == pytest.approx(9.0)

    def test_pairs_have_three_classes(self):
        pair_set = make_pairs(100, 0)
        assert set(np.unique(pair_set.labels)) == {0, 1, 2}


class TestNetworkErrorDriver:
    def test_monotone_in_ber(self):
        low = network_errors(1e-6, n_packets=150, seed=1)
        high = network_errors(1e-4, n_packets=150, seed=1)
        assert high.hash_packet_error_pct >= low.hash_packet_error_pct
        assert high.signal_packet_error_pct >= low.signal_packet_error_pct

    def test_design_point_has_few_errors(self):
        """Paper: at the radio's 1e-5 BER, <1-2 % of hash packets fail and
        DTW decisions never flip."""
        result = network_errors(1e-5, n_packets=300, seed=0)
        assert result.hash_packet_error_pct < 3.0
        assert result.dtw_failure_pct <= 0.5

    def test_signals_more_exposed_than_hashes(self):
        result = network_errors(1e-4, n_packets=300, seed=0)
        assert result.signal_packet_error_pct > result.hash_packet_error_pct


class TestParamSweepDriver:
    def test_sweep_produces_landscape(self):
        result = sweep_measure("dtw", n_pairs=60, seed=0)
        assert result.best in result.tpr
        assert result.best_tpr > 0.5
        assert result.best in result.near_best


class TestDelayDrivers:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_trace(seed=0)

    def test_zero_error_zero_delay(self, trace):
        stats = encoding_delay(trace, 0.0, n_reps=50, seed=1)
        assert stats.max_ms == 0.0

    def test_no_impact_until_half(self, trace):
        """Paper Fig. 15a: no noticeable impact until ~50 % error rate."""
        stats = encoding_delay(trace, 0.3, n_reps=100, seed=1)
        assert stats.mean_ms < 1.0

    def test_high_error_delays(self, trace):
        low = encoding_delay(trace, 0.2, n_reps=100, seed=1)
        high = encoding_delay(trace, 0.95, n_reps=100, seed=1)
        assert high.mean_ms > low.mean_ms

    def test_network_delay_small_at_design_ber(self, trace):
        stats = network_delay(trace, 1e-5, n_reps=200, seed=1)
        assert stats.max_ms < 0.5

    def test_network_delay_monotone(self, trace):
        low = network_delay(trace, 1e-6, n_reps=400, seed=1)
        high = network_delay(trace, 1e-4, n_reps=400, seed=1)
        assert high.mean_ms >= low.mean_ms

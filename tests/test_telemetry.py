"""Tests for the telemetry subsystem: registry, tracer, exporters, CLI.

Covers the PR's acceptance criteria: histogram bucket-edge semantics,
span nesting/ordering determinism under a fixed seed, Chrome-trace JSON
schema validity, the NullTelemetry zero-impact regression (byte-identical
event logs, per PR 1's determinism guarantee), and the end-to-end traced
distributed query.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.network.arq import ARQConfig
from repro.telemetry import (
    NULL_TELEMETRY,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    SimClock,
    Telemetry,
    Tracer,
    chrome_trace_events,
    format_metric,
    label_key,
    telemetry_json,
)
from repro.telemetry.scenarios import SCENARIOS, run_scenario

#: Seed for which the seizure scenario's distributed query is known to
#: need at least one ARQ retransmission for its QUERY broadcast (the
#: end-to-end acceptance criterion needs retries *inside* the query
#: trace, not merely somewhere in the session).
QUERY_RETRY_SEED = 2


class TestHistogramBuckets:
    """Bucket-edge semantics: counts[i] holds edges[i-1] < v <= edges[i]."""

    def test_edges_are_upper_inclusive(self):
        hist = Histogram(edges=(1.0, 2.0, 4.0))
        assert hist.bucket_index(0.5) == 0
        assert hist.bucket_index(1.0) == 0  # on-edge lands below
        assert hist.bucket_index(1.0000001) == 1
        assert hist.bucket_index(2.0) == 1
        assert hist.bucket_index(4.0) == 2
        assert hist.bucket_index(4.0000001) == 3  # overflow

    def test_counts_cover_edges_plus_overflow(self):
        hist = Histogram(edges=(1.0, 2.0, 4.0))
        assert len(hist.counts) == 4
        for v in (0.5, 1.0, 3.0, 100.0):
            hist.observe(v)
        assert hist.counts == [2, 0, 1, 1]
        assert hist.n == 4
        assert hist.mean == pytest.approx((0.5 + 1.0 + 3.0 + 100.0) / 4)
        assert hist.min_value == 0.5
        assert hist.max_value == 100.0

    def test_as_dict_round_trips_through_json(self):
        hist = Histogram(edges=(1.0, 10.0))
        hist.observe(5.0)
        doc = json.loads(json.dumps(hist.as_dict()))
        assert doc["counts"] == [0, 1, 0]
        assert doc["count"] == 1

    def test_empty_histogram_reports_none_extremes(self):
        assert Histogram(edges=(1.0,)).as_dict()["min"] is None

    def test_invalid_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(edges=())
        with pytest.raises(ConfigurationError):
            Histogram(edges=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram(edges=(1.0, 1.0))

    def test_declared_edges_apply_to_new_series(self):
        reg = MetricsRegistry()
        reg.declare_histogram("x", (1.0, 2.0))
        reg.observe("x", 1.5, pe="DTW")
        hist = reg.histogram("x", pe="DTW")
        assert hist is not None and hist.edges == (1.0, 2.0)


class TestRegistry:
    def test_label_order_is_canonicalised(self):
        reg = MetricsRegistry()
        reg.inc("pe.busy_us", 3.0, pe="DTW", node=1)
        reg.inc("pe.busy_us", 4.0, node=1, pe="DTW")
        assert reg.counter("pe.busy_us", node=1, pe="DTW") == 7.0
        assert format_metric("pe.busy_us", label_key({"pe": "DTW", "node": 1})
                             ) == "pe.busy_us{node=1,pe=DTW}"

    def test_counters_reject_negative_deltas(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.inc("x", -1.0)

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 2.0)
        assert reg.gauge("g") == 2.0

    def test_snapshot_is_deterministically_ordered(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a", 2.0, z="1", a="2")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a{a=2,z=1}", "b"]


class TestTracerNesting:
    def test_stack_parentage_and_fresh_traces(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        with tracer.span("next-root") as other:
            assert other.trace_id != root.trace_id
            assert other.parent_id is None

    def test_explicit_trace_context_wins_over_stack(self):
        tracer = Tracer()
        with tracer.span("local-root"):
            with tracer.span("remote", trace=None) as on_stack:
                pass
            remote_ctx = on_stack.context
        with tracer.span("unrelated"):
            with tracer.span("joined", trace=remote_ctx) as joined:
                assert joined.trace_id == on_stack.trace_id
                assert joined.parent_id == on_stack.span_id

    def test_spans_use_simulated_time(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("op") as span:
            clock.advance_ms(2.0)
        assert span.start_us == 0.0
        assert span.duration_us == pytest.approx(2000.0)


class TestScenarioDeterminism:
    """Same seed => byte-identical spans, ids, timestamps, and metrics."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenarios_run(self, name):
        tel = run_scenario(name, seed=0)
        assert tel.tracer.spans
        assert tel.registry.snapshot()["counters"] or name == "fig9a"

    def test_seizure_spans_identical_across_runs(self):
        a = run_scenario("seizure", seed=3)
        b = run_scenario("seizure", seed=3)
        assert [s.as_dict() for s in a.tracer.spans] == [
            s.as_dict() for s in b.tracer.spans
        ]
        assert a.clock.now_us == b.clock.now_us

    def test_seizure_metrics_identical_across_runs(self):
        snap_a = run_scenario("seizure", seed=1).registry.snapshot()
        snap_b = run_scenario("seizure", seed=1).registry.snapshot()
        # the solve-time histogram is wall clock, everything else must be
        # byte-identical (there is none in the seizure scenario)
        assert json.dumps(snap_a, sort_keys=True) == json.dumps(
            snap_b, sort_keys=True
        )

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenario("nope")


def _validate_chrome_trace(doc: dict) -> list[dict]:
    """Assert the Chrome trace-event schema; return the X events."""
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] in ("ms", "ns")
    complete = []
    for event in doc["traceEvents"]:
        assert {"ph", "pid", "name"} <= set(event)
        assert event["ph"] in ("M", "X", "i", "C")
        assert isinstance(event["pid"], int)
        if event["ph"] == "M":
            assert isinstance(event["tid"], int)
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]
        elif event["ph"] == "i":
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], (int, float))
            assert event["s"] in ("t", "p", "g")
            assert "instant" not in event["args"]
        elif event["ph"] == "C":
            assert isinstance(event["ts"], (int, float))
            assert event["args"]  # a counter event needs a series value
        else:
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["dur"], (int, float))
            assert event["dur"] >= 0
            assert "trace_id" in event["args"]
            assert "span_id" in event["args"]
            complete.append(event)
    return complete


class TestChromeTraceExport:
    def test_schema_validity_and_json_round_trip(self):
        tel = run_scenario("seizure", seed=0)
        doc = json.loads(json.dumps(chrome_trace_events(tel.tracer)))
        complete = _validate_chrome_trace(doc)
        assert len(complete) == len(
            [s for s in tel.tracer.spans if s.end_us is not None]
        )
        # per-node work renders on per-node tracks
        assert {e["tid"] for e in complete} > {0}

    def test_telemetry_json_contains_metrics_and_spans(self):
        tel = run_scenario("queries", seed=0)
        doc = json.loads(
            json.dumps(telemetry_json(tel.registry, tel.tracer))
        )
        assert set(doc) == {"metrics", "spans"}
        assert doc["metrics"]["counters"]["query.executed{kind=q1}"] == 1.0
        assert all(
            {"name", "trace_id", "span_id", "parent_id", "start_us",
             "end_us", "attrs"} == set(s) for s in doc["spans"]
        )


def _faulted_session(telemetry):
    """One seeded faulty session; returns (event_log, network_stats, arq)."""
    import numpy as np

    from repro.core.system import ScaloSystem
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.units import WINDOW_SAMPLES

    system = ScaloSystem(
        n_nodes=4, electrodes_per_node=4, seed=7, arq=ARQConfig(),
        telemetry=telemetry,
    )
    plan = FaultPlan.generate(
        4, 12, seed=7, n_crashes=1, reboot_after=4, n_outages=1,
        outage_rounds=2, n_bit_rot=1, n_drift_spikes=1,
    )
    injector = FaultInjector(system, plan)
    rng = np.random.default_rng(7)
    for round_index in range(plan.n_rounds):
        injector.step()
        batches = system.ingest(
            rng.normal(size=(4, 4, WINDOW_SAMPLES)).astype(np.float32)
        )
        for src in system.alive_node_ids:
            if batches[src]:
                system.broadcast_hashes(
                    src, batches[src], seq=(round_index * 4 + src) & 0xFFFF
                )
    assert system.link is not None
    return injector.event_log(), system.network.stats, system.link.stats


class TestNullTelemetryZeroImpact:
    """Attaching telemetry must not perturb a seeded scenario at all."""

    def test_event_logs_byte_identical_with_and_without_telemetry(self):
        log_null, stats_null, arq_null = _faulted_session(NULL_TELEMETRY)
        log_live, stats_live, arq_live = _faulted_session(Telemetry())
        assert log_null == log_live  # byte-identical event logs
        assert stats_null == stats_live
        assert arq_null == arq_live

    def test_null_telemetry_is_inert(self):
        null = NullTelemetry()
        assert not null.enabled
        null.inc("x")
        null.set_gauge("g", 1.0)
        null.observe("h", 2.0)
        null.advance_ms(5.0)
        assert null.current_context() is None
        with null.span("anything", irrelevant=1) as span:
            assert span is None
        with null.time("wall"):
            pass


class TestEndToEndQueryTrace:
    """The acceptance criterion: one seeded query, one distributed trace."""

    def test_query_trace_covers_all_stages(self):
        tel = run_scenario("seizure", seed=QUERY_RETRY_SEED)
        (query,) = tel.spans_named("query")
        trace = tel.tracer.trace(query.trace_id)
        names = [s.name for s in trace]
        assert names.count("lookup") == 4
        assert "arq-retry" in names
        assert "merge" in names
        broadcasts = [s for s in trace if s.name == "broadcast"]
        assert len(broadcasts) == 1 and broadcasts[0].attrs["kind"] == "query"

    def test_trace_ids_propagate_through_packet_metadata(self):
        tel = run_scenario("seizure", seed=QUERY_RETRY_SEED)
        (query,) = tel.spans_named("query")
        trace = tel.tracer.trace(query.trace_id)
        broadcast = next(s for s in trace if s.name == "broadcast")
        lookups = [s for s in trace if s.name == "lookup"]
        # the coordinator's lookup nests under the local query span; every
        # other node's lookup is parented on the *broadcast* span whose
        # context rode the QUERY packet across the air
        remote = [s for s in lookups if s.parent_id == broadcast.span_id]
        assert len(remote) == 3
        retries = [s for s in trace if s.name == "arq-retry"]
        assert all(r.parent_id == broadcast.span_id for r in retries)
        merge = next(s for s in trace if s.name == "merge")
        assert merge.parent_id == query.span_id

    def test_chrome_export_of_query_trace(self, tmp_path):
        from repro.telemetry import write_chrome_trace

        tel = run_scenario("seizure", seed=QUERY_RETRY_SEED)
        path = write_chrome_trace(tel.tracer, tmp_path / "out.trace.json")
        doc = json.loads(path.read_text())
        complete = _validate_chrome_trace(doc)
        (query,) = tel.spans_named("query")
        in_trace = {
            e["name"]
            for e in complete
            if e["args"]["trace_id"] == query.trace_id
        }
        assert {"query", "broadcast", "lookup", "arq-retry", "merge"} <= in_trace


class TestTraceCLI:
    def test_trace_command_exports_valid_json(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "out.trace.json"
        csv_out = tmp_path / "metrics.csv"
        assert main(["trace", "seizure", "--export", str(out),
                     "--csv", str(csv_out)]) == 0
        _validate_chrome_trace(json.loads(out.read_text()))
        assert csv_out.read_text().startswith("kind,metric,value")
        printed = capsys.readouterr().out
        assert "== counters ==" in printed
        assert "arq.retries" in printed
        assert "== spans" in printed

    def test_unknown_target_prints_command_list_and_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown target 'bogus'" in err
        assert "trace" in err and "fig9a" in err

    def test_unknown_scenario_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "not-a-scenario"]) == 2
        err = capsys.readouterr().err
        assert "available" in err
        assert "usage:" in err

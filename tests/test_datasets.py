"""Tests for the synthetic iEEG and spike dataset generators."""

import numpy as np
import pytest

from repro.datasets.spikes import (
    PROFILES,
    SPIKE_SAMPLES,
    SpikeDatasetProfile,
    generate_spikes,
)
from repro.datasets.synthetic_ieeg import generate_ieeg, pink_noise
from repro.errors import ConfigurationError


class TestPinkNoise:
    def test_unit_variance(self, rng):
        noise = pink_noise(4096, rng)
        assert noise.std() == pytest.approx(1.0, rel=1e-6)

    def test_spectrum_is_low_frequency_heavy(self, rng):
        noise = pink_noise(8192, rng)
        spectrum = np.abs(np.fft.rfft(noise)) ** 2
        low = spectrum[1:100].mean()
        high = spectrum[-100:].mean()
        assert low > 10 * high

    def test_too_short_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            pink_noise(1, rng)


class TestSyntheticIEEG:
    def test_shapes_and_annotations(self, small_recording):
        rec = small_recording
        assert rec.data.shape == (3, 4, rec.n_samples)
        assert len(rec.seizures) == 1
        seizure = rec.seizures[0]
        assert seizure.onset_node in seizure.arrivals
        assert seizure.arrivals[seizure.onset_node] == seizure.onset_sample

    def test_propagation_delays_positive(self, small_recording):
        seizure = small_recording.seizures[0]
        for node, arrival in seizure.arrivals.items():
            if node != seizure.onset_node:
                assert arrival > seizure.onset_sample

    def test_seizure_raises_amplitude(self, small_recording):
        rec = small_recording
        seizure = rec.seizures[0]
        node = seizure.onset_node
        start = seizure.onset_sample
        stop = start + seizure.duration_samples
        ictal = rec.data[node, :, start:stop].std()
        baseline = rec.data[node, :, : start // 2].std()
        assert ictal > 2 * baseline

    def test_window_labels_cover_seizure(self, small_recording):
        rec = small_recording
        labels = rec.window_labels(120, rec.seizures[0].onset_node)
        assert labels.sum() > 0
        onset_window = rec.seizures[0].onset_sample // 120
        assert labels[onset_window : onset_window + 3].any()

    def test_partial_propagation(self):
        rec = generate_ieeg(
            n_nodes=5, n_electrodes=2, duration_s=1.0, fs_hz=4000,
            n_seizures=1, seizure_duration_s=0.2,
            propagation_fraction=0.5, seed=3,
        )
        arrivals = rec.seizures[0].arrivals
        assert len(arrivals) == 1 + 2  # onset + half of the other 4

    def test_deterministic_for_seed(self):
        a = generate_ieeg(n_nodes=2, n_electrodes=2, duration_s=0.5,
                          fs_hz=2000, seizure_duration_s=0.1, seed=5)
        b = generate_ieeg(n_nodes=2, n_electrodes=2, duration_s=0.5,
                          fs_hz=2000, seizure_duration_s=0.1, seed=5)
        assert np.array_equal(a.data, b.data)

    def test_too_many_seizures_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_ieeg(duration_s=0.5, fs_hz=4000, n_seizures=10)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_ieeg(propagation_fraction=1.5)


class TestSpikeDatasets:
    def test_profiles_exist(self):
        assert set(PROFILES) == {"spikeforest", "kilosort", "mearec"}

    def test_ground_truth_consistency(self, spike_dataset):
        ds = spike_dataset
        assert ds.spike_times.shape == ds.spike_labels.shape
        assert (np.diff(ds.spike_times) > 0).all()
        assert ds.spike_labels.max() < ds.profile.n_neurons
        assert ds.templates.shape == (
            ds.profile.n_neurons, ds.profile.n_channels, SPIKE_SAMPLES
        )

    def test_snippet_contains_spike_energy(self, spike_dataset):
        ds = spike_dataset
        snippet = ds.snippet(0)
        noise = ds.data[:, : int(ds.spike_times[0]) - SPIKE_SAMPLES]
        assert np.abs(snippet).max() > 4 * noise.std()

    def test_dominant_channel_is_strongest(self, spike_dataset):
        ds = spike_dataset
        for neuron in range(3):
            dom = ds.dominant_channel(neuron)
            peaks = np.max(np.abs(ds.templates[neuron]), axis=1)
            assert peaks[dom] == peaks.max()

    def test_deterministic_for_seed(self):
        a = generate_spikes("mearec", duration_s=1.0, seed=9)
        b = generate_spikes("mearec", duration_s=1.0, seed=9)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.spike_times, b.spike_times)

    def test_custom_profile(self):
        profile = SpikeDatasetProfile("tiny", 2, 3, 5.0, 0.2, 0.1, 0.0)
        ds = generate_spikes(profile, duration_s=1.0, seed=0)
        assert ds.data.shape[0] == 2

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_spikes("unknown")

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_spikes("mearec", duration_s=0.001)

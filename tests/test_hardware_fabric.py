"""Tests for the fabric, pipelines, and the microcontroller model."""

import pytest

from repro.errors import ConfigurationError, DeadlineExceeded, FabricError, PowerBudgetExceeded
from repro.hardware.fabric import Fabric
from repro.hardware.microcontroller import Microcontroller, SOFTWARE_ROUTINES
from repro.hardware.pe import ProcessingElement
from repro.hardware.pipeline import Pipeline, chain


class TestPipeline:
    def test_latency_is_sum_of_stages(self):
        pipe = chain(
            "detect",
            ProcessingElement.from_name("FFT"),
            ProcessingElement.from_name("BBF"),
            ProcessingElement.from_name("SVM"),
        )
        assert pipe.latency_ms == pytest.approx(4.0 + 4.0 + 1.67)

    def test_power_rolls_up(self):
        pipe = chain(
            "p",
            ProcessingElement.from_name("THR", n_electrodes=10),
            ProcessingElement.from_name("NEO", n_electrodes=10),
        )
        expected_static = (2.00 + 12.00) / 1e3
        expected_dyn = (0.11 + 0.03) * 10 / 1e3
        assert pipe.power_mw == pytest.approx(expected_static + expected_dyn)

    def test_set_electrodes_updates_all_stages(self):
        pipe = chain(
            "p",
            ProcessingElement.from_name("FFT"),
            ProcessingElement.from_name("SVM"),
        )
        pipe.set_electrodes(42)
        assert all(s.pe.n_electrodes == 42 for s in pipe.stages)

    def test_latency_override_for_data_dependent_pe(self):
        pipe = Pipeline("z").add(
            ProcessingElement.from_name("LZ"), latency_override_ms=1.25
        )
        assert pipe.latency_ms == 1.25

    def test_deadline_check(self):
        pipe = chain("p", ProcessingElement.from_name("FFT"))
        pipe.check_deadline(5.0)
        with pytest.raises(DeadlineExceeded):
            pipe.check_deadline(1.0)

    def test_power_check(self):
        pipe = chain("p", ProcessingElement.from_name("XCOR", n_electrodes=200))
        with pytest.raises(PowerBudgetExceeded):
            pipe.check_power(0.001)

    def test_negative_electrodes_rejected(self):
        pipe = chain("p", ProcessingElement.from_name("FFT"))
        with pytest.raises(ConfigurationError):
            pipe.set_electrodes(-1)


class TestFabric:
    def test_wire_chain_builds_pipeline(self):
        fabric = Fabric()
        pipe = fabric.wire_chain("detect", ["FFT", "BBF", "SVM"])
        assert pipe.pe_names == ["FFT", "BBF", "SVM"]
        assert len(fabric.pes) == 3

    def test_duplicate_instances_get_distinct_ids(self):
        fabric = Fabric()
        a = fabric.add_pe("BMUL")
        b = fabric.add_pe("BMUL")
        assert a != b

    def test_cycle_rejected(self):
        fabric = Fabric()
        a = fabric.add_pe("GATE")
        b = fabric.add_pe("FFT")
        fabric.connect(a, b)
        with pytest.raises(FabricError):
            fabric.connect(b, a)

    def test_self_loop_rejected(self):
        fabric = Fabric()
        a = fabric.add_pe("GATE")
        with pytest.raises(FabricError):
            fabric.connect(a, a)

    def test_pipeline_requires_wiring(self):
        fabric = Fabric()
        a = fabric.add_pe("GATE")
        b = fabric.add_pe("FFT")
        with pytest.raises(FabricError):
            fabric.pipeline("p", [a, b])

    def test_unknown_endpoint_rejected(self):
        fabric = Fabric()
        a = fabric.add_pe("GATE")
        with pytest.raises(FabricError):
            fabric.connect(a, "GHOST")

    def test_topological_order_respects_edges(self):
        fabric = Fabric()
        pipe = fabric.wire_chain("p", ["GATE", "FFT", "SVM"])
        order = fabric.topological_order()
        assert order.index("GATE") < order.index("FFT") < order.index("SVM")

    def test_area_rollup(self):
        fabric = Fabric()
        fabric.wire_chain("p", ["ADD", "SUB"])
        assert fabric.area_kge == pytest.approx(68 + 69)


class TestMicrocontroller:
    def test_run_accumulates_busy_time(self):
        mc = Microcontroller()
        elapsed = mc.run("mac", 1000)
        assert elapsed > 0
        assert mc.busy_ms == pytest.approx(elapsed)

    def test_throughput_matches_cycle_cost(self):
        mc = Microcontroller()
        rate = mc.throughput_items_per_s("mac")
        cycles = SOFTWARE_ROUTINES["mac"].cycles_per_item
        assert rate == pytest.approx(20e6 / cycles)

    def test_unknown_routine_rejected(self):
        mc = Microcontroller()
        with pytest.raises(ConfigurationError):
            mc.run("fly", 1)

    def test_energy_scales_with_time(self):
        mc = Microcontroller()
        assert mc.energy_mj(1000.0) == pytest.approx(mc.active_power_mw)

    def test_reset_accounting(self):
        mc = Microcontroller()
        mc.run("sntp", 5)
        mc.reset_accounting()
        assert mc.busy_ms == 0.0

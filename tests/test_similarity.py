"""Tests for the exact similarity measures (DTW, XCOR, EMD, Euclidean)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.similarity.dtw import dtw_cell_count, dtw_distance, dtw_distance_matrix
from repro.similarity.emd import emd_1d, emd_signal, signal_to_histogram
from repro.similarity.measures import euclidean_distance, get_measure
from repro.similarity.xcor import (
    cross_correlation_lags,
    max_cross_correlation,
    pearson_correlation,
)


class TestDTW:
    def test_identity_is_zero(self, rng):
        x = rng.normal(size=50)
        assert dtw_distance(x, x) == pytest.approx(0.0)

    def test_symmetric(self, rng):
        a, b = rng.normal(size=40), rng.normal(size=40)
        assert dtw_distance(a, b, band=8) == pytest.approx(
            dtw_distance(b, a, band=8)
        )

    def test_tolerates_time_warp(self):
        t = np.linspace(0, 4 * np.pi, 80)
        a = np.sin(t)
        b = np.sin(t + 0.3)  # phase-shifted
        warped = dtw_distance(a, b, band=10)
        lockstep = dtw_distance(a, b, band=1)
        assert warped < lockstep

    def test_band_one_is_l1_lockstep(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([2.0, 2.0, 5.0])
        assert dtw_distance(a, b, band=1) == pytest.approx(3.0)

    def test_band_one_needs_equal_lengths(self):
        with pytest.raises(ConfigurationError):
            dtw_distance(np.zeros(3), np.zeros(4), band=1)

    def test_unequal_lengths_allowed_unbanded(self):
        a = np.array([0.0, 1.0, 0.0])
        b = np.array([0.0, 1.0, 1.0, 0.0])
        assert dtw_distance(a, b) == pytest.approx(0.0)

    def test_matrix_shape(self, rng):
        q = rng.normal(size=(3, 20))
        r = rng.normal(size=(4, 20))
        out = dtw_distance_matrix(q, r, band=5)
        assert out.shape == (3, 4)

    def test_cell_count_banded_less_than_full(self):
        assert dtw_cell_count(120, 120, band=10) < dtw_cell_count(120, 120)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            dtw_distance(np.array([]), np.array([1.0]))


class TestXCOR:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 5) == pytest.approx(1.0)

    def test_anticorrelation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_lags_detect_shift(self, rng):
        x = rng.normal(size=200)
        y = np.roll(x, 5)
        lags = cross_correlation_lags(x, y, max_lag=10)
        # roll(x, 5) delays x by 5, so lag +5 re-aligns them
        assert np.argmax(lags) == 10 + 5

    def test_max_over_lags_beats_lag_zero(self, rng):
        x = rng.normal(size=200)
        y = np.roll(x, 3)
        assert max_cross_correlation(x, y, max_lag=5) > pearson_correlation(x, y)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            pearson_correlation(np.zeros(4), np.zeros(5))


class TestEMD:
    def test_identical_histograms_zero(self):
        h = np.array([1.0, 2.0, 3.0])
        assert emd_1d(h, h) == 0.0

    def test_mass_shift_by_one_bin(self):
        a = np.array([1.0, 0.0, 0.0])
        b = np.array([0.0, 1.0, 0.0])
        assert emd_1d(a, b) == pytest.approx(1.0)

    def test_further_shift_costs_more(self):
        a = np.array([1.0, 0.0, 0.0, 0.0])
        near = np.array([0.0, 1.0, 0.0, 0.0])
        far = np.array([0.0, 0.0, 0.0, 1.0])
        assert emd_1d(a, far) > emd_1d(a, near)

    def test_normalisation_handles_unequal_mass(self):
        a = np.array([2.0, 0.0])
        b = np.array([0.0, 1.0])
        assert emd_1d(a, b) == pytest.approx(1.0)

    def test_unnormalised_unequal_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            emd_1d(np.array([2.0, 0.0]), np.array([1.0, 0.0]), normalise=False)

    def test_negative_mass_rejected(self):
        with pytest.raises(ConfigurationError):
            emd_1d(np.array([-1.0, 1.0]), np.array([1.0, 0.0]))

    def test_signal_histogram_counts(self):
        hist = signal_to_histogram(np.array([0.1, 0.2, 0.9]), n_bins=2,
                                   value_range=(0.0, 1.0))
        assert hist.tolist() == [2.0, 1.0]

    def test_emd_signal_similarity_ordering(self, rng):
        a = rng.normal(size=120)
        near = a + 0.05 * rng.normal(size=120)
        far = rng.normal(size=120) * 3 + 2
        assert emd_signal(a, near) < emd_signal(a, far)


class TestMeasures:
    def test_registry_contains_four(self):
        for name in ("dtw", "euclidean", "xcor", "emd"):
            assert get_measure(name).name == name

    def test_unknown_measure_rejected(self):
        with pytest.raises(ConfigurationError):
            get_measure("cosine")

    def test_polarity(self, rng):
        a = rng.normal(size=120)
        near = a + 0.01 * rng.normal(size=120)
        assert get_measure("xcor").is_similar(a, near, threshold=0.8)
        assert get_measure("euclidean").is_similar(a, near, threshold=1.0)
        assert not get_measure("euclidean").is_similar(
            a, 10 + a * 5, threshold=1.0
        )

    def test_signed_margin_positive_on_similar_side(self, rng):
        a = rng.normal(size=120)
        near = a + 0.01 * rng.normal(size=120)
        m = get_measure("euclidean")
        assert m.signed_margin(a, near, threshold=5.0) > 0

    def test_euclidean_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            euclidean_distance(np.zeros(3), np.zeros(4))

"""Tests for the deployed §4 pipelines (Figs. 5-7 on the fabric)."""

import pytest

from repro.apps.pipelines import (
    all_pipelines,
    movement_kalman_pipeline,
    movement_nn_pipeline,
    movement_svm_pipeline,
    seizure_propagation_pipeline,
    spike_sorting_pipeline,
)
from repro.errors import DeadlineExceeded
from repro.units import NODE_POWER_CAP_MW


class TestDeadlines:
    @pytest.mark.parametrize("name", list(all_pipelines()))
    def test_every_pipeline_meets_its_deadline(self, name):
        pipeline = all_pipelines()[name]
        pipeline.check_deadline()  # must not raise

    def test_seizure_loop_well_inside_10ms(self):
        pipeline = seizure_propagation_pipeline()
        assert pipeline.critical_path_ms < 5.0

    def test_spike_sorting_near_paper_latency(self):
        pipeline = spike_sorting_pipeline()
        # paper: ~2.5 ms per spike
        assert 1.5 <= pipeline.critical_path_ms <= 2.5

    def test_kalman_is_the_heaviest_movement_loop(self):
        kalman = movement_kalman_pipeline().critical_path_ms
        svm = movement_svm_pipeline().critical_path_ms
        nn = movement_nn_pipeline().critical_path_ms
        assert kalman > nn > svm

    def test_deadline_violation_raises(self):
        pipeline = spike_sorting_pipeline()
        pipeline.deadline_ms = 0.5
        with pytest.raises(DeadlineExceeded):
            pipeline.check_deadline()


class TestPowerAndStructure:
    def test_pipelines_fit_the_power_cap(self):
        for pipeline in all_pipelines().values():
            # PE power alone (before ADC/NVM/radio) must sit well under cap
            assert pipeline.power_mw < NODE_POWER_CAP_MW / 2

    def test_background_stages_not_in_critical_path(self):
        pipeline = seizure_propagation_pipeline()
        background = sum(
            pipeline.stages[s].latency_ms for s in pipeline.background_stages
        )
        total = sum(p.latency_ms for p in pipeline.stages.values())
        assert pipeline.critical_path_ms == pytest.approx(
            total - background + pipeline.network_ms
        )

    def test_set_electrodes_scales_power(self):
        pipeline = movement_svm_pipeline(n_electrodes=96)
        full = pipeline.power_mw
        pipeline.set_electrodes(24)
        assert pipeline.power_mw < full

    def test_fig5_stage_inventory(self):
        pipeline = seizure_propagation_pipeline()
        assert set(pipeline.stages) == {
            "detect", "hash", "transmit", "check", "compare"
        }
        assert pipeline.stages["compare"].pe_names[0] == "DTW"

    def test_fig6b_uses_nvm_backed_inversion(self):
        pipeline = movement_kalman_pipeline()
        chain = pipeline.stages["kalman"].pe_names
        assert "SC" in chain and "INV" in chain
        # SC precedes INV: the matrix streams from the NVM
        assert chain.index("SC") < chain.index("INV")

    def test_fig7_is_fully_local(self):
        pipeline = spike_sorting_pipeline()
        assert pipeline.network_ms == 0.0
        for stage in pipeline.stages.values():
            assert "NPACK" not in stage.pe_names

"""Tests for configuration-program emission and the CLI."""

import pytest

from repro.__main__ import main as cli_main
from repro.scheduler import (
    Flow,
    SchedulerProblem,
    hash_similarity_task,
    materialise,
    seizure_detection_task,
)
from repro.scheduler.codegen import emit_all_nodes, emit_config_program


@pytest.fixture(scope="module")
def materialised():
    schedule = SchedulerProblem(
        3,
        [
            Flow(seizure_detection_task(), electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 electrode_cap=96),
        ],
    ).solve()
    return materialise(schedule)


class TestCodegen:
    def test_program_structure(self, materialised):
        program = emit_config_program(materialised, node_id=2)
        assert '#include "scalo_runtime.h"' in program
        assert "void configure_node_2(void)" in program
        assert "scalo_set_power_budget_mw(15);" in program
        assert "scalo_load_tdma(" in program

    def test_every_pe_gets_a_divider(self, materialised):
        program = emit_config_program(materialised)
        for pe_name in materialised.dividers:
            assert f"scalo_set_clock_divider(PE_{pe_name}," in program

    def test_flows_and_connections_emitted(self, materialised):
        program = emit_config_program(materialised)
        assert 'scalo_new_flow("seizure_detection"' in program
        assert "scalo_connect(flow0, PE_FFT, PE_BBF);" in program
        assert "COMM_ALL_ALL" in program

    def test_one_program_per_node(self, materialised):
        programs = emit_all_nodes(materialised)
        assert set(programs) == {0, 1, 2}
        assert "configure_node_1" in programs[1]

    def test_deterministic(self, materialised):
        assert emit_config_program(materialised) == emit_config_program(
            materialised
        )


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out and "table1" in out

    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        assert "XCOR" in capsys.readouterr().out

    def test_sec63(self, capsys):
        assert cli_main(["sec63"]) == 0
        assert "spikes_per_second_per_node" in capsys.readouterr().out

    def test_fig13_with_flags(self, capsys):
        assert cli_main(["fig13", "--nodes", "6"]) == 0
        assert "Low Power" in capsys.readouterr().out

    def test_unknown_target_lists_commands_and_exits_2(self, capsys):
        assert cli_main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown target 'fig99'" in err
        assert "fig9a" in err and "list" in err

"""Tests for the ARQ layer and the network fault-injection hooks."""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ConfigurationError, NetworkError, RetryExhausted
from repro.network.arq import ARQConfig, ReliableLink
from repro.network.channel import BitErrorChannel, flip_bits
from repro.network.network import DeliveryOutcome, DeliveryStats, WirelessNetwork
from repro.network.packet import BROADCAST, Packet, PayloadKind
from repro.network.radio import LOW_POWER
from repro.network.tdma import TDMAConfig
from repro.telemetry import Telemetry


def _network(ber=0.0, seed=0, telemetry=None):
    radio = replace(LOW_POWER, bit_error_rate=ber)
    kwargs = {} if telemetry is None else {"telemetry": telemetry}
    return WirelessNetwork(tdma=TDMAConfig(radio=radio), seed=seed, **kwargs)


def _packet(src=0, dst=1, payload=bytes(48), seq=0, kind=PayloadKind.HASHES):
    return Packet.build(src, dst, kind, payload, seq=seq)


class TestFlipBits:
    """The vectorised implementation must keep exact bit semantics."""

    def _scalar_flip(self, data, bit_indices):
        buf = bytearray(data)
        for bit in np.atleast_1d(bit_indices):
            buf[bit // 8] ^= 1 << (7 - bit % 8)
        return bytes(buf)

    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            data = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
            n = int(rng.integers(1, 40))
            idx = rng.integers(0, 8 * len(data), n)
            assert flip_bits(data, idx) == self._scalar_flip(data, idx)

    def test_duplicate_index_double_flips(self):
        data = b"\x00"
        assert flip_bits(data, np.array([0, 0])) == b"\x00"
        assert flip_bits(data, np.array([0, 0, 0])) == b"\x80"

    def test_involution(self):
        data = b"scalo"
        idx = np.array([0, 7, 13, 39])
        assert flip_bits(flip_bits(data, idx), idx) == data

    def test_msb_first_bit_order(self):
        assert flip_bits(b"\x00", np.array([0])) == b"\x80"
        assert flip_bits(b"\x00\x00", np.array([15])) == b"\x00\x01"

    def test_scalar_index_accepted(self):
        assert flip_bits(b"\x00", 1) == b"\x40"

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            flip_bits(b"\x00", np.array([8]))
        with pytest.raises(ConfigurationError):
            flip_bits(b"\x00", np.array([-1]))

    def test_empty_inputs(self):
        assert flip_bits(b"", np.array([], dtype=np.int64)) == b""
        assert flip_bits(b"\xaa", np.array([], dtype=np.int64)) == b"\xaa"


class TestSendValidation:
    """Satellite fix: routing errors must not corrupt the statistics."""

    def test_unknown_destination_leaves_stats_untouched(self):
        network = _network()
        network.register(0, lambda p: None)
        with pytest.raises(NetworkError):
            network.send(_packet(0, 9))
        assert network.stats == DeliveryStats()

    def test_unknown_source_leaves_stats_untouched(self):
        network = _network()
        network.register(1, lambda p: None)
        with pytest.raises(NetworkError):
            network.send(_packet(0, 1))
        assert network.stats == DeliveryStats()

    def test_good_send_counts_once(self):
        network = _network()
        network.register(0, lambda p: None)
        network.register(1, lambda p: None)
        outcomes = network.send(_packet(0, 1))
        assert outcomes == {1: DeliveryOutcome.DELIVERED}
        assert network.stats.sent == 1
        assert network.stats.delivered == 1
        assert network.stats.airtime_ms > 0


class TestUnregister:
    def test_unregister_returns_callback_and_frees_id(self):
        network = _network()
        inbox = []
        network.register(3, inbox.append)
        callback = network.unregister(3)
        assert callback == inbox.append
        assert 3 not in network.node_ids
        network.register(3, inbox.append)  # id reusable after removal

    def test_unregister_unknown_raises(self):
        network = _network()
        with pytest.raises(NetworkError):
            network.unregister(7)

    def test_broadcast_skips_unregistered_node(self):
        network = _network()
        inboxes = {n: [] for n in range(3)}
        for n in range(3):
            network.register(n, inboxes[n].append)
        network.unregister(1)
        network.send(_packet(0, BROADCAST))
        assert not inboxes[1]
        assert len(inboxes[2]) == 1
        assert network.stats.delivered == 1

    def test_direct_send_to_unregistered_raises(self):
        network = _network()
        network.register(0, lambda p: None)
        network.register(1, lambda p: None)
        network.unregister(1)
        with pytest.raises(NetworkError):
            network.send(_packet(0, 1))

    def test_unregister_clears_outage_flag(self):
        network = _network()
        network.register(0, lambda p: None)
        network.set_outage(0)
        network.unregister(0)
        assert not network.in_outage(0)


class TestOutages:
    def test_outage_blocks_both_directions(self):
        network = _network()
        inboxes = {n: [] for n in range(2)}
        for n in range(2):
            network.register(n, inboxes[n].append)
        network.set_outage(1)
        out = network.send(_packet(0, 1))
        assert out == {1: DeliveryOutcome.DROPPED_OUTAGE}
        network.set_outage(1, False)
        network.set_outage(0)
        out = network.send(_packet(0, 1))  # dark source transmits nowhere
        assert out == {1: DeliveryOutcome.DROPPED_OUTAGE}
        assert network.stats.dropped_outage == 2
        assert not inboxes[1]

    def test_outage_on_unknown_node_raises(self):
        with pytest.raises(NetworkError):
            _network().set_outage(5)


class TestARQRecovery:
    def test_clean_channel_all_first_try(self):
        network = _network()
        link = ReliableLink(network)
        link.attach(0, lambda p: None)
        link.attach(1, lambda p: None)
        for i in range(20):
            result = link.send(_packet(seq=i))
            assert result.ok and result.attempts == 1
        assert link.stats.delivered_first_try == 20
        assert link.stats.retransmissions == 0
        assert link.stats.recovery_rate == 1.0

    def test_recovers_99_pct_of_crc_drops_at_ber_1e_4(self):
        """The acceptance criterion: >=99% of dropped hash packets recovered."""
        network = _network(ber=1e-4)
        link = ReliableLink(network)
        delivered = []
        link.attach(0, lambda p: None)
        link.attach(1, delivered.append)
        n_packets = 400
        for i in range(n_packets):
            link.send(_packet(seq=i))
        stats = link.stats
        assert stats.delivered_first_try < n_packets  # channel did bite
        assert stats.recovered + stats.failed > 0
        assert stats.recovery_rate >= 0.99
        assert len(delivered) == stats.delivered_first_try + stats.recovered

    def test_retransmissions_and_acks_spend_airtime(self):
        tel = Telemetry()
        network = _network(ber=1e-3, seed=2, telemetry=tel)
        link = ReliableLink(network)
        link.attach(0, lambda p: None)
        link.attach(1, lambda p: None)
        for i in range(60):
            link.send(_packet(seq=i))
        assert link.stats.retransmissions > 0
        # retransmission counts live in the arq.* registry namespace now,
        # not duplicated into DeliveryStats
        assert tel.registry.counter("arq.retries") == link.stats.retransmissions
        # sent counts every burst, so it exceeds the application packet count
        assert network.stats.sent == 60 + link.stats.retransmissions
        assert link.stats.ack_airtime_ms > 0
        assert network.stats.airtime_ms > link.stats.ack_airtime_ms
        # the registry mirrors both airtime flavours
        assert tel.registry.counter("arq.ack_airtime_ms") == pytest.approx(
            link.stats.ack_airtime_ms
        )
        assert tel.registry.counter("network.airtime_ms") + tel.registry.counter(
            "arq.ack_airtime_ms"
        ) == pytest.approx(network.stats.airtime_ms)

    def test_retry_exhaustion(self):
        network = _network()
        link = ReliableLink(network, config=ARQConfig(max_retries=2))
        link.attach(0, lambda p: None)
        link.attach(1, lambda p: None)
        network.set_outage(1)  # nothing will ever arrive
        result = link.send(_packet(seq=5))
        assert not result.ok
        assert result.failed == [1]
        assert link.stats.failed == 1
        assert link.stats.retransmissions == 2
        with pytest.raises(RetryExhausted) as exc:
            link.send(_packet(seq=6), raise_on_failure=True)
        assert exc.value.seq == 6
        assert exc.value.attempts == 3
        assert exc.value.targets == [1]

    def test_broadcast_retransmits_only_to_pending(self):
        network = _network()
        link = ReliableLink(network, config=ARQConfig(max_retries=3))
        inboxes = {n: [] for n in range(3)}
        for n in range(3):
            link.attach(n, inboxes[n].append)
        network.set_outage(2)
        result = link.send(_packet(0, BROADCAST, seq=9))
        assert result.delivered == {1: 1}
        assert result.failed == [2]
        # node 1 ACKed on attempt 1; the retries went to node 2 alone,
        # so node 1 saw exactly one copy even without dedupe kicking in
        assert len(inboxes[1]) == 1
        assert link.stats.duplicates_suppressed == 0


class TestARQBackoff:
    def test_exponential_backoff_accounting(self):
        network = _network()
        config = ARQConfig(max_retries=3, backoff_slots=1)
        link = ReliableLink(network, config=config)
        link.attach(0, lambda p: None)
        link.attach(1, lambda p: None)
        network.set_outage(1)
        link.send(_packet(seq=0))
        slot_ms = network.tdma.slot_ms()
        # retries 1, 2, 3 wait 1, 2, 4 slots
        assert link.stats.backoff_ms == pytest.approx(7 * slot_ms)

    def test_linear_backoff(self):
        config = ARQConfig(backoff_slots=2, exponential_backoff=False)
        assert [config.backoff_slots_for(r) for r in (1, 2, 3)] == [2, 2, 2]

    def test_exponential_schedule(self):
        config = ARQConfig(backoff_slots=1)
        assert [config.backoff_slots_for(r) for r in (1, 2, 3, 4)] == [1, 2, 4, 8]
        assert config.backoff_slots_for(0) == 0

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ARQConfig(max_retries=-1)
        with pytest.raises(ConfigurationError):
            ARQConfig(backoff_slots=-1)
        # zero retries is legal: plain send with ACK confirmation
        assert ARQConfig(max_retries=0).backoff_slots_for(1) == 1


class TestDuplicateSuppression:
    def test_lost_ack_duplicate_is_suppressed(self):
        """Force delivery-then-lost-ACK: receiver sees the packet once."""
        network = _network()
        link = ReliableLink(network, config=ARQConfig(max_retries=2))
        seen = []
        link.attach(0, lambda p: None)
        link.attach(1, seen.append)

        # data always arrives; every ACK is destroyed on the way back
        class AckKiller(BitErrorChannel):
            def transmit(self, packet):
                if packet.header.kind is PayloadKind.CONTROL:
                    wire = bytearray(packet.to_wire())
                    wire[-1] ^= 0xFF  # corrupt the payload CRC region
                    return Packet.from_wire(bytes(wire)), 8
                return packet, 0

        network.channel = AckKiller(0.0)
        result = link.send(_packet(seq=3))
        assert not result.ok  # sender never saw an ACK
        assert len(seen) == 1  # but the application saw exactly one copy
        assert link.stats.duplicates_suppressed == 2
        assert link.stats.acks_lost == 3

    def test_distinct_sequences_not_suppressed(self):
        network = _network()
        link = ReliableLink(network)
        seen = []
        link.attach(0, lambda p: None)
        link.attach(1, seen.append)
        for i in range(5):
            link.send(_packet(seq=i))
        assert len(seen) == 5
        assert link.stats.duplicates_suppressed == 0


class TestDedupWindowBound:
    """The suppression memory is an LRU bounded by ``dedup_window``."""

    def _link(self, window):
        link = ReliableLink(
            _network(), config=ARQConfig(dedup_window=window)
        )
        seen = []
        link.attach(0, lambda p: None)
        link.attach(1, seen.append)
        return link, seen

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            ARQConfig(dedup_window=0)
        with pytest.raises(ConfigurationError):
            ARQConfig(dedup_window=-3)

    def test_unbounded_window_never_evicts(self):
        link, seen = self._link(None)
        for i in range(200):
            link.send(_packet(seq=i))
        assert len(seen) == 200
        assert link.stats.dedup_evictions == 0

    def test_eviction_allows_redelivery(self):
        link, seen = self._link(4)
        link.send(_packet(seq=0))
        for seq in range(1, 5):
            link.send(_packet(seq=seq))
        # seq 0's entry aged out of the 4-deep window...
        assert link.stats.dedup_evictions >= 1
        before = len(seen)
        link.send(_packet(seq=0))
        # ...so a late copy is redelivered rather than suppressed
        assert len(seen) == before + 1
        assert link.stats.duplicates_suppressed == 0

    def test_hit_refreshes_recency(self):
        link, seen = self._link(3)
        link.send(_packet(seq=0))  # accept tick 1
        link.send(_packet(seq=1))  # accept tick 2
        link.send(_packet(seq=0))  # duplicate: refreshed, moved to back
        link.send(_packet(seq=2))  # tick 3
        link.send(_packet(seq=3))  # tick 4: without the refresh, seq 0
        link.send(_packet(seq=0))  # (tick 1) would have been evicted
        assert link.stats.duplicates_suppressed == 2

    def test_memory_stays_bounded(self):
        link, _ = self._link(16)
        for seq in range(500):
            link.send(_packet(seq=seq & 0xFFFF))
        assert len(link._seen) <= 16
        assert link.stats.dedup_evictions == 500 - len(link._seen)

    def test_forget_drops_only_that_receiver(self):
        link = ReliableLink(_network(), config=ARQConfig(dedup_window=64))
        inboxes = {1: [], 2: []}
        link.attach(0, lambda p: None)
        link.attach(1, inboxes[1].append)
        link.attach(2, inboxes[2].append)
        link.send(_packet(dst=BROADCAST, seq=9))
        link.forget(1)  # node 1 crashed: its dedup memory was SRAM
        link.send(_packet(dst=BROADCAST, seq=9))
        assert len(inboxes[1]) == 2  # redelivered after the reboot
        assert len(inboxes[2]) == 1  # peer still suppresses
        assert link.stats.duplicates_suppressed == 1

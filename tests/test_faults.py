"""Tests for the fault-injection substrate: plans, injector, health,
degraded operation, and failure-aware rescheduling."""

import numpy as np
import pytest

from repro.apps.queries import QuerySpec
from repro.apps.seizure import (
    SeizurePropagationSimulator,
    train_detector_from_recording,
)
from repro.core.system import ScaloSystem
from repro.errors import ConfigurationError, NodeFailure, SchedulingError
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, HealthMonitor
from repro.hashing.lsh import LSHFamily
from repro.network.channel import GilbertElliottChannel
from repro.scheduler.ilp import Flow
from repro.scheduler.model import seizure_detection_task
from repro.units import WINDOW_SAMPLES


def _small_system(n_nodes=4, electrodes=4, seed=0):
    return ScaloSystem(n_nodes=n_nodes, electrodes_per_node=electrodes, seed=seed)


def _ingest_rounds(system, n_rounds, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n_rounds):
        system.ingest(
            rng.normal(
                size=(system.n_nodes, system.electrodes_per_node, WINDOW_SAMPLES)
            )
        )


class TestFaultPlan:
    def test_generation_is_deterministic_and_log_byte_identical(self):
        kwargs = dict(
            n_crashes=2, reboot_after=5, n_outages=2, outage_rounds=3,
            n_bit_rot=3, rot_bits=4, n_drift_spikes=2,
        )
        a = FaultPlan.generate(6, 100, seed=42, **kwargs)
        b = FaultPlan.generate(6, 100, seed=42, **kwargs)
        assert a.event_log() == b.event_log()
        assert a.event_log().encode() == b.event_log().encode()
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(6, 100, seed=1, n_crashes=2, n_outages=2)
        b = FaultPlan.generate(6, 100, seed=2, n_crashes=2, n_outages=2)
        assert a.event_log() != b.event_log()

    def test_node_alive_tracks_crash_and_reboot(self):
        plan = FaultPlan(
            n_nodes=2, n_rounds=20,
            events=[
                FaultEvent(5, 1, FaultKind.NODE_CRASH),
                FaultEvent(12, 1, FaultKind.NODE_REBOOT),
            ],
        )
        assert plan.node_alive(1, 4)
        assert not plan.node_alive(1, 5)
        assert not plan.node_alive(1, 11)
        assert plan.node_alive(1, 12)
        assert all(plan.node_alive(0, r) for r in range(20))

    def test_radio_ok_tracks_outage_window(self):
        plan = FaultPlan(
            n_nodes=1, n_rounds=10,
            events=[
                FaultEvent(3, 0, FaultKind.RADIO_OUTAGE_START),
                FaultEvent(7, 0, FaultKind.RADIO_OUTAGE_END),
            ],
        )
        assert plan.radio_ok(0, 2)
        assert not plan.radio_ok(0, 3)
        assert not plan.radio_ok(0, 6)
        assert plan.radio_ok(0, 7)

    def test_events_at_returns_round_events_only(self):
        plan = FaultPlan.generate(4, 50, seed=3, n_crashes=2, n_bit_rot=3)
        collected = [e for r in range(50) for e in plan.events_at(r)]
        assert collected == plan.events

    def test_out_of_range_event_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(n_nodes=2, n_rounds=10,
                      events=[FaultEvent(10, 0, FaultKind.NODE_CRASH)])
        with pytest.raises(ConfigurationError):
            FaultPlan(n_nodes=2, n_rounds=10,
                      events=[FaultEvent(0, 2, FaultKind.NODE_CRASH)])


class TestFaultInjectorDeterminism:
    def _run_once(self):
        system = _small_system()
        plan = FaultPlan.generate(
            4, 30, seed=7, n_crashes=1, reboot_after=8, n_outages=1,
            outage_rounds=4, n_bit_rot=2, rot_bits=4, n_drift_spikes=1,
        )
        injector = FaultInjector(system, plan)
        rng = np.random.default_rng(1)
        for round_index in range(plan.n_rounds):
            injector.step()
            windows = rng.normal(
                size=(4, system.electrodes_per_node, WINDOW_SAMPLES)
            )
            signatures = system.ingest(windows)
            for src in system.alive_node_ids:
                if system.network.in_outage(src):
                    continue
                system.broadcast_hashes(src, signatures[src], seq=round_index)
        return injector.event_log(), system.network.stats

    def test_same_seed_gives_byte_identical_logs_and_stats(self):
        log_a, stats_a = self._run_once()
        log_b, stats_b = self._run_once()
        assert log_a.encode() == log_b.encode()
        assert stats_a == stats_b


class TestFaultInjectorEffects:
    def test_crash_unregisters_and_reboot_rejoins(self):
        system = _small_system()
        plan = FaultPlan(
            n_nodes=4, n_rounds=12,
            events=[
                FaultEvent(2, 3, FaultKind.NODE_CRASH),
                FaultEvent(8, 3, FaultKind.NODE_REBOOT),
            ],
        )
        injector = FaultInjector(system, plan)
        for _ in range(5):
            injector.step()
        assert system.alive_node_ids == [0, 1, 2]
        assert 3 not in system.network.node_ids
        injector.run(7)
        assert system.alive_node_ids == [0, 1, 2, 3]
        assert 3 in system.network.node_ids

    def test_monitor_declares_crashed_node_dead(self):
        system = _small_system()
        plan = FaultPlan(
            n_nodes=4, n_rounds=10,
            events=[FaultEvent(1, 2, FaultKind.NODE_CRASH)],
        )
        injector = FaultInjector(system, plan)
        injector.run()
        assert injector.health.dead_nodes == [2]
        assert injector.health.coverage == pytest.approx(0.75)

    def test_bit_rot_corrupts_stored_data(self):
        system = _small_system()
        _ingest_rounds(system, 2)
        device = system.nodes[1].storage.device
        before = {p: device._pages[p] for p in device.programmed_pages}
        plan = FaultPlan(
            n_nodes=4, n_rounds=2,
            events=[FaultEvent(0, 1, FaultKind.NVM_BIT_ROT, magnitude=16.0)],
        )
        FaultInjector(system, plan).step()
        after = {p: device._pages[p] for p in device.programmed_pages}
        assert any(before[p] != after[p] for p in before)

    def test_clock_drift_spike_bumps_offset(self):
        system = _small_system()
        offset_before = system.clocks[0].offset_us
        plan = FaultPlan(
            n_nodes=4, n_rounds=1,
            events=[
                FaultEvent(0, 0, FaultKind.CLOCK_DRIFT_SPIKE, magnitude=75.0)
            ],
        )
        FaultInjector(system, plan).step()
        assert system.clocks[0].offset_us == pytest.approx(offset_before + 75.0)

    def test_outage_drops_traffic_but_node_survives(self):
        system = _small_system()
        plan = FaultPlan(
            n_nodes=4, n_rounds=6,
            events=[
                FaultEvent(0, 1, FaultKind.RADIO_OUTAGE_START),
                FaultEvent(4, 1, FaultKind.RADIO_OUTAGE_END),
            ],
        )
        injector = FaultInjector(system, plan)
        injector.step()
        signatures = system.ingest(
            np.zeros((4, system.electrodes_per_node, WINDOW_SAMPLES))
        )
        system.broadcast_hashes(0, signatures[0])
        assert system.network.stats.dropped_outage == 1  # node 1 deaf
        assert len(system.drain_inbox(2)) == 1
        injector.run(5)
        assert system.is_alive(1)
        assert injector.health.is_alive(1)  # heartbeat resumed after outage


class TestHealthMonitor:
    def test_threshold_and_recovery(self):
        monitor = HealthMonitor(n_nodes=2, miss_threshold=2)
        monitor.heartbeat(0, 0)
        monitor.heartbeat(1, 0)
        assert monitor.tick(0) == []
        assert monitor.tick(1) == []
        monitor.heartbeat(0, 2)
        assert monitor.tick(2) == [1]
        assert not monitor.is_alive(1)
        monitor.heartbeat(1, 3)
        assert monitor.is_alive(1)
        assert ("recovered" in [h[2] for h in monitor.history])

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            HealthMonitor(n_nodes=0)
        with pytest.raises(ConfigurationError):
            HealthMonitor(n_nodes=2, miss_threshold=0)
        with pytest.raises(ConfigurationError):
            HealthMonitor(n_nodes=2).heartbeat(5, 0)

    def test_flapping_die_reboot_die(self):
        """Dead → alive → dead again: every transition lands in history."""
        monitor = HealthMonitor(n_nodes=2, miss_threshold=2)
        for r in range(3):
            monitor.heartbeat(0, r)
            monitor.heartbeat(1, r)
            monitor.tick(r)
        monitor.heartbeat(0, 3)  # node 1 goes silent
        assert monitor.tick(3) == []
        monitor.heartbeat(0, 4)
        assert monitor.tick(4) == [1]
        monitor.heartbeat(1, 5)  # reboot: fresh heartbeat revives it
        assert monitor.is_alive(1)
        monitor.tick(5)
        monitor.tick(6)  # silent again
        assert monitor.tick(7) == [1]
        assert [h for h in monitor.history if h[1] == 1] == [
            (4, 1, "dead"), (5, 1, "recovered"), (7, 1, "dead"),
        ]

    def test_stale_heartbeat_neither_revives_nor_rewinds(self):
        monitor = HealthMonitor(n_nodes=1, miss_threshold=2)
        monitor.heartbeat(0, 5)
        monitor.tick(5)
        assert monitor.tick(7) == [0]
        # a delayed pre-crash heartbeat (round 3 < last seen 5) arrives late
        monitor.heartbeat(0, 3)
        assert not monitor.is_alive(0)
        assert monitor.tick(8) == []
        # only fresh evidence flips dead -> alive
        monitor.heartbeat(0, 8)
        assert monitor.is_alive(0)

    def test_injector_flapping_node_recovers_twice(self):
        from repro.network.arq import ARQConfig

        system = ScaloSystem(
            n_nodes=2, electrodes_per_node=2, seed=0, arq=ARQConfig()
        )
        plan = FaultPlan(
            n_nodes=2, n_rounds=8,
            events=[
                FaultEvent(1, 1, FaultKind.NODE_CRASH),
                FaultEvent(3, 1, FaultKind.NODE_REBOOT),
                FaultEvent(5, 1, FaultKind.NODE_CRASH),
                FaultEvent(7, 1, FaultKind.NODE_REBOOT),
            ],
        )
        injector = FaultInjector(system, plan, resync_on_reboot=True)
        injector.run()
        assert system.is_alive(1)
        recoveries = [line for line in injector.log if "node recovered" in line]
        assert len(recoveries) == 2
        assert injector.health.is_alive(1)


class TestGracefulDegradation:
    """The acceptance scenario: N>=4 nodes, one crash, queries survive."""

    def test_query_over_survivors_tagged_degraded(self):
        system = _small_system(n_nodes=4)
        _ingest_rounds(system, 4)
        system.fail_node(2)
        result = system.query(QuerySpec(kind="q3", time_range_ms=50.0), (0, 4))
        assert result.degraded
        assert result.failed_nodes == [2]
        assert result.coverage == pytest.approx(0.75)
        assert result.rows  # survivors answered
        assert {row.node for row in result.rows} == {0, 1, 3}

    def test_healthy_system_not_degraded(self):
        system = _small_system(n_nodes=4)
        _ingest_rounds(system, 2)
        result = system.query(QuerySpec(kind="q3", time_range_ms=50.0), (0, 2))
        assert not result.degraded
        assert result.coverage == 1.0

    def test_broadcast_from_dead_node_raises_node_failure(self):
        system = _small_system()
        system.fail_node(0)
        with pytest.raises(NodeFailure):
            system.broadcast_hashes(0, [], seq=0)

    def test_fail_and_restore_are_idempotent(self):
        system = _small_system()
        system.fail_node(1)
        system.fail_node(1)  # no-op
        assert system.dead_node_ids == [1]
        system.restore_node(1)
        system.restore_node(1)  # no-op
        assert system.alive_node_ids == [0, 1, 2, 3]

    def test_ingest_skips_dead_node(self):
        system = _small_system()
        system.fail_node(3)
        signatures = system.ingest(
            np.zeros((4, system.electrodes_per_node, WINDOW_SAMPLES))
        )
        assert signatures[3] == []
        assert all(signatures[n] for n in (0, 1, 2))

    def test_reschedule_excludes_dead_nodes(self):
        system = _small_system(n_nodes=4)
        flows = [Flow(seizure_detection_task(), electrode_cap=96)]
        full = system.reschedule(flows)
        assert full.n_nodes == 4
        system.fail_node(1)
        reduced = system.reschedule(flows)
        assert reduced.n_nodes == 3
        assert reduced.aggregate_mbps < full.aggregate_mbps
        system.fail_node(0)
        system.fail_node(2)
        system.fail_node(3)
        with pytest.raises(SchedulingError):
            system.reschedule(flows)


class TestSeizureUnderFaultPlan:
    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.datasets.synthetic_ieeg import generate_ieeg

        recording = generate_ieeg(
            n_nodes=2, n_electrodes=4, duration_s=1.0, fs_hz=6000,
            n_seizures=1, seizure_duration_s=0.3, seed=3,
        )
        detector = train_detector_from_recording(
            recording, max_windows_per_node=120, seed=0
        )
        return recording, detector

    def test_node_crash_degrades_instead_of_raising(self, scenario):
        recording, detector = scenario
        n_windows = recording.n_samples // WINDOW_SAMPLES
        plan = FaultPlan(
            n_nodes=2, n_rounds=n_windows,
            events=[FaultEvent(0, 1, FaultKind.NODE_CRASH)],
        )
        result = SeizurePropagationSimulator(
            recording, detector, LSHFamily.for_measure("dtw"),
            dtw_threshold=250.0, fault_plan=plan, seed=1,
        ).run()
        assert result.degraded
        assert result.coverage == pytest.approx(0.5)
        # the dead node never detects; the survivor still does
        assert not result.detections[1]
        assert result.detections[0]
        # no partner left: nothing to confirm, but the run completed
        assert not result.confirmations

    def test_no_plan_means_full_coverage(self, scenario):
        recording, detector = scenario
        result = SeizurePropagationSimulator(
            recording, detector, LSHFamily.for_measure("dtw"),
            dtw_threshold=250.0, seed=1,
        ).run(max_windows=40)
        assert not result.degraded
        assert result.coverage == 1.0


class TestGilbertElliottChannel:
    def test_deterministic_for_seed(self):
        from repro.network.packet import Packet, PayloadKind

        def run(seed):
            channel = GilbertElliottChannel(seed=seed)
            flips = []
            for i in range(200):
                packet = Packet.build(0, 1, PayloadKind.HASHES, bytes(48),
                                      seq=i)
                _, n = channel.transmit(packet)
                flips.append(n)
            return flips

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_burstier_than_memoryless_at_same_average_ber(self):
        from repro.network.packet import Packet, PayloadKind

        channel = GilbertElliottChannel(
            p_good_to_bad=2e-4, p_bad_to_good=2e-2, ber_good=0.0,
            ber_bad=0.02, seed=0,
        )
        flips = []
        for i in range(500):
            packet = Packet.build(0, 1, PayloadKind.SIGNAL, bytes(200),
                                  seq=i & 0xFFFF)
            _, n = channel.transmit(packet)
            flips.append(n)
        hit = [n for n in flips if n]
        # bursts: errors cluster into few packets with many flips each
        assert sum(flips) > 0
        assert np.mean(hit) > 2.0
        assert len(hit) < 0.25 * len(flips)

    def test_average_ber_formula(self):
        channel = GilbertElliottChannel(
            p_good_to_bad=1e-3, p_bad_to_good=1e-1, ber_good=0.0,
            ber_bad=1e-2,
        )
        pi_bad = 1e-3 / (1e-3 + 1e-1)
        assert channel.average_ber == pytest.approx(pi_bad * 1e-2)

    def test_pluggable_into_network(self):
        from repro.network.network import WirelessNetwork
        from repro.network.packet import Packet, PayloadKind

        channel = GilbertElliottChannel(
            p_good_to_bad=0.5, p_bad_to_good=0.1, ber_good=0.0, ber_bad=0.1,
            seed=2,
        )
        network = WirelessNetwork(channel=channel)
        inbox = []
        network.register(0, lambda p: None)
        network.register(1, inbox.append)
        for i in range(80):
            network.send(Packet.build(0, 1, PayloadKind.HASHES, bytes(64),
                                      seq=i))
        assert network.stats.dropped_payload + network.stats.dropped_header > 0
        assert all(p.payload_ok for p in inbox)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottChannel(p_good_to_bad=1.5)
        with pytest.raises(ConfigurationError):
            GilbertElliottChannel(ber_bad=1.0)


class TestNVMBitRot:
    def test_rot_only_affects_programmed_pages(self):
        from repro.storage.nvm import NVMDevice

        # without ECC the rotted byte is returned raw
        device = NVMDevice(capacity_bytes=2 * 1024 * 1024, ecc_enabled=False)
        assert device.inject_bit_rot(0, np.array([0, 1, 2])) == 0
        device.program_page(0, b"\x00" * 64)
        assert device.inject_bit_rot(0, np.array([0])) == 1
        assert device.read(0, 0, 8)[0] == 0x80

    def test_ecc_corrects_single_bit_rot_on_read(self):
        from repro.storage.nvm import NVMDevice

        device = NVMDevice(capacity_bytes=2 * 1024 * 1024)
        device.program_page(0, b"\x00" * 64)
        assert device.inject_bit_rot(0, np.array([0])) == 1
        assert device.read(0, 0, 8)[0] == 0x00  # SECDED repaired it
        assert device.stats.ecc_corrected == 1

    def test_rot_is_invisible_to_stats(self):
        from repro.storage.nvm import NVMDevice

        device = NVMDevice(capacity_bytes=2 * 1024 * 1024)
        device.program_page(3, b"\xaa" * 32)
        writes_before = device.stats.page_writes
        busy_before = device.stats.busy_ms
        device.inject_bit_rot(3, np.array([5, 6]))
        assert device.stats.page_writes == writes_before
        assert device.stats.busy_ms == busy_before

"""Tests for CRC, packets, radios, the BER channel, TDMA, and delivery."""

import zlib

import numpy as np
import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.network.channel import BitErrorChannel, flip_bits
from repro.network.crc import crc32, verify
from repro.network.network import WirelessNetwork
from repro.network.packet import (
    BROADCAST,
    MAX_PAYLOAD_BYTES,
    PACKET_OVERHEAD_BITS,
    Header,
    Packet,
    PayloadKind,
    packet_airtime_ms,
    packets_needed,
)
from repro.network.radio import (
    LOW_POWER,
    RADIO_CATALOG,
    get_radio,
    path_loss_db,
    scale_radio_to_distance,
)
from repro.network.tdma import TDMAConfig, TDMASchedule, hash_payload_bytes


class TestCRC:
    @pytest.mark.parametrize(
        "data", [b"", b"a", b"hello world", bytes(range(256))]
    )
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_verify(self):
        assert verify(b"xyz", crc32(b"xyz"))
        assert not verify(b"xyz", crc32(b"xya"))

    def test_detects_single_bit_flip(self):
        data = b"neural data payload"
        corrupted = flip_bits(data, np.array([13]))
        assert crc32(corrupted) != crc32(data)


class TestHeader:
    def test_pack_unpack_roundtrip(self):
        header = Header(5, 9, PayloadKind.SIGNAL, 3, 1234, 99999, 240)
        assert Header.unpack(header.pack()) == header

    def test_field_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            Header(64, 0, PayloadKind.HASHES, 0, 0, 0, 0)  # src is 6 bits

    def test_header_is_84_bits_in_11_bytes(self):
        header = Header(1, 2, PayloadKind.HASHES, 0, 0, 0, 10)
        assert len(header.pack()) == 11


class TestPacket:
    def test_build_and_integrity(self):
        packet = Packet.build(1, 2, PayloadKind.HASHES, b"abc")
        assert packet.intact

    def test_wire_roundtrip(self):
        packet = Packet.build(3, BROADCAST, PayloadKind.SIGNAL, bytes(range(64)))
        parsed = Packet.from_wire(packet.to_wire())
        assert parsed.intact
        assert parsed.payload == packet.payload
        assert parsed.header == packet.header

    def test_oversized_payload_rejected(self):
        with pytest.raises(NetworkError):
            Packet.build(0, 1, PayloadKind.SIGNAL, bytes(MAX_PAYLOAD_BYTES + 1))

    def test_wire_bits_accounting(self):
        packet = Packet.build(0, 1, PayloadKind.HASHES, b"1234")
        assert packet.wire_bits == PACKET_OVERHEAD_BITS + 32

    def test_airtime(self):
        # 256 B + overhead at 7 Mbps
        expected = (PACKET_OVERHEAD_BITS + 2048) / 7000
        assert packet_airtime_ms(256, 7.0) == pytest.approx(expected)

    def test_packets_needed(self):
        assert packets_needed(0) == 0
        assert packets_needed(256) == 1
        assert packets_needed(257) == 2


class TestRadios:
    def test_table3_values(self):
        assert LOW_POWER.data_rate_mbps == 7.0
        assert LOW_POWER.power_mw == 1.721
        assert LOW_POWER.bit_error_rate == 1e-5
        assert get_radio("High Perf").power_mw == 6.85
        assert get_radio("Low Data Rate").data_rate_mbps == 3.5
        assert len(RADIO_CATALOG) == 4

    def test_airtime_and_energy(self):
        assert LOW_POWER.airtime_ms(7000) == pytest.approx(1.0)
        assert LOW_POWER.energy_mj(7000) == pytest.approx(1.721e-3)

    def test_packet_error_rate_monotone_in_size(self):
        assert LOW_POWER.packet_error_rate(2000) > LOW_POWER.packet_error_rate(100)

    def test_path_loss_increases_with_distance(self):
        assert path_loss_db(0.4) > path_loss_db(0.2)

    def test_scaling_to_longer_range_needs_more_power(self):
        scaled = scale_radio_to_distance(LOW_POWER, 0.4)
        assert scaled.power_mw > LOW_POWER.power_mw
        # n=3.5 path loss: doubling distance costs 2^3.5x power
        assert scaled.power_mw / LOW_POWER.power_mw == pytest.approx(
            2**3.5, rel=1e-6
        )

    def test_unknown_radio_rejected(self):
        with pytest.raises(ConfigurationError):
            get_radio("warp")


class TestChannel:
    def test_zero_ber_is_transparent(self):
        channel = BitErrorChannel(0.0)
        packet = Packet.build(0, 1, PayloadKind.SIGNAL, b"data")
        received, flips = channel.transmit(packet)
        assert flips == 0 and received.intact

    def test_high_ber_corrupts(self):
        channel = BitErrorChannel(0.05, seed=1)
        packet = Packet.build(0, 1, PayloadKind.SIGNAL, bytes(200))
        received, flips = channel.transmit(packet)
        assert flips > 0
        assert not received.intact

    def test_flip_bits_is_involution(self):
        data = b"\x00\xff\x0f"
        positions = np.array([0, 9, 23])
        assert flip_bits(flip_bits(data, positions), positions) == data

    def test_bad_ber_rejected(self):
        with pytest.raises(ConfigurationError):
            BitErrorChannel(1.5)


class TestTDMA:
    def test_slot_includes_guard(self):
        config = TDMAConfig()
        assert config.slot_ms(256) == pytest.approx(
            config.packet_airtime_ms(256) + config.guard_ms
        )

    def test_burst_packetises(self):
        config = TDMAConfig()
        one = config.burst_ms(256)
        two = config.burst_ms(257)
        assert two > one

    def test_all_to_all_scales_with_nodes(self):
        config = TDMAConfig()
        assert config.all_to_all_ms(100, 8) == pytest.approx(
            8 * config.burst_ms(100)
        )

    def test_one_to_all_fixed(self):
        config = TDMAConfig()
        assert config.one_to_all_ms(100) == config.burst_ms(100)

    def test_effective_rate_below_nominal(self):
        config = TDMAConfig()
        assert config.effective_rate_mbps() < config.radio.data_rate_mbps

    def test_round_robin_schedule(self):
        schedule = TDMASchedule.round_robin(TDMAConfig(), 4, slots_per_node=2)
        assert len(schedule.slot_owners) == 8
        assert schedule.slots_for(2) == [4, 5]

    def test_node_share_fair(self):
        schedule = TDMASchedule.round_robin(TDMAConfig(), 4)
        shares = [schedule.node_share_mbps(n) for n in range(4)]
        assert all(s == pytest.approx(shares[0]) for s in shares)

    def test_wait_ms(self):
        schedule = TDMASchedule.round_robin(TDMAConfig(), 4)
        assert schedule.wait_ms(0, from_slot=0) == 0.0
        assert schedule.wait_ms(1, from_slot=0) == pytest.approx(
            schedule.config.slot_ms()
        )

    def test_hash_payload_compression(self):
        assert hash_payload_bytes(96, 1, compression_ratio=2.0) == 48


class TestWirelessNetwork:
    def _build(self, ber=0.0):
        from dataclasses import replace

        radio = replace(LOW_POWER, bit_error_rate=ber)
        net = WirelessNetwork(tdma=TDMAConfig(radio=radio), seed=3)
        inboxes = {0: [], 1: [], 2: []}
        for node in inboxes:
            net.register(node, lambda p, n=node: inboxes[n].append(p))
        return net, inboxes

    def test_unicast(self):
        net, inboxes = self._build()
        net.send(Packet.build(0, 1, PayloadKind.SIGNAL, b"x"))
        assert len(inboxes[1]) == 1 and not inboxes[2]

    def test_broadcast(self):
        net, inboxes = self._build()
        net.send(Packet.build(0, BROADCAST, PayloadKind.HASHES, b"h"))
        assert len(inboxes[1]) == 1 and len(inboxes[2]) == 1
        assert not inboxes[0]

    def test_corrupted_hashes_dropped_signals_kept(self):
        net, inboxes = self._build(ber=0.01)
        for i in range(50):
            net.send(Packet.build(0, 1, PayloadKind.HASHES, bytes(100), seq=i))
            net.send(Packet.build(0, 1, PayloadKind.SIGNAL, bytes(100), seq=i))
        assert net.stats.dropped_payload > 0
        assert net.stats.delivered_corrupted > 0
        # every dropped packet was a hash packet; corrupted signals arrive
        kinds = {p.header.kind for p in inboxes[1]}
        assert PayloadKind.SIGNAL in kinds

    def test_unknown_destination_rejected(self):
        net, _ = self._build()
        with pytest.raises(NetworkError):
            net.send(Packet.build(0, 5, PayloadKind.SIGNAL, b"x"))

    def test_duplicate_registration_rejected(self):
        net, _ = self._build()
        with pytest.raises(NetworkError):
            net.register(0, lambda p: None)

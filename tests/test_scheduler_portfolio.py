"""Scheduler portfolio: heuristics, incremental repair, reporting fixes."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.system import ScaloSystem
from repro.errors import SchedulingError
from repro.network.tdma import TDMAConfig
from repro.scheduler.constraints import (
    NETWORK_UTILISATION_CAP,
    build_constraints,
)
from repro.scheduler.flowsched import MinCostFlowScheduler
from repro.scheduler.heuristics import solve_greedy
from repro.scheduler.ilp import (
    AUTO_ILP_MAX_NODES,
    SOLVERS,
    Flow,
    SchedulerProblem,
)
from repro.scheduler.model import (
    dtw_similarity_task,
    hash_similarity_task,
    mi_kf_task,
    mi_svm_task,
    seizure_detection_task,
    spike_sorting_task,
)
from repro.telemetry import Telemetry
from repro.units import ELECTRODES_PER_NODE


def _fig9_flows():
    return [
        Flow(seizure_detection_task(), weight=3.0,
             electrode_cap=ELECTRODES_PER_NODE),
        Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
             weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
        Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
             weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
    ]


def _electrodes(schedule):
    """Recover the decision vector from a materialised schedule."""
    return np.array(
        [
            a.aggregate_electrodes / (1.0 if a.flow.task.centralised
                                      else schedule.n_nodes)
            for a in schedule.allocations
        ]
    )


class TestSolverDispatch:
    def test_unknown_solver_rejected(self):
        with pytest.raises(SchedulingError, match="unknown solver"):
            SchedulerProblem(n_nodes=4, flows=_fig9_flows(), solver="anneal")

    def test_default_solver_is_the_exact_ilp(self):
        problem = SchedulerProblem(n_nodes=11, flows=_fig9_flows())
        assert problem.solver == "ilp"
        explicit = SchedulerProblem(n_nodes=11, flows=_fig9_flows(),
                                    solver="ilp").solve()
        assert problem.solve().weighted_mbps() == explicit.weighted_mbps()

    def test_auto_small_fleet_runs_the_ilp(self):
        telemetry = Telemetry()
        n = AUTO_ILP_MAX_NODES - 1
        SchedulerProblem(n_nodes=n, flows=_fig9_flows(), solver="auto",
                         telemetry=telemetry).solve()
        reg = telemetry.registry
        assert reg.histogram("scheduler.ilp_solve_ms") is not None
        assert reg.histogram("scheduler.heuristic_solve_ms") is None

    def test_auto_fleet_scale_runs_a_heuristic(self):
        telemetry = Telemetry()
        SchedulerProblem(n_nodes=64, flows=_fig9_flows(), solver="auto",
                         telemetry=telemetry).solve()
        reg = telemetry.registry
        assert reg.histogram("scheduler.heuristic_solve_ms") is not None
        assert reg.histogram("scheduler.ilp_solve_ms") is None
        assert reg.counter("scheduler.auto_ilp_fallbacks") == 0
        assert reg.counter("scheduler.solves") == 1

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_every_solver_ships_a_feasible_schedule(self, solver):
        problem = SchedulerProblem(n_nodes=64, flows=_fig9_flows(),
                                   solver=solver)
        schedule = problem.solve()
        cs = problem.constraints()
        assert cs.verify(_electrodes(schedule)) == ()
        assert (schedule.network_utilisation
                <= NETWORK_UTILISATION_CAP + 1e-9)

    @pytest.mark.parametrize("solver", ("greedy", "flow", "auto"))
    def test_heuristics_land_close_to_the_ilp(self, solver):
        ilp = SchedulerProblem(n_nodes=256, flows=_fig9_flows(),
                               solver="ilp").solve()
        fast = SchedulerProblem(n_nodes=256, flows=_fig9_flows(),
                                solver=solver).solve()
        assert fast.weighted_mbps() >= 0.95 * ilp.weighted_mbps()


# --- post-hoc feasibility is a property, not an anecdote -----------------------

_TASK_MENU = (
    lambda: seizure_detection_task(),
    lambda: spike_sorting_task(),
    lambda: hash_similarity_task("all_all", net_budget_ms=1.0),
    lambda: hash_similarity_task("one_all", net_budget_ms=2.0),
    lambda: dtw_similarity_task("one_all", net_budget_ms=4.0),
    lambda: mi_svm_task(),
    lambda: mi_kf_task(),
)


@settings(max_examples=30, deadline=None)
@given(
    picks=st.lists(
        st.tuples(st.integers(0, len(_TASK_MENU) - 1),
                  st.integers(1, 5),
                  st.booleans()),
        min_size=1, max_size=4,
    ),
    n_nodes=st.integers(1, 200),
    power_mw=st.floats(10.0, 20.0),
    seed=st.integers(0, 3),
)
def test_portfolio_solutions_satisfy_exact_rows(picks, n_nodes, power_mw,
                                                seed):
    flows = [
        Flow(_TASK_MENU[i](), weight=float(w),
             electrode_cap=ELECTRODES_PER_NODE if capped else None)
        for i, w, capped in picks
    ]
    try:
        cs = build_constraints(n_nodes=n_nodes, flows=flows,
                               power_budget_mw=power_mw, tdma=TDMAConfig())
    except SchedulingError:  # static power alone over budget
        assume(False)
    for label, electrodes in (
        ("greedy", solve_greedy(cs, seed=seed)),
        ("flow", MinCostFlowScheduler(cs, seed=seed).solve()),
    ):
        violations = cs.verify(electrodes)
        assert violations == (), f"{label}: {violations}"
    for solver in SOLVERS:
        schedule = SchedulerProblem(
            n_nodes=n_nodes, flows=flows, power_budget_mw=power_mw,
            solver=solver, seed=seed,
        ).solve()
        assert (schedule.network_utilisation
                <= NETWORK_UTILISATION_CAP + 1e-9)
        # the exact power row (binding-node share for centralised flows;
        # the *reported* node_power_mw keeps the legacy full-linear
        # convention and is not the constraint LHS)
        electrodes = [
            a.aggregate_electrodes / (1.0 if a.flow.task.centralised
                                      else n_nodes)
            for a in schedule.allocations
        ]
        power = cs.node_power_mw(electrodes)
        assert power <= power_mw * (1 + 1e-6) + 1e-6


class TestDeterminism:
    @pytest.mark.parametrize("solver", ("greedy", "flow", "auto"))
    @pytest.mark.parametrize("n_nodes", (8, 64))
    def test_equal_seeds_are_byte_identical(self, solver, n_nodes):
        def run():
            schedule = SchedulerProblem(
                n_nodes=n_nodes, flows=_fig9_flows(), solver=solver, seed=7
            ).solve()
            return _electrodes(schedule).tobytes()

        assert run() == run() == run()

    def test_seed_changes_stay_feasible(self):
        problem = SchedulerProblem(n_nodes=48, flows=_fig9_flows())
        cs = problem.constraints()
        for seed in range(5):
            assert cs.verify(solve_greedy(cs, seed=seed)) == ()


class TestUtilisationReporting:
    """The report must be the constraint's LHS (reporting bugfix #1)."""

    def test_zero_cap_flow_books_no_phantom_airtime(self):
        # dtw all_all at 64 nodes: 64 fixed bursts alone overrun a 1 ms
        # latency budget, so the flow's cap collapses to zero.  The old
        # report still charged mult * fixed airtime for it and printed
        # utilisation >> the 0.95 cap.
        flows = [
            Flow(seizure_detection_task(), weight=1.0,
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(dtw_similarity_task("all_all", net_budget_ms=1.0),
                 weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
        ]
        problem = SchedulerProblem(n_nodes=64, flows=flows)
        cs = problem.constraints()
        dtw_row = cs.rows[1]
        assert dtw_row.cap == 0.0
        schedule = problem.solve()
        dtw_alloc = schedule.allocations[1]
        assert dtw_alloc.aggregate_electrodes == pytest.approx(0.0, abs=1e-9)
        assert dtw_alloc.airtime_ms_per_period == 0.0
        assert (schedule.network_utilisation
                <= NETWORK_UTILISATION_CAP + 1e-9)

    def test_report_equals_constraint_lhs(self):
        problem = SchedulerProblem(n_nodes=64, flows=_fig9_flows())
        schedule = problem.solve()
        cs = problem.constraints()
        assert schedule.network_utilisation == pytest.approx(
            cs.utilisation(_electrodes(schedule))
        )

    def test_capped_sharing_flow_still_charges_fixed_burst(self):
        # The conservative charge is intentional: a sharing flow that
        # *can* run occupies its fixed burst even at zero electrodes.
        flows = [Flow(hash_similarity_task("one_all", net_budget_ms=2.0),
                      weight=1.0, electrode_cap=ELECTRODES_PER_NODE)]
        cs = SchedulerProblem(n_nodes=8, flows=flows).constraints()
        row = cs.rows[0]
        assert row.cap > 0
        assert row.utilisation(0.0) > 0.0


class TestMediumSaturation:
    """Explicit degrade instead of a silent RHS clamp (bugfix #2)."""

    def _flows(self):
        return [
            Flow(seizure_detection_task(), weight=1.0,
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(hash_similarity_task("one_all", net_budget_ms=1e6),
                 weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
        ]

    def test_saturated_medium_degrades_explicitly(self):
        telemetry = Telemetry()
        # A 1000 ms per-round beacon overhead makes the fixed burst
        # alone overrun the utilisation cap while the (huge) latency
        # budget keeps the flow capped in — the silent-clamp cell.
        problem = SchedulerProblem(n_nodes=4, flows=self._flows(),
                                   round_overhead_ms=1000.0,
                                   telemetry=telemetry)
        cs = problem.constraints()
        assert cs.medium_saturated
        assert cs.rows[1].cap == 0.0  # sharing flow degraded to zero
        assert cs.rows[0].cap > 0.0  # local analytics unaffected
        assert cs.fixed_util == 0.0
        schedule = problem.solve()
        assert telemetry.registry.counter("scheduler.medium_saturated") >= 1
        assert schedule.allocations[1].aggregate_electrodes == pytest.approx(
            0.0, abs=1e-9
        )
        assert schedule.allocations[0].aggregate_electrodes > 0
        assert (schedule.network_utilisation
                <= NETWORK_UTILISATION_CAP + 1e-9)

    def test_unsaturated_medium_books_nothing(self):
        telemetry = Telemetry()
        problem = SchedulerProblem(n_nodes=4, flows=self._flows(),
                                   telemetry=telemetry)
        cs = problem.constraints()
        assert not cs.medium_saturated
        assert cs.fixed_util > 0.0
        schedule = problem.solve()
        assert telemetry.registry.counter("scheduler.medium_saturated") == 0
        assert schedule.allocations[1].aggregate_electrodes > 0


class TestFailoverRepair:
    """Failover repairs the warm flow solution; it never re-runs the LP."""

    def _system(self):
        telemetry = Telemetry()
        system = ScaloSystem(n_nodes=8, electrodes_per_node=2, seed=0,
                             telemetry=telemetry)
        manager = system.attach_failover(flows=_fig9_flows())
        return system, manager, telemetry.registry

    def test_failover_repairs_incrementally(self):
        system, manager, reg = self._system()
        # the initial election seats a coordinator without a handover,
        # so the warm flow state is seeded on the first real failover
        assert manager.last_schedule is None
        system.fail_node(manager.coordinator)
        event = manager.step()
        assert event is not None
        assert reg.counter("scheduler.repairs") >= 1
        assert reg.histogram("scheduler.repair_solve_ms") is not None
        # the incremental path never touches the LP
        assert reg.histogram("scheduler.ilp_solve_ms") is None
        assert reg.counter("scheduler.repair_fallbacks") == 0

    def test_repaired_schedule_is_feasible_at_reduced_size(self):
        system, manager, _ = self._system()
        for _ in range(3):  # three consecutive crashes, three repairs
            system.fail_node(manager.coordinator)
            assert manager.step() is not None
            schedule = manager.last_schedule
            assert schedule is not None
            assert schedule.n_nodes == len(system.alive_node_ids)
            cs = system.scheduler_problem(manager.flows).constraints()
            assert cs.verify(_electrodes(schedule)) == ()

    def test_reschedule_honours_solver_override(self):
        telemetry = Telemetry()
        system = ScaloSystem(n_nodes=48, electrodes_per_node=2, seed=0,
                             telemetry=telemetry)
        system.reschedule(_fig9_flows(), solver="greedy")
        reg = telemetry.registry
        assert reg.histogram("scheduler.heuristic_solve_ms") is not None
        assert reg.histogram("scheduler.ilp_solve_ms") is None

    def test_system_solver_policy_is_the_default(self):
        telemetry = Telemetry()
        system = ScaloSystem(n_nodes=48, electrodes_per_node=2, seed=0,
                             scheduler_solver="auto", telemetry=telemetry)
        system.reschedule(_fig9_flows())
        assert (telemetry.registry.histogram("scheduler.heuristic_solve_ms")
                is not None)


class TestFacadeAndCli:
    def test_solve_schedule_facade(self):
        from repro.api import solve_schedule

        schedule = solve_schedule(_fig9_flows(), n_nodes=64)
        assert schedule.n_nodes == 64
        assert schedule.weighted_mbps() > 0

    def test_sched_command_passes_gates_at_smoke_scale(self, capsys):
        from repro.__main__ import main

        assert main(["sched", "--nodes", "64", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "portfolio gates" in out

    def test_sched_solver_flag_filters_the_sweep(self, capsys):
        from repro.__main__ import main

        assert main(["sched", "--solver", "flow", "--nodes", "16",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert " greedy " not in out

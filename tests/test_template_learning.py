"""Tests for online spike-template learning (OSort-style clustering)."""

import numpy as np
import pytest

from repro.apps.spike_sorting import TemplateMatcher, detect_spikes
from repro.apps.template_learning import (
    OnlineTemplateLearner,
    align_to_trough,
    learn_templates_from_recording,
    match_templates_to_truth,
)
from repro.datasets.spikes import SPIKE_SAMPLES, generate_spikes
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def dataset():
    return generate_spikes("mearec", duration_s=4.0, seed=0)


class TestAlignment:
    def test_trough_lands_on_target(self, dataset):
        snippet = dataset.snippet(0)
        aligned = align_to_trough(snippet)
        channel = int(np.argmax(np.max(np.abs(aligned), axis=1)))
        assert int(np.argmin(aligned[channel])) == 20

    def test_idempotent(self, dataset):
        once = align_to_trough(dataset.snippet(1))
        twice = align_to_trough(once)
        assert np.allclose(once, twice)


class TestLearner:
    def test_same_waveform_forms_one_cluster(self, rng):
        learner = OnlineTemplateLearner()
        base = rng.normal(size=(4, SPIKE_SAMPLES)).cumsum(axis=1)
        base[1, 20] = -8.0  # a clear trough
        for _ in range(10):
            learner.observe(base + 0.02 * rng.standard_normal(base.shape))
        assert learner.n_clusters == 1
        assert learner.clusters[0].count == 10

    def test_distinct_waveforms_split(self, rng):
        learner = OnlineTemplateLearner()
        t = np.arange(SPIKE_SAMPLES, dtype=float)
        a = np.zeros((2, SPIKE_SAMPLES))
        a[0] = -5.0 * np.exp(-0.5 * ((t - 20) / 2.0) ** 2)  # sharp trough
        b = np.zeros((2, SPIKE_SAMPLES))
        b[1] = -5.0 * np.exp(-0.5 * ((t - 20) / 6.0) ** 2)  # wide trough
        b[1] += 2.5 * np.exp(-0.5 * ((t - 40) / 6.0) ** 2)
        for _ in range(5):
            learner.observe(a + 0.02 * rng.standard_normal(a.shape))
            learner.observe(b + 0.02 * rng.standard_normal(b.shape))
        assert learner.n_clusters == 2

    def test_running_mean_converges(self, rng):
        learner = OnlineTemplateLearner()
        base = np.zeros((1, SPIKE_SAMPLES))
        base[0, 20] = -4.0
        for _ in range(50):
            learner.observe(base + 0.05 * rng.standard_normal(base.shape))
        template = learner.templates()[0]
        assert abs(template[0, 20] - (-4.0)) < 0.1

    def test_noise_clusters_filtered(self, rng):
        learner = OnlineTemplateLearner(min_count=3)
        base = np.zeros((1, SPIKE_SAMPLES))
        base[0, 20] = -4.0
        for _ in range(6):
            learner.observe(base + 0.02 * rng.standard_normal(base.shape))
        # one singleton outlier
        outlier = rng.normal(scale=3.0, size=(1, SPIKE_SAMPLES))
        learner.observe(outlier)
        assert learner.templates().shape[0] == 1

    def test_empty_learner_rejects_readout(self):
        with pytest.raises(ConfigurationError):
            OnlineTemplateLearner().templates()

    def test_bad_snippet_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineTemplateLearner().observe(np.zeros(SPIKE_SAMPLES))

    def test_max_clusters_bounds_growth(self, rng):
        learner = OnlineTemplateLearner(max_clusters=5, join_threshold=1e-6)
        for _ in range(20):
            learner.observe(rng.normal(size=(1, SPIKE_SAMPLES)) * 5)
        assert learner.n_clusters <= 5


class TestEndToEnd:
    def test_learns_roughly_the_right_census(self, dataset):
        templates, learner = learn_templates_from_recording(dataset.data)
        truth = dataset.profile.n_neurons
        assert truth * 0.5 <= templates.shape[0] <= truth * 2.5
        assert learner.n_spikes_seen > dataset.n_spikes * 0.8

    def test_learned_templates_match_truth(self, dataset):
        templates, _ = learn_templates_from_recording(dataset.data)
        aligned_truth = np.stack(
            [align_to_trough(t) for t in dataset.templates]
        )
        mapping = match_templates_to_truth(templates, aligned_truth)
        # most learned templates find a distinct ground-truth partner
        assert len(mapping) >= min(templates.shape[0],
                                   dataset.profile.n_neurons) * 0.6

    def test_learned_templates_sort_above_chance(self, dataset):
        templates, _ = learn_templates_from_recording(dataset.data)
        aligned_truth = np.stack(
            [align_to_trough(t) for t in dataset.templates]
        )
        mapping = match_templates_to_truth(templates, aligned_truth)
        matcher = TemplateMatcher(templates)
        times = detect_spikes(dataset.data)
        times = times[times + SPIKE_SAMPLES <= dataset.data.shape[1]]
        truth_times = dataset.spike_times
        correct = total = 0
        for t in times:
            snippet = align_to_trough(dataset.data[:, t : t + SPIKE_SAMPLES])
            predicted = mapping.get(matcher.classify_exact(snippet), -1)
            j = int(np.argmin(np.abs(truth_times - t)))
            if abs(int(truth_times[j]) - int(t)) <= 45:
                total += 1
                correct += predicted == dataset.spike_labels[j]
        accuracy = correct / max(total, 1)
        chance = 1.0 / dataset.profile.n_neurons
        assert accuracy > 8 * chance  # far above chance (~0.05)
        assert accuracy > 0.45  # online learning lands near offline's range

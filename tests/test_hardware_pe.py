"""Tests for PE instances, clock domains, and power scaling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.pe import ClockDomain, ProcessingElement


class TestClockDomain:
    def test_divider_scales_frequency(self):
        clock = ClockDomain(max_freq_mhz=16.0, divider=4)
        assert clock.freq_mhz == 4.0

    def test_slowest_divider_meets_requirement(self):
        clock = ClockDomain(max_freq_mhz=50.0)
        divider = clock.slowest_divider_for(7.0)
        assert divider == 7
        assert 50.0 / divider >= 7.0
        assert 50.0 / (divider + 1) < 7.0

    def test_requirement_above_max_rejected(self):
        clock = ClockDomain(max_freq_mhz=3.0)
        with pytest.raises(ConfigurationError):
            clock.slowest_divider_for(3.5)

    @pytest.mark.parametrize("divider", [0, -1, 1.5])
    def test_bad_divider_rejected(self, divider):
        with pytest.raises(ConfigurationError):
            ClockDomain(max_freq_mhz=10.0, divider=divider)


class TestProcessingElement:
    def test_dynamic_power_scales_with_electrodes(self):
        pe = ProcessingElement.from_name("FFT", n_electrodes=96)
        assert pe.dynamic_uw == pytest.approx(9.02 * 96)
        pe.n_electrodes = 48
        assert pe.dynamic_uw == pytest.approx(9.02 * 48)

    def test_dynamic_power_scales_with_clock(self):
        pe = ProcessingElement.from_name("FFT", n_electrodes=96)
        full = pe.dynamic_uw
        pe.clock.divider = 2
        assert pe.dynamic_uw == pytest.approx(full / 2)

    def test_static_power_independent_of_clock(self):
        pe = ProcessingElement.from_name("SVM", n_electrodes=10)
        static = pe.static_uw
        pe.clock.divider = 3
        assert pe.static_uw == static

    def test_pairwise_power_quadratic(self):
        pe = ProcessingElement.from_name(
            "XCOR", n_electrodes=96, pairwise=True, pair_norm=96.0
        )
        # at pair_norm channels, per-channel power equals the catalog figure
        assert pe.dynamic_uw == pytest.approx(44.11 * 96)
        pe.n_electrodes = 192
        assert pe.dynamic_uw == pytest.approx(44.11 * 192 * 2)

    def test_total_power_mw(self):
        pe = ProcessingElement.from_name("THR", n_electrodes=1)
        assert pe.power_mw == pytest.approx((2.00 + 0.11) / 1e3)

    def test_latency_from_catalog(self):
        pe = ProcessingElement.from_name("CCHECK")
        assert pe.latency_ms == 0.50

    def test_data_dependent_latency_raises(self):
        pe = ProcessingElement.from_name("LZ")
        with pytest.raises(ConfigurationError):
            _ = pe.latency_ms

    def test_tune_for_load_picks_power_optimal_divider(self):
        pe = ProcessingElement.from_name("DTW", n_electrodes=10)
        pe.tune_for_load(0.25)
        assert pe.clock.divider == 4
        assert pe.freq_mhz >= 50 * 0.25

    @pytest.mark.parametrize("load", [0.0, -0.5, 1.5])
    def test_tune_for_bad_load_rejected(self, load):
        pe = ProcessingElement.from_name("DTW")
        with pytest.raises(ConfigurationError):
            pe.tune_for_load(load)

    def test_negative_electrodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessingElement.from_name("FFT", n_electrodes=-1)

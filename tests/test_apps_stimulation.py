"""Tests for the stimulation subsystem (safety, waveforms, closed loop)."""

import numpy as np
import pytest

from repro.apps.seizure import PropagationEvent
from repro.apps.stimulation import (
    REFRACTORY_MS,
    SHANNON_K_LIMIT,
    StimulationProtocol,
    Stimulator,
    check_safety,
    stimulate_from_confirmations,
    synthesize_waveform,
)
from repro.errors import ConfigurationError


class TestProtocol:
    def test_charge_per_phase(self):
        protocol = StimulationProtocol(amplitude_ua=100.0, phase_us=200.0)
        assert protocol.charge_per_phase_uc == pytest.approx(0.02)

    def test_default_protocol_is_safe(self):
        assert check_safety(StimulationProtocol())

    def test_aggressive_protocol_unsafe(self):
        # 10 mA x 1 ms on a micro-electrode is far over the Shannon line
        protocol = StimulationProtocol(amplitude_ua=10_000.0, phase_us=1000.0,
                                       frequency_hz=100.0)
        assert not check_safety(protocol)
        assert protocol.shannon_k() > SHANNON_K_LIMIT

    def test_larger_electrode_relaxes_limit(self):
        protocol = StimulationProtocol(amplitude_ua=1000.0, phase_us=400.0)
        assert protocol.shannon_k(1e-2) < protocol.shannon_k(1e-4)

    def test_duty_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            StimulationProtocol(phase_us=4000.0, frequency_hz=200.0)

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            StimulationProtocol(amplitude_ua=-5.0)


class TestWaveform:
    def test_charge_balanced(self):
        waveform = synthesize_waveform(StimulationProtocol())
        assert abs(waveform.sum()) < 1e-9

    def test_biphasic_shape(self):
        waveform = synthesize_waveform(StimulationProtocol())
        first_nonzero = np.flatnonzero(waveform)[0]
        assert waveform[first_nonzero] < 0  # cathodic first

    def test_pulse_count(self):
        protocol = StimulationProtocol(frequency_hz=100.0, train_ms=50.0)
        waveform = synthesize_waveform(protocol, fs_hz=30000)
        # rising edges of the cathodic phase, plus one if it starts at t=0
        edges = np.count_nonzero(np.diff((waveform < 0).astype(int)) == 1)
        edges += int(waveform[0] < 0)
        assert edges == protocol.n_pulses

    def test_pulse_must_fit_period(self):
        # at 1 kHz sampling a 300 us phase rounds to one sample but the
        # 1 kHz pulse period is a single sample: the biphase cannot fit
        protocol = StimulationProtocol(phase_us=300.0, frequency_hz=1000.0)
        with pytest.raises(ConfigurationError):
            synthesize_waveform(protocol, fs_hz=1000)


class TestStimulator:
    def test_refractory_enforced(self):
        stimulator = Stimulator(0, 4)
        assert stimulator.stimulate(1, 0.0) is not None
        assert stimulator.stimulate(1, REFRACTORY_MS / 2) is None
        assert stimulator.stimulate(1, REFRACTORY_MS + 1) is not None

    def test_refractory_is_per_electrode(self):
        stimulator = Stimulator(0, 4)
        stimulator.stimulate(0, 0.0)
        assert stimulator.stimulate(1, 1.0) is not None

    def test_unsafe_protocol_rejected(self):
        stimulator = Stimulator(0, 4)
        bad = StimulationProtocol(amplitude_ua=10_000.0, phase_us=1000.0,
                                  frequency_hz=100.0)
        with pytest.raises(ConfigurationError):
            stimulator.stimulate(0, 0.0, bad)

    def test_bad_electrode_rejected(self):
        with pytest.raises(ConfigurationError):
            Stimulator(0, 4).stimulate(9, 0.0)

    def test_energy_accounting(self):
        stimulator = Stimulator(0, 4)
        stimulator.stimulate(0, 0.0)
        # 0.6 mW DAC x 100 ms train
        assert stimulator.energy_mj() == pytest.approx(0.06)

    def test_duty_cycle(self):
        stimulator = Stimulator(0, 4)
        stimulator.stimulate(0, 0.0)
        assert stimulator.duty_cycle(1000.0) == pytest.approx(0.1)


class TestClosedLoop:
    def test_confirmations_drive_stimulation(self):
        confirmations = [
            PropagationEvent(0, 1, 10, 5.0),
            PropagationEvent(0, 2, 10, 5.0),
            PropagationEvent(0, 1, 11, 5.0),  # within node 1's refractory
        ]
        stimulators = {1: Stimulator(1, 4), 2: Stimulator(2, 4)}
        executed = stimulate_from_confirmations(
            confirmations, stimulators, window_ms=4.0
        )
        assert len(executed) == 2
        assert {e.node for e in executed} == {1, 2}

    def test_missing_stimulator_rejected(self):
        with pytest.raises(ConfigurationError):
            stimulate_from_confirmations(
                [PropagationEvent(0, 9, 0, 1.0)], {}, window_ms=4.0
            )

"""Tests for the serving layer: admission, coalescing, EDF, determinism."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.apps.queries import QueryCostModel, QueryEngine, QuerySpec
from repro.errors import ConfigurationError, QueryRejected
from repro.faults.health import HealthMonitor
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.serving import (
    AdmissionController,
    LoadGenConfig,
    QueryServer,
    ServerConfig,
    TokenBucket,
    generate_arrivals,
    serve_session,
)
from repro.telemetry import Telemetry

N_NODES = 3
ELECTRODES = 4
N_WINDOWS = 4


def _fleet(telemetry=None):
    """A small ingested fleet + engine, deterministic from seed 0."""
    from repro.core.system import ScaloSystem
    from repro.units import WINDOW_SAMPLES

    kwargs = {"telemetry": telemetry} if telemetry is not None else {}
    system = ScaloSystem(
        n_nodes=N_NODES, electrodes_per_node=ELECTRODES, seed=0, **kwargs
    )
    rng = np.random.default_rng(0)
    template = None
    for _ in range(N_WINDOWS):
        windows = (
            rng.standard_normal(
                (N_NODES, ELECTRODES, WINDOW_SAMPLES)
            ).cumsum(axis=2)
            * 300
        ).round()
        system.ingest(windows)
        if template is None:
            template = windows[0, 0].astype(float)
    flags = {node: {0} for node in range(N_NODES)}
    engine = QueryEngine(
        controllers=[node.storage for node in system.nodes],
        lsh=system.lsh,
        seizure_flags=flags,
        **kwargs,
    )
    return system, engine, template


def _server(config=None, telemetry=None):
    _, engine, template = _fleet(telemetry)
    kwargs = {"telemetry": telemetry} if telemetry is not None else {}
    server = QueryServer(
        engine,
        config=config if config is not None else ServerConfig(),
        cost_model=QueryCostModel(
            n_nodes=N_NODES, electrodes_per_node=ELECTRODES
        ),
        **kwargs,
    )
    return server, template


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(capacity=3.0, refill_per_s=1.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_with_time(self):
        bucket = TokenBucket(capacity=1.0, refill_per_s=10.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 10 tokens/s = one token per 100 ms
        assert bucket.try_take(100.0)

    def test_retry_after_names_the_gap(self):
        bucket = TokenBucket(capacity=1.0, refill_per_s=10.0)
        bucket.try_take(0.0)
        assert bucket.retry_after_ms(0.0) == pytest.approx(100.0)

    def test_never_exceeds_capacity(self):
        bucket = TokenBucket(capacity=2.0, refill_per_s=1000.0)
        bucket.try_take(0.0)
        bucket._refill(1e6)
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(capacity=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(refill_per_s=-1.0)


class TestAdmissionController:
    def test_queue_bound_checked_before_bucket(self):
        """A capacity shed must not burn one of the client's tokens."""
        ctrl = AdmissionController(
            max_queue=1, bucket_capacity=1.0, bucket_refill_per_s=1.0
        )
        assert ctrl.admit("c", 0.0, queue_depth=0) is None
        reason, _ = ctrl.admit("c", 0.0, queue_depth=1)
        assert reason == "queue_full"
        # the queue_full shed did not take the (already spent) token path:
        # a fresh client still sheds on capacity without touching buckets
        assert "d" not in ctrl._buckets
        reason, _ = ctrl.admit("d", 0.0, queue_depth=5)
        assert reason == "queue_full"
        assert "d" not in ctrl._buckets

    def test_per_client_isolation(self):
        ctrl = AdmissionController(
            max_queue=100, bucket_capacity=1.0, bucket_refill_per_s=1.0
        )
        assert ctrl.admit("noisy", 0.0, 0) is None
        reason, retry = ctrl.admit("noisy", 0.0, 0)
        assert reason == "rate_limited" and retry > 0
        # the quiet client is unaffected
        assert ctrl.admit("quiet", 0.0, 0) is None


class TestShedding:
    def test_queue_full_sheds_with_retry_semantics(self):
        server, _ = _server(ServerConfig(max_queue=2))
        spec = QuerySpec("q3", 16.0)
        server.submit("a", spec, (0, N_WINDOWS))
        server.submit("b", spec, (0, N_WINDOWS))
        with pytest.raises(QueryRejected) as exc:
            server.submit("c", spec, (0, N_WINDOWS))
        assert exc.value.reason == "queue_full"
        assert "shed" in str(exc.value)

    def test_rate_limit_sheds_with_retry_after(self):
        server, _ = _server(
            ServerConfig(
                max_queue=100, bucket_capacity=1.0, bucket_refill_per_s=10.0
            )
        )
        spec = QuerySpec("q3", 16.0)
        server.submit("chatty", spec, (0, N_WINDOWS))
        with pytest.raises(QueryRejected) as exc:
            server.submit("chatty", spec, (0, N_WINDOWS))
        assert exc.value.reason == "rate_limited"
        assert exc.value.retry_after_ms == pytest.approx(100.0)

    def test_sheds_are_counted_and_logged(self):
        tel = Telemetry()
        server, _ = _server(ServerConfig(max_queue=1), telemetry=tel)
        spec = QuerySpec("q3", 16.0)
        server.submit("a", spec, (0, N_WINDOWS))
        with pytest.raises(QueryRejected):
            server.submit("b", spec, (0, N_WINDOWS))
        assert tel.registry.counter(
            "serving.shed", kind="q3", reason="queue_full"
        ) == 1.0
        assert "shed" in server.response_log()
        assert "reason=queue_full" in server.response_log()


class TestCoalescing:
    def test_identical_queries_share_one_wave(self):
        server, template = _server()
        spec = QuerySpec("q2", 16.0)
        ids = [
            server.submit(f"c{i}", spec, (0, N_WINDOWS), template=template)
            for i in range(4)
        ]
        responses = server.step()
        assert len(responses) == 4
        assert {r.wave_id for r in responses} == {responses[0].wave_id}
        assert all(r.wave_size == 4 for r in responses)
        # every member observes the same answer bytes
        assert len({r.rows_crc for r in responses}) == 1
        assert {r.request_id for r in responses} == set(ids)

    def test_coalesced_answer_matches_direct_run(self):
        server, template = _server()
        spec = QuerySpec("q2", 16.0)
        rid = server.submit("a", spec, (0, N_WINDOWS), template=template)
        server.submit("b", spec, (0, N_WINDOWS), template=template)
        server.drain()
        direct = server.engine.run(spec, (0, N_WINDOWS), template=template)
        assert server.result_for(rid).row_keys() == direct.row_keys()

    def test_incompatible_queries_do_not_merge(self):
        server, template = _server()
        server.submit("a", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        server.submit("b", QuerySpec("q3", 16.0), (0, 2))  # other range
        server.submit("c", QuerySpec("q2", 16.0), (0, N_WINDOWS),
                      template=template)
        server.drain()
        assert all(r.wave_size == 1 for r in server.responses)
        assert len({r.wave_id for r in server.responses}) == 3

    def test_serial_mode_never_coalesces(self):
        server, _ = _server(ServerConfig(coalesce=False))
        spec = QuerySpec("q3", 16.0)
        for i in range(3):
            server.submit(f"c{i}", spec, (0, N_WINDOWS))
        server.drain()
        assert all(r.wave_size == 1 for r in server.responses)
        assert len({r.wave_id for r in server.responses}) == 3

    def test_coalescing_charges_merge_time(self):
        config = ServerConfig(coalesce_merge_ms=2.0)
        server, _ = _server(config)
        spec = QuerySpec("q3", 16.0)
        server.submit("a", spec, (0, N_WINDOWS))
        server.submit("b", spec, (0, N_WINDOWS))
        server.submit("c", spec, (0, N_WINDOWS))
        (response, *_rest) = server.step()
        solo = server.cost_model.cost(spec).latency_ms
        assert response.finish_ms - response.start_ms == pytest.approx(
            solo + 2.0 * 2
        )


class TestEDFDispatch:
    def test_earliest_deadline_goes_first(self):
        server, template = _server()
        late = server.submit(
            "a", QuerySpec("q3", 16.0), (0, N_WINDOWS), deadline_ms=5000.0
        )
        urgent = server.submit(
            "b", QuerySpec("q2", 16.0), (0, N_WINDOWS),
            template=template, deadline_ms=50.0,
        )
        first = server.step()
        second = server.step()
        assert [r.request_id for r in first] == [urgent]
        assert [r.request_id for r in second] == [late]

    def test_ties_break_on_request_id(self):
        server, template = _server()
        spec_a = QuerySpec("q3", 16.0)
        spec_b = QuerySpec("q1", 16.0)
        a = server.submit("x", spec_a, (0, N_WINDOWS), deadline_ms=100.0)
        b = server.submit("y", spec_b, (0, N_WINDOWS), deadline_ms=100.0)
        first = server.step()
        assert [r.request_id for r in first] == [a]
        assert [r.request_id for r in server.step()] == [b]

    def test_deadline_misses_are_counted_not_dropped(self):
        tel = Telemetry()
        server, _ = _server(telemetry=tel)
        spec = QuerySpec("q3", 16.0)
        # a 1 ms deadline can't be met by a multi-ms scan
        server.submit("a", spec, (0, N_WINDOWS), deadline_ms=1.0)
        (response,) = server.step()
        assert response.deadline_missed
        assert response.n_rows > 0  # late but answered
        assert tel.registry.counter(
            "serving.deadline_miss", kind="q3"
        ) == 1.0


class TestDegradedAnswers:
    def test_dead_nodes_produce_degraded_coverage(self):
        server, _ = _server()
        server.set_dead_nodes({1})
        server.submit("a", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        (response,) = server.step()
        assert response.degraded
        assert response.coverage == pytest.approx(2 / 3)
        result = server.result_for(response.request_id)
        assert result.failed_nodes == [1]
        assert all(row.node != 1 for row in result.rows)

    def test_observe_health_adopts_monitor_belief(self):
        server, _ = _server()
        monitor = HealthMonitor(N_NODES, miss_threshold=1)
        for round_index in range(3):
            for node in (0, 2):  # node 1 never heartbeats
                monitor.heartbeat(node, round_index)
            monitor.tick(round_index)
        server.observe_health(monitor)
        server.submit("a", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        (response,) = server.step()
        assert response.degraded
        assert server.result_for(response.request_id).failed_nodes == [1]


class TestDeterminism:
    def test_repeat_runs_are_byte_identical(self):
        _, report_a = serve_session(seed=3)
        _, report_b = serve_session(seed=3)
        assert report_a.response_log == report_b.response_log
        assert report_a.response_log  # non-empty

    def test_telemetry_is_observational_only(self):
        """NULL_TELEMETRY vs a live handle: same bytes out."""
        _, silent = serve_session(seed=1)
        _, live = serve_session(seed=1, telemetry=Telemetry())
        assert silent.response_log == live.response_log

    def test_fault_plan_runs_are_byte_identical(self):
        plan = FaultPlan(
            n_nodes=4,
            n_rounds=64,
            seed=0,
            events=[FaultEvent(2, 1, FaultKind.NODE_CRASH)],
        )
        _, a = serve_session(seed=2, fault_plan=plan)
        _, b = serve_session(seed=2, fault_plan=plan)
        assert a.response_log == b.response_log
        assert a.degraded_responses > 0

    def test_different_seeds_differ(self):
        _, a = serve_session(seed=0)
        _, b = serve_session(seed=7)
        assert a.response_log != b.response_log


class TestLoadGenerator:
    def test_arrivals_deterministic_per_seed(self):
        config = LoadGenConfig(n_requests=32, offered_qps=25.0, seed=5)
        assert generate_arrivals(config) == generate_arrivals(config)
        other = LoadGenConfig(n_requests=32, offered_qps=25.0, seed=6)
        assert generate_arrivals(config) != generate_arrivals(other)

    def test_arrivals_monotone_and_complete(self):
        config = LoadGenConfig(n_requests=50, offered_qps=100.0, seed=0)
        arrivals = generate_arrivals(config)
        assert len(arrivals) == 50
        times = [a.at_ms for a in arrivals]
        assert times == sorted(times)
        kinds = {a.spec.kind for a in arrivals}
        assert kinds <= {"q1", "q2", "q3"}
        assert all(
            (a.template_index is not None) == (a.spec.kind == "q2")
            for a in arrivals
        )

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            LoadGenConfig(n_requests=0)
        with pytest.raises(ConfigurationError):
            LoadGenConfig(offered_qps=0.0)

    def test_low_load_sheds_nothing(self):
        _, report = serve_session(
            seed=0, load=LoadGenConfig(n_requests=24, offered_qps=4.0)
        )
        assert report.shed == 0
        assert report.completed == 24
        assert report.deadline_misses == 0

    def test_overload_sheds_explicitly(self):
        config = ServerConfig(max_queue=4)
        _, report = serve_session(
            seed=0,
            load=LoadGenConfig(n_requests=64, offered_qps=400.0),
            server_config=config,
        )
        assert report.shed > 0
        assert report.completed + report.shed == report.n_offered
        assert report.max_queue_depth <= 4

    def test_coalescing_beats_serial_under_load(self):
        load = LoadGenConfig(n_requests=64, offered_qps=40.0)
        _, coalesced = serve_session(seed=0, load=load)
        _, serial = serve_session(
            seed=0, load=load, server_config=ServerConfig(coalesce=False)
        )
        assert coalesced.waves < serial.waves
        assert coalesced.mean_latency_ms < serial.mean_latency_ms


class TestServeCLI:
    def test_serve_subcommand_runs_clean(self, tmp_path):
        csv = tmp_path / "metrics.csv"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--qps", "10", "--requests", "12", "--csv", str(csv)],
            capture_output=True, text=True, timeout=300,
            env=_repro_env(),
        )
        assert proc.returncode == 0, proc.stderr
        assert "open-loop serving" in proc.stdout
        assert csv.exists()

    def test_serve_fault_plan_preset_runs_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--qps", "40", "--requests", "24", "--seed", "2",
             "--deadline-ms", "300", "--fault-plan", "mild"],
            capture_output=True, text=True, timeout=300,
            env=_repro_env(),
        )
        assert proc.returncode == 0, proc.stderr
        assert "mild fault storm" in proc.stdout
        assert "breakers" in proc.stdout
        assert "SLA" in proc.stdout

    def test_chaos_subcommand_runs_clean(self, tmp_path):
        csv = tmp_path / "chaos.csv"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "chaos", "--csv", str(csv)],
            capture_output=True, text=True, timeout=600,
            env=_repro_env(),
        )
        assert proc.returncode == 0, proc.stderr
        assert "chaos sweep" in proc.stdout
        assert "all chaos gates pass" in proc.stdout
        text = csv.read_text()
        assert "serving.retries" in text
        assert "serving.breaker.opened" in text
        assert "serving.brownout.waves" in text


def _repro_env():
    import os

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env

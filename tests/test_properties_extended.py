"""Second property-test batch: system-level invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.stimulation import StimulationProtocol, synthesize_waveform
from repro.core.maintenance import Battery
from repro.core.thermal import relative_temperature_rise, temperature_rise_c
from repro.crypto.aes import AES128
from repro.errors import ConfigurationError
from repro.hashing.lsh import LSHFamily
from repro.network.tdma import TDMAConfig, TDMASchedule


# --- thermal ---------------------------------------------------------------------


@given(st.floats(0.0, 100.0), st.floats(0.0, 100.0))
def test_thermal_decay_monotone(d1, d2):
    lo, hi = sorted((d1, d2))
    assert relative_temperature_rise(hi) <= relative_temperature_rise(lo) + 1e-12


@given(st.floats(0.0, 15.0), st.floats(0.0, 60.0))
def test_thermal_rise_linear_in_power(power, distance):
    full = temperature_rise_c(power, distance)
    half = temperature_rise_c(power / 2, distance)
    assert full == pytest.approx(2 * half, abs=1e-12)


# --- battery ----------------------------------------------------------------------


@given(
    st.floats(50.0, 500.0),
    st.floats(0.0, 20.0),
    st.floats(0.0, 30.0),
)
def test_battery_never_below_reserve_never_above_capacity(capacity, power,
                                                          hours):
    battery = Battery(capacity_mwh=capacity, level_mwh=capacity)
    battery.discharge(power, hours)
    assert battery.reserve_mwh - 1e-9 <= battery.level_mwh <= capacity + 1e-9
    battery.charge(100.0, hours)
    assert battery.level_mwh <= capacity + 1e-9


@given(st.floats(1.0, 20.0), st.floats(0.1, 10.0))
def test_battery_energy_conservation(power, hours):
    battery = Battery(capacity_mwh=400.0, level_mwh=400.0)
    before = battery.level_mwh
    sustained = battery.discharge(power, hours)
    assert battery.level_mwh == pytest.approx(before - power * sustained)


# --- TDMA schedule -----------------------------------------------------------------


@given(st.integers(1, 12), st.integers(1, 4))
def test_tdma_round_robin_is_fair(n_nodes, slots_per_node):
    schedule = TDMASchedule.round_robin(TDMAConfig(), n_nodes, slots_per_node)
    shares = [schedule.node_share_mbps(n) for n in range(n_nodes)]
    assert all(s == pytest.approx(shares[0]) for s in shares)
    total_slots = sum(len(schedule.slots_for(n)) for n in range(n_nodes))
    assert total_slots == len(schedule.slot_owners)


@given(st.integers(2, 10), st.integers(0, 30))
def test_tdma_wait_bounded_by_frame(n_nodes, from_slot):
    schedule = TDMASchedule.round_robin(TDMAConfig(), n_nodes)
    for node in range(n_nodes):
        wait = schedule.wait_ms(node, from_slot)
        assert 0.0 <= wait < schedule.frame_ms


# --- AES --------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_aes_roundtrip_any_key_block(key, block):
    cipher = AES128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=20, deadline=None)
@given(st.binary(max_size=200), st.binary(min_size=8, max_size=8))
def test_aes_ctr_is_length_preserving_involution(data, nonce):
    cipher = AES128(bytes(range(16)))
    encrypted = cipher.ctr_encrypt(data, nonce)
    assert len(encrypted) == len(data)
    assert cipher.ctr_encrypt(encrypted, nonce) == data


# --- stimulation --------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.floats(10.0, 500.0),
    st.floats(50.0, 400.0),
    st.floats(50.0, 200.0),
    st.floats(20.0, 200.0),
)
def test_stimulation_always_charge_balanced(amplitude, phase, frequency,
                                            train):
    try:
        protocol = StimulationProtocol(amplitude, phase, frequency, train)
        waveform = synthesize_waveform(protocol)
    except ConfigurationError:
        return  # invalid geometry is allowed to be rejected
    assert abs(float(waveform.sum())) < 1e-6 * max(1.0, np.abs(waveform).max())


# --- LSH determinism across processes ----------------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31), st.integers(0, 1000))
def test_lsh_same_seed_same_hash(seed, data_seed):
    rng = np.random.default_rng(data_seed)
    window = rng.normal(size=120).cumsum()
    a = LSHFamily.for_measure("dtw", seed=seed)
    b = LSHFamily.for_measure("dtw", seed=seed)
    assert a.hash_window(window) == b.hash_window(window)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_lsh_match_is_reflexive_and_symmetric(data_seed):
    rng = np.random.default_rng(data_seed)
    family = LSHFamily.for_measure("dtw")
    w1 = rng.normal(size=120).cumsum()
    w2 = rng.normal(size=120).cumsum()
    s1, s2 = family.hash_window(w1), family.hash_window(w2)
    assert family.matches(s1, s1)
    assert family.matches(s1, s2) == family.matches(s2, s1)

"""Tests for chaos hardening: retries, breakers, brownouts, SLA healing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.queries import QueryCostModel, QueryEngine, QuerySpec
from repro.errors import ConfigurationError, QueryRejected
from repro.faults.plan import FaultPlan
from repro.serving import (
    TIER_CACHE_ONLY,
    TIER_HEALTHY,
    TIER_REDUCED,
    TIER_REJECT,
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    CircuitBreaker,
    LoadGenConfig,
    QueryServer,
    RetryPolicy,
    ServerConfig,
    serve_session,
)
from repro.telemetry import Telemetry

N_NODES = 3
ELECTRODES = 4
N_WINDOWS = 4


def _server(config=None, telemetry=None):
    """A small ingested fleet fronted by one server (seed 0)."""
    from repro.core.system import ScaloSystem
    from repro.units import WINDOW_SAMPLES

    kwargs = {"telemetry": telemetry} if telemetry is not None else {}
    system = ScaloSystem(
        n_nodes=N_NODES, electrodes_per_node=ELECTRODES, seed=0, **kwargs
    )
    rng = np.random.default_rng(0)
    template = None
    for _ in range(N_WINDOWS):
        windows = (
            rng.standard_normal(
                (N_NODES, ELECTRODES, WINDOW_SAMPLES)
            ).cumsum(axis=2)
            * 300
        ).round()
        system.ingest(windows)
        if template is None:
            template = windows[0, 0].astype(float)
    engine = QueryEngine(
        controllers=[node.storage for node in system.nodes],
        lsh=system.lsh,
        seizure_flags={node: {0} for node in range(N_NODES)},
        **kwargs,
    )
    server = QueryServer(
        engine,
        config=config if config is not None else ServerConfig(),
        cost_model=QueryCostModel(
            n_nodes=N_NODES, electrodes_per_node=ELECTRODES
        ),
        **kwargs,
    )
    return server, template


class TestRetryPolicy:
    def test_backoff_is_pure_function_of_inputs(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff_ms(42, 0) == policy.backoff_ms(42, 0)
        assert policy.backoff_ms(42, 1) == policy.backoff_ms(42, 1)
        assert RetryPolicy(seed=7).backoff_ms(42, 2) == policy.backoff_ms(
            42, 2
        )

    def test_backoff_bounded_by_base_and_cap(self):
        policy = RetryPolicy(base_ms=10.0, cap_ms=100.0, seed=0)
        for key in range(50):
            for attempt in range(5):
                backoff = policy.backoff_ms(key, attempt)
                assert 10.0 <= backoff <= 100.0

    def test_different_keys_decorrelate(self):
        policy = RetryPolicy(seed=0)
        values = {policy.backoff_ms(key, 0) for key in range(20)}
        assert len(values) > 1

    def test_allows_counts_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(0)
        assert policy.allows(1)
        assert not policy.allows(2)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_ms=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_ms=100.0, cap_ms=50.0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.transitions == [(2.0, "closed", "open")]

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_latches_until_open_ms_then_probes(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, open_ms=100.0)
        )
        breaker.record_failure(0.0)
        assert not breaker.allow(50.0)
        assert breaker.allow(100.0)  # open -> half_open fires here
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, open_ms=100.0)
        )
        breaker.record_failure(0.0)
        breaker.allow(100.0)
        breaker.record_success(110.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.transitions[-1] == (110.0, "half_open", "closed")

    def test_probe_failure_reopens_and_relatches(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, open_ms=100.0)
        )
        breaker.record_failure(0.0)
        breaker.allow(100.0)
        breaker.record_failure(110.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(150.0)  # hold-off restarts at 110
        assert breaker.allow(210.0)

    def test_force_probe_overrides_holdoff(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, open_ms=1e9)
        )
        breaker.record_failure(0.0)
        breaker.force_probe(5.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.force_probe(6.0)  # idempotent outside OPEN
        assert breaker.state is BreakerState.HALF_OPEN

    def test_board_partitions_and_drains_events_once(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1, open_ms=50.0))
        board.breaker(1).record_failure(0.0)
        attempt, latched = board.partition([0, 1, 2], 10.0)
        assert attempt == {0, 2} and latched == {1}
        events = board.pop_events()
        assert events == [(1, 0.0, "closed", "open")]
        assert board.pop_events() == []  # cursor advanced
        attempt, latched = board.partition([0, 1, 2], 60.0)
        assert latched == set()  # half-open probe rejoins
        assert board.pop_events() == [(1, 60.0, "open", "half_open")]

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(open_ms=0.0)


class TestBrownoutController:
    def test_queue_pressure_grades_tiers(self):
        ctrl = BrownoutController(
            BrownoutConfig(queue_tiers=(0.5, 0.75, 0.95))
        )
        assert ctrl.tier(0, 16) == TIER_HEALTHY
        assert ctrl.tier(8, 16) == TIER_REDUCED
        assert ctrl.tier(12, 16) == TIER_CACHE_ONLY
        assert ctrl.tier(16, 16) == TIER_REJECT

    def test_miss_rate_grades_tiers_over_window(self):
        ctrl = BrownoutController(
            BrownoutConfig(miss_tiers=(0.25, 0.5, 0.8), window=4)
        )
        for missed in (True, True, False, False):
            ctrl.record_completion(missed)
        assert ctrl.miss_rate == pytest.approx(0.5)
        assert ctrl.tier(0, 16) == TIER_CACHE_ONLY
        # the window slides: four clean completions heal the tier
        for _ in range(4):
            ctrl.record_completion(False)
        assert ctrl.tier(0, 16) == TIER_HEALTHY

    def test_effective_tier_is_max_of_signals(self):
        ctrl = BrownoutController()
        for _ in range(16):
            ctrl.record_completion(True)
        assert ctrl.tier(0, 16) == TIER_REJECT

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            BrownoutConfig(queue_tiers=(0.9, 0.5, 0.95))
        with pytest.raises(ConfigurationError):
            BrownoutConfig(window=0)


class TestServerBreakers:
    def test_failed_node_charges_timeout_until_breaker_latches(self):
        config = ServerConfig(
            failed_node_timeout_ms=25.0,
            breaker=BreakerConfig(failure_threshold=2, open_ms=1e6),
        )
        server, _ = _server(config)
        server.set_dead_nodes({1})
        spec = QuerySpec("q3", 16.0)
        solo = server.cost_model.cost(spec).latency_ms
        services = []
        for i in range(3):
            server.submit(f"c{i}", spec, (0, N_WINDOWS))
            (response,) = server.step()
            services.append(response.finish_ms - response.start_ms)
        # waves 1 and 2 wait out the dead node; wave 3 skips it free
        assert services[0] == pytest.approx(solo + 25.0)
        assert services[1] == pytest.approx(solo + 25.0)
        assert services[2] == pytest.approx(solo)
        assert server.stats.breaker_opened == 1
        assert server.stats.timeouts_charged == 2

    def test_breaker_transitions_land_in_telemetry(self):
        tel = Telemetry()
        config = ServerConfig(
            breaker=BreakerConfig(failure_threshold=1, open_ms=1e6)
        )
        server, _ = _server(config, telemetry=tel)
        server.set_dead_nodes({2})
        server.submit("a", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        server.step()
        assert tel.registry.counter("serving.breaker.opened", node=2) == 1.0

    def test_recovery_forces_probe_through_latched_breaker(self):
        config = ServerConfig(
            breaker=BreakerConfig(failure_threshold=1, open_ms=1e6)
        )
        server, _ = _server(config)
        server.set_dead_nodes({1})
        server.submit("a", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        (degraded,) = server.step()
        assert degraded.coverage < 1.0
        server.set_dead_nodes(set())  # recovery: probe immediately
        server.submit("b", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        (healed,) = server.step()
        assert healed.coverage == pytest.approx(1.0)
        assert server.stats.breaker_closed == 1

    def test_breakers_disabled_always_charges_timeouts(self):
        config = ServerConfig(breaker=None, failed_node_timeout_ms=25.0)
        server, _ = _server(config)
        server.set_dead_nodes({1})
        spec = QuerySpec("q3", 16.0)
        solo = server.cost_model.cost(spec).latency_ms
        for i in range(4):
            server.submit(f"c{i}", spec, (0, N_WINDOWS))
            (response,) = server.step()
            assert response.finish_ms - response.start_ms == pytest.approx(
                solo + 25.0
            )


class TestServerBrownout:
    def _config(self, **kwargs):
        return ServerConfig(
            max_queue=8,
            brownout=BrownoutConfig(queue_tiers=(0.25, 0.5, 0.95)),
            bucket_capacity=64.0,
            **kwargs,
        )

    def test_tier_tagged_on_responses_and_log(self):
        server, _ = _server(self._config())
        # 4 distinct ranges -> 4 waves pending = queue fraction 0.5
        for i in range(4):
            server.submit("a", QuerySpec("q3", 16.0), (0, i + 1))
        (response, *_rest) = server.step()
        assert response.tier == TIER_CACHE_ONLY
        assert "tier=2" in server.response_log()

    def test_reduced_tier_shrinks_the_scanned_range(self):
        server, _ = _server(self._config(reduced_range_fraction=0.5))
        server.submit("a", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        server.submit("a", QuerySpec("q3", 16.0), (0, 2))
        (response, *_rest) = server.step()
        assert response.tier == TIER_REDUCED
        result = server.result_for(response.request_id)
        # only the most recent half of [0, 4) was scanned
        windows = {row.window_index for row in result.rows}
        assert windows and windows <= {2, 3}

    def test_cache_only_answers_without_samples(self):
        server, template = _server(self._config(cache_only_service_ms=10.0))
        for i in range(4):
            server.submit("a", QuerySpec("q3", 16.0), (0, i + 1))
        (response, *_rest) = server.step()
        assert response.tier == TIER_CACHE_ONLY
        assert response.finish_ms - response.start_ms == pytest.approx(10.0)
        result = server.result_for(response.request_id)
        assert result.rows and all(row.samples.size == 0 for row in result.rows)

    def test_reject_tier_sheds_with_brownout_reason(self):
        # the reject tier engages at 6/8 queued — before queue_full can
        server, _ = _server(ServerConfig(
            max_queue=8,
            brownout=BrownoutConfig(queue_tiers=(0.25, 0.5, 0.75)),
            bucket_capacity=64.0,
        ))
        for i in range(6):
            server.submit("a", QuerySpec("q3", 16.0), (0, (i % 4) + 1),
                          arrival_ms=float(i))
        with pytest.raises(QueryRejected) as exc:
            server.submit("a", QuerySpec("q3", 16.0), (0, 1),
                          arrival_ms=6.0)
        assert exc.value.reason == "brownout"
        assert exc.value.retry_after_ms > 0
        assert server.stats.brownout_rejections == 1
        assert "reason=brownout" in server.response_log()

    def test_brownout_disabled_serves_tier_zero(self):
        server, _ = _server()
        server.submit("a", QuerySpec("q3", 16.0), (0, N_WINDOWS))
        (response,) = server.step()
        assert response.tier == TIER_HEALTHY
        assert server.stats.brownout_waves == {TIER_HEALTHY: 1}


class TestResultRetention:
    def test_lru_bound_evicts_oldest(self):
        tel = Telemetry()
        config = ServerConfig(result_retention=2, bucket_capacity=64.0)
        server, _ = _server(config, telemetry=tel)
        ids = []
        for i in range(3):
            ids.append(
                server.submit("a", QuerySpec("q3", 16.0), (0, i + 1),
                              arrival_ms=float(i))
            )
        server.drain()
        assert server.stats.results_evicted == 1
        assert tel.registry.counter("serving.results.evicted") == 1.0
        server.result_for(ids[1])
        server.result_for(ids[2])
        with pytest.raises(KeyError, match="evicted.*result_retention=2"):
            server.result_for(ids[0])

    def test_access_refreshes_recency(self):
        config = ServerConfig(result_retention=2, bucket_capacity=64.0)
        server, _ = _server(config)
        a = server.submit("a", QuerySpec("q3", 16.0), (0, 1), arrival_ms=0.0)
        b = server.submit("a", QuerySpec("q3", 16.0), (0, 2), arrival_ms=1.0)
        server.drain()
        server.result_for(a)  # touch a: now b is least-recently-used
        c = server.submit("a", QuerySpec("q3", 16.0), (0, 3))
        server.drain()
        server.result_for(a)
        server.result_for(c)
        with pytest.raises(KeyError, match="evicted"):
            server.result_for(b)

    def test_unknown_id_gets_a_plain_keyerror(self):
        server, _ = _server()
        with pytest.raises(KeyError, match="no completed request"):
            server.result_for(999)

    def test_log_retention_bounds_the_response_log(self):
        config = ServerConfig(log_retention=2, bucket_capacity=64.0)
        server, _ = _server(config)
        for i in range(4):
            server.submit("a", QuerySpec("q3", 16.0), (0, (i % 4) + 1),
                          arrival_ms=float(i))
        server.drain()
        assert len(server.response_log().splitlines()) == 2

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(result_retention=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(log_retention=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(default_min_coverage=1.5)


class TestCoverageSLA:
    def test_below_sla_parks_and_reexecutes_on_recovery(self):
        config = ServerConfig(retry=RetryPolicy(max_attempts=3, seed=0))
        server, _ = _server(config)
        server.set_dead_nodes({1})
        rid = server.submit(
            "a", QuerySpec("q3", 16.0), (0, N_WINDOWS), min_coverage=0.9
        )
        (first,) = server.step()
        assert not first.sla_met and first.attempt == 0
        server.set_dead_nodes(set())  # the recovery signal
        assert server.stats.retries == 1
        assert "retry" in server.response_log()
        server.drain()
        final = [r for r in server.responses if r.request_id == rid]
        assert final[-1].attempt == 1
        assert final[-1].sla_met
        assert server.stats.sla_violations == 1  # only the first attempt

    def test_no_retry_policy_means_no_parking(self):
        server, _ = _server()  # retry=None
        server.set_dead_nodes({1})
        server.submit(
            "a", QuerySpec("q3", 16.0), (0, N_WINDOWS), min_coverage=0.9
        )
        server.step()
        server.set_dead_nodes(set())
        assert server.stats.retries == 0
        server.drain()
        assert len(server.responses) == 1

    def test_attempts_are_bounded_by_the_policy(self):
        config = ServerConfig(retry=RetryPolicy(max_attempts=2, seed=0))
        server, _ = _server(config)
        server.set_dead_nodes({1})
        server.submit(
            "a", QuerySpec("q3", 16.0), (0, N_WINDOWS), min_coverage=0.9
        )
        server.step()
        # fake recovery that does not actually help: node 2 dies instead
        server.set_dead_nodes({2})
        server.drain()
        assert server.stats.retries == 1
        # the re-execution also violated, but max_attempts=2 stops there
        server.set_dead_nodes(set())
        assert server.stats.retries == 1

    def test_sla_violation_counted_in_telemetry(self):
        tel = Telemetry()
        server, _ = _server(telemetry=tel)
        server.set_dead_nodes({1})
        server.submit(
            "a", QuerySpec("q3", 16.0), (0, N_WINDOWS), min_coverage=0.9
        )
        server.step()
        assert tel.registry.counter(
            "serving.sla_violation", kind="q3"
        ) == 1.0

    def test_submit_validates_sla(self):
        server, _ = _server()
        with pytest.raises(ConfigurationError):
            server.submit(
                "a", QuerySpec("q3", 16.0), (0, N_WINDOWS), min_coverage=2.0
            )


class TestClientRetries:
    def test_shed_offers_are_retried_and_recovered(self):
        load = LoadGenConfig(n_requests=64, offered_qps=400.0)
        config = ServerConfig(max_queue=4)
        _, plain = serve_session(seed=0, load=load, server_config=config)
        _, retried = serve_session(
            seed=0, load=load, server_config=config,
            client_retry=RetryPolicy(max_attempts=4, seed=1),
        )
        assert plain.shed > 0
        assert retried.client_retries > 0
        assert retried.availability > plain.availability
        # unique-arrival accounting still balances
        assert retried.completed + retried.shed == retried.n_offered

    def test_retries_preserve_determinism(self):
        load = LoadGenConfig(n_requests=48, offered_qps=400.0)
        config = ServerConfig(max_queue=4)
        retry = RetryPolicy(max_attempts=4, seed=1)
        _, a = serve_session(
            seed=0, load=load, server_config=config, client_retry=retry
        )
        _, b = serve_session(
            seed=0, load=load, server_config=config, client_retry=retry
        )
        assert a.response_log == b.response_log
        assert a.client_retries == b.client_retries


@st.composite
def _storm_plans(draw):
    n_nodes = draw(st.integers(min_value=3, max_value=5))
    return FaultPlan.generate(
        n_nodes,
        n_rounds=32,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        n_crashes=draw(st.integers(min_value=0, max_value=n_nodes - 1)),
        reboot_after=draw(st.one_of(st.none(), st.integers(2, 8))),
        n_outages=draw(st.integers(min_value=0, max_value=2)),
        outage_rounds=3,
        n_bit_rot=draw(st.integers(min_value=0, max_value=2)),
        rot_bits=draw(st.sampled_from([1, 8])),
    )


class TestChaosDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(plan=_storm_plans(), seed=st.integers(min_value=0, max_value=99))
    def test_random_storms_replay_byte_identically(self, plan, seed):
        """Random FaultPlans: logs, metrics, and breaker transitions agree."""

        def run():
            telemetry = Telemetry()
            server, report = serve_session(
                n_nodes=plan.n_nodes,
                electrodes=4,
                n_windows=3,
                seed=seed,
                load=LoadGenConfig(
                    n_requests=12, offered_qps=60.0, seed=seed,
                    min_coverage=0.9,
                ),
                server_config=ServerConfig(
                    breaker=BreakerConfig(failure_threshold=2),
                    brownout=BrownoutConfig(),
                    retry=RetryPolicy(seed=seed),
                    default_min_coverage=0.9,
                ),
                telemetry=telemetry,
                fault_plan=plan,
                client_retry=RetryPolicy(seed=seed + 1),
            )
            transitions = (
                server.breakers.transition_log()
                if server.breakers is not None
                else []
            )
            return report, transitions, telemetry.registry.snapshot()

        report_a, transitions_a, metrics_a = run()
        report_b, transitions_b, metrics_b = run()
        assert report_a.response_log == report_b.response_log
        assert transitions_a == transitions_b
        assert metrics_a == metrics_b
        assert report_a == report_b

"""Tests for the discrete-event TDMA simulator."""

import pytest

from repro.errors import NetworkError
from repro.network.packet import BROADCAST, Packet, PayloadKind
from repro.network.simulator import TDMASimulator
from repro.network.tdma import TDMAConfig, TDMASchedule


def _hash_packet(src: int, seq: int, payload: int = 48) -> Packet:
    return Packet.build(src, BROADCAST, PayloadKind.HASHES, bytes(payload),
                        seq=seq)


class TestSlotDiscipline:
    def test_only_slot_owner_transmits(self):
        sim = TDMASimulator(n_nodes=3)
        sim.enqueue(_hash_packet(2, 0))
        # slots 0 and 1 belong to nodes 0 and 1: nothing moves
        assert sim.step_slot() == []
        assert sim.step_slot() == []
        delivered = sim.step_slot()
        assert delivered and all(d.src == 2 for d in delivered)

    def test_time_advances_per_slot(self):
        sim = TDMASimulator(n_nodes=2)
        slot_ms = sim.config.slot_ms()
        sim.step_slot()
        sim.step_slot()
        assert sim.now_ms == pytest.approx(2 * slot_ms)

    def test_broadcast_reaches_all_other_nodes(self):
        sim = TDMASimulator(n_nodes=4)
        sim.enqueue(_hash_packet(0, 0))
        delivered = sim.step_slot()
        assert {d.dst for d in delivered} == {1, 2, 3}

    def test_unicast_reaches_one(self):
        sim = TDMASimulator(n_nodes=4)
        sim.enqueue(Packet.build(0, 2, PayloadKind.SIGNAL, bytes(100)))
        delivered = sim.step_slot()
        assert [d.dst for d in delivered] == [2]

    def test_fifo_per_node(self):
        sim = TDMASimulator(n_nodes=1)
        sim.enqueue(_hash_packet(0, 1))
        sim.enqueue(_hash_packet(0, 2))
        first = sim.run_for(sim.config.slot_ms() * 0.5)
        # single-node broadcast has no receivers; use pending order instead
        assert sim.pending(0) <= 2


class TestTiming:
    def test_all_to_all_drain_time_matches_model(self):
        n_nodes, payload = 5, 48
        sim = TDMASimulator(n_nodes=n_nodes)
        for node in range(n_nodes):
            sim.enqueue(_hash_packet(node, node))
        elapsed = sim.run_until_idle()
        # each node needs its slot once: at most one full frame + slack
        assert elapsed <= 2 * sim.schedule.frame_ms + 1e-9

    def test_latency_grows_with_queue_position(self):
        sim = TDMASimulator(n_nodes=2)
        for i in range(6):
            sim.enqueue(_hash_packet(0, i))
        sim.run_until_idle()
        latencies = sorted(
            {d.packet.header.seq: d.latency_ms for d in sim.deliveries}.items()
        )
        values = [lat for _, lat in latencies]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_saturation_detected(self):
        sim = TDMASimulator(n_nodes=2)
        for i in range(5000):
            sim.enqueue(_hash_packet(0, i & 0xFFFF))
        with pytest.raises(NetworkError):
            sim.run_until_idle(max_ms=10.0)

    def test_goodput_below_radio_rate(self):
        sim = TDMASimulator(n_nodes=2)
        for i in range(50):
            sim.enqueue(Packet.build(0, 1, PayloadKind.SIGNAL, bytes(256),
                                     seq=i))
        sim.run_until_idle()
        assert 0 < sim.goodput_mbps() < sim.config.radio.data_rate_mbps


class TestErrorPolicy:
    def test_lossy_channel_drops_hashes_keeps_signals(self):
        from dataclasses import replace

        from repro.network.radio import LOW_POWER

        radio = replace(LOW_POWER, bit_error_rate=0.002)
        sim = TDMASimulator(n_nodes=2, config=TDMAConfig(radio=radio), seed=3)
        for i in range(80):
            sim.enqueue(Packet.build(0, 1, PayloadKind.HASHES, bytes(128),
                                     seq=i))
            sim.enqueue(Packet.build(0, 1, PayloadKind.SIGNAL, bytes(128),
                                     seq=i))
        sim.run_until_idle(max_ms=500.0)
        assert sim.drops  # the channel did bite
        dropped_kinds = {d.packet.header.kind for d in sim.drops
                         if d.packet.header_ok}
        assert dropped_kinds <= {PayloadKind.HASHES}
        corrupted_delivered = [d for d in sim.deliveries if d.corrupted]
        assert all(
            d.packet.header.kind == PayloadKind.SIGNAL
            for d in corrupted_delivered
        )

    def test_custom_schedule_respected(self):
        config = TDMAConfig()
        schedule = TDMASchedule(config, [1, 1, 0])  # node 1 gets 2/3 slots
        sim = TDMASimulator(n_nodes=2, config=config, schedule=schedule)
        for i in range(4):
            sim.enqueue(Packet.build(1, 0, PayloadKind.SIGNAL, bytes(10),
                                     seq=i))
        sim.step_slot()
        sim.step_slot()
        assert len({d.packet.header.seq for d in sim.deliveries}) == 2


class TestValidation:
    def test_unknown_source_rejected(self):
        sim = TDMASimulator(n_nodes=2)
        with pytest.raises(NetworkError):
            sim.enqueue(_hash_packet(7, 0))

    def test_unknown_destination_rejected(self):
        sim = TDMASimulator(n_nodes=2)
        sim.enqueue(Packet.build(0, 9, PayloadKind.SIGNAL, b"x"))
        with pytest.raises(NetworkError):
            sim.step_slot()

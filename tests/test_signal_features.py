"""Tests for the feature kernels (FFT bands, SBP, NEO, THR, DWT)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal.features import (
    adaptive_threshold,
    fft_band_powers,
    haar_dwt,
    haar_idwt,
    nonlinear_energy,
    spike_band_power,
    spike_band_power_multichannel,
    threshold_crossings,
)


class TestFFTBands:
    def test_power_lands_in_right_band(self):
        fs = 1000.0
        t = np.arange(512) / fs
        signal = np.sin(2 * np.pi * 20 * t)
        bands = [(1, 10), (15, 25), (30, 50)]
        powers = fft_band_powers(signal, bands, fs_hz=fs)
        assert np.argmax(powers) == 1

    def test_empty_band_is_zero(self):
        powers = fft_band_powers(np.ones(64), [(400, 450)], fs_hz=1000)
        assert powers[0] == 0.0

    def test_invalid_band_rejected(self):
        with pytest.raises(ConfigurationError):
            fft_band_powers(np.ones(64), [(10, 5)], fs_hz=1000)

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            fft_band_powers(np.ones((2, 64)), [(1, 5)])


class TestSpikeBandPower:
    def test_mean_absolute(self):
        assert spike_band_power(np.array([1.0, -1.0, 3.0, -3.0])) == 2.0

    def test_multichannel(self):
        data = np.array([[1.0, -1.0], [2.0, -2.0]])
        assert (spike_band_power_multichannel(data) == [1.0, 2.0]).all()

    def test_multichannel_needs_2d(self):
        with pytest.raises(ConfigurationError):
            spike_band_power_multichannel(np.ones(5))


class TestNEO:
    def test_definition(self):
        x = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        energy = nonlinear_energy(x)
        assert energy[2] == pytest.approx(2.0**2 - 1.0 * 1.0)
        assert energy[0] == 0.0 and energy[-1] == 0.0

    def test_emphasises_transients(self):
        rng = np.random.default_rng(0)
        x = 0.1 * rng.standard_normal(200)
        x[100] = 5.0
        energy = nonlinear_energy(x)
        assert np.argmax(energy) in (99, 100, 101)

    def test_needs_1d(self):
        with pytest.raises(ConfigurationError):
            nonlinear_energy(np.zeros((2, 5)))


class TestThreshold:
    def test_simple_crossing(self):
        x = np.array([0.0, 0.0, 5.0, 5.0, 0.0, 5.0])
        crossings = threshold_crossings(x, 1.0, refractory=0)
        assert list(crossings) == [2, 5]

    def test_refractory_suppresses(self):
        x = np.array([0.0, 5.0, 0.0, 5.0, 0.0, 5.0])
        crossings = threshold_crossings(x, 1.0, refractory=2)
        assert list(crossings) == [1, 5]

    def test_initially_above(self):
        x = np.array([5.0, 0.0, 5.0])
        crossings = threshold_crossings(x, 1.0, refractory=0)
        assert list(crossings) == [0, 2]

    def test_adaptive_threshold_scales_with_noise(self):
        rng = np.random.default_rng(0)
        low = adaptive_threshold(rng.normal(scale=0.1, size=5000))
        high = adaptive_threshold(rng.normal(scale=1.0, size=5000))
        assert high > 5 * low

    def test_negative_refractory_rejected(self):
        with pytest.raises(ConfigurationError):
            threshold_crossings(np.zeros(4), 1.0, refractory=-1)


class TestDWT:
    def test_roundtrip_exact(self, rng):
        x = rng.normal(size=256)
        coeffs = haar_dwt(x, levels=4)
        assert np.allclose(haar_idwt(coeffs), x, atol=1e-10)

    def test_coefficient_lengths(self):
        coeffs = haar_dwt(np.zeros(64), levels=3)
        assert [c.shape[0] for c in coeffs] == [8, 8, 16, 32]

    def test_energy_preserved(self, rng):
        x = rng.normal(size=128)
        coeffs = haar_dwt(x, levels=2)
        total = sum(float(np.sum(c**2)) for c in coeffs)
        assert total == pytest.approx(float(np.sum(x**2)))

    def test_indivisible_length_rejected(self):
        with pytest.raises(ConfigurationError):
            haar_dwt(np.zeros(100), levels=3)

    def test_constant_signal_has_zero_details(self):
        coeffs = haar_dwt(np.ones(32), levels=2)
        assert np.allclose(coeffs[1], 0)
        assert np.allclose(coeffs[2], 0)

"""Shared fixtures: small, fast synthetic workloads with fixed seeds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.movement import MovementSession, generate_movement_session
from repro.datasets.spikes import SpikeDataset, generate_spikes
from repro.datasets.synthetic_ieeg import SyntheticIEEG, generate_ieeg


@pytest.fixture(scope="session")
def small_recording() -> SyntheticIEEG:
    """A 3-node recording with one propagating seizure (low fs for speed)."""
    return generate_ieeg(
        n_nodes=3,
        n_electrodes=4,
        duration_s=1.5,
        fs_hz=6000,
        n_seizures=1,
        seizure_duration_s=0.4,
        seed=2,
    )


@pytest.fixture(scope="session")
def spike_dataset() -> SpikeDataset:
    """A short MEArec-profile spike recording."""
    return generate_spikes("mearec", duration_s=2.0, seed=0)


@pytest.fixture(scope="session")
def movement_session() -> MovementSession:
    """A small movement session for decoder tests."""
    return generate_movement_session(
        n_nodes=3, electrodes_per_node=8, n_steps=300,
        window_samples=80, seed=0,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)

"""Tests for the three movement-intent pipelines."""

import numpy as np
import pytest

from repro.apps.movement import (
    MovementClassifierApp,
    MovementKalmanApp,
    MovementNNApp,
    generate_movement_session,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def session():
    return generate_movement_session(
        n_nodes=3, electrodes_per_node=8, n_steps=300,
        window_samples=80, seed=0,
    )


@pytest.fixture(scope="module")
def split(session):
    return session.split()


class TestSession:
    def test_shapes(self, session):
        assert session.states.shape == (300, 4)
        assert session.features.shape == (300, 24)
        assert session.labels.shape == (300,)

    def test_labels_are_direction_classes(self, session):
        assert set(np.unique(session.labels)) <= set(range(9))

    def test_node_features_partition(self, session):
        parts = session.node_features(10)
        assert len(parts) == 3
        assert np.allclose(np.concatenate(parts), session.features[10])

    def test_split_chronological(self, session):
        train, test = session.split(0.5)
        assert train.n_steps == 150 and test.n_steps == 150
        assert np.allclose(train.features[-1], session.features[149])

    def test_bad_split_rejected(self, session):
        with pytest.raises(ConfigurationError):
            session.split(1.5)

    def test_deterministic(self):
        a = generate_movement_session(n_steps=50, seed=3)
        b = generate_movement_session(n_steps=50, seed=3)
        assert np.array_equal(a.features, b.features)


class TestClassifier:
    def test_beats_chance_clearly(self, split):
        train, test = split
        app = MovementClassifierApp.train(train)
        assert app.accuracy(test) > 0.4  # chance is ~1/9

    def test_distributed_equals_centralised(self, split):
        train, test = split
        app = MovementClassifierApp.train(train)
        for t in range(0, test.n_steps, 37):
            assert app.decode_step(test, t) == app.svm.predict(test.features[t])

    def test_wire_bytes(self, split):
        train, _ = split
        app = MovementClassifierApp.train(train)
        assert app.wire_bytes_per_node == 4 * app.svm.n_classes


class TestKalman:
    def test_velocity_decoding(self, split):
        train, test = split
        app = MovementKalmanApp.train(train)
        assert app.velocity_correlation(test) > 0.8

    def test_wire_bytes_per_electrode(self, split):
        train, _ = split
        app = MovementKalmanApp.train(train)
        assert app.wire_bytes_per_node == 4 * 8  # 4 B per electrode


class TestNN:
    def test_velocity_decoding(self, split):
        train, test = split
        app = MovementNNApp.train(train, epochs=120)
        assert app.velocity_correlation(test) > 0.7

    def test_wire_bytes_per_hidden_unit(self, split):
        train, _ = split
        app = MovementNNApp.train(train, n_hidden=32, epochs=10)
        assert app.wire_bytes_per_node == 4 * 32

    def test_distributed_equals_centralised(self, split):
        train, test = split
        app = MovementNNApp.train(train, epochs=30)
        step = 5
        distributed = app.decode_step(test, step)
        centralised = app.nn.forward(test.features[step])
        assert np.allclose(distributed, centralised, atol=1e-10)

"""Tests: the full Fig. 2b fabric, and query/application coexistence."""

import pytest

from repro.apps.queries import QueryCostModel, QuerySpec
from repro.hardware.catalog import catalog_names, total_area_kge
from repro.hardware.node_fabric import (
    MAD_PE,
    block_unit_ids,
    mad_cluster_ids,
    node_area_kge,
    node_static_power_mw,
    standard_node_fabric,
)
from repro.linalg.tiling import BLOCK_WAYS, MAD_CLUSTER_SIZE
from repro.scheduler.ilp import Flow, SchedulerProblem
from repro.scheduler.model import (
    dtw_similarity_task,
    hash_similarity_task,
    seizure_detection_task,
)
from repro.units import ELECTRODES_PER_NODE, NODE_POWER_CAP_MW


class TestNodeFabric:
    def test_full_catalog_plus_mad_cluster(self):
        fabric = standard_node_fabric()
        assert len(fabric.pes) == len(catalog_names()) + MAD_CLUSTER_SIZE - 1

    def test_mad_cluster_size(self):
        fabric = standard_node_fabric()
        assert len(mad_cluster_ids(fabric)) == MAD_CLUSTER_SIZE
        assert len(block_unit_ids(fabric)) == BLOCK_WAYS

    def test_area_accounting(self):
        from repro.hardware.catalog import get_pe

        expected = total_area_kge() + (MAD_CLUSTER_SIZE - 1) * get_pe(
            MAD_PE
        ).area_kge
        assert node_area_kge() == pytest.approx(expected)

    def test_worst_case_static_power_under_half_cap(self):
        """Even with every PE leaking, static power leaves headroom —
        the premise of SCALO's power-gated flexibility."""
        assert node_static_power_mw() < NODE_POWER_CAP_MW / 2

    def test_pipelines_wire_on_the_standard_fabric(self):
        fabric = standard_node_fabric()
        fabric.connect("FFT", "SVM")
        pipeline = fabric.pipeline("detect", ["FFT", "SVM"])
        assert pipeline.latency_ms > 0


class TestQueryCoexistence:
    """§2.2: interactive querying must not disrupt the running apps."""

    def _seizure_flows(self):
        return [
            Flow(seizure_detection_task(), electrode_cap=ELECTRODES_PER_NODE),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
                 electrode_cap=ELECTRODES_PER_NODE),
        ]

    def test_query_power_fits_alongside_the_application(self):
        # a hash-based Q2 costs ~3 mW (Fig. 10); reserve it from the cap
        query_cost = QueryCostModel(n_nodes=11).cost(
            QuerySpec("q2", 110.0, 0.05)
        )
        assert query_cost.power_mw < 5.0

        baseline = SchedulerProblem(
            11, self._seizure_flows(), power_budget_mw=NODE_POWER_CAP_MW
        ).solve()
        with_query = SchedulerProblem(
            11, self._seizure_flows(),
            power_budget_mw=NODE_POWER_CAP_MW - query_cost.power_mw,
        ).solve()

        # detection keeps running at a meaningful rate during the query
        detect = with_query.allocation("seizure_detection")
        assert detect.electrodes_per_node > 48
        # and the degradation is graceful, not a collapse
        assert with_query.weighted_mbps() > 0.5 * baseline.weighted_mbps()

    def test_query_uses_the_external_radio_not_the_tdma_medium(self):
        # the intra-SCALO medium stays with the application flows: the
        # query's transmit leg rides the 46 Mbps external radio
        model = QueryCostModel(n_nodes=11)
        assert model.external_radio.data_rate_mbps == 46.0

    def test_dtw_query_would_not_coexist(self):
        """The §6.4 point of hash-based querying: an exact-DTW Q2 needs
        ~15 mW and cannot run next to anything."""
        dtw_cost = QueryCostModel(n_nodes=11).cost(
            QuerySpec("q2", 110.0, 0.05, use_hash=False)
        )
        remaining = NODE_POWER_CAP_MW - dtw_cost.power_mw
        import pytest as _pytest

        from repro.errors import SchedulingError

        with _pytest.raises(SchedulingError):
            SchedulerProblem(
                11, self._seizure_flows(), power_budget_mw=max(remaining, 0.1)
            ).solve()

"""Tests for the RC/MA range coder and the LIC integer coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lic import (
    lic_compress,
    lic_decompress,
    lic_ratio,
    unzigzag,
    zigzag,
)
from repro.compression.range_coder import rc_compress, rc_decompress
from repro.errors import ConfigurationError


class TestRangeCoder:
    def test_roundtrip_text(self):
        data = b"the quick brown implant hashes the quick brown signal" * 5
        for order in (0, 1):
            assert rc_decompress(rc_compress(data, order)) == data

    def test_roundtrip_random(self, rng):
        data = bytes(rng.integers(0, 256, 700, dtype=np.uint8))
        assert rc_decompress(rc_compress(data)) == data

    def test_empty(self):
        assert rc_decompress(rc_compress(b"")) == b""

    def test_markov_beats_order0_on_correlated_data(self, rng):
        walk = np.clip(np.cumsum(rng.normal(0, 2, 4000)), -120, 120)
        data = bytes((walk + 128).astype(np.uint8))
        assert len(rc_compress(data, order=1)) < len(rc_compress(data, order=0))

    def test_compresses_skewed_data(self, rng):
        data = bytes(rng.choice([7, 7, 7, 7, 9], size=2000).astype(np.uint8))
        assert len(rc_compress(data, order=0)) < len(data) / 2

    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            rc_compress(b"x", order=2)

    def test_truncated_rejected(self):
        with pytest.raises(ConfigurationError):
            rc_decompress(b"ab")

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=300), st.integers(0, 1))
    def test_roundtrip_property(self, data, order):
        assert rc_decompress(rc_compress(data, order)) == data


class TestLIC:
    def test_zigzag_roundtrip(self):
        values = np.array([-5, -1, 0, 1, 7, -32768, 32767])
        assert (unzigzag(zigzag(values)) == values).all()

    def test_zigzag_ordering(self):
        # small magnitudes map to small codes
        assert zigzag(np.array([0]))[0] == 0
        assert zigzag(np.array([-1]))[0] == 1
        assert zigzag(np.array([1]))[0] == 2

    @pytest.mark.parametrize("order", [1, 2])
    def test_roundtrip_smooth(self, order, rng):
        samples = (1000 * np.sin(np.linspace(0, 40, 3000))
                   + 20 * rng.standard_normal(3000)).astype(np.int64)
        out = lic_decompress(lic_compress(samples, order))
        assert (out == samples).all()

    def test_roundtrip_adversarial_jumps(self, rng):
        samples = rng.integers(-30000, 30000, 600)
        assert (lic_decompress(lic_compress(samples)) == samples).all()

    def test_compresses_neural_like_data(self, rng):
        samples = (500 * np.sin(np.linspace(0, 40, 4000))
                   + 10 * rng.standard_normal(4000)).astype(np.int64)
        assert lic_ratio(samples) > 1.5

    def test_second_order_wins_on_smooth_ramps(self):
        ramp = np.arange(0, 30000, 7, dtype=np.int64)
        assert len(lic_compress(ramp, order=2)) < len(lic_compress(ramp, order=1))

    def test_single_sample(self):
        samples = np.array([12345])
        assert (lic_decompress(lic_compress(samples)) == samples).all()

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            lic_compress(np.zeros((2, 3)))

    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            lic_compress(np.arange(10), order=3)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-32768, 32767), min_size=1, max_size=400),
           st.integers(1, 2))
    def test_roundtrip_property(self, values, order):
        samples = np.asarray(values, dtype=np.int64)
        assert (lic_decompress(lic_compress(samples, order)) == samples).all()

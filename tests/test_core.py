"""Tests for thermal model, clock sync, nodes, system, architectures."""

import numpy as np
import pytest

from repro.core.architectures import (
    DESIGNS,
    TASKS,
    architecture_throughput,
    fig8a_table,
)
from repro.core.clock_sync import (
    NodeClock,
    SNTPSynchroniser,
    TARGET_PRECISION_US,
)
from repro.core.node import ScaloNode
from repro.core.system import ScaloSystem
from repro.core.thermal import (
    check_placement,
    max_implants,
    relative_temperature_rise,
    temperature_rise_c,
)
from repro.errors import ConfigurationError


class TestThermal:
    def test_paper_decay_points(self):
        assert relative_temperature_rise(10.0) == pytest.approx(0.05, rel=1e-6)
        assert relative_temperature_rise(20.0) == pytest.approx(0.02, rel=1e-6)

    def test_rise_scales_with_power(self):
        assert temperature_rise_c(15.0, 0.0) == pytest.approx(
            2 * temperature_rise_c(7.5, 0.0)
        )

    def test_paper_max_implants(self):
        assert max_implants() == 60  # paper: "up to 60 SCALO implants"

    def test_sixty_implants_safe_at_cap(self):
        check = check_placement(60, per_node_power_mw=15.0)
        assert check.safe

    def test_overpacking_rejected(self):
        with pytest.raises(ConfigurationError):
            check_placement(61)

    def test_tighter_spacing_fits_more_but_heats_more(self):
        assert max_implants(spacing_mm=10.0) > max_implants(spacing_mm=20.0)
        loose = check_placement(30, spacing_mm=20.0).worst_rise_c
        tight = check_placement(30, spacing_mm=10.0).worst_rise_c
        assert tight > loose


class TestClockSync:
    def test_converges_within_rounds(self):
        clocks = [NodeClock(offset_us=o) for o in (-400.0, 0.0, 250.0, 90.0)]
        report = SNTPSynchroniser(seed=0).synchronise(clocks, server_index=1)
        assert report.synchronised
        assert report.worst_offset_us <= TARGET_PRECISION_US
        assert report.airtime_ms > 0

    def test_drift_accumulates(self):
        clock = NodeClock(offset_us=0.0, drift_ppm=1.0)
        clock.advance(3600.0)
        assert clock.offset_us == pytest.approx(3600.0)

    def test_empty_clock_list_rejected(self):
        with pytest.raises(ConfigurationError):
            SNTPSynchroniser().synchronise([])


class TestScaloNode:
    @pytest.fixture()
    def node(self):
        return ScaloNode(node_id=0, n_electrodes=4,
                         nvm_capacity_bytes=16 * 1024 * 1024)

    def test_ingest_stores_and_hashes(self, node, rng):
        windows = rng.normal(size=(4, 120))
        signatures = node.ingest_window(windows)
        assert len(signatures) == 4
        assert node.storage.has_window(0, 0)
        assert node.read_window(2, 0).shape == (120,)

    def test_check_remote_hashes_self_match(self, node, rng):
        windows = rng.normal(size=(4, 120)).cumsum(axis=1)
        signatures = node.ingest_window(windows)
        matches = node.check_remote_hashes(signatures)
        assert matches  # identical windows must collide

    def test_wrong_shape_rejected(self, node, rng):
        with pytest.raises(ConfigurationError):
            node.ingest_window(rng.normal(size=(3, 120)))

    def test_power_ledger(self, node):
        assert node.adc_power_mw() == pytest.approx(4 * 0.03)
        assert node.idle_power_mw() > 0
        assert node.within_power_cap()


class TestScaloSystem:
    @pytest.fixture()
    def system(self):
        return ScaloSystem(n_nodes=3, electrodes_per_node=4)

    def test_broadcast_and_unpack(self, system, rng):
        windows = rng.normal(size=(3, 4, 120))
        signatures = system.ingest(windows)
        system.broadcast_hashes(0, signatures[0])
        packets = system.drain_inbox(1)
        assert len(packets) == 1
        assert system.unpack_hashes(packets[0]) == signatures[0]
        assert system.drain_inbox(1) == []  # drained

    def test_clock_sync(self, system):
        report = system.synchronise_clocks()
        assert report.synchronised

    def test_thermal_check(self, system):
        assert system.thermal_check().safe

    def test_tdma_schedule(self, system):
        frame = system.default_tdma_schedule(slots_per_node=2)
        assert len(frame.slot_owners) == 6

    def test_shared_lsh_across_nodes(self, system, rng):
        window = rng.normal(size=120)
        sigs = [node.lsh.hash_window(window) for node in system.nodes]
        assert sigs[0] == sigs[1] == sigs[2]


class TestArchitectures:
    @pytest.fixture(scope="class")
    def table(self):
        return fig8a_table(n_nodes=11, power_budget_mw=15.0)

    def test_grid_complete(self, table):
        assert set(table) == set(DESIGNS)
        for row in table.values():
            assert set(row) == set(TASKS)

    def test_scalo_wins_everywhere(self, table):
        for task in TASKS:
            best = max(table[d][task] for d in DESIGNS)
            assert table["SCALO"][task] == pytest.approx(best, rel=1e-6)

    def test_scalo_10x_central_for_local_tasks(self, table):
        # 11 distributed nodes vs one processor
        ratio = table["SCALO"]["seizure_detection"] / table["Central"][
            "seizure_detection"
        ]
        assert ratio == pytest.approx(11.0, rel=0.01)

    def test_mi_kf_ties_between_scalo_and_central(self, table):
        assert table["SCALO"]["mi_kf"] == pytest.approx(
            table["Central"]["mi_kf"], rel=0.01
        )

    def test_central_nohash_sorting_gap(self, table):
        """Paper: Central No-Hash is ~24.5x below Central for sorting."""
        ratio = table["Central"]["spike_sorting"] / table["Central No-Hash"][
            "spike_sorting"
        ]
        assert 15 <= ratio <= 35

    def test_halo_sorting_below_central_nohash(self, table):
        """Paper: HALO+NVM sorts ~40 % slower than even Central No-Hash."""
        assert (
            table["HALO+NVM"]["spike_sorting"]
            < table["Central No-Hash"]["spike_sorting"]
        )

    def test_halo_matches_central_on_detection_and_svm(self, table):
        for task in ("seizure_detection", "mi_svm"):
            assert table["HALO+NVM"][task] == pytest.approx(
                table["Central"][task], rel=1e-6
            )

    def test_halo_10_to_100x_below_central_elsewhere(self, table):
        for task in ("signal_similarity", "mi_kf", "mi_nn"):
            ratio = table["Central"][task] / table["HALO+NVM"][task]
            assert 5 <= ratio <= 150

    def test_similarity_hash_advantage_centralised(self, table):
        """Paper: Central No-Hash ~250x below Central for similarity."""
        ratio = table["Central"]["signal_similarity"] / table[
            "Central No-Hash"
        ]["signal_similarity"]
        assert ratio > 50

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigurationError):
            architecture_throughput("Quantum", "mi_svm")

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            architecture_throughput("SCALO", "tea_making")

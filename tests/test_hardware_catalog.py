"""Tests for the Table 1 PE catalog."""

import pytest

from repro.errors import UnknownPEError
from repro.hardware.catalog import (
    PE_CATALOG,
    SCALO_ONLY_PES,
    catalog_names,
    format_table1,
    get_pe,
    total_area_kge,
)


def test_catalog_has_all_table1_rows():
    assert len(PE_CATALOG) == 31


def test_paper_values_spot_checks():
    xcor = get_pe("XCOR")
    assert xcor.max_freq_mhz == 85
    assert xcor.leakage_uw == 377.00
    assert xcor.sram_uw == 306.88
    assert xcor.dyn_uw_per_electrode == 44.11
    assert xcor.latency_ms == 4.00
    assert xcor.area_kge == 81

    dtw = get_pe("DTW")
    assert dtw.latency_ms == 0.003
    assert dtw.max_freq_mhz == 50

    inv = get_pe("INV")
    assert inv.latency_ms == 30
    assert inv.area_kge == 167


def test_data_dependent_pes_have_no_latency():
    for name in ("AES", "LZ", "MA", "RC", "LIC"):
        assert get_pe(name).data_dependent
        assert get_pe(name).latency_ms is None


def test_sc_latency_range():
    sc = get_pe("SC")
    assert sc.latency_ms == 0.03
    assert sc.latency_max_ms == 4.0


def test_static_power_sums_leakage_and_sram():
    bbf = get_pe("BBF")
    assert bbf.static_uw == pytest.approx(66.00 + 19.88)


def test_unknown_pe_raises():
    with pytest.raises(UnknownPEError):
        get_pe("NOPE")


def test_scalo_only_pes_are_in_catalog():
    assert SCALO_ONLY_PES <= set(PE_CATALOG)


def test_catalog_names_order_matches_paper():
    names = catalog_names()
    assert names[0] == "ADD"
    assert names[-1] == "XCOR"


def test_total_area_positive_and_additive():
    total = total_area_kge()
    assert total == pytest.approx(
        sum(get_pe(n).area_kge for n in catalog_names())
    )
    assert total_area_kge(["ADD", "SUB"]) == pytest.approx(68 + 69)


def test_format_table1_contains_every_pe():
    text = format_table1()
    for name in catalog_names():
        assert name in text

"""Tests for the compression substrate (bitstream, codecs, LZ)."""

import numpy as np
import pytest

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.dictionary import (
    dictionary_decode,
    dictionary_encode,
    frequency_dictionary,
)
from repro.compression.elias import (
    decode_gamma,
    decode_gamma_sequence,
    encode_gamma,
    encode_gamma_sequence,
)
from repro.compression.hash_codec import (
    compression_ratio,
    dcomp_decompress,
    hcomp_compress,
)
from repro.compression.lz import lz_compress, lz_decompress
from repro.compression.rle import rle_decode, rle_encode
from repro.errors import ConfigurationError


class TestBitstream:
    def test_roundtrip_bits(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b1, 1)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bit() == 1

    def test_unary(self):
        writer = BitWriter()
        writer.write_unary(3)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read_unary() == 3

    def test_overflow_value_rejected(self):
        writer = BitWriter()
        with pytest.raises(ConfigurationError):
            writer.write_bits(4, 2)

    def test_exhausted_stream_rejected(self):
        reader = BitReader(b"", 0)
        with pytest.raises(ConfigurationError):
            reader.read_bit()

    def test_bit_length_cap(self):
        with pytest.raises(ConfigurationError):
            BitReader(b"\x00", 9)


class TestElias:
    @pytest.mark.parametrize("value", [1, 2, 3, 7, 8, 100, 65535])
    def test_roundtrip(self, value):
        writer = BitWriter()
        encode_gamma(writer, value)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert decode_gamma(reader) == value

    def test_sequence_roundtrip(self):
        values = [1, 5, 2, 100, 3, 1, 1]
        data, bit_length = encode_gamma_sequence(values)
        assert decode_gamma_sequence(data, len(values), bit_length) == values

    def test_small_values_are_short(self):
        writer = BitWriter()
        encode_gamma(writer, 1)
        assert writer.bit_length == 1

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_gamma(BitWriter(), 0)


class TestRLE:
    def test_roundtrip(self):
        symbols = [1, 1, 1, 2, 2, 3, 1]
        assert rle_decode(rle_encode(symbols)) == symbols

    def test_runs(self):
        assert rle_encode([5, 5, 5]) == [(5, 3)]

    def test_empty(self):
        assert rle_encode([]) == []
        assert rle_decode([]) == []

    def test_bad_run_rejected(self):
        with pytest.raises(ConfigurationError):
            rle_decode([(1, 0)])


class TestDictionary:
    def test_frequency_order(self):
        dictionary = frequency_dictionary([3, 3, 3, 1, 1, 7])
        assert dictionary == [3, 1, 7]

    def test_tie_break_by_value(self):
        assert frequency_dictionary([5, 2]) == [2, 5]

    def test_roundtrip(self):
        symbols = [4, 4, 2, 9, 4]
        indexes, dictionary = dictionary_encode(symbols)
        assert dictionary_decode(indexes, dictionary) == symbols

    def test_missing_symbol_rejected(self):
        with pytest.raises(ConfigurationError):
            dictionary_encode([1, 2], dictionary=[1])

    def test_bad_index_rejected(self):
        with pytest.raises(ConfigurationError):
            dictionary_decode([5], [1, 2])


class TestHashCodec:
    def test_roundtrip_skewed_stream(self, rng):
        hashes = [int(x) for x in rng.choice([3, 3, 3, 3, 7, 9], size=400)]
        assert dcomp_decompress(hcomp_compress(hashes)) == hashes

    def test_roundtrip_uniform_stream(self, rng):
        hashes = [int(x) for x in rng.integers(0, 256, 300)]
        assert dcomp_decompress(hcomp_compress(hashes)) == hashes

    def test_compresses_correlated_hashes(self, rng):
        # temporally-correlated brain signals produce runs of equal hashes
        hashes = []
        value = 5
        for _ in range(500):
            if rng.random() < 0.1:
                value = int(rng.integers(0, 8))
            hashes.append(value)
        assert compression_ratio(hashes) > 2.0

    def test_single_value(self):
        assert dcomp_decompress(hcomp_compress([42])) == [42]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            hcomp_compress([])

    def test_wide_values_rejected(self):
        with pytest.raises(ConfigurationError):
            hcomp_compress([256])

    def test_truncated_blob_rejected(self):
        blob = hcomp_compress([1, 2, 3])
        with pytest.raises(ConfigurationError):
            dcomp_decompress(blob[:3])


class TestLZ:
    def test_roundtrip_repetitive(self):
        data = b"abcabcabcabc" * 20
        assert lz_decompress(lz_compress(data)) == data
        assert len(lz_compress(data)) < len(data)

    def test_roundtrip_random(self, rng):
        data = bytes(rng.integers(0, 256, 500, dtype=np.uint8))
        assert lz_decompress(lz_compress(data)) == data

    def test_empty(self):
        assert lz_decompress(lz_compress(b"")) == b""

    def test_truncated_rejected(self):
        blob = lz_compress(b"hello world hello world")
        with pytest.raises(ConfigurationError):
            lz_decompress(blob[: len(blob) // 2])

    def test_hcomp_close_to_lz_on_hash_streams(self, rng):
        """The paper: HCOMP's ratio is within ~10 % of LZ on hash data."""
        hashes = []
        value = 3
        for _ in range(2000):
            if rng.random() < 0.15:
                value = int(rng.integers(0, 16))
            hashes.append(value)
        hcomp_size = len(hcomp_compress(hashes))
        lz_size = len(lz_compress(bytes(hashes)))
        assert hcomp_size < 1.5 * lz_size

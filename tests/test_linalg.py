"""Tests for fixed point, MAD/ADD/SUB, Gauss-Jordan INV, and tiling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.linalg.fixed import (
    from_fixed,
    quantisation_error,
    quantise_roundtrip,
    to_fixed,
)
from repro.linalg.inverse import (
    gauss_jordan_inverse,
    inv_nvm_traffic_bytes,
    inverse_operation_count,
)
from repro.linalg.mad import (
    PE_REGISTER_BYTES,
    PostOp,
    fits_in_registers,
    mad,
    mad_operation_count,
    matrix_add,
    matrix_sub,
)
from repro.linalg.tiling import (
    block_multiply,
    max_square_dim_in_registers,
    needs_nvm,
    split_even,
)


class TestFixedPoint:
    def test_roundtrip_small_values(self, rng):
        values = rng.uniform(-10, 10, 100)
        error = quantisation_error(values)
        assert error <= 2.0 ** -9  # half an LSB at Q6.9, rounded

    def test_saturation(self):
        fixed = to_fixed(np.array([1e6, -1e6]))
        assert fixed[0] == 32767 and fixed[1] == -32768

    def test_from_fixed_scale(self):
        assert from_fixed(np.array([1 << 9], dtype=np.int16))[0] == 1.0

    def test_bad_frac_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            to_fixed(np.zeros(1), frac_bits=16)

    def test_idempotent(self, rng):
        values = rng.uniform(-3, 3, 50)
        once = quantise_roundtrip(values)
        twice = quantise_roundtrip(once)
        assert np.array_equal(once, twice)


class TestMAD:
    def test_matrix_vector(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        x = np.array([1.0, 1.0])
        assert np.allclose(mad(a, x, c=1.0), [4.0, 8.0])

    def test_relu_postop(self):
        a = np.array([[1.0], [-1.0]])
        out = mad(a, np.array([2.0]), post=PostOp(relu=True))
        assert out.tolist() == [2.0, 0.0]

    def test_normalise_postop(self):
        post = PostOp(normalise=True, mean=1.0, std=2.0)
        assert post.apply(np.array([5.0])).tolist() == [2.0]

    def test_normalise_bad_std_rejected(self):
        with pytest.raises(ConfigurationError):
            PostOp(normalise=True, std=0.0).apply(np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            mad(np.zeros((2, 3)), np.zeros(4))

    def test_add_sub(self):
        a, b = np.ones((2, 2)), np.full((2, 2), 3.0)
        assert (matrix_add(a, b) == 4.0).all()
        assert (matrix_sub(b, a) == 2.0).all()

    def test_register_capacity(self):
        small = np.zeros((64, 64))  # 8 KB at 2 B/element
        assert fits_in_registers(small)
        big = np.zeros((128, 128))  # 32 KB
        assert not fits_in_registers(big)
        assert PE_REGISTER_BYTES == 16 * 1024

    def test_operation_count(self):
        assert mad_operation_count((4, 5), x_cols=2) == 40


class TestInverse:
    def test_inverse_correct(self, rng):
        m = rng.normal(size=(10, 10)) + 10 * np.eye(10)
        inv = gauss_jordan_inverse(m)
        assert np.allclose(inv @ m, np.eye(10), atol=1e-9)

    def test_needs_pivoting(self):
        # zero on the diagonal forces a row swap
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        inv = gauss_jordan_inverse(m)
        assert np.allclose(inv, m)

    def test_singular_rejected(self):
        with pytest.raises(ConfigurationError):
            gauss_jordan_inverse(np.ones((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            gauss_jordan_inverse(np.zeros((2, 3)))

    def test_operation_count_cubic(self):
        assert inverse_operation_count(10) == 2000

    def test_nvm_traffic_quadratic(self):
        assert inv_nvm_traffic_bytes(384) == 3 * 384 * 384 * 2


class TestTiling:
    def test_block_multiply_matches_dense(self, rng):
        a = rng.normal(size=(9, 7))
        b = rng.normal(size=(7, 11))
        assert np.allclose(block_multiply(a, b), a @ b)

    def test_block_multiply_small_matrices(self, rng):
        a = rng.normal(size=(1, 1))
        b = rng.normal(size=(1, 3))
        assert np.allclose(block_multiply(a, b), a @ b)

    def test_split_even(self):
        assert split_even(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert split_even(2, 4) == [(0, 1), (1, 2)]

    def test_needs_nvm_threshold(self):
        dim = max_square_dim_in_registers()
        assert not needs_nvm(dim, dim)
        assert needs_nvm(dim + 1, dim + 1)

    def test_bad_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            block_multiply(np.zeros((2, 2)), np.zeros((2, 2)), ways=3)

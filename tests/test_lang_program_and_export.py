"""Tests: multi-statement programs, CSV export, sensory feedback."""

import numpy as np
import pytest

from repro.apps.stimulation import Stimulator, sensory_feedback_events
from repro.errors import ConfigurationError, QuerySyntaxError
from repro.eval.export import EXPORTERS, export_fig8a, export_fig13
from repro.lang.parser import parse_program


class TestParseProgram:
    def test_semicolon_separated(self):
        chains = parse_program(
            "var a = stream.window(wsize=4ms).fft();"
            "var b = stream.window(wsize=50ms).sbp()"
        )
        assert [c.var_name for c in chains] == ["a", "b"]

    def test_blank_line_separated_multiline_statements(self):
        program = """
var seizure = stream.window(wsize=4ms)
.fft().svm()

var movements = stream.window(wsize=50ms).sbp()
.kf(params)
"""
        chains = parse_program(program)
        assert [c.var_name for c in chains] == ["seizure", "movements"]
        assert chains[0].call_names == ["window", "fft", "svm"]
        assert chains[1].call_names == ["window", "sbp", "kf"]

    def test_comments_skipped(self):
        chains = parse_program(
            "// the detection chain\nstream.window(wsize=4ms).fft()"
        )
        assert len(chains) == 1

    def test_empty_program_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_program("\n// nothing here\n")


class TestExport:
    def test_fig8a_csv(self, tmp_path):
        export_fig8a(tmp_path)
        content = (tmp_path / "fig8a.csv").read_text()
        assert content.splitlines()[0].startswith("design,")
        assert "SCALO" in content and "HALO+NVM" in content

    def test_fig13_csv(self, tmp_path):
        export_fig13(tmp_path)
        content = (tmp_path / "fig13.csv").read_text()
        assert "Low Power" in content

    def test_exporter_registry_covers_every_figure(self):
        assert set(EXPORTERS) == {
            "fig8a", "fig8b", "fig8c", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15",
        }


class TestSensoryFeedback:
    def test_contact_triggers_stimulation(self):
        stimulator = Stimulator(0, 4)
        velocities = np.zeros((10, 2))
        velocities[3] = [2.0, 0.0]  # one contact event
        events = sensory_feedback_events(velocities, stimulator, step_ms=50.0)
        assert len(events) == 1
        assert events[0].time_ms == pytest.approx(150.0)

    def test_sustained_contact_respects_refractory(self):
        stimulator = Stimulator(0, 4)
        velocities = np.full((10, 2), 3.0)  # contact every 50 ms step
        events = sensory_feedback_events(velocities, stimulator, step_ms=50.0)
        # refractory 100 ms -> at most every other step fires
        assert 1 <= len(events) <= 5

    def test_idle_movement_never_stimulates(self):
        stimulator = Stimulator(0, 4)
        events = sensory_feedback_events(
            0.1 * np.ones((20, 2)), stimulator, step_ms=50.0
        )
        assert events == []

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            sensory_feedback_events(np.zeros((5, 1)), Stimulator(0, 4), 50.0)

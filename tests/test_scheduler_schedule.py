"""Tests for schedule materialisation and the dataflow IR."""

import pytest

from repro.errors import CompilationError, SchedulingError
from repro.scheduler.dataflow import OPERATOR_PES, DataflowGraph
from repro.scheduler.ilp import Flow, SchedulerProblem
from repro.scheduler.model import seizure_detection_task, spike_sorting_task
from repro.scheduler.schedule import clock_divider_for_load, materialise


class TestClockDividers:
    def test_full_load_runs_at_max(self):
        assert clock_divider_for_load("DTW", 96) == 1

    def test_half_load_divides_by_two(self):
        assert clock_divider_for_load("DTW", 48) == 2

    def test_light_load_divides_deep(self):
        assert clock_divider_for_load("DTW", 6) == 16

    def test_zero_load_parks_the_clock(self):
        assert clock_divider_for_load("DTW", 0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(SchedulingError):
            clock_divider_for_load("DTW", -1)


class TestMaterialise:
    def test_emits_dividers_and_frame(self):
        schedule = SchedulerProblem(
            4,
            [Flow(seizure_detection_task(), electrode_cap=48)],
        ).solve()
        materialised = materialise(schedule)
        assert set(materialised.dividers) >= {"FFT", "BBF", "XCOR", "SVM"}
        assert all(d >= 1 for d in materialised.dividers.values())
        assert len(materialised.tdma_frame.slot_owners) >= 4

    def test_shared_pe_takes_fastest_demand(self):
        # both flows use the SC PE; the divider must satisfy the larger load
        schedule = SchedulerProblem(
            2,
            [
                Flow(spike_sorting_task(), electrode_cap=96),
                Flow(spike_sorting_task(), electrode_cap=12),
            ],
        ).solve()
        materialised = materialise(schedule)
        heavy = max(
            a.electrodes_per_node for a in schedule.allocations
        )
        assert materialised.dividers["SC"] == clock_divider_for_load("SC", heavy)


class TestDataflow:
    def test_chain_and_order(self):
        graph = DataflowGraph()
        ops = graph.chain(["window", "fft", "svm"])
        assert [op.name for op in graph.operators] == ["window", "fft", "svm"]
        assert graph.sources() == [ops[0]]
        assert graph.sinks() == [ops[-1]]

    def test_pe_mapping(self):
        graph = DataflowGraph()
        graph.chain(["window", "fft", "svm"])
        assert graph.pe_names == ["GATE", "FFT", "SVM"]

    def test_mc_operators_excluded_from_pes(self):
        graph = DataflowGraph()
        graph.chain(["window", "emd"])
        assert graph.pe_names == ["GATE"]
        assert OPERATOR_PES["emd"] == "MC"

    def test_cycle_rejected(self):
        graph = DataflowGraph()
        a, b = graph.chain(["window", "fft"])
        with pytest.raises(CompilationError):
            graph.connect(b, a)

    def test_unknown_operator_rejected(self):
        graph = DataflowGraph()
        with pytest.raises(CompilationError):
            graph.add_operator("teleport")

    def test_validate_rejects_empty_and_disconnected(self):
        graph = DataflowGraph()
        with pytest.raises(CompilationError):
            graph.validate()
        graph.add_operator("fft")
        graph.add_operator("svm")
        with pytest.raises(CompilationError):
            graph.validate()

"""Tests for seizure detection and the distributed propagation protocol."""

import numpy as np
import pytest

from repro.apps.seizure import (
    SeizureDetector,
    SeizurePropagationSimulator,
    train_detector_from_recording,
    window_features,
)
from repro.errors import ConfigurationError
from repro.hashing.lsh import LSHFamily


@pytest.fixture(scope="module")
def detector(small_recording):
    return train_detector_from_recording(
        small_recording, max_windows_per_node=150, seed=0
    )


class TestDetector:
    def test_features_shape(self, rng):
        assert window_features(rng.normal(size=120)).shape == (7,)

    def test_detector_separates_classes(self, small_recording, detector):
        rec = small_recording
        node = rec.seizures[0].onset_node
        labels = rec.window_labels(120, node)
        hits = 0
        total = 0
        for w in np.flatnonzero(labels)[:20]:
            window = rec.data[node].mean(axis=0)[w * 120:(w + 1) * 120]
            hits += detector.detect_window(window)
            total += 1
        assert hits / total > 0.6  # sensitive on true seizure windows
        false = 0
        for w in np.flatnonzero(labels == 0)[:30]:
            window = rec.data[node].mean(axis=0)[w * 120:(w + 1) * 120]
            false += detector.detect_window(window)
        assert false / 30 < 0.3

    def test_detect_channels_shape(self, detector, rng):
        out = detector.detect_channels(rng.normal(size=(4, 120)))
        assert out.shape == (4,) and out.dtype == bool

    def test_detect_channels_needs_2d(self, detector):
        with pytest.raises(ConfigurationError):
            detector.detect_channels(np.zeros(120))


class TestPropagationSimulator:
    @pytest.fixture(scope="class")
    def result(self, small_recording, detector):
        simulator = SeizurePropagationSimulator(
            small_recording, detector, LSHFamily.for_measure("dtw"),
            dtw_threshold=250.0,
        )
        return simulator.run()

    def test_detections_cluster_during_seizure(self, small_recording, result):
        seizure = small_recording.seizures[0]
        node = seizure.onset_node
        onset_window = seizure.onset_sample // 120
        end_window = (seizure.onset_sample + seizure.duration_samples) // 120
        in_seizure = [
            w for w in result.detections[node]
            if onset_window <= w <= end_window + 2
        ]
        assert len(in_seizure) >= len(result.detections[node]) * 0.5

    def test_propagation_confirmed(self, result):
        assert result.confirmations, "correlated seizure must be confirmed"
        assert result.signal_exchanges >= len(result.confirmations)

    def test_confirmations_trigger_stimulation(self, result):
        assert len(result.stimulations) == len(result.confirmations)

    def test_hash_broadcasts_counted(self, result):
        assert result.hash_broadcasts > 0
        assert result.hash_rounds_lost == 0  # no loss configured

    def test_first_confirmation_lookup(self, result):
        event = result.confirmations[0]
        first = result.first_confirmation_window(
            event.source_node, event.confirming_node
        )
        assert first is not None and first <= event.window_index

    def test_confirmations_carry_collision_multiplicity(self, result):
        assert all(e.n_collisions >= 1 for e in result.confirmations)


class TestErrorKnobs:
    def test_packet_loss_reduces_confirmations(self, small_recording, detector):
        lsh = LSHFamily.for_measure("dtw")
        clean = SeizurePropagationSimulator(
            small_recording, detector, lsh, dtw_threshold=250.0
        ).run()
        lossy = SeizurePropagationSimulator(
            small_recording, detector, lsh, dtw_threshold=250.0,
            packet_loss_rate=0.9, seed=5,
        ).run()
        assert lossy.hash_rounds_lost > 0
        assert len(lossy.confirmations) < len(clean.confirmations)

    def test_hash_errors_reduce_confirmations(self, small_recording, detector):
        lsh = LSHFamily.for_measure("dtw")
        clean = SeizurePropagationSimulator(
            small_recording, detector, lsh, dtw_threshold=250.0
        ).run()
        noisy = SeizurePropagationSimulator(
            small_recording, detector, lsh, dtw_threshold=250.0,
            hash_error_rate=0.95, seed=5,
        ).run()
        assert len(noisy.confirmations) < len(clean.confirmations)

    def test_bad_rates_rejected(self, small_recording, detector):
        lsh = LSHFamily.for_measure("dtw")
        with pytest.raises(ConfigurationError):
            SeizurePropagationSimulator(
                small_recording, detector, lsh, hash_error_rate=1.5
            )
        with pytest.raises(ConfigurationError):
            SeizurePropagationSimulator(
                small_recording, detector, lsh, packet_loss_rate=1.0
            )

    def test_hash_packet_bits(self, small_recording, detector):
        lsh = LSHFamily.for_measure("dtw")
        sim = SeizurePropagationSimulator(small_recording, detector, lsh)
        bits = sim.hash_packet_bits()
        assert bits > 8 * small_recording.n_electrodes  # payload + overhead

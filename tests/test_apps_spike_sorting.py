"""Tests for hash-filtered online spike sorting."""

import numpy as np
import pytest

from repro.apps.spike_sorting import (
    SpikeSorter,
    TemplateMatcher,
    detect_spikes,
    detection_recall,
    sorting_accuracy,
)
from repro.errors import ConfigurationError


class TestDetection:
    def test_recall_high_on_clean_data(self, spike_dataset):
        times = detect_spikes(spike_dataset.data)
        truth = spike_dataset.spike_times
        found = 0
        for t in truth:
            if np.min(np.abs(times - t)) <= 45:
                found += 1
        assert found / truth.shape[0] > 0.9

    def test_few_false_positives(self, spike_dataset):
        times = detect_spikes(spike_dataset.data)
        truth = spike_dataset.spike_times
        false = sum(1 for t in times if np.min(np.abs(truth - t)) > 45)
        assert false / times.shape[0] < 0.15

    def test_silence_yields_nothing_much(self, rng):
        data = 0.1 * rng.standard_normal((4, 30000))
        times = detect_spikes(data)
        assert times.shape[0] < 20

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_spikes(np.zeros(100))


class TestTemplateMatcher:
    def test_exact_classifies_clean_templates(self, spike_dataset):
        matcher = TemplateMatcher(spike_dataset.templates)
        correct = 0
        for neuron in range(matcher.n_neurons):
            snippet = spike_dataset.templates[neuron]
            correct += matcher.classify_exact(snippet) == neuron
        assert correct / matcher.n_neurons > 0.85

    def test_hashed_agrees_with_exact_mostly(self, spike_dataset):
        matcher = TemplateMatcher(spike_dataset.templates)
        agree = 0
        n = min(60, spike_dataset.n_spikes)
        for i in range(n):
            snippet = spike_dataset.snippet(i)
            hashed, _ = matcher.classify_hashed(snippet)
            agree += hashed == matcher.classify_exact(snippet)
        assert agree / n > 0.8

    def test_bad_template_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            TemplateMatcher(np.zeros((3, 60)))

    def test_snippet_shape_rejected(self, spike_dataset):
        matcher = TemplateMatcher(spike_dataset.templates)
        with pytest.raises(ConfigurationError):
            matcher.classify_exact(np.zeros(60))


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def sorter(self, spike_dataset):
        return SpikeSorter.from_dataset(spike_dataset)

    @pytest.fixture(scope="class")
    def hash_result(self, sorter, spike_dataset):
        return sorter.sort(spike_dataset.data, "hash")

    @pytest.fixture(scope="class")
    def exact_result(self, sorter, spike_dataset):
        return sorter.sort(spike_dataset.data, "exact")

    def test_detection_recall(self, spike_dataset, hash_result):
        assert detection_recall(spike_dataset, hash_result) > 0.9

    def test_exact_accuracy_reasonable(self, spike_dataset, exact_result):
        assert sorting_accuracy(spike_dataset, exact_result) > 0.7

    def test_hash_within_5_points_of_exact(
        self, spike_dataset, hash_result, exact_result
    ):
        """The paper's §6.3 claim: hash sorting within 5 % of exact."""
        exact = sorting_accuracy(spike_dataset, exact_result)
        hashed = sorting_accuracy(spike_dataset, hash_result)
        assert hashed >= exact - 0.05

    def test_hash_saves_comparisons(self, hash_result, exact_result):
        assert hash_result.exact_comparisons <= exact_result.exact_comparisons

    def test_bad_method_rejected(self, sorter, spike_dataset):
        with pytest.raises(ConfigurationError):
            sorter.sort(spike_dataset.data, "magic")

    def test_dataset_difficulty_ordering(self):
        """Paper ordering: MEArec easiest, Kilosort hardest."""
        from repro.datasets.spikes import generate_spikes

        accuracies = {}
        for profile in ("mearec", "kilosort"):
            ds = generate_spikes(profile, duration_s=2.0, seed=1)
            sorter = SpikeSorter.from_dataset(ds)
            result = sorter.sort(ds.data, "exact")
            accuracies[profile] = sorting_accuracy(ds, result)
        assert accuracies["mearec"] > accuracies["kilosort"]

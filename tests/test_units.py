"""Tests for the unit conventions module — the paper's magic numbers."""

import pytest

from repro import units


class TestPaperConstants:
    def test_electrode_rate(self):
        # 30 kHz x 16 bit = 480 kbps per channel
        assert units.ELECTRODE_RATE_BPS == 480_000

    def test_node_rate_is_halo_headline(self):
        # 96 electrodes = HALO's 46 Mbps interfacing rate
        node_mbps = units.electrodes_to_mbps(units.ELECTRODES_PER_NODE)
        assert node_mbps == pytest.approx(46.08)

    def test_adc_power_split(self):
        assert units.ADC_POWER_MW_PER_ELECTRODE * 96 == pytest.approx(2.88)

    def test_window_geometry(self):
        # 4 ms at 30 kHz = 120 samples = 240 B at 16 bit
        assert units.WINDOW_SAMPLES == 120
        assert units.WINDOW_BYTES == 240

    def test_response_targets(self):
        assert units.SEIZURE_RESPONSE_MS == 10.0
        assert units.MOVEMENT_RESPONSE_MS == 50.0
        assert units.SPIKE_SORT_RESPONSE_MS == 2.5

    def test_power_cap(self):
        assert units.NODE_POWER_CAP_MW == 15.0


class TestConversions:
    @pytest.mark.parametrize("value", [0.0, 1.0, 7.25, 480.0])
    def test_rate_roundtrip(self, value):
        assert units.bps_to_mbps(units.mbps_to_bps(value)) == pytest.approx(value)

    @pytest.mark.parametrize("value", [0.0, 0.5, 96.0, 384.0])
    def test_electrode_roundtrip(self, value):
        assert units.mbps_to_electrodes(
            units.electrodes_to_mbps(value)
        ) == pytest.approx(value)

    def test_power_conversions(self):
        assert units.uw_to_mw(1500.0) == 1.5
        assert units.mw_to_uw(1.5) == 1500.0

    def test_time_conversions(self):
        assert units.ms_to_s(250.0) == 0.25
        assert units.s_to_ms(0.25) == 250.0

    def test_energy_conversion(self):
        assert units.nj_to_mj(1e6) == 1.0

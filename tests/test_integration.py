"""Whole-system integration: every layer in one closed-loop scenario.

Generates a multi-site recording, runs the full distributed seizure
protocol over the *real* wireless network objects (packets, CRC, BER
channel), stores and retrieves windows through the NVM controllers,
closes the loop with stimulation, answers an interactive query, and
offloads telemetry — the end-to-end path a deployment would take.
"""

import numpy as np
import pytest

from repro.apps.queries import QueryEngine, QuerySpec
from repro.apps.seizure import SeizureDetector, train_detector_from_recording
from repro.apps.stimulation import Stimulator
from repro.apps.streaming import Codec, TelemetryOffloader, TelemetryReceiver
from repro.core.system import ScaloSystem
from repro.datasets.synthetic_ieeg import generate_ieeg
from repro.similarity.dtw import dtw_distance


@pytest.fixture(scope="module")
def scenario():
    recording = generate_ieeg(
        n_nodes=3, n_electrodes=4, duration_s=1.2, fs_hz=6000,
        n_seizures=1, seizure_duration_s=0.35, seed=11,
    )
    detector = train_detector_from_recording(
        recording, max_windows_per_node=150, seed=0
    )
    system = ScaloSystem(n_nodes=3, electrodes_per_node=4)
    return recording, detector, system


def _run_closed_loop(recording, detector: SeizureDetector,
                     system: ScaloSystem, dtw_threshold=250.0):
    """The protocol over real system objects; returns the event log."""
    window = 120
    n_windows = recording.n_samples // window
    stimulators = {
        n: Stimulator(n, recording.n_electrodes) for n in range(3)
    }
    confirmations = []
    detections = {n: [] for n in range(3)}
    window_ms = window / recording.fs_hz * 1e3

    for w in range(n_windows):
        start = w * window
        chunk = recording.data[:, :, start : start + window]
        signatures = system.ingest(chunk)

        detecting = [
            node for node in range(3)
            if detector.detect_window(chunk[node].mean(axis=0))
        ]
        for node in detecting:
            detections[node].append(w)
            system.broadcast_hashes(node, signatures[node], seq=w & 0xFFFF)

        for node in range(3):
            for packet in system.drain_inbox(node):
                received = system.unpack_hashes(packet)
                matches = system.nodes[node].check_remote_hashes(received)
                if not matches:
                    continue
                src = packet.header.src
                src_electrode, record = matches[0]
                cost = dtw_distance(
                    chunk[src, src_electrode].astype(float),
                    chunk[node, record.electrode].astype(float),
                    band=10,
                )
                if cost <= dtw_threshold:
                    confirmations.append((src, node, w))
                    stimulators[node].stimulate(
                        record.electrode, w * window_ms
                    )
    return detections, confirmations, stimulators


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def run(self, scenario):
        recording, detector, system = scenario
        return scenario, _run_closed_loop(recording, detector, system)

    def test_seizure_detected_at_onset_node(self, run):
        (recording, _, _), (detections, _, _) = run
        seizure = recording.seizures[0]
        assert detections[seizure.onset_node]

    def test_propagation_confirmed_over_real_network(self, run):
        _, (_, confirmations, _) = run
        assert confirmations

    def test_stimulation_executed_with_refractory(self, run):
        _, (_, confirmations, stimulators) = run
        executed = sum(len(s.events) for s in stimulators.values())
        assert 0 < executed <= len(confirmations)

    def test_network_stats_accumulated(self, run):
        ((_, _, system), _) = run
        assert system.network.stats.sent > 0
        assert system.network.stats.delivered > 0

    def test_windows_retrievable_from_nvm(self, run):
        ((recording, _, system), _) = run
        stored = system.nodes[0].read_window(0, 0)
        original = recording.data[0, 0, :120]
        # int16 storage truncates fractions; shape must survive intact
        assert stored.shape == (120,)
        assert np.corrcoef(stored, original)[0, 1] > 0.5

    def test_interactive_query_over_stored_data(self, run):
        ((recording, _, system), (detections, _, _)) = run
        engine = QueryEngine(
            [node.storage for node in system.nodes],
            system.lsh,
            seizure_flags={n: set(w) for n, w in detections.items()},
        )
        n_windows = recording.n_samples // 120
        rows = engine.run(QuerySpec("q1", 100.0),
                          window_range=(0, n_windows)).rows
        assert rows  # flagged windows come back
        flagged = {(r.node, r.window_index) for r in rows}
        for node, windows in detections.items():
            for w in windows:
                assert (node, w) in flagged

    def test_telemetry_offload_of_stored_window(self, run):
        ((_, _, system), _) = run
        window = system.nodes[1].read_window(2, 3)
        offloader = TelemetryOffloader(bytes(range(16)), Codec.LIC)
        receiver = TelemetryReceiver(bytes(range(16)))
        chunk = offloader.offload(window)
        assert (receiver.receive(chunk) == window).all()

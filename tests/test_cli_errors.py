"""Malformed CLI invocations must exit 2 with usage, never a traceback.

Every case runs ``python -m repro ...`` in a subprocess — the honest
user-facing path — and asserts the argparse/ScaloError contract: exit
code 2, something usage-shaped on stderr, and no stack trace.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _run(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=300, env=env,
    )


BAD_INVOCATIONS = [
    pytest.param(("trace", "nosuchscenario"), id="trace-unknown-scenario"),
    pytest.param(("query", "--range", "a:b"), id="query-range-not-integers"),
    pytest.param(("query", "--range", "07"), id="query-range-no-colon"),
    pytest.param(("query", "--range", "3:1"), id="query-range-empty"),
    pytest.param(("query", "--nodes", "0"), id="query-zero-nodes"),
    pytest.param(("serve", "--qps", "abc"), id="serve-qps-not-a-number"),
    pytest.param(("serve", "--requests", "-5"), id="serve-negative-requests"),
    pytest.param(("serve", "--qps", "-1"), id="serve-negative-qps"),
    pytest.param(("serve", "--queue", "0"), id="serve-zero-queue"),
    pytest.param(("serve", "--seed", "x"), id="serve-seed-not-an-int"),
    pytest.param(("serve", "--deadline-ms", "0"), id="serve-zero-deadline"),
    pytest.param(("serve", "--deadline-ms", "-10"),
                 id="serve-negative-deadline"),
    pytest.param(("serve", "--deadline-ms", "abc"),
                 id="serve-deadline-not-a-number"),
    pytest.param(("serve", "--fault-plan", "apocalypse"),
                 id="serve-unknown-fault-plan"),
    pytest.param(("chaos", "--seed", "x"), id="chaos-seed-not-an-int"),
    pytest.param(("health", "nosuchstorm"), id="health-unknown-storm"),
    pytest.param(("health", "--seed", "x"), id="health-seed-not-an-int"),
    pytest.param(("health", "mild", "--health-report",
                  "/nonexistent/dir/h.json"),
                 id="health-report-missing-parent"),
    pytest.param(("serve", "--health-report", "/nonexistent/dir/h.json"),
                 id="serve-health-report-missing-parent"),
    pytest.param(("chaos", "--health-report", "reports/"),
                 id="chaos-health-report-trailing-slash"),
    pytest.param(("recover", "--seed", "x"), id="recover-seed-not-an-int"),
    pytest.param(("fabric", "--tenants", "0"), id="fabric-zero-tenants"),
    pytest.param(("fabric", "--tenants", "-3"),
                 id="fabric-negative-tenants"),
    pytest.param(("fabric", "--fleets", "0"), id="fabric-zero-fleets"),
    pytest.param(("fabric", "--qps", "abc"), id="fabric-qps-not-a-number"),
    pytest.param(("fabric", "--qps", "0"), id="fabric-zero-qps"),
    pytest.param(("fabric", "--csv", "/nonexistent/dir/m.csv"),
                 id="fabric-csv-missing-parent"),
    pytest.param(("serve", "--csv", "/nonexistent/dir/m.csv"),
                 id="serve-csv-missing-parent"),
    pytest.param(("trace", "--export", "traces/"),
                 id="trace-export-trailing-slash"),
    pytest.param(("nosuchtarget",), id="unknown-target"),
]


@pytest.mark.parametrize("argv", BAD_INVOCATIONS)
def test_malformed_args_exit_2_without_traceback(argv):
    proc = _run(*argv)
    assert proc.returncode == 2, (proc.stdout, proc.stderr)
    assert "Traceback" not in proc.stderr
    assert "Traceback" not in proc.stdout
    # argparse prints usage; the ScaloError path prints error + usage;
    # the unknown-target path lists the available commands
    assert ("usage:" in proc.stderr) or ("available commands" in proc.stderr)


def test_good_invocation_still_exits_0():
    proc = _run("list")
    assert proc.returncode == 0
    assert "serve" in proc.stdout.split()
    assert "fabric" in proc.stdout.split()


def test_subcommand_help_shows_only_its_options():
    proc = _run("fabric", "--help")
    assert proc.returncode == 0
    assert "--tenants" in proc.stdout
    assert "--fault-plan" not in proc.stdout  # serve's flags stay on serve
    proc = _run("serve", "--help")
    assert proc.returncode == 0
    assert "--fault-plan" in proc.stdout
    assert "--tenants" not in proc.stdout


def test_fabric_happy_path(tmp_path):
    csv = tmp_path / "fabric-metrics.csv"
    report = tmp_path / "fabric-health.json"
    proc = _run(
        "fabric", "--tenants", "3", "--fleets", "2", "--nodes", "2",
        "--requests", "3", "--csv", str(csv), "--health-report", str(report),
    )
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    assert "fleet fabric" in proc.stdout
    assert "population q1" in proc.stdout
    assert "fabric.t00.submitted" in csv.read_text()
    import json

    doc = json.loads(report.read_text())
    assert any(s["slo"].startswith("fabric-t00") for s in doc["slos"])

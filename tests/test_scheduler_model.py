"""Tests for the task cost models."""

import pytest

from repro.errors import ConfigurationError
from repro.scheduler.model import (
    PAIR_NORM,
    TaskModel,
    dtw_similarity_task,
    hash_similarity_task,
    mi_kf_task,
    mi_nn_task,
    mi_svm_task,
    seizure_detection_task,
    spike_sorting_task,
)


class TestTaskModel:
    def test_static_includes_nvm_leakage_when_used(self):
        with_nvm = spike_sorting_task()
        base = TaskModel("t", ("NEO",), 1.0)
        assert with_nvm.static_mw > base.static_mw

    def test_dynamic_linear(self):
        task = TaskModel("t", ("NEO",), dyn_uw_per_electrode=10.0)
        assert task.dynamic_mw(100) == pytest.approx(1.0)

    def test_dynamic_quadratic_term(self):
        task = TaskModel("t", ("XCOR",), 0.0, pairwise_uw=PAIR_NORM)
        assert task.dynamic_mw(100) == pytest.approx(100 * 100 / 1e3)

    def test_power_inversion_roundtrip(self):
        task = seizure_detection_task()
        for budget in (2.0, 5.0, 10.0):
            electrodes = task.max_electrodes_for_power(budget)
            assert task.dynamic_mw(electrodes) == pytest.approx(budget)

    def test_wire_bytes(self):
        task = TaskModel("t", ("NEO",), 1.0, comm="one_all",
                         wire_bytes_per_electrode=2.0, wire_bytes_fixed=10.0)
        assert task.wire_bytes(5) == 20.0

    def test_bad_comm_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskModel("t", ("NEO",), 1.0, comm="gossip")

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskModel("t", ("NEO",), -1.0)


class TestPaperTasks:
    def test_detection_is_pairwise(self):
        assert seizure_detection_task().pairwise_uw > 0

    def test_sorting_is_linear(self):
        assert spike_sorting_task().pairwise_uw == 0

    def test_hash_task_ships_less_than_dtw_task(self):
        """Hashes are ~100x smaller than raw signal windows."""
        hash_task = hash_similarity_task()
        dtw_task = dtw_similarity_task()
        assert (
            dtw_task.wire_bytes_per_electrode
            > 100 * hash_task.wire_bytes_per_electrode
        )

    def test_mi_svm_ships_4_bytes_fixed(self):
        task = mi_svm_task()
        assert task.wire_bytes_fixed == 4.0
        assert task.wire_bytes_per_electrode == 0.0

    def test_mi_nn_ships_1024_bytes(self):
        assert mi_nn_task().wire_bytes_fixed == 1024.0

    def test_mi_kf_ships_per_electrode_and_centralises(self):
        task = mi_kf_task()
        assert task.wire_bytes_per_electrode == 4.0
        assert task.centralised

    def test_mi_svm_slightly_cheaper_than_hash(self):
        """Paper §6.2: MI-SVM processes ~3 % more electrodes than hashing."""
        svm = mi_svm_task().dyn_uw_per_electrode
        hash_cost = hash_similarity_task().dyn_uw_per_electrode
        assert svm < hash_cost
        assert svm > 0.85 * hash_cost

    def test_nvm_utilisation_scales(self):
        task = spike_sorting_task()
        assert task.nvm_utilisation(200) == pytest.approx(
            2 * task.nvm_utilisation(100)
        )

"""Tests for the query language: parser, compiler, runtime."""

import numpy as np
import pytest

from repro.errors import CompilationError, QuerySyntaxError
from repro.lang.compiler import compile_query, compile_text
from repro.lang.parser import parse_query
from repro.lang.runtime import QueryRuntime

#: Paper Listing 1.
LISTING_1 = (
    "var movements = stream.window(wsize=50ms).sbp()"
    ".kf(kf_params).call_runtime()"
)

#: Paper Listing 2.
LISTING_2 = """var seizure_data = stream.Map( s => s.select(s => s.data), s.locID)
.window(wsize=4ms).select(w => w.time >= -5000).
select(w => w.seizure_detect(), w[-100ms:100ms])"""


class TestParser:
    def test_listing_1(self):
        chain = parse_query(LISTING_1)
        assert chain.var_name == "movements"
        assert chain.call_names == ["window", "sbp", "kf", "call_runtime"]
        wsize = chain.call("window").kwarg("wsize")
        assert wsize.kind == "duration_ms" and wsize.number == 50.0

    def test_listing_2(self):
        chain = parse_query(LISTING_2)
        assert chain.var_name == "seizure_data"
        assert chain.call_names == ["Map", "window", "select", "select"]
        wsize = chain.call("window").kwarg("wsize")
        assert wsize.number == 4.0

    def test_lambda_captured_verbatim(self):
        chain = parse_query("stream.select(s => s.value > 3)")
        arg = chain.calls[0].args[0]
        assert arg.kind == "lambda"
        assert "value" in arg.raw

    def test_duration_units(self):
        chain = parse_query("stream.window(wsize=2s)")
        assert chain.call("window").kwarg("wsize").number == 2000.0

    def test_plain_number(self):
        chain = parse_query("stream.thr(level=3.5)")
        value = chain.call("thr").kwarg("level")
        assert value.kind == "number" and value.number == 3.5

    def test_string_argument(self):
        chain = parse_query('stream.store("templates")')
        assert chain.calls[0].args[0].raw == "templates"

    def test_no_var_prefix(self):
        chain = parse_query("stream.window(wsize=4ms).fft()")
        assert chain.var_name is None

    @pytest.mark.parametrize(
        "bad",
        ["", "window(wsize=4ms)", "var = stream.fft()", "stream", "stream.fft("],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestCompiler:
    def test_pe_lowering(self):
        compiled = compile_text("stream.window(wsize=4ms).fft().svm()")
        assert compiled.pe_names == ["GATE", "FFT", "SVM"]
        assert compiled.window_ms == 4.0

    def test_mc_operators_separated(self):
        compiled = compile_text(LISTING_1)
        assert "call_runtime" in compiled.mc_operators
        assert "INV" in compiled.pe_names  # kf -> INV

    def test_pipeline_buildable(self):
        compiled = compile_text("stream.window(wsize=4ms).fft().svm()")
        pipeline = compiled.build_pipeline()
        assert pipeline.latency_ms > 0
        assert pipeline.power_mw > 0

    def test_unknown_method_rejected(self):
        chain = parse_query("stream.window(wsize=4ms)")
        chain.calls[0] = type(chain.calls[0])("teleport")
        with pytest.raises(CompilationError):
            compile_query(chain)

    def test_listing_2_compiles(self):
        compiled = compile_text(LISTING_2)
        assert compiled.window_ms == 4.0


class TestRuntime:
    def test_window_sbp_chain(self, rng):
        runtime = QueryRuntime(fs_hz=30000)
        compiled = compile_text("stream.window(wsize=50ms).sbp()")
        recording = rng.normal(size=(4, 4500))
        out = runtime.execute(compiled, recording)
        assert out.shape == (3, 4)  # (windows, channels)

    def test_kf_chain_with_registered_model(self, rng):
        from repro.decoders.kalman import fit_kalman

        states = np.zeros((100, 4))
        for t in range(1, 100):
            states[t, 2:] = 0.9 * states[t - 1, 2:] + 0.1 * rng.standard_normal(2)
            states[t, :2] = states[t - 1, :2] + states[t - 1, 2:]
        h = rng.normal(size=(4, 4))
        obs = states @ h.T + 0.05 * rng.standard_normal((100, 4))
        runtime = QueryRuntime(fs_hz=1000)
        runtime.register_model("kf", fit_kalman(states, obs))

        compiled = compile_text("stream.window(wsize=50ms).sbp().kf(params)")
        recording = rng.normal(size=(4, 5000))
        out = runtime.execute(compiled, recording)
        assert out.shape[1] == 4  # decoded state per window

    def test_model_required_operators_raise_without_model(self, rng):
        runtime = QueryRuntime()
        compiled = compile_text("stream.window(wsize=4ms).sbp().svm()")
        with pytest.raises(CompilationError):
            runtime.execute(compiled, rng.normal(size=(2, 600)))

    def test_hash_operator(self, rng):
        runtime = QueryRuntime(fs_hz=30000)
        compiled = compile_text("stream.window(wsize=4ms).hash()")
        out = runtime.execute(compiled, rng.normal(size=(2, 360)))
        assert len(out) == 2 and len(out[0]) == 3  # channels x windows

    def test_1d_recording_rejected(self, rng):
        runtime = QueryRuntime()
        compiled = compile_text("stream.window(wsize=4ms)")
        with pytest.raises(CompilationError):
            runtime.execute(compiled, rng.normal(size=600))

"""Tests for interactive queries: cost model and functional engine."""

import pytest

from repro.apps.queries import (
    QueryCostModel,
    QueryEngine,
    QuerySpec,
    query_data_bytes,
)
from repro.errors import ConfigurationError
from repro.hashing.lsh import LSHFamily
from repro.storage.controller import StorageController
from repro.storage.nvm import NVMDevice


class TestQuerySpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuerySpec("q9", 100.0)
        with pytest.raises(ConfigurationError):
            QuerySpec("q1", -1.0)
        with pytest.raises(ConfigurationError):
            QuerySpec("q1", 100.0, match_fraction=1.5)


class TestCostModel:
    def test_paper_data_sizes(self):
        # 110 ms over 11 nodes of 96 electrodes is the paper's ~7 MB
        assert query_data_bytes(110.0, 11) / 1e6 == pytest.approx(7.0, rel=0.01)
        assert query_data_bytes(1000.0, 11) / 1e6 == pytest.approx(63.4, rel=0.01)

    def test_q1_small_match_hits_9_qps(self):
        model = QueryCostModel(n_nodes=11)
        cost = model.cost(QuerySpec("q1", 110.0, 0.05))
        assert 7.0 <= cost.queries_per_second <= 12.0  # paper: ~9 QPS

    def test_q3_full_scan_near_0_8_qps(self):
        model = QueryCostModel(n_nodes=11)
        cost = model.cost(QuerySpec("q3", 110.0))
        assert cost.queries_per_second == pytest.approx(0.8, abs=0.15)
        assert cost.latency_ms == pytest.approx(1210.0, rel=0.1)

    def test_qps_decreases_with_match_fraction(self):
        model = QueryCostModel(n_nodes=11)
        qps = [
            model.cost(QuerySpec("q1", 110.0, f)).queries_per_second
            for f in (0.05, 0.5, 1.0)
        ]
        assert qps[0] > qps[1] > qps[2]

    def test_qps_decreases_with_time_range(self):
        model = QueryCostModel(n_nodes=11)
        short = model.cost(QuerySpec("q2", 110.0, 0.05)).queries_per_second
        long = model.cost(QuerySpec("q2", 1000.0, 0.05)).queries_per_second
        assert short > long
        assert long >= 0.8  # the paper: still ~1 QPS over 1 s of data

    def test_q2_dtw_slightly_slower_much_hungrier(self):
        """Paper §6.4: DTW Q2 is 8 vs 9 QPS but ~15 mW vs ~3.6 mW."""
        model = QueryCostModel(n_nodes=11)
        hash_cost = model.cost(QuerySpec("q2", 110.0, 0.05, use_hash=True))
        dtw_cost = model.cost(QuerySpec("q2", 110.0, 0.05, use_hash=False))
        assert dtw_cost.queries_per_second < hash_cost.queries_per_second
        assert dtw_cost.power_mw > 3 * hash_cost.power_mw
        assert hash_cost.power_mw < 5.0

    def test_transmit_dominates_latency(self):
        model = QueryCostModel(n_nodes=11)
        cost = model.cost(QuerySpec("q3", 1000.0))
        assert cost.transmit_ms > 0.9 * cost.latency_ms


class TestQueryEngine:
    @pytest.fixture()
    def engine(self, rng):
        lsh = LSHFamily.for_measure("dtw")
        controllers = []
        # integer-scaled signals: windows are stored as 16-bit samples
        template = (rng.normal(size=120).cumsum() * 1000).round()
        for node in range(2):
            controller = StorageController(
                device=NVMDevice(capacity_bytes=16 * 1024 * 1024)
            )
            for w in range(4):
                if node == 0 and w == 1:
                    window = template + (10 * rng.normal(size=120)).round()
                else:
                    window = (rng.normal(size=120).cumsum() * 1000).round()
                controller.store_window(0, w, window.astype(int))
            controllers.append(controller)
        engine = QueryEngine(
            controllers, lsh,
            seizure_flags={0: {1, 2}, 1: set()},
            dtw_threshold=20_000.0,
        )
        return engine, template

    def test_q3_returns_everything_in_range(self, engine):
        eng, _ = engine
        rows = eng.run(QuerySpec("q3", 16.0), window_range=(0, 4)).rows
        assert len(rows) == 8

    def test_q1_filters_by_flags(self, engine):
        eng, _ = engine
        rows = eng.run(QuerySpec("q1", 16.0), window_range=(0, 4)).rows
        assert {(r.node, r.window_index) for r in rows} == {(0, 1), (0, 2)}

    def test_q2_hash_finds_template(self, engine):
        eng, template = engine
        rows = eng.run(
            QuerySpec("q2", 16.0), window_range=(0, 4), template=template
        ).rows
        assert any(r.node == 0 and r.window_index == 1 for r in rows)

    def test_q2_needs_template(self, engine):
        eng, _ = engine
        with pytest.raises(ConfigurationError):
            eng.run(QuerySpec("q2", 16.0), window_range=(0, 4))

    def test_q2_exact_dtw_mode(self, engine):
        eng, template = engine
        rows = eng.run(
            QuerySpec("q2", 16.0, use_hash=False),
            window_range=(0, 4),
            template=template,
        ).rows
        assert any(r.node == 0 and r.window_index == 1 for r in rows)

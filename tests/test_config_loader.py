"""Tests: the codegen -> loader round trip (paper §3.7's toolchain loop)."""

import pytest

from repro.core.config_loader import load_config_program
from repro.errors import CompilationError
from repro.scheduler import (
    Flow,
    SchedulerProblem,
    hash_similarity_task,
    materialise,
    seizure_detection_task,
)
from repro.scheduler.codegen import emit_config_program


@pytest.fixture(scope="module")
def toolchain():
    schedule = SchedulerProblem(
        4,
        [
            Flow(seizure_detection_task(), electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 electrode_cap=96),
        ],
    ).solve()
    materialised = materialise(schedule)
    program = emit_config_program(materialised, node_id=0)
    return schedule, materialised, program


class TestRoundTrip:
    def test_dividers_survive(self, toolchain):
        _, materialised, program = toolchain
        loaded = load_config_program(program)
        assert loaded.dividers == materialised.dividers
        for name, divider in materialised.dividers.items():
            assert loaded.fabric.pes[name].clock.divider == divider

    def test_budget_survives(self, toolchain):
        schedule, _, program = toolchain
        loaded = load_config_program(program)
        assert loaded.power_budget_mw == schedule.power_budget_mw

    def test_flows_and_routes_survive(self, toolchain):
        schedule, _, program = toolchain
        loaded = load_config_program(program)
        assert set(loaded.flows) == {
            a.flow.task.name for a in schedule.allocations
        }
        detect = loaded.flows["seizure_detection"]
        chain = list(seizure_detection_task().pe_names)
        assert detect.route == list(zip(chain, chain[1:]))
        assert detect.electrodes == int(
            schedule.allocation("seizure_detection").electrodes_per_node
        )

    def test_comm_pattern_survives(self, toolchain):
        _, _, program = toolchain
        loaded = load_config_program(program)
        hash_flow = loaded.flows["hash_similarity_all_all"]
        assert hash_flow.comm == "all_all"
        assert hash_flow.net_budget_ms == 1.0

    def test_tdma_frame_survives(self, toolchain):
        _, materialised, program = toolchain
        loaded = load_config_program(program)
        assert loaded.tdma_frame == materialised.tdma_frame.slot_owners
        assert loaded.tdma_schedule().slot_owners == (
            materialised.tdma_frame.slot_owners
        )

    def test_fabric_is_wired_and_powered(self, toolchain):
        _, _, program = toolchain
        loaded = load_config_program(program)
        order = loaded.fabric.topological_order()
        assert order.index("FFT") < order.index("SVM")
        assert loaded.fabric.power_mw > 0


class TestLoaderValidation:
    def test_missing_budget_rejected(self):
        with pytest.raises(CompilationError):
            load_config_program("void configure(void) {}")

    def test_missing_tdma_rejected(self, toolchain):
        _, _, program = toolchain
        broken = program[: program.index("static const uint8_t")]
        broken += "}"
        with pytest.raises(CompilationError):
            load_config_program(broken)

    def test_unknown_flow_reference_rejected(self, toolchain):
        _, _, program = toolchain
        broken = program.replace(
            "scalo_connect(flow0,", "scalo_connect(ghost,", 1
        )
        with pytest.raises(CompilationError):
            load_config_program(broken)

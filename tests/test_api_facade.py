"""The ``repro.api`` facade must re-export the whole public surface.

PRs 5-9 each grew a subsystem (serving, chaos, health, partition
coordination, the fleet fabric); the facade's contract is that every
public type a user needs is importable from ``repro.api`` without
knowing the internal package layout.  The audit is mechanical:
``__all__`` must list exactly the public non-module attributes, every
name must resolve, and the load-bearing types from each era must be
present by name.
"""

import inspect

import repro
from repro import api


def _public_attrs(module) -> set[str]:
    return {
        name
        for name, value in vars(module).items()
        if not name.startswith("_")
        and not inspect.ismodule(value)
        and name != "annotations"
    }


def test_api_all_matches_public_attributes():
    declared = set(api.__all__)
    actual = _public_attrs(api)
    assert declared == actual, (
        f"missing from __all__: {sorted(actual - declared)}; "
        f"listed but absent: {sorted(declared - actual)}"
    )


def test_api_all_names_resolve_and_are_unique():
    assert len(api.__all__) == len(set(api.__all__))
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_api_exports_every_era():
    required = {
        # core (PRs 1-4)
        "ScaloSystem", "QuerySpec", "QueryCostModel", "WINDOW_MS",
        "ScaloError", "build_system", "run_query",
        # serving (PR 5)
        "QueryServer", "ServerConfig", "AdmissionController", "TokenBucket",
        "LoadGenConfig", "ServeReport", "serve_session", "final_responses",
        "per_client_responses", "percentile",
        # chaos (PR 6)
        "ChaosConfig", "StormLevel", "FAULT_PRESETS", "chaos_sweep",
        "run_storm", "CircuitBreaker", "BrownoutController", "RetryPolicy",
        # health (PR 7)
        "HealthEngine", "SLO", "SLOEngine", "QuantileSketch",
        "DEFAULT_SERVING_SLOS", "FlightRecorder", "AnomalyDetector",
        # partition coordination (PR 8)
        "PartitionMatrix", "SPLIT_MODES", "FailoverManager",
        "WriteAheadJournal", "FaultPlan", "HealthMonitor",
        # fabric (PR 9)
        "FleetFabric", "FabricConfig", "ShardMap", "FabricLoadConfig",
        "fabric_session", "run_isolation_gate", "tenant_slos",
        "build_fabric", "run_fleet_query", "run_population_query",
        "PopulationResult",
    }
    missing = required - set(api.__all__)
    assert not missing, f"facade lost public names: {sorted(missing)}"


def test_root_package_exports_fabric_entry_points():
    for name in (
        "FleetFabric", "FabricConfig", "FabricLoadConfig", "FabricReport",
        "ShardMap", "fabric_session", "run_isolation_gate",
    ):
        assert name in repro.__all__
        assert getattr(repro, name) is not None


def test_root_package_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None

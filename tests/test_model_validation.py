"""Cross-validation: the analytic network model vs the event simulator.

The throughput experiments (Figs. 8-9) rest on closed-form airtime
arithmetic; the discrete-event TDMA simulator computes the same
quantities by actually running the medium.  These tests check that the
two agree — the analytic model is only trustworthy because this holds.
"""

import pytest

from repro.network.packet import BROADCAST, Packet, PayloadKind
from repro.network.simulator import TDMASimulator
from repro.network.tdma import TDMAConfig


def _all_to_all(sim: TDMASimulator, payload_bytes: int) -> None:
    for node in range(sim.n_nodes):
        sim.enqueue(
            Packet.build(node, BROADCAST, PayloadKind.HASHES,
                         bytes(payload_bytes), seq=node)
        )


class TestAirtimeAgreement:
    @pytest.mark.parametrize("n_nodes", [2, 4, 8])
    @pytest.mark.parametrize("payload", [48, 128, 256])
    def test_all_to_all_drain_matches_analytic(self, n_nodes, payload):
        config = TDMAConfig()
        sim = TDMASimulator(n_nodes=n_nodes, config=config)
        _all_to_all(sim, payload)
        elapsed = sim.run_until_idle()
        analytic = config.all_to_all_ms(payload, n_nodes)
        # the simulator quantises to whole slots and may wait for the
        # right owner; agreement within one frame is the invariant
        assert elapsed >= analytic - 1e-9
        assert elapsed <= analytic + sim.schedule.frame_ms + 1e-9

    def test_one_to_all_cost_is_node_count_independent(self):
        config = TDMAConfig()
        times = {}
        for n_nodes in (2, 8):
            sim = TDMASimulator(n_nodes=n_nodes, config=config)
            sim.enqueue(
                Packet.build(0, BROADCAST, PayloadKind.HASHES, bytes(96))
            )
            # airtime of the burst itself (ignore slot-rotation waits by
            # reading the delivery stamps)
            sim.run_until_idle()
            times[n_nodes] = max(
                d.delivered_ms - d.enqueued_ms for d in sim.deliveries
            )
        assert times[2] == pytest.approx(times[8], abs=config.slot_ms() * 8)

    def test_burst_ms_matches_multi_packet_stream(self):
        """burst_ms() predicts the drain time of a packetised payload."""
        config = TDMAConfig()
        sim = TDMASimulator(n_nodes=2, config=config)
        total_bytes = 1000
        remaining = total_bytes
        seq = 0
        while remaining > 0:
            take = min(256, remaining)
            sim.enqueue(Packet.build(0, 1, PayloadKind.SIGNAL, bytes(take),
                                     seq=seq))
            remaining -= take
            seq += 1
        elapsed = sim.run_until_idle()
        analytic = config.burst_ms(total_bytes)
        # node 0 owns every other slot, so the drain takes ~2x the pure
        # burst airtime; within that factor the models agree
        assert analytic <= elapsed <= 2 * analytic + config.slot_ms() + 1e-9

    def test_effective_rate_matches_goodput(self):
        config = TDMAConfig()
        sim = TDMASimulator(n_nodes=2, config=config, seed=5)
        for i in range(40):
            sim.enqueue(Packet.build(0, 1, PayloadKind.SIGNAL, bytes(256),
                                     seq=i))
            sim.enqueue(Packet.build(1, 0, PayloadKind.SIGNAL, bytes(256),
                                     seq=i))
        sim.run_until_idle()
        assert sim.goodput_mbps() == pytest.approx(
            config.effective_rate_mbps(256), rel=0.05
        )

"""The multi-tenant fleet fabric: routing, isolation, population queries.

The load-bearing properties:

* the consistent-hash shard map is deterministic, total, and moves the
  minimum set of tenants on fleet add/remove;
* a 1-tenant fabric is byte-identical to driving the underlying
  ``ScaloSystem`` through a ``QueryServer`` directly at the same seed —
  the fabric layer adds routing and accounting, never perturbation;
* tenant isolation holds mechanically (pending-queue quota sheds with
  reason ``tenant_quota``; the partitioned result LRU never lets one
  client's churn evict another's) and end-to-end (the noisy-neighbour
  gate in :mod:`repro.fabric.isolation` passes at its defaults);
* population queries merge partial coverage node-weighted: a dead node
  or a shed fleet lowers coverage instead of failing the query.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.queries import QuerySpec
from repro.errors import ConfigurationError, QueryRejected
from repro.fabric import (
    FabricConfig,
    FabricLoadConfig,
    FleetFabric,
    ShardMap,
    build_fleet_shard,
    fabric_session,
    generate_tenant_arrivals,
    run_isolation_gate,
    tenant_name,
    tenant_slos,
)
from repro.serving import ServerConfig

TENANTS = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)


def _small_config(**overrides) -> FabricConfig:
    defaults = dict(
        n_fleets=2, nodes_per_fleet=2, electrodes=2, n_windows=3, seed=0
    )
    defaults.update(overrides)
    return FabricConfig(**defaults)


# -- shard map -------------------------------------------------------------------


@given(st.lists(TENANTS, min_size=1, max_size=30), st.integers(0, 5))
@settings(max_examples=50, deadline=None)
def test_routing_deterministic_and_total(tenants, seed):
    shard_map = ShardMap(fleet_ids=(0, 1, 2, 3), seed=seed)
    again = ShardMap(fleet_ids=(3, 1, 0, 2), seed=seed)
    for tenant in tenants:
        owner = shard_map.owner(tenant)
        assert owner in shard_map.fleets
        # same seed + same fleet set => same owner, insertion order moot
        assert again.owner(tenant) == owner
        assert shard_map.owner(tenant) == owner  # repeated lookups stable


@given(st.lists(TENANTS, min_size=1, max_size=30, unique=True))
@settings(max_examples=50, deadline=None)
def test_add_fleet_moves_tenants_only_to_the_new_fleet(tenants):
    shard_map = ShardMap(fleet_ids=(0, 1, 2), seed=7)
    before = shard_map.assignments(tenants)
    shard_map.add_fleet(3)
    after = shard_map.assignments(tenants)
    for tenant in tenants:
        if after[tenant] != before[tenant]:
            assert after[tenant] == 3


@given(st.lists(TENANTS, min_size=1, max_size=30, unique=True))
@settings(max_examples=50, deadline=None)
def test_remove_fleet_moves_only_its_tenants(tenants):
    shard_map = ShardMap(fleet_ids=(0, 1, 2, 3), seed=7)
    before = shard_map.assignments(tenants)
    shard_map.remove_fleet(2)
    after = shard_map.assignments(tenants)
    for tenant in tenants:
        assert after[tenant] != 2
        if before[tenant] != 2:
            assert after[tenant] == before[tenant]


def test_add_then_remove_restores_routing():
    shard_map = ShardMap(fleet_ids=(0, 1), seed=3)
    tenants = [tenant_name(i) for i in range(32)]
    before = shard_map.assignments(tenants)
    shard_map.add_fleet(2)
    shard_map.remove_fleet(2)
    assert shard_map.assignments(tenants) == before


def test_remove_last_fleet_refused():
    shard_map = ShardMap(fleet_ids=(0,), seed=0)
    with pytest.raises(ConfigurationError):
        shard_map.remove_fleet(0)
    with pytest.raises(ConfigurationError):
        shard_map.remove_fleet(99)  # unknown fleet is also an error


# -- the 1-tenant byte-identity anchor -------------------------------------------


def test_one_tenant_fabric_matches_direct_server():
    """Fabric(1 fleet, 1 tenant) == ScaloSystem + QueryServer directly.

    Same seed, same arrivals, same server config: the response log must
    be byte-identical.  This is the contract that lets every serving
    result from PRs 5-8 carry over to the fabric unchanged.
    """
    config = _small_config(n_fleets=1)
    load = FabricLoadConfig(
        n_tenants=1, requests_per_tenant=12, offered_qps=6.0, seed=0
    )
    _, report = fabric_session(config=config, load=load)

    shard = build_fleet_shard(0, config)  # the underlying system, directly
    tenant = tenant_name(0)
    for arrival in generate_tenant_arrivals(load)[tenant]:
        shard.server.run_until(arrival.at_ms)
        template = (
            shard.templates[arrival.template_index % len(shard.templates)]
            if arrival.template_index is not None
            else None
        )
        try:
            shard.server.submit(
                tenant,
                arrival.spec,
                shard.window_range,
                template=template,
                deadline_ms=load.deadline_ms,
                arrival_ms=arrival.at_ms,
                min_coverage=load.min_coverage,
            )
        except QueryRejected:
            pass
    shard.server.drain()

    assert report.fleet_logs[0] == shard.server.response_log()
    assert report.fleet_logs[0]  # and it is not trivially empty


def test_fabric_run_is_deterministic_per_seed():
    config = _small_config()
    load = FabricLoadConfig(n_tenants=4, requests_per_tenant=6, seed=0)
    _, first = fabric_session(config=config, load=load)
    _, second = fabric_session(config=config, load=load)
    assert first.combined_log() == second.combined_log()
    assert first.routing == second.routing

    _, other = fabric_session(
        config=_small_config(seed=1),
        load=FabricLoadConfig(n_tenants=4, requests_per_tenant=6, seed=1),
    )
    assert other.combined_log() != first.combined_log()


# -- tenant isolation ------------------------------------------------------------


def test_tenant_queue_quota_sheds_with_tenant_quota_reason():
    fabric = FleetFabric(config=_small_config(tenant_queue_quota=2))
    tenant = "hog"
    spec = QuerySpec(kind="q3", time_range_ms=50.0)
    for _ in range(2):
        fabric.submit(tenant, spec, arrival_ms=0.0)
    with pytest.raises(QueryRejected) as excinfo:
        fabric.submit(tenant, spec, arrival_ms=0.0)
    assert excinfo.value.reason == "tenant_quota"
    # another tenant on the same fleet is still admitted
    other = next(
        name
        for name in (f"probe{i}" for i in range(100))
        if fabric.fleet_for(name) == fabric.fleet_for(tenant)
    )
    fabric.submit(other, spec, arrival_ms=0.0)


def test_partitioned_result_lru_never_crosses_tenants():
    config = _small_config(
        n_fleets=1,
        server_config=ServerConfig(
            result_retention=2,
            partition_results_by_client=True,
            per_client_queue_quota=16,
        ),
    )
    shard = build_fleet_shard(0, config)
    spec = QuerySpec(kind="q3", time_range_ms=50.0)
    quiet_id = shard.server.submit("quiet", spec, shard.window_range,
                                   arrival_ms=0.0)
    shard.server.drain()
    for i in range(6):  # churn far past the retention bound
        t = 1000.0 * (i + 1)
        shard.server.run_until(t)
        shard.server.submit("churner", spec, shard.window_range, arrival_ms=t)
    shard.server.drain()

    evicted = shard.server.stats.results_evicted_by_client
    assert evicted.get("churner", 0) >= 1
    assert evicted.get("quiet", 0) == 0
    shard.server.result_for(quiet_id)  # the quiet tenant's answer survived


def test_isolation_gate_passes_at_defaults():
    result = run_isolation_gate()
    assert result.byte_identical, "noisy runs must be deterministic per seed"
    assert result.victim_evictions == 0
    assert result.p99_degradation <= 0.10
    assert result.passed
    summary = result.as_dict()
    assert summary["noisy_tenant"] != summary["victim_tenant"]
    assert summary["noisy_shed"] > 0, "the 10x flood must actually be clamped"


# -- population queries ----------------------------------------------------------


def test_population_query_full_coverage():
    fabric = FleetFabric(config=_small_config())
    result = fabric.population_query(QuerySpec(kind="q1", time_range_ms=50.0))
    assert result.n_fleets == 2
    assert result.coverage == pytest.approx(1.0)
    assert result.sla_met and not result.degraded
    assert result.shed_fleets == ()
    assert result.gather_ms == pytest.approx(5.0 + 0.05 * 2)
    assert result.latency_ms >= result.gather_ms
    assert fabric.population_log == [result.log_line()]


def test_population_query_dead_node_lowers_coverage_node_weighted():
    fabric = FleetFabric(config=_small_config())
    fabric.shards[0].system.fail_node(0)
    fabric.shards[0].server.set_dead_nodes({0})  # health view reaches serving
    result = fabric.population_query(QuerySpec(kind="q1", time_range_ms=50.0))
    per_fleet = {a.fleet_id: a for a in result.answers}
    assert per_fleet[0].coverage < 1.0
    assert per_fleet[1].coverage == pytest.approx(1.0)
    expected = sum(
        a.coverage * a.n_nodes for a in result.answers
    ) / sum(a.n_nodes for a in result.answers)
    assert result.coverage == pytest.approx(expected)
    assert 0.0 < result.coverage < 1.0
    assert result.degraded


def test_population_query_shed_fleet_counts_as_zero_coverage():
    config = _small_config(
        server_config=ServerConfig(max_queue=1,
                                   partition_results_by_client=True),
    )
    fabric = FleetFabric(config=config)
    # jam fleet 0's admission queue so the scatter to it sheds
    fabric.shards[0].server.submit(
        "jam", QuerySpec(kind="q3", time_range_ms=50.0),
        fabric.shards[0].window_range, arrival_ms=0.0,
    )
    result = fabric.population_query(
        QuerySpec(kind="q1", time_range_ms=50.0), min_coverage=0.9
    )
    assert result.shed_fleets == (0,)
    assert result.coverage == pytest.approx(0.5)  # 2 of 4 nodes answered
    assert not result.sla_met and result.degraded


def test_population_query_validates_inputs():
    fabric = FleetFabric(config=_small_config())
    spec = QuerySpec(kind="q1", time_range_ms=50.0)
    with pytest.raises(ConfigurationError):
        fabric.population_query(spec, min_coverage=1.5)
    with pytest.raises(ConfigurationError):
        fabric.population_query(spec, fleets=(99,))
    with pytest.raises(ConfigurationError):
        fabric.population_query(spec, fleets=())


# -- fleet add/remove through the fabric -----------------------------------------


def test_add_and_remove_fleet_keeps_routing_total():
    fabric = FleetFabric(config=_small_config())
    tenants = [tenant_name(i) for i in range(16)]
    before = {t: fabric.fleet_for(t) for t in tenants}
    new_id = fabric.add_fleet()
    assert new_id == 2 and new_id in fabric.fleet_ids
    for tenant in tenants:
        owner = fabric.fleet_for(tenant)
        assert owner in fabric.fleet_ids
        if owner != before[tenant]:
            assert owner == new_id
    fabric.remove_fleet(new_id)
    assert {t: fabric.fleet_for(t) for t in tenants} == before
    with pytest.raises(ConfigurationError):
        fabric.remove_fleet(0) or fabric.remove_fleet(1)


# -- per-tenant accounting and SLOs ----------------------------------------------


def test_fabric_session_books_per_tenant_counters_and_slos():
    from repro.telemetry import Telemetry
    from repro.telemetry.health import DEFAULT_SERVING_SLOS, HealthEngine

    load = FabricLoadConfig(n_tenants=3, requests_per_tenant=4, seed=0)
    telemetry = Telemetry()
    health = HealthEngine(
        telemetry,
        slos=tuple(DEFAULT_SERVING_SLOS) + tenant_slos(load.tenants),
    )
    _, report = fabric_session(
        config=_small_config(), load=load, telemetry=telemetry, health=health
    )
    reg = telemetry.registry
    for tenant, stats in report.tenants.items():
        assert reg.counter(f"fabric.{tenant}.submitted") == stats.offered
        assert reg.counter(f"fabric.{tenant}.completed") == stats.completed
        assert reg.counter(f"fabric.{tenant}.shed") == stats.shed
    verdicts = {s["slo"] for s in health.report()["slos"]}
    for tenant in load.tenants:
        assert f"fabric-{tenant}-availability" in verdicts
        assert f"fabric-{tenant}-deadline" in verdicts
    assert report.offered == sum(s.offered for s in report.tenants.values())


# -- the repro.api facade --------------------------------------------------------


def test_api_facade_fleet_and_population_queries():
    from repro import api

    fabric = api.build_fabric(
        n_fleets=2, nodes_per_fleet=2, seed=0, electrodes=2, n_windows=3
    )
    response = api.run_fleet_query(fabric, "t00", "q1")
    assert response.client == "t00"
    assert response.coverage == pytest.approx(1.0)

    template = fabric.shards[fabric.fleet_ids[0]].templates[0]
    matched = api.run_fleet_query(fabric, "t01", "q2", template=template)
    assert matched.client == "t01"

    population = api.run_population_query(fabric, "q3")
    assert population.n_fleets == 2
    assert population.coverage == pytest.approx(1.0)


def test_api_legacy_entry_points_warn_nothing():
    import warnings

    from repro import api

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        system = api.build_system(n_nodes=2, electrodes_per_node=2, seed=0)
        windows = np.zeros((2, 2, 120))
        system.ingest(windows)
        api.run_query(system, "q3", (0, 1))

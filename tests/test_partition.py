"""Partition-tolerant coordination: link-level splits, per-node belief,
quorum-gated epoch-fenced failover, and quorum-aware serving."""

import numpy as np
import pytest

from repro.apps.queries import QuerySpec
from repro.core.system import ScaloSystem
from repro.errors import ConfigurationError, NodeFailure
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FleetBelief,
    HealthMonitor,
)
from repro.network import PartitionMatrix, WirelessNetwork
from repro.network.packet import Packet, PayloadKind
from repro.recovery.failover import FailoverManager
from repro.serving import LoadGenConfig, serve_session
from repro.telemetry import Telemetry
from repro.units import WINDOW_SAMPLES


def _system(n_nodes=7, electrodes=2, seed=0):
    return ScaloSystem(n_nodes=n_nodes, electrodes_per_node=electrodes,
                       seed=seed)


def _ingest_rounds(system, n_rounds, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n_rounds):
        system.ingest(
            rng.normal(
                size=(system.n_nodes, system.electrodes_per_node,
                      WINDOW_SAMPLES)
            )
        )


class TestPartitionMatrix:
    def test_symmetric_split_blocks_both_directions(self):
        matrix = PartitionMatrix.split(5, cut=1, mode="both")
        # A = {0, 1}, B = {2, 3, 4}
        assert matrix.blocks(0, 3) and matrix.blocks(3, 0)
        assert matrix.reachable(0, 1) and matrix.reachable(2, 4)
        assert matrix.symmetric()
        assert matrix.component_of(0) == frozenset({0, 1})
        assert matrix.component_of(4) == frozenset({2, 3, 4})

    def test_asymmetric_split_blocks_one_direction(self):
        matrix = PartitionMatrix.split(4, cut=1, mode="a_to_b")
        # A-side frames cannot reach B; B-side frames still reach A
        assert matrix.blocks(0, 2) and not matrix.blocks(2, 0)
        assert not matrix.symmetric()
        # bidirectional components still split: round trips are broken
        assert matrix.component_of(0) == frozenset({0, 1})
        assert matrix.component_of(2) == frozenset({2, 3})

    def test_isolate_cuts_one_node_off(self):
        matrix = PartitionMatrix.isolate(4, node=2)
        assert matrix.blocks(2, 0) and matrix.blocks(1, 2)
        assert matrix.reachable(0, 3)
        assert matrix.component_of(2) == frozenset({2})
        assert matrix.component_of(0) == frozenset({0, 1, 3})

    def test_self_reachability_always_holds(self):
        matrix = PartitionMatrix.isolate(3, node=1)
        assert all(matrix.reachable(n, n) for n in range(3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionMatrix.split(4, cut=3, mode="both")  # B side empty
        with pytest.raises(ConfigurationError):
            PartitionMatrix.split(4, cut=1, mode="sideways")
        with pytest.raises(ConfigurationError):
            PartitionMatrix(n_nodes=3, blocked=frozenset({(0, 5)}))

    def test_describe_is_deterministic(self):
        a = PartitionMatrix.split(6, cut=2, mode="b_to_a")
        b = PartitionMatrix.split(6, cut=2, mode="b_to_a")
        assert a.describe() == b.describe()
        assert "symmetric=0" in a.describe()


class TestNetworkPartition:
    def _network(self):
        network = WirelessNetwork()
        inboxes = {n: [] for n in range(4)}
        for node, inbox in inboxes.items():
            network.register(node, inbox.append)
        return network, inboxes

    def test_partition_drops_cross_cut_frames_with_distinct_stat(self):
        network, inboxes = self._network()
        network.set_partition(PartitionMatrix.split(4, cut=1, mode="both"))
        network.send(Packet.build(0, 3, PayloadKind.HASHES, bytes(8), seq=0))
        network.send(Packet.build(0, 1, PayloadKind.HASHES, bytes(8), seq=1))
        assert network.stats.dropped_partition == 1
        assert [p.header.seq for p in inboxes[1]] == [1]
        assert inboxes[3] == []

    def test_asymmetric_partition_is_one_way(self):
        network, inboxes = self._network()
        network.set_partition(PartitionMatrix.split(4, cut=1, mode="a_to_b"))
        network.send(Packet.build(0, 2, PayloadKind.HASHES, bytes(8), seq=0))
        network.send(Packet.build(2, 0, PayloadKind.HASHES, bytes(8), seq=1))
        assert inboxes[2] == []  # A -> B blocked
        assert [p.header.seq for p in inboxes[0]] == [1]  # B -> A clear
        assert network.stats.dropped_partition == 1

    def test_clear_partition_restores_delivery(self):
        network, inboxes = self._network()
        network.set_partition(PartitionMatrix.split(4, cut=0, mode="both"))
        assert not network.can_reach(0, 3)
        network.clear_partition()
        assert network.can_reach(0, 3)
        network.send(Packet.build(0, 3, PayloadKind.HASHES, bytes(8), seq=0))
        assert len(inboxes[3]) == 1


class TestPartitionPlan:
    def test_generation_is_deterministic(self):
        kwargs = dict(n_partitions=3, partition_rounds=8,
                      partition_asymmetric=True)
        a = FaultPlan.generate(7, 64, seed=5, **kwargs)
        b = FaultPlan.generate(7, 64, seed=5, **kwargs)
        assert a.events == b.events
        assert a.event_log() == b.event_log()
        assert a.has_partitions

    def test_splits_pair_start_with_heal(self):
        plan = FaultPlan.generate(7, 64, seed=3, n_partitions=2,
                                  partition_rounds=6)
        starts = [e for e in plan.events
                  if e.kind is FaultKind.PARTITION_START]
        heals = [e for e in plan.events
                 if e.kind is FaultKind.PARTITION_HEAL]
        assert len(starts) == 2
        assert len(heals) == 2
        for start, heal in zip(starts, heals):
            assert heal.round > start.round
            assert plan.partition_at(start.round) is not None
            assert plan.partition_at(heal.round) is None

    def test_symmetric_only_generation(self):
        plan = FaultPlan.generate(7, 64, seed=3, n_partitions=2,
                                  partition_asymmetric=False)
        for event in plan.events:
            if event.kind is FaultKind.PARTITION_START:
                assert int(event.magnitude) == 0  # mode "both"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(n_nodes=4, n_rounds=10, events=[
                FaultEvent(0, 3, FaultKind.PARTITION_START)  # B side empty
            ])
        with pytest.raises(ConfigurationError):
            FaultPlan(n_nodes=4, n_rounds=10, events=[
                FaultEvent(0, 1, FaultKind.PARTITION_START, magnitude=7.0)
            ])
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(1, 64, seed=0, n_partitions=1)

    def test_partition_free_plans_unchanged_by_new_knobs(self):
        # the partition knobs default off: pre-existing plans must draw
        # the exact same events (the calibrated storms depend on it)
        a = FaultPlan.generate(6, 64, seed=0, n_crashes=2, n_outages=1)
        b = FaultPlan.generate(6, 64, seed=0, n_crashes=2, n_outages=1,
                               n_partitions=0)
        assert a.events == b.events
        assert not a.has_partitions


class TestFleetBelief:
    def test_views_diverge_across_a_split(self):
        system = _system(n_nodes=5)
        plan = FaultPlan(n_nodes=5, n_rounds=12, events=[
            FaultEvent(2, 1, FaultKind.PARTITION_START),  # {0,1} | {2,3,4}
        ])
        injector = FaultInjector(system, plan)
        injector.run(12)
        belief = injector.belief
        # A-side view: B dead; B-side view: A dead — and vice versa
        assert belief.view(0).alive_nodes == [0, 1]
        assert belief.view(3).alive_nodes == [2, 3, 4]

    def test_asymmetric_cut_still_breaks_round_trips(self):
        # a_to_b blocks only A->B frames, but the probe *ack* cannot
        # return, so both sides lose each other (symmetric closure)
        system = _system(n_nodes=5)
        plan = FaultPlan(n_nodes=5, n_rounds=12, events=[
            FaultEvent(2, 1, FaultKind.PARTITION_START, magnitude=1.0),
        ])
        injector = FaultInjector(system, plan)
        injector.run(12)
        assert injector.belief.view(0).alive_nodes == [0, 1]
        assert injector.belief.view(2).alive_nodes == [2, 3, 4]

    def test_tick_reports_newly_dead_per_observer(self):
        belief = FleetBelief(3, miss_threshold=2)
        declared = {obs: [] for obs in range(3)}
        for r in range(3):
            for obs in range(3):
                belief.heartbeat(obs, obs, r)
                for sender in range(3):
                    if sender != obs and sender != 2:
                        belief.heartbeat(obs, sender, r)
            for obs, newly in belief.tick(r).items():
                declared[obs].extend(newly)
        assert 2 in declared[0] and 2 in declared[1]
        assert not belief.view(0).is_alive(2)
        assert belief.view(2).is_alive(2)  # self-heartbeat keeps it up

    def test_view_rejects_unknown_node(self):
        with pytest.raises(ConfigurationError):
            FleetBelief(3).view(7)


class TestQuorumFailover:
    def _run(self, system, plan):
        injector = FaultInjector(system, plan)
        manager = system.attach_failover(views=injector.belief)
        injector.failover = manager
        injector.run(plan.n_rounds)
        return injector, manager

    def test_split_deposes_minority_coordinator_and_heals(self):
        system = _system()
        plan = FaultPlan(n_nodes=7, n_rounds=30, events=[
            # {0,1,2} | {3,4,5,6}: the majority side deposes node 0
            FaultEvent(5, 2, FaultKind.PARTITION_START, magnitude=1.0),
            FaultEvent(20, 0, FaultKind.PARTITION_HEAL),
        ])
        _, manager = self._run(system, plan)
        # initial election (1) -> majority side elects 3 (2) -> heal
        # re-elects 0 (3); the deposed coordinator's stale writes all
        # bounced off the fence, then reconciled after the heal
        assert manager.coordinator == 0
        assert manager.epoch == 3
        assert [e.new_coordinator for e in manager.history] == [3, 0]
        assert manager.fencing_rejected > 0
        assert manager.fencing_accepted_stale == 0
        assert manager.reconciliations == 1
        assert manager.duplicate_seqs == 0
        assert any("fence rejected" in line for line in manager.log)

    def test_at_most_one_coordinator_per_round(self):
        system = _system()
        plan = FaultPlan(n_nodes=7, n_rounds=30, events=[
            FaultEvent(5, 2, FaultKind.PARTITION_START, magnitude=2.0),
            FaultEvent(18, 0, FaultKind.PARTITION_HEAL),
        ])
        _, manager = self._run(system, plan)
        per_round = {}
        for round_index, coordinator, _epoch in manager.claim_log:
            per_round.setdefault(round_index, set()).add(coordinator)
        assert all(len(claimants) == 1 for claimants in per_round.values())
        epochs = [epoch for _, _, epoch in manager.claim_log]
        assert epochs == sorted(epochs)

    def test_no_quorum_anywhere_steps_down(self):
        system = _system()
        plan = FaultPlan(n_nodes=7, n_rounds=14, events=[
            FaultEvent(1, 6, FaultKind.NODE_CRASH),
            # {0,1,2} | {3,4,5}+dead 6: neither side reaches quorum 4
            FaultEvent(5, 2, FaultKind.PARTITION_START),
        ])
        _, manager = self._run(system, plan)
        assert manager.coordinator is None
        assert manager.stepdowns == 1
        assert any("steps down" in line for line in manager.log)
        # a coordinator-less fleet refuses distributed queries outright
        _ingest_rounds(system, 1)
        with pytest.raises(NodeFailure, match="no quorum"):
            system.query_distributed(
                QuerySpec(kind="q3", time_range_ms=50.0), (0, 1)
            )

    def test_heal_after_quorum_loss_recovers_without_split_brain(self):
        system = _system()
        plan = FaultPlan(n_nodes=7, n_rounds=30, events=[
            FaultEvent(1, 6, FaultKind.NODE_CRASH),
            FaultEvent(5, 2, FaultKind.PARTITION_START),
            FaultEvent(18, 0, FaultKind.PARTITION_HEAL),
        ])
        _, manager = self._run(system, plan)
        assert manager.coordinator == 0
        assert manager.stepdowns == 1
        assert manager.fencing_accepted_stale == 0
        assert manager.duplicate_seqs == 0
        # queries work again after the heal
        _ingest_rounds(system, 1)
        result = system.query_distributed(
            QuerySpec(kind="q3", time_range_ms=50.0), (0, 1)
        )
        assert result.coverage > 0

    def test_stale_epoch_query_broadcast_is_discarded(self):
        system = _system()
        plan = FaultPlan(n_nodes=7, n_rounds=30, events=[
            FaultEvent(5, 2, FaultKind.PARTITION_START, magnitude=1.0),
            FaultEvent(20, 0, FaultKind.PARTITION_HEAL),
        ])
        injector = FaultInjector(system, plan)
        manager = system.attach_failover(views=injector.belief)
        injector.failover = manager
        _ingest_rounds(system, 1)
        injector.run(12)  # mid-split: node 3 coordinates at epoch 2
        assert (manager.coordinator, manager.epoch) == (3, 2)
        # a query succeeds under the new coordinator at the new epoch
        result = system.query_distributed(
            QuerySpec(kind="q3", time_range_ms=50.0), (0, 1)
        )
        assert result.coverage > 0
        assert manager.duplicate_seqs == 0

    def test_exclusive_belief_sources(self):
        system = _system(n_nodes=3)
        with pytest.raises(ConfigurationError):
            FailoverManager(system=system, health=HealthMonitor(3),
                            views=FleetBelief(3))


class TestFailoverSatellites:
    def test_blind_fallback_is_explicit_logged_and_counted(self):
        system = _system(n_nodes=3)
        health = HealthMonitor(3, miss_threshold=2)
        manager = system.attach_failover(health=health)
        telemetry_before = manager.blind_fallbacks
        # the belief loses faith in the whole fleet while ground truth
        # still has three alive nodes: the fallback must announce itself
        for r in range(3):
            health.tick(r)
        assert health.alive_nodes == []
        assert manager.step() is None  # still coordinator 0, via fallback
        assert manager.coordinator == 0
        assert manager.blind_fallbacks > telemetry_before
        assert any("blind fallback" in line for line in manager.log)

    def test_history_log_and_claims_are_ring_bounded(self):
        system = _system(n_nodes=3)
        manager = FailoverManager(system=system, max_history=2, max_claims=3)
        for _ in range(5):
            system.fail_node(0)
            manager.step()
            system.restore_node(0)
            manager.step()
        assert len(manager.history) == 2
        # the ring keeps the *newest* events
        assert manager.history[-1].new_coordinator == 0
        assert len(manager.claim_log) == 3
        for i in range(600):
            manager._note(f"line {i}")
        assert len(manager.log) == manager.max_log
        assert manager.log[-1] == "line 599"

    def test_flapping_belief_causes_no_spurious_handover(self):
        # node 0 misses two consecutive probe rounds — under the
        # miss_threshold=3 guard — then reappears: no handover, no
        # stepdown, no epoch churn
        system = _system(n_nodes=5)
        belief = FleetBelief(5, miss_threshold=3)
        manager = FailoverManager(system=system, views=belief)
        assert (manager.coordinator, manager.epoch) == (0, 1)
        for r in range(8):
            for obs in range(5):
                belief.heartbeat(obs, obs, r)
                for sender in range(5):
                    flapping = sender == 0 and r in (2, 3)
                    if sender != obs and not flapping:
                        belief.heartbeat(obs, sender, r)
            belief.tick(r)
            manager.step(round_index=r)
        assert (manager.coordinator, manager.epoch) == (0, 1)
        assert manager.history == []
        assert manager.stepdowns == 0
        assert manager.fencing_rejected == 0


class TestQuorumServing:
    _QUORUM_LOSS_EVENTS = [
        FaultEvent(2, 6, FaultKind.NODE_CRASH),
        FaultEvent(6, 2, FaultKind.PARTITION_START),
        FaultEvent(18, 0, FaultKind.PARTITION_HEAL),
    ]

    def _plan(self):
        return FaultPlan(n_nodes=7, n_rounds=40,
                         events=list(self._QUORUM_LOSS_EVENTS))

    def _load(self):
        return LoadGenConfig(n_requests=48, offered_qps=40.0, seed=0,
                             deadline_ms=300.0, min_coverage=0.9)

    def test_quorum_loss_pins_serving_to_cache_only(self):
        telemetry = Telemetry()
        server, report = serve_session(
            n_nodes=7, electrodes=2, n_windows=3, seed=0,
            load=self._load(), fault_plan=self._plan(), telemetry=telemetry,
        )
        assert server.failover is not None
        registry = telemetry.registry
        assert registry.counter("serving.quorum.lost") >= 1
        assert registry.counter("serving.quorum.regained") >= 1
        assert registry.gauge("serving.quorum") == 1.0  # healed by the end
        assert any("quorum" in line for line in server._log)
        assert report.completed > 0

    def test_partition_serving_is_deterministic(self):
        kwargs = dict(n_nodes=7, electrodes=2, n_windows=3, seed=0,
                      load=self._load())
        _, a = serve_session(fault_plan=self._plan(), **kwargs)
        _, b = serve_session(fault_plan=self._plan(), **kwargs)
        _, live = serve_session(fault_plan=self._plan(),
                                telemetry=Telemetry(), **kwargs)
        assert a.response_log == b.response_log == live.response_log

    def test_partition_free_plans_skip_the_quorum_stack(self):
        plan = FaultPlan.generate(4, 16, seed=0, n_crashes=1, reboot_after=4)
        server, _ = serve_session(seed=0, fault_plan=plan)
        assert server.failover is None

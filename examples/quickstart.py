"""Quickstart: assemble a SCALO system and touch every layer once.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Flow,
    SchedulerProblem,
    compile_text,
    get_pe,
)
from repro.api import build_system, run_query
from repro.scheduler import hash_similarity_task, seizure_detection_task


def main() -> None:
    # --- 1. the hardware: look up a Table 1 PE ------------------------------
    xcor = get_pe("XCOR")
    print(f"XCOR PE: {xcor.max_freq_mhz} MHz, "
          f"{xcor.dyn_uw_per_electrode} uW/electrode, {xcor.area_kge} KGE")

    # --- 2. a four-implant distributed system -------------------------------
    system = build_system(n_nodes=4, electrodes_per_node=8)
    thermal = system.thermal_check()
    print(f"thermal check: {system.n_nodes} implants, worst rise "
          f"{thermal.worst_rise_c:.2f} C (safe={thermal.safe})")

    sync = system.synchronise_clocks()
    print(f"clock sync: {sync.rounds} round(s), worst offset "
          f"{sync.worst_offset_us:.2f} us")

    # --- 3. ingest one 4 ms window on every node and exchange hashes --------
    rng = np.random.default_rng(0)
    windows = rng.normal(size=(4, 8, 120)).cumsum(axis=2)
    # plant correlated activity: node 1 sees node 0's signal, lagged and
    # attenuated — the situation the hash check is built to spot
    windows[1, 0] = 0.85 * np.roll(windows[0, 0], 4)
    signatures = system.ingest(windows)
    system.broadcast_hashes(0, signatures[0])
    packet = system.drain_inbox(1)[0]
    received = system.unpack_hashes(packet)
    matches = system.nodes[1].check_remote_hashes(received)
    print(f"node 0 broadcast {len(received)} hashes; node 1 found "
          f"{len(matches)} collisions against its recent store")

    # --- 4. query the fleet's storage ---------------------------------------
    result = run_query(system, "q2", (0, 1), template=windows[0, 0])
    print(f"Q2 template query: {len(result.rows)} matching window(s), "
          f"coverage {result.coverage:.0%}")

    # --- 5. schedule an application with the ILP ----------------------------
    schedule = SchedulerProblem(
        n_nodes=4,
        flows=[
            Flow(seizure_detection_task(), electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 electrode_cap=96),
        ],
        power_budget_mw=15.0,
    ).solve()
    for allocation in schedule.allocations:
        print(f"flow {allocation.flow.task.name}: "
              f"{allocation.electrodes_per_node:.0f} electrodes/node, "
              f"{allocation.aggregate_mbps:.1f} Mbps aggregate")
    print(f"node power: {schedule.node_power_mw:.2f} mW of "
          f"{schedule.power_budget_mw} mW")

    # --- 6. compile a Trill-style query to a PE pipeline ---------------------
    compiled = compile_text(
        "var movements = stream.window(wsize=50ms).sbp().kf(params)"
        ".call_runtime()"
    )
    pipeline = compiled.build_pipeline()
    print(f"query '{compiled.chain.var_name}' lowers to PEs "
          f"{compiled.pe_names} (latency {pipeline.latency_ms:.2f} ms)")


if __name__ == "__main__":
    main()

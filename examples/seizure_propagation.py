"""Seizure propagation, end to end (paper Figs. 3a/5, §6.3, Fig. 15).

Generates a multi-site recording with one propagating seizure, trains the
local detector, runs the distributed hash -> exact-comparison protocol,
and reports detection/confirmation timing — then repeats under hash
encoding errors to show the protocol's resilience.

Run:  python examples/seizure_propagation.py
"""

from repro import SeizurePropagationSimulator, generate_ieeg
from repro.apps.seizure import train_detector_from_recording
from repro.apps.stimulation import Stimulator, stimulate_from_confirmations
from repro.eval.application import seizure_propagation_schedule
from repro.hashing import LSHFamily


def main() -> None:
    # --- data: 3 implants, one seizure spreading across all of them ---------
    recording = generate_ieeg(
        n_nodes=3, n_electrodes=6, duration_s=2.0, fs_hz=6000,
        n_seizures=1, seizure_duration_s=0.5,
        propagation_delay_ms=(20.0, 80.0), seed=7,
    )
    seizure = recording.seizures[0]
    window_ms = 120 / recording.fs_hz * 1e3
    print(f"seizure onset at node {seizure.onset_node}, "
          f"sample {seizure.onset_sample}; arrivals:")
    for node, arrival in sorted(seizure.arrivals.items()):
        delay = (arrival - seizure.onset_sample) / recording.fs_hz * 1e3
        print(f"  node {node}: +{delay:.1f} ms")

    # --- the local detection stage -------------------------------------------
    detector = train_detector_from_recording(recording, seed=0)

    # --- the distributed protocol --------------------------------------------
    simulator = SeizurePropagationSimulator(
        recording, detector, LSHFamily.for_measure("dtw"),
        dtw_threshold=250.0,
    )
    result = simulator.run()
    print(f"\nclean run: {result.hash_broadcasts} hash broadcasts, "
          f"{result.signal_exchanges} signal exchanges, "
          f"{len(result.confirmations)} confirmed propagations, "
          f"{len(result.stimulations)} stimulation commands")
    event = result.confirmations[0]
    print(f"first confirmation: node {event.confirming_node} confirmed "
          f"node {event.source_node}'s seizure in window "
          f"{event.window_index} (t={event.window_index * window_ms:.0f} ms, "
          f"DTW cost {event.dtw_cost:.1f}, "
          f"{event.n_collisions} electrode collisions)")

    # --- close the loop: confirmed spread triggers safe stimulation ----------
    stimulators = {
        node: Stimulator(node, recording.n_electrodes)
        for node in range(recording.n_nodes)
    }
    executed = stimulate_from_confirmations(
        result.confirmations, stimulators, window_ms
    )
    print(f"stimulation: {len(executed)} trains executed "
          f"(refractory suppressed "
          f"{len(result.confirmations) - len(executed)}); "
          f"DAC energy {sum(s.energy_mj() for s in stimulators.values()):.2f} mJ")

    # --- resilience to hash encoding errors (Fig. 15a's knob) ---------------
    print("\nhash-encoding error sweep (first-confirmation window):")
    for rate in (0.0, 0.3, 0.6, 0.9):
        noisy = SeizurePropagationSimulator(
            recording, detector, LSHFamily.for_measure("dtw"),
            dtw_threshold=250.0, hash_error_rate=rate, seed=3,
        ).run()
        first = (
            min(e.window_index for e in noisy.confirmations)
            if noisy.confirmations else None
        )
        print(f"  error rate {rate:.1f}: "
              f"{len(noisy.confirmations)} confirmations, "
              f"first at window {first}")

    # --- what the ILP would schedule for this application --------------------
    schedule = seizure_propagation_schedule(n_nodes=11, weights=(1, 1, 1))
    print(f"\nILP schedule at 11 implants / 15 mW "
          f"(weighted {schedule.weighted_mbps():.0f} Mbps):")
    for allocation in schedule.allocations:
        print(f"  {allocation.flow.task.name:24s} "
              f"{allocation.electrodes_per_node:6.1f} electrodes/node  "
              f"{allocation.power_mw_per_node:5.2f} mW dyn")


if __name__ == "__main__":
    main()

"""Telemetry offload: HALO's compress-encrypt-transmit path on SCALO.

Streams a synthetic recording off-implant through each codec PE (LIC /
LZ / Markov-range-coding), AES-CTR encrypts it, packetises it for the
46 Mbps external radio, and verifies the base station recovers the
samples bit-exactly.

Run:  python examples/telemetry_offload.py
"""

import numpy as np

from repro.apps.streaming import (
    Codec,
    TelemetryOffloader,
    TelemetryReceiver,
    offload_budget,
)
from repro.datasets import generate_ieeg

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


def main() -> None:
    recording = generate_ieeg(
        n_nodes=1, n_electrodes=2, duration_s=0.5, fs_hz=10_000,
        n_seizures=1, seizure_duration_s=0.15, seed=4,
    )
    # quantise one channel the way the 16-bit ADC would
    samples = np.clip(
        np.round(recording.data[0, 0] * 1000), -32768, 32767
    ).astype(np.int64)
    raw_bytes = 2 * samples.shape[0]
    print(f"offloading {samples.shape[0]} samples ({raw_bytes} B raw) "
          "through each codec PE:\n")

    print(f"{'codec':>6s}{'wire B':>9s}{'ratio':>8s}{'packets':>9s}"
          f"{'airtime':>10s}{'roundtrip':>11s}")
    for codec in Codec:
        offloader = TelemetryOffloader(KEY, codec)
        receiver = TelemetryReceiver(KEY)
        chunk = offloader.offload(samples)
        recovered = receiver.receive(chunk)
        exact = bool((recovered == samples).all())
        print(f"{codec.value:>6s}{chunk.wire_bytes:9d}"
              f"{raw_bytes / chunk.wire_bytes:8.2f}"
              f"{len(chunk.packets):9d}"
              f"{offloader.airtime_ms(chunk):8.2f}ms"
              f"{'bit-exact' if exact else 'FAILED':>11s}")

    print("\nsustainable electrode counts on the 46 Mbps external radio:")
    for ratio in (1.0, 1.5, 2.0):
        print(f"  compression {ratio:.1f}x -> "
              f"{offload_budget(ratio):.0f} electrodes "
              f"({offload_budget(ratio) / 96:.1f} implants' worth)")
    print("(HALO's headline 46 Mbps = 96 electrodes uncompressed)")


if __name__ == "__main__":
    main()

"""The full scheduling toolchain (paper §3.5/3.7), end to end.

Query text -> dataflow DAG -> ILP schedule -> materialised clock/TDMA
settings -> emitted C configuration program -> parsed and applied by the
on-node runtime loader.  Every arrow below runs for real.

Run:  python examples/toolchain.py
"""

from repro import Flow, SchedulerProblem, compile_text
from repro.core.config_loader import load_config_program
from repro.scheduler import (
    emit_config_program,
    hash_similarity_task,
    materialise,
    seizure_detection_task,
)


def main() -> None:
    # --- 1. the clinician's program ------------------------------------------
    query = "var detect = stream.window(wsize=4ms).fft().bbf().svm()"
    compiled = compile_text(query)
    print(f"query: {query}")
    print(f"  -> dataflow operators {[o.name for o in compiled.dataflow.operators]}")
    print(f"  -> PE chain {compiled.pe_names}\n")

    # --- 2. the ILP maps flows onto 4 implants --------------------------------
    problem = SchedulerProblem(
        n_nodes=4,
        flows=[
            Flow(seizure_detection_task(), weight=3.0, electrode_cap=96),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 weight=1.0, electrode_cap=96),
        ],
        power_budget_mw=15.0,
    )
    schedule = problem.solve()
    print("ILP schedule (4 implants, 15 mW):")
    for allocation in schedule.allocations:
        print(f"  {allocation.flow.task.name:26s}"
              f"{allocation.electrodes_per_node:6.1f} electrodes/node"
              f"{allocation.power_mw_per_node:7.2f} mW dyn")
    print(f"  node power {schedule.node_power_mw:.2f} mW, network "
          f"utilisation {schedule.network_utilisation:.1%}\n")

    # --- 3. materialise: clock dividers + TDMA frame --------------------------
    materialised = materialise(schedule)
    slow = {k: v for k, v in sorted(materialised.dividers.items(),
                                    key=lambda kv: -kv[1])[:4]}
    print(f"clock dividers (slowest four): {slow}")
    print(f"TDMA frame: {materialised.tdma_frame.slot_owners} "
          f"({materialised.tdma_frame.frame_ms:.2f} ms)\n")

    # --- 4. emit the per-node configuration program ----------------------------
    program = emit_config_program(materialised, node_id=0)
    head = "\n".join(program.splitlines()[:14])
    print(f"emitted configuration program (head):\n{head}\n  ...\n")

    # --- 5. the on-node runtime loads it back ----------------------------------
    loaded = load_config_program(program)
    assert loaded.dividers == materialised.dividers
    assert loaded.tdma_frame == materialised.tdma_frame.slot_owners
    print("runtime loader applied the program:")
    print(f"  {len(loaded.fabric.pes)} PEs configured, "
          f"{len(loaded.flows)} flows wired, dividers verified equal, "
          f"fabric power {loaded.fabric.power_mw:.2f} mW")


if __name__ == "__main__":
    main()

"""Movement-intent decoding: the three pipelines of paper Fig. 3b/6.

Trains and evaluates the decomposed SVM classifier (A), the centralised
Kalman filter (B), and the decomposed shallow network (C) on a synthetic
reaching session, and reports what each ships over the intra-SCALO
network per decision.

Run:  python examples/movement_decoding.py
"""

from repro import (
    MovementClassifierApp,
    MovementKalmanApp,
    MovementNNApp,
    generate_movement_session,
)
from repro.eval.application import mi_intents_per_second


def main() -> None:
    session = generate_movement_session(
        n_nodes=4, electrodes_per_node=12, n_steps=450, seed=1
    )
    train, test = session.split(0.6)
    print(f"session: {session.n_nodes} implants x "
          f"{session.electrodes_per_node} electrodes, "
          f"{session.n_steps} x 50 ms steps "
          f"({len(set(session.labels))} movement classes)")

    # --- pipeline A: decomposed linear SVM ----------------------------------
    classifier = MovementClassifierApp.train(train)
    print(f"\nA  (SVM):  {classifier.accuracy(test):.0%} class accuracy, "
          f"{classifier.wire_bytes_per_node} B/node/decision on the wire")

    # --- pipeline B: centralised Kalman filter ------------------------------
    kalman = MovementKalmanApp.train(train)
    print(f"B  (KF):   velocity correlation "
          f"{kalman.velocity_correlation(test):.2f}, "
          f"{kalman.wire_bytes_per_node} B/node/step "
          f"(4 B per electrode, centralised inversion of a "
          f"{kalman.model.n_obs}x{kalman.model.n_obs} matrix)")

    # --- pipeline C: decomposed shallow network -----------------------------
    network = MovementNNApp.train(train, n_hidden=32, epochs=150)
    print(f"C  (NN):   velocity correlation "
          f"{network.velocity_correlation(test):.2f}, "
          f"{network.wire_bytes_per_node} B/node/decision")

    # --- decision rates (paper Fig. 9b) --------------------------------------
    print("\nintents per second vs node count (Fig. 9b):")
    print(f"{'nodes':>8s}{'SVM':>10s}{'NN':>10s}{'KF':>10s}")
    for n in (2, 4, 8, 16):
        print(f"{n:>8d}"
              f"{mi_intents_per_second('svm', n):>10.1f}"
              f"{mi_intents_per_second('nn', n):>10.1f}"
              f"{mi_intents_per_second('kf', n):>10.1f}")
    print("(conventional decoders are pinned at 20/s by the 50 ms window)")


if __name__ == "__main__":
    main()

"""Interactive human-in-the-loop querying (paper §6.4, Fig. 10).

Parses a Trill-style query with the on-device language, runs the three
canonical queries functionally against per-node storage, and prints the
Fig. 10 latency/QPS model.

Run:  python examples/interactive_queries.py
"""

import numpy as np

from repro import QueryCostModel, QuerySpec, parse_query
from repro.apps.queries import QueryEngine, query_data_bytes
from repro.hashing import LSHFamily
from repro.storage import NVMDevice, StorageController


def main() -> None:
    # --- the clinician's query, in the supported Trill subset ----------------
    text = ("var seizure_data = stream.window(wsize=4ms)"
            ".select(w => w.seizure_detect(), w[-100ms:100ms])")
    chain = parse_query(text)
    print(f"parsed query '{chain.var_name}': operations {chain.call_names}")

    # --- functional execution against two nodes' NVM -------------------------
    rng = np.random.default_rng(0)
    lsh = LSHFamily.for_measure("dtw")
    template = (rng.normal(size=120).cumsum() * 1000).round()
    controllers = []
    for node in range(2):
        controller = StorageController(
            device=NVMDevice(capacity_bytes=16 * 1024 * 1024)
        )
        for w in range(6):
            if node == 0 and w == 2:  # plant a template match
                window = template + (10 * rng.normal(size=120)).round()
            else:
                window = (rng.normal(size=120).cumsum() * 1000).round()
            controller.store_window(0, w, window.astype(int))
        controllers.append(controller)
    engine = QueryEngine(
        controllers, lsh, seizure_flags={0: {2, 3}, 1: {4}},
        dtw_threshold=20_000.0,
    )

    q1 = engine.execute(QuerySpec("q1", 24.0), window_range=(0, 6))
    print(f"Q1 (seizure-flagged windows): "
          f"{[(r.node, r.window_index) for r in q1]}")
    q2 = engine.execute(QuerySpec("q2", 24.0), window_range=(0, 6),
                        template=template)
    print(f"Q2 (hash-matched template):   "
          f"{[(r.node, r.window_index) for r in q2]}")
    q3 = engine.execute(QuerySpec("q3", 24.0), window_range=(0, 6))
    print(f"Q3 (everything): {len(q3)} windows")

    # --- the Fig. 10 cost model ------------------------------------------------
    model = QueryCostModel(n_nodes=11)
    print(f"\nFig. 10 model (11 implants, "
          f"{query_data_bytes(110, 11) / 1e6:.0f} MB per 110 ms):")
    print(f"{'query':>22s}{'latency':>10s}{'QPS':>7s}{'power':>9s}")
    for label, spec in [
        ("Q1 110ms 5%", QuerySpec("q1", 110.0, 0.05)),
        ("Q2 110ms 5% (hash)", QuerySpec("q2", 110.0, 0.05)),
        ("Q2 110ms 5% (DTW)", QuerySpec("q2", 110.0, 0.05, use_hash=False)),
        ("Q1 1s 5%", QuerySpec("q1", 1000.0, 0.05)),
        ("Q3 110ms", QuerySpec("q3", 110.0)),
    ]:
        cost = model.cost(spec)
        print(f"{label:>22s}{cost.latency_ms:9.0f}ms"
              f"{cost.queries_per_second:7.1f}{cost.power_mw:8.2f}mW")
    print("(paper: 9 QPS over 7 MB, 1 QPS over 60 MB, Q3 = 1.21 s;"
          " DTW Q2 needs ~15 mW vs ~3.6 mW hashed)")


if __name__ == "__main__":
    main()

"""Interactive human-in-the-loop querying (paper §6.4, Fig. 10).

Parses a Trill-style query with the on-device language, runs the three
canonical queries through the stable ``repro.api`` facade — watching the
storage controllers' hash-on-write signature cache answer the Q2 filter —
and prints the Fig. 10 latency/QPS model.

Run:  python examples/interactive_queries.py
"""

import numpy as np

from repro import QueryCostModel, QuerySpec, parse_query
from repro.api import Telemetry, build_system, run_query
from repro.apps.queries import query_data_bytes


def main() -> None:
    # --- the clinician's query, in the supported Trill subset ----------------
    text = ("var seizure_data = stream.window(wsize=4ms)"
            ".select(w => w.seizure_detect(), w[-100ms:100ms])")
    chain = parse_query(text)
    print(f"parsed query '{chain.var_name}': operations {chain.call_names}")

    # --- a two-implant fleet, via the facade ---------------------------------
    telemetry = Telemetry()
    system = build_system(
        n_nodes=2, electrodes_per_node=4, telemetry=telemetry
    )
    rng = np.random.default_rng(0)
    template = rng.normal(size=120).cumsum() * 1000
    for w in range(6):
        windows = rng.normal(size=(2, 4, 120)).cumsum(axis=2) * 1000
        if w == 2:  # plant a template match on node 0, electrode 0
            windows[0, 0] = template + 10 * rng.normal(size=120)
        system.ingest(windows)

    flags = {0: {2, 3}, 1: {4}}
    q1 = run_query(system, "q1", (0, 6), seizure_flags=flags)
    print(f"Q1 (seizure-flagged windows): "
          f"{sorted({(r.node, r.window_index) for r in q1.rows})}")
    q2 = run_query(system, "q2", (0, 6), template=template)
    print(f"Q2 (hash-matched template):   "
          f"{[(r.node, r.window_index) for r in q2.rows]}")
    q3 = run_query(system, "q3", (0, 6))
    print(f"Q3 (everything): {len(q3.rows)} windows")
    hits = telemetry.registry.counter("query.cache_hit")
    misses = telemetry.registry.counter("query.cache_miss")
    print(f"signature cache on the Q2 scan: {hits:.0f} hits, "
          f"{misses:.0f} misses (hashes were computed at ingest)")

    # --- the Fig. 10 cost model ------------------------------------------------
    model = QueryCostModel(n_nodes=11)
    print(f"\nFig. 10 model (11 implants, "
          f"{query_data_bytes(110, 11) / 1e6:.0f} MB per 110 ms):")
    print(f"{'query':>22s}{'latency':>10s}{'QPS':>7s}{'power':>9s}")
    for label, spec in [
        ("Q1 110ms 5%", QuerySpec("q1", 110.0, 0.05)),
        ("Q2 110ms 5% (hash)", QuerySpec("q2", 110.0, 0.05)),
        ("Q2 110ms 5% (DTW)", QuerySpec("q2", 110.0, 0.05, use_hash=False)),
        ("Q1 1s 5%", QuerySpec("q1", 1000.0, 0.05)),
        ("Q3 110ms", QuerySpec("q3", 110.0)),
    ]:
        cost = model.cost(spec)
        print(f"{label:>22s}{cost.latency_ms:9.0f}ms"
              f"{cost.queries_per_second:7.1f}{cost.power_mw:8.2f}mW")
    print("(paper: 9 QPS over 7 MB, 1 QPS over 60 MB, Q3 = 1.21 s;"
          " DTW Q2 needs ~15 mW vs ~3.6 mW hashed)")


if __name__ == "__main__":
    main()

"""Online spike sorting with hash-filtered template matching (Fig. 3c/7).

Sorts three synthetic recordings (mirroring the SpikeForest, MEArec, and
Kilosort profiles) with the exact EMD matcher and the hash-filtered
matcher, and reports accuracy, comparison savings, and the modelled
per-node sorting rate/latency from §6.3.

Run:  python examples/spike_sorting.py
"""

from repro import SpikeSorter, generate_spikes
from repro.apps.spike_sorting import detection_recall, sorting_accuracy
from repro.eval.application import (
    spike_sorting_latency_ms,
    spike_sorting_rate_per_node,
)


def main() -> None:
    print(f"{'dataset':>12s}{'truth':>7s}{'found':>7s}{'recall':>8s}"
          f"{'exact':>8s}{'hash':>8s}{'cmp saved':>11s}")
    for profile in ("spikeforest", "mearec", "kilosort"):
        dataset = generate_spikes(profile, duration_s=4.0, seed=0)
        sorter = SpikeSorter.from_dataset(dataset)
        hashed = sorter.sort(dataset.data, "hash")
        exact = sorter.sort(dataset.data, "exact")
        saved = 1 - hashed.exact_comparisons / max(exact.exact_comparisons, 1)
        print(f"{profile:>12s}{dataset.n_spikes:>7d}{hashed.n_sorted:>7d}"
              f"{detection_recall(dataset, hashed):>8.2f}"
              f"{sorting_accuracy(dataset, exact):>8.2f}"
              f"{sorting_accuracy(dataset, hashed):>8.2f}"
              f"{saved:>11.0%}")

    print("\npaper §6.3 reference: accuracies 82 % (SpikeForest), "
          "91 % (MEArec), 73 % (Kilosort); hash within 5 % of exact")
    print(f"modelled sorting rate at 15 mW: "
          f"{spike_sorting_rate_per_node():.0f} spikes/s/node "
          f"(paper: 12,250)")
    print(f"modelled per-spike latency: {spike_sorting_latency_ms():.2f} ms "
          f"(paper: ~2.5 ms)")


if __name__ == "__main__":
    main()

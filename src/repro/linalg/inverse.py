"""Matrix inversion by Gauss-Jordan elimination (the INV PE).

The paper implements inversion in hardware with the Gauss-Jordan method
(citing Quintana et al.); the Kalman-filter movement decoder is its only
heavy client, and because inverted matrices are large, the INV PE streams
operands through the NVM (paper §4).  We implement the same algorithm
with partial pivoting so the reproduction is numerically safe.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def gauss_jordan_inverse(matrix: np.ndarray, pivot_tol: float = 1e-12) -> np.ndarray:
    """Invert a square matrix with Gauss-Jordan elimination.

    Args:
        matrix: square, non-singular.
        pivot_tol: pivots smaller than this (in absolute value) make the
            matrix effectively singular.

    Raises:
        ConfigurationError: for non-square or singular inputs.
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ConfigurationError(f"expected a square matrix, got {a.shape}")
    n = a.shape[0]
    augmented = np.hstack([a.copy(), np.eye(n)])

    for col in range(n):
        # partial pivoting: bring the largest remaining entry up
        pivot_row = col + int(np.argmax(np.abs(augmented[col:, col])))
        pivot = augmented[pivot_row, col]
        if abs(pivot) < pivot_tol:
            raise ConfigurationError("matrix is singular to working precision")
        if pivot_row != col:
            augmented[[col, pivot_row]] = augmented[[pivot_row, col]]
        augmented[col] /= augmented[col, col]
        for row in range(n):
            if row != col and augmented[row, col] != 0.0:
                augmented[row] -= augmented[row, col] * augmented[col]
    return augmented[:, n:]


def inverse_operation_count(n: int) -> int:
    """Floating operations of Gauss-Jordan on an n x n matrix (~2 n^3)."""
    if n < 1:
        raise ConfigurationError("matrix dimension must be positive")
    return 2 * n**3


def inv_nvm_traffic_bytes(n: int, element_bytes: int = 2) -> int:
    """NVM bytes the INV PE moves for an n x n inversion.

    The augmented matrix (n x 2n) is streamed in and the result (n x n)
    streamed out; matrices too big for the 16 KB registers make this the
    dominant cost and the reason MI-KF saturates on NVM bandwidth
    (paper §6.2).
    """
    return (2 * n * n + n * n) * element_bytes

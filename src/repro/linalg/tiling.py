"""4-way block tiling of MAD PEs for large matrices (the BMUL cluster).

Four of the ten MAD PEs are tiled into a 4-way block to handle the large
matrices of the Kalman filter (paper §3.2).  This module implements block
matrix multiply over a 2x2 grid of tiles, mirroring how the hardware
splits an operation across the four PEs, and verifies tile-size limits
against the 16 KB register files.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.linalg.mad import ELEMENT_BYTES, PE_REGISTER_BYTES

#: Number of MAD PEs ganged into the block unit.
BLOCK_WAYS = 4

#: Number of MAD PEs in the LIN ALG cluster (paper: 10 replicas).
MAD_CLUSTER_SIZE = 10


def split_even(n: int, parts: int) -> list[tuple[int, int]]:
    """Split range(n) into ``parts`` contiguous (start, stop) spans."""
    if n < 1 or parts < 1:
        raise ConfigurationError("need positive sizes")
    base = n // parts
    extra = n % parts
    spans = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return [s for s in spans if s[0] < s[1]]


def block_multiply(a: np.ndarray, b: np.ndarray, ways: int = BLOCK_WAYS
                   ) -> np.ndarray:
    """Block matrix multiply on a sqrt(ways) x sqrt(ways) tile grid.

    Functionally identical to ``a @ b``; structured the way the 4-way
    BMUL unit partitions the work (each PE owns one output tile and
    accumulates partial products).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"bad shapes {a.shape} x {b.shape}")
    grid = int(np.sqrt(ways))
    if grid * grid != ways:
        raise ConfigurationError("ways must be a perfect square")
    out = np.zeros((a.shape[0], b.shape[1]))
    row_spans = split_even(a.shape[0], grid)
    col_spans = split_even(b.shape[1], grid)
    inner_spans = split_even(a.shape[1], grid)
    for r0, r1 in row_spans:
        for c0, c1 in col_spans:
            tile = np.zeros((r1 - r0, c1 - c0))
            for k0, k1 in inner_spans:
                tile += a[r0:r1, k0:k1] @ b[k0:k1, c0:c1]
            out[r0:r1, c0:c1] = tile
    return out


def max_square_dim_in_registers() -> int:
    """Largest n such that an n x n 16-bit matrix fits one register file."""
    return int(np.floor(np.sqrt(PE_REGISTER_BYTES / ELEMENT_BYTES)))


def needs_nvm(n_rows: int, n_cols: int) -> bool:
    """True when a 16-bit matrix exceeds the PE register capacity."""
    return n_rows * n_cols * ELEMENT_BYTES > PE_REGISTER_BYTES

"""The LIN ALG cluster's elementwise/matrix PEs: MAD, ADD, SUB, MUL.

MAD computes ``A @ X + C`` (multiply-add with a constant matrix) and can
be configured as multiply-only; ADD and SUB are matrix add/subtract.  The
paper adds two configurable post-ops to MAD and ADD for neural networks:
ReLU (suppress negative outputs) and normalisation (subtract a mean and
divide by a standard deviation read as parameters) (paper §3.2).

Each PE owns 16 KB of single-cycle registers for inputs/constants; larger
operands stream from the NVM — enforced here as an operand-size check so
schedules that spill are visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Per-PE operand register capacity (bytes).
PE_REGISTER_BYTES = 16 * 1024

#: Bytes per 16-bit matrix element.
ELEMENT_BYTES = 2


def fits_in_registers(*operands: np.ndarray) -> bool:
    """Do the operands fit the PE's 16 KB register file?"""
    total = sum(np.asarray(op).size for op in operands) * ELEMENT_BYTES
    return total <= PE_REGISTER_BYTES


@dataclass
class PostOp:
    """Configurable output stage shared by MAD and ADD."""

    relu: bool = False
    normalise: bool = False
    mean: np.ndarray | float = 0.0
    std: np.ndarray | float = 1.0

    def apply(self, values: np.ndarray) -> np.ndarray:
        out = np.asarray(values, dtype=float)
        if self.normalise:
            std = np.asarray(self.std, dtype=float)
            if np.any(std <= 0):
                raise ConfigurationError("normalisation std must be positive")
            out = (out - np.asarray(self.mean, dtype=float)) / std
        if self.relu:
            out = np.maximum(out, 0.0)
        return out


def mad(
    a: np.ndarray,
    x: np.ndarray,
    c: np.ndarray | float = 0.0,
    post: PostOp | None = None,
) -> np.ndarray:
    """MAD PE: ``A @ X + C`` with the optional ReLU/normalise post-op.

    Configure multiply-only (MUL) by leaving ``c`` at 0.
    """
    a = np.asarray(a, dtype=float)
    x = np.asarray(x, dtype=float)
    if a.ndim != 2:
        raise ConfigurationError("MAD expects a 2-D A operand")
    if x.ndim not in (1, 2):
        raise ConfigurationError("MAD expects a 1-D or 2-D X operand")
    if a.shape[1] != x.shape[0]:
        raise ConfigurationError(
            f"shape mismatch: A is {a.shape}, X is {x.shape}"
        )
    result = a @ x + np.asarray(c, dtype=float)
    if post is not None:
        result = post.apply(result)
    return result


def matrix_add(
    a: np.ndarray, b: np.ndarray, post: PostOp | None = None
) -> np.ndarray:
    """ADD PE: elementwise matrix addition with the optional post-op."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch: {a.shape} vs {b.shape}")
    result = a + b
    if post is not None:
        result = post.apply(result)
    return result


def matrix_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """SUB PE: elementwise matrix subtraction."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a - b


def mad_operation_count(a_shape: tuple[int, int], x_cols: int = 1) -> int:
    """Multiply-accumulate count of one MAD invocation (work proxy)."""
    rows, inner = a_shape
    return rows * inner * x_cols

"""Linear-algebra PE cluster: MAD/ADD/SUB, Gauss-Jordan INV, block tiling."""

from repro.linalg.fixed import (
    DEFAULT_FRAC_BITS,
    WORD_BITS,
    from_fixed,
    quantisation_error,
    quantise_roundtrip,
    to_fixed,
)
from repro.linalg.inverse import (
    gauss_jordan_inverse,
    inv_nvm_traffic_bytes,
    inverse_operation_count,
)
from repro.linalg.mad import (
    ELEMENT_BYTES,
    PE_REGISTER_BYTES,
    PostOp,
    fits_in_registers,
    mad,
    mad_operation_count,
    matrix_add,
    matrix_sub,
)
from repro.linalg.tiling import (
    BLOCK_WAYS,
    MAD_CLUSTER_SIZE,
    block_multiply,
    max_square_dim_in_registers,
    needs_nvm,
    split_even,
)

__all__ = [
    "DEFAULT_FRAC_BITS",
    "WORD_BITS",
    "from_fixed",
    "quantisation_error",
    "quantise_roundtrip",
    "to_fixed",
    "gauss_jordan_inverse",
    "inv_nvm_traffic_bytes",
    "inverse_operation_count",
    "ELEMENT_BYTES",
    "PE_REGISTER_BYTES",
    "PostOp",
    "fits_in_registers",
    "mad",
    "mad_operation_count",
    "matrix_add",
    "matrix_sub",
    "BLOCK_WAYS",
    "MAD_CLUSTER_SIZE",
    "block_multiply",
    "max_square_dim_in_registers",
    "needs_nvm",
    "split_even",
]

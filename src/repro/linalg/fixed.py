"""16-bit fixed-point helpers matching the PE datapaths.

SCALO's ADCs and linear-algebra PEs are 16-bit; this module provides the
quantise/dequantise pair (Q-format) used to check that decoders survive
the hardware's precision, plus saturation semantics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Default Q-format: Q6.9 with one sign bit (range ~[-64, 64), LSB ~2e-3).
DEFAULT_FRAC_BITS = 9
WORD_BITS = 16


def to_fixed(values: np.ndarray, frac_bits: int = DEFAULT_FRAC_BITS) -> np.ndarray:
    """Quantise floats to 16-bit fixed point with saturation."""
    if not 0 <= frac_bits < WORD_BITS:
        raise ConfigurationError(f"frac_bits must be in [0, {WORD_BITS})")
    scale = 1 << frac_bits
    lo = -(1 << (WORD_BITS - 1))
    hi = (1 << (WORD_BITS - 1)) - 1
    scaled = np.round(np.asarray(values, dtype=float) * scale)
    return np.clip(scaled, lo, hi).astype(np.int16)


def from_fixed(values: np.ndarray, frac_bits: int = DEFAULT_FRAC_BITS) -> np.ndarray:
    """Dequantise 16-bit fixed point back to floats."""
    if not 0 <= frac_bits < WORD_BITS:
        raise ConfigurationError(f"frac_bits must be in [0, {WORD_BITS})")
    return np.asarray(values, dtype=np.int32).astype(float) / (1 << frac_bits)


def quantise_roundtrip(
    values: np.ndarray, frac_bits: int = DEFAULT_FRAC_BITS
) -> np.ndarray:
    """Floats as the hardware would see them (quantise then dequantise)."""
    return from_fixed(to_fixed(values, frac_bits), frac_bits)


def quantisation_error(
    values: np.ndarray, frac_bits: int = DEFAULT_FRAC_BITS
) -> float:
    """Max absolute error introduced by the fixed-point representation."""
    values = np.asarray(values, dtype=float)
    return float(np.max(np.abs(values - quantise_roundtrip(values, frac_bits))))

"""Intra-SCALO packet format (paper §3.4).

Packets carry an 84-bit header and up to 256 bytes of data; the header and
the data each get a 32-bit CRC32 checksum.  On a checksum error the
receiver drops hash packets but *keeps* signal packets, because similarity
measures like DTW tolerate a few flipped samples (§6.6).

Header layout (84 bits)::

    src        6 bits   source node id
    dst        6 bits   destination node id (63 = broadcast)
    kind       4 bits   payload kind
    flow       8 bits   flow tag (ILP schedule flow id)
    seq       16 bits   sequence number
    time      32 bits   window timestamp (units of 1/8 ms)
    length    12 bits   payload length in bytes
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, NetworkError
from repro.network.crc import crc32

if TYPE_CHECKING:
    from repro.telemetry import TraceContext

#: Maximum payload size (bytes).
MAX_PAYLOAD_BYTES = 256

#: Header size in bits (the paper's 84-bit header).
HEADER_BITS = 84

#: Wire overhead per packet: header + two CRC32s, in bits.
PACKET_OVERHEAD_BITS = HEADER_BITS + 2 * 32

#: Broadcast destination id.
BROADCAST = 0x3F


class PayloadKind(enum.IntEnum):
    """What a packet carries — receivers dispatch and apply the
    drop-on-error policy by kind."""

    HASHES = 0
    SIGNAL = 1
    FEATURES = 2
    PARTIAL_RESULT = 3
    QUERY = 4
    QUERY_RESULT = 5
    CLOCK_SYNC = 6
    CONTROL = 7
    RESYNC = 8


@dataclass(frozen=True)
class Header:
    """Decoded packet header."""

    src: int
    dst: int
    kind: PayloadKind
    flow: int
    seq: int
    time_ticks: int
    length: int

    _FIELDS = (("src", 6), ("dst", 6), ("kind", 4), ("flow", 8),
               ("seq", 16), ("time_ticks", 32), ("length", 12))

    def __post_init__(self) -> None:
        for name, bits in self._FIELDS:
            value = int(getattr(self, name))
            if not 0 <= value < (1 << bits):
                raise ConfigurationError(
                    f"header field {name}={value} does not fit {bits} bits"
                )

    def pack(self) -> bytes:
        """Serialise to ceil(84 / 8) = 11 bytes."""
        acc = 0
        for name, bits in self._FIELDS:
            acc = (acc << bits) | int(getattr(self, name))
        acc <<= (88 - HEADER_BITS)  # pad to 11 bytes
        return acc.to_bytes(11, "big")

    @classmethod
    def unpack(cls, raw: bytes) -> "Header":
        if len(raw) != 11:
            raise NetworkError(f"header must be 11 bytes, got {len(raw)}")
        acc = int.from_bytes(raw, "big") >> (88 - HEADER_BITS)
        values = {}
        for name, bits in reversed(cls._FIELDS):
            values[name] = acc & ((1 << bits) - 1)
            acc >>= bits
        try:
            values["kind"] = PayloadKind(values["kind"])
        except ValueError:
            # A bit flip can turn the 4-bit kind field into a value with no
            # enum member.  Keep the raw integer: the header CRC flags the
            # corruption, and IntEnum comparisons against plain ints still
            # work in the drop policy.
            pass
        return cls(**values)


@dataclass(frozen=True)
class Packet:
    """A framed packet: header + payload + both checksums."""

    header: Header
    payload: bytes
    header_crc: int
    payload_crc: int
    #: Distributed-tracing context riding along as out-of-band metadata.
    #: It is NOT part of the wire format (the 84-bit header is the
    #: paper's), so it never affects CRCs, airtime, or equality — the
    #: network re-attaches it across the channel the way an RPC stack
    #: carries trace headers outside the application payload.
    trace: "TraceContext | None" = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def build(
        cls,
        src: int,
        dst: int,
        kind: PayloadKind,
        payload: bytes,
        flow: int = 0,
        seq: int = 0,
        time_ticks: int = 0,
        trace: "TraceContext | None" = None,
    ) -> "Packet":
        if len(payload) > MAX_PAYLOAD_BYTES:
            raise NetworkError(
                f"payload {len(payload)} B exceeds max {MAX_PAYLOAD_BYTES} B"
            )
        header = Header(src, dst, kind, flow, seq, time_ticks, len(payload))
        return cls(
            header=header,
            payload=payload,
            header_crc=crc32(header.pack()),
            payload_crc=crc32(payload),
            trace=trace,
        )

    # -- integrity ---------------------------------------------------------------

    @property
    def header_ok(self) -> bool:
        return crc32(self.header.pack()) == self.header_crc

    @property
    def payload_ok(self) -> bool:
        return crc32(self.payload) == self.payload_crc

    @property
    def intact(self) -> bool:
        return self.header_ok and self.payload_ok

    # -- wire size ----------------------------------------------------------------

    @property
    def wire_bits(self) -> int:
        """Total bits on air: header + payload + two CRCs."""
        return PACKET_OVERHEAD_BITS + 8 * len(self.payload)

    def to_wire(self) -> bytes:
        """Serialise the whole frame (header, crc, payload, crc)."""
        return (
            self.header.pack()
            + self.header_crc.to_bytes(4, "big")
            + self.payload
            + self.payload_crc.to_bytes(4, "big")
        )

    @classmethod
    def from_wire(cls, raw: bytes) -> "Packet":
        """Parse a frame laid out by :meth:`to_wire` (no integrity check)."""
        if len(raw) < 11 + 4 + 4:
            raise NetworkError("frame too short")
        header_raw = raw[:11]
        header_crc = int.from_bytes(raw[11:15], "big")
        payload = raw[15:-4]
        payload_crc = int.from_bytes(raw[-4:], "big")
        return cls(Header.unpack(header_raw), payload, header_crc, payload_crc)

    @classmethod
    def parse(cls, raw: bytes) -> "Packet | None":
        """Total-function frame parser for untrusted bytes.

        Unlike :meth:`from_wire`, this never raises: frames too short to
        hold a header and both CRCs return ``None``, and any longer byte
        string parses into a (possibly corrupted) packet whose ``header_ok``
        / ``payload_ok`` predicates report the damage.
        """
        if len(raw) < 11 + 4 + 4:
            return None
        return cls.from_wire(raw)


def packet_airtime_ms(payload_bytes: int, rate_mbps: float) -> float:
    """Time on air for one packet at ``rate_mbps``."""
    if payload_bytes < 0 or payload_bytes > MAX_PAYLOAD_BYTES:
        raise NetworkError(f"invalid payload size {payload_bytes}")
    bits = PACKET_OVERHEAD_BITS + 8 * payload_bytes
    return bits / (rate_mbps * 1e3)


def packets_needed(total_bytes: int) -> int:
    """How many max-size packets carry ``total_bytes`` of payload."""
    if total_bytes <= 0:
        return 0
    return -(-total_bytes // MAX_PAYLOAD_BYTES)

"""The BER channel: uniformly-random bit flips over packet frames.

The paper's Fig. 12/15b experiments inject uniformly-random bit errors
into packet headers and payloads at a given bit-error ratio and observe
the effect on checksums and on application outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.network.packet import Packet


def flip_bits(data: bytes, bit_indices: np.ndarray) -> bytes:
    """Return ``data`` with the given absolute bit positions flipped."""
    if len(data) == 0:
        return data
    buf = bytearray(data)
    for bit in np.asarray(bit_indices, dtype=np.int64):
        if not 0 <= bit < 8 * len(buf):
            raise ConfigurationError(f"bit index {bit} out of range")
        buf[bit // 8] ^= 1 << (7 - bit % 8)
    return bytes(buf)


@dataclass
class BitErrorChannel:
    """A memoryless binary-symmetric channel at a fixed BER."""

    bit_error_rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.bit_error_rate < 1:
            raise ConfigurationError("BER must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def corrupt_bytes(self, data: bytes) -> tuple[bytes, int]:
        """Pass ``data`` through the channel; returns (output, n_flipped)."""
        n_bits = 8 * len(data)
        if n_bits == 0 or self.bit_error_rate == 0:
            return data, 0
        n_errors = self._rng.binomial(n_bits, self.bit_error_rate)
        if n_errors == 0:
            return data, 0
        positions = self._rng.choice(n_bits, size=n_errors, replace=False)
        return flip_bits(data, positions), int(n_errors)

    def transmit(self, packet: Packet) -> tuple[Packet, int]:
        """Send one packet through the channel.

        The whole frame (header, CRCs, payload) is exposed to errors, so a
        flip may land in the header, a checksum, or the data.

        Returns:
            (received packet, number of flipped bits).
        """
        wire = packet.to_wire()
        corrupted, n_flipped = self.corrupt_bytes(wire)
        if n_flipped == 0:
            return packet, 0
        return Packet.from_wire(corrupted), n_flipped

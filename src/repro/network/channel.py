"""Bit-error channels: memoryless and bursty corruption of packet frames.

The paper's Fig. 12/15b experiments inject uniformly-random bit errors
into packet headers and payloads at a given bit-error ratio and observe
the effect on checksums and on application outcomes.
:class:`BitErrorChannel` is that memoryless binary-symmetric channel;
:class:`GilbertElliottChannel` adds the classic two-state burst model
(good/bad states with per-state BERs) for fault-injection experiments
where losses cluster — body movement, interferers, or a marginal link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.network.packet import Packet


def flip_bits(data: bytes, bit_indices: np.ndarray) -> bytes:
    """Return ``data`` with the given absolute bit positions flipped.

    Vectorised: builds a byte-level XOR mask instead of looping per bit.
    Bit 0 is the most-significant bit of byte 0 (network order), and a
    position listed twice flips twice (a no-op), exactly as the scalar
    loop behaved.
    """
    if len(data) == 0:
        return data
    idx = np.atleast_1d(np.asarray(bit_indices, dtype=np.int64))
    if idx.size == 0:
        return data
    out_of_range = (idx < 0) | (idx >= 8 * len(data))
    if out_of_range.any():
        bad = int(idx[out_of_range][0])
        raise ConfigurationError(f"bit index {bad} out of range")
    buf = np.frombuffer(data, dtype=np.uint8).copy()
    masks = np.left_shift(np.uint8(1), (7 - (idx & 7)).astype(np.uint8))
    np.bitwise_xor.at(buf, idx >> 3, masks)
    return buf.tobytes()


class _FrameChannel:
    """Shared frame plumbing: serialise, corrupt, reparse."""

    def corrupt_bytes(self, data: bytes) -> tuple[bytes, int]:
        raise NotImplementedError

    def transmit(self, packet: Packet) -> tuple[Packet, int]:
        """Send one packet through the channel.

        The whole frame (header, CRCs, payload) is exposed to errors, so a
        flip may land in the header, a checksum, or the data.

        Returns:
            (received packet, number of flipped bits).
        """
        wire = packet.to_wire()
        corrupted, n_flipped = self.corrupt_bytes(wire)
        if n_flipped == 0:
            return packet, 0
        return Packet.from_wire(corrupted), n_flipped


@dataclass
class BitErrorChannel(_FrameChannel):
    """A memoryless binary-symmetric channel at a fixed BER."""

    bit_error_rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.bit_error_rate < 1:
            raise ConfigurationError("BER must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def corrupt_bytes(self, data: bytes) -> tuple[bytes, int]:
        """Pass ``data`` through the channel; returns (output, n_flipped)."""
        n_bits = 8 * len(data)
        if n_bits == 0 or self.bit_error_rate == 0:
            return data, 0
        n_errors = self._rng.binomial(n_bits, self.bit_error_rate)
        if n_errors == 0:
            return data, 0
        positions = self._rng.choice(n_bits, size=n_errors, replace=False)
        return flip_bits(data, positions), int(n_errors)


@dataclass
class GilbertElliottChannel(_FrameChannel):
    """The two-state burst-error channel (Gilbert-Elliott).

    The channel alternates between a GOOD state (residual BER) and a BAD
    state (burst BER); per-bit transition probabilities set the burst
    length statistics.  State persists across packets, so a burst that
    starts in one frame can swallow the next — the loss clustering that a
    memoryless channel cannot produce at the same average BER.
    """

    p_good_to_bad: float = 1e-4
    p_bad_to_good: float = 5e-2
    ber_good: float = 1e-6
    ber_bad: float = 5e-2
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good"):
            if not 0 <= getattr(self, name) <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        for name in ("ber_good", "ber_bad"):
            if not 0 <= getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)
        self._bad = False

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of bits spent in the BAD state."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        return self.p_good_to_bad / denom if denom else 0.0

    @property
    def average_ber(self) -> float:
        """The equivalent memoryless BER of this channel's mixture."""
        pi_bad = self.stationary_bad_fraction
        return pi_bad * self.ber_bad + (1.0 - pi_bad) * self.ber_good

    def corrupt_bytes(self, data: bytes) -> tuple[bytes, int]:
        """Pass ``data`` through the channel; returns (output, n_flipped)."""
        n_bits = 8 * len(data)
        if n_bits == 0:
            return data, 0
        flips: list[np.ndarray] = []
        pos = 0
        while pos < n_bits:
            leave = self.p_bad_to_good if self._bad else self.p_good_to_bad
            ber = self.ber_bad if self._bad else self.ber_good
            remaining = n_bits - pos
            # bits spent in this state before the next transition
            sojourn = (
                int(self._rng.geometric(leave)) if leave > 0 else remaining + 1
            )
            seg = min(sojourn, remaining)
            if ber > 0:
                n_errors = int(self._rng.binomial(seg, ber))
                if n_errors:
                    flips.append(
                        pos + self._rng.choice(seg, n_errors, replace=False)
                    )
            pos += seg
            if sojourn <= remaining:
                self._bad = not self._bad
        if not flips:
            return data, 0
        positions = np.concatenate(flips)
        return flip_bits(data, positions), int(positions.size)

"""Wireless networking: packets, CRC, channels, radios, TDMA, ARQ."""

from repro.network.arq import ARQConfig, ARQResult, ARQStats, ReliableLink
from repro.network.channel import (
    BitErrorChannel,
    GilbertElliottChannel,
    flip_bits,
)
from repro.network.crc import crc32, verify
from repro.network.network import (
    DROP_ON_ERROR,
    DeliveryOutcome,
    DeliveryStats,
    WirelessNetwork,
)
from repro.network.packet import (
    BROADCAST,
    HEADER_BITS,
    MAX_PAYLOAD_BYTES,
    PACKET_OVERHEAD_BITS,
    Header,
    Packet,
    PayloadKind,
    packet_airtime_ms,
    packets_needed,
)
from repro.network.partition import SPLIT_MODES, PartitionMatrix
from repro.network.simulator import Delivery, TDMASimulator
from repro.network.radio import (
    EXTERNAL_RADIO,
    HIGH_PERF,
    LOW_BER,
    LOW_DATA_RATE,
    LOW_POWER,
    RADIO_CATALOG,
    RadioSpec,
    get_radio,
    path_loss_db,
    scale_radio_to_distance,
)
from repro.network.tdma import (
    DEFAULT_GUARD_MS,
    TDMAConfig,
    TDMASchedule,
    hash_payload_bytes,
)

__all__ = [
    "ARQConfig",
    "ARQResult",
    "ARQStats",
    "ReliableLink",
    "BitErrorChannel",
    "GilbertElliottChannel",
    "flip_bits",
    "crc32",
    "verify",
    "DROP_ON_ERROR",
    "DeliveryOutcome",
    "DeliveryStats",
    "WirelessNetwork",
    "BROADCAST",
    "HEADER_BITS",
    "MAX_PAYLOAD_BYTES",
    "PACKET_OVERHEAD_BITS",
    "Header",
    "Packet",
    "PayloadKind",
    "packet_airtime_ms",
    "packets_needed",
    "PartitionMatrix",
    "SPLIT_MODES",
    "Delivery",
    "TDMASimulator",
    "EXTERNAL_RADIO",
    "HIGH_PERF",
    "LOW_BER",
    "LOW_DATA_RATE",
    "LOW_POWER",
    "RADIO_CATALOG",
    "RadioSpec",
    "get_radio",
    "path_loss_db",
    "scale_radio_to_distance",
    "DEFAULT_GUARD_MS",
    "TDMAConfig",
    "TDMASchedule",
    "hash_payload_bytes",
]

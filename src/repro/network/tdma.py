"""TDMA medium access for the intra-SCALO network.

SCALO's implant radios share one frequency to save power, so all access is
serial: the ILP emits a fixed slot schedule and every node transmits only
in its slots (paper §3.4).  This module provides both the schedule object
and the airtime arithmetic for the three communication patterns in the
evaluation: one-to-all, all-to-all, and all-to-one.

A slot carries one maximum-size packet plus a guard/turnaround interval —
the per-slot overhead is what makes all-to-all exchanges degrade with node
count in Fig. 8b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, NetworkError
from repro.network.packet import MAX_PAYLOAD_BYTES, PACKET_OVERHEAD_BITS
from repro.network.radio import LOW_POWER, RadioSpec

#: Guard + turnaround time between slots (ms).  SCALO's pausable clock
#: generators keep nodes synchronised to microseconds (paper §3.6), so the
#: fixed TDMA schedule needs only a ~2 us guard.
DEFAULT_GUARD_MS = 0.002


@dataclass
class TDMAConfig:
    """Medium parameters shared by every node."""

    radio: RadioSpec = field(default_factory=lambda: LOW_POWER)
    guard_ms: float = DEFAULT_GUARD_MS

    def packet_airtime_ms(self, payload_bytes: int) -> float:
        """On-air time of one packet (no guard)."""
        if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
            raise NetworkError(f"invalid payload size {payload_bytes}")
        bits = PACKET_OVERHEAD_BITS + 8 * payload_bytes
        return self.radio.airtime_ms(bits)

    def slot_ms(self, payload_bytes: int = MAX_PAYLOAD_BYTES) -> float:
        """One TDMA slot: packet airtime plus the guard interval."""
        return self.packet_airtime_ms(payload_bytes) + self.guard_ms

    # -- pattern airtimes --------------------------------------------------------

    def burst_ms(self, payload_bytes: int) -> float:
        """Time for one node to send ``payload_bytes`` (packetised)."""
        if payload_bytes <= 0:
            return 0.0
        n_full = payload_bytes // MAX_PAYLOAD_BYTES
        tail = payload_bytes % MAX_PAYLOAD_BYTES
        total = n_full * self.slot_ms(MAX_PAYLOAD_BYTES)
        if tail:
            total += self.slot_ms(tail)
        return total

    def one_to_all_ms(self, payload_bytes: int) -> float:
        """Broadcast from one node: cost independent of receiver count."""
        return self.burst_ms(payload_bytes)

    def all_to_all_ms(self, payload_bytes_per_node: int, n_nodes: int) -> float:
        """Every node broadcasts its payload, serially."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        return n_nodes * self.burst_ms(payload_bytes_per_node)

    def all_to_one_ms(self, payload_bytes_per_node: int, n_nodes: int) -> float:
        """Every node (including the aggregator's zero-cost local copy)
        sends its payload to one node."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        return max(0, n_nodes - 1) * self.burst_ms(payload_bytes_per_node)

    # -- bandwidth views ------------------------------------------------------------

    def effective_rate_mbps(self, payload_bytes: int = MAX_PAYLOAD_BYTES) -> float:
        """Goodput after header/CRC/guard overheads at a given packet size."""
        if payload_bytes <= 0:
            return 0.0
        return 8 * payload_bytes / (self.slot_ms(payload_bytes) * 1e3)

    def radio_duty_cycle(self, bytes_per_window: int, window_ms: float) -> float:
        """Fraction of time this node's radio is on for a periodic burst."""
        if window_ms <= 0:
            raise ConfigurationError("window must be positive")
        return min(1.0, self.burst_ms(bytes_per_window) / window_ms)


@dataclass
class TDMASchedule:
    """A fixed, repeating slot assignment emitted by the ILP scheduler."""

    config: TDMAConfig
    slot_owners: list[int]  # node id per slot, in frame order

    def __post_init__(self) -> None:
        if not self.slot_owners:
            raise ConfigurationError("schedule needs at least one slot")

    @property
    def frame_ms(self) -> float:
        """Duration of one full frame."""
        return len(self.slot_owners) * self.config.slot_ms()

    def slots_for(self, node_id: int) -> list[int]:
        return [i for i, owner in enumerate(self.slot_owners) if owner == node_id]

    def node_share_mbps(self, node_id: int) -> float:
        """Long-run goodput available to ``node_id`` under this schedule."""
        n_slots = len(self.slots_for(node_id))
        per_slot_bits = 8 * MAX_PAYLOAD_BYTES
        return n_slots * per_slot_bits / (self.frame_ms * 1e3)

    def wait_ms(self, node_id: int, from_slot: int = 0) -> float:
        """Worst-case wait until the node's next slot starts."""
        slots = self.slots_for(node_id)
        if not slots:
            raise NetworkError(f"node {node_id} owns no slots")
        n = len(self.slot_owners)
        deltas = [((s - from_slot) % n) for s in slots]
        return min(deltas) * self.config.slot_ms()

    @classmethod
    def round_robin(cls, config: TDMAConfig, n_nodes: int,
                    slots_per_node: int = 1) -> "TDMASchedule":
        """The default fair schedule: each node in turn."""
        if n_nodes < 1 or slots_per_node < 1:
            raise ConfigurationError("need positive node and slot counts")
        owners = [node for node in range(n_nodes) for _ in range(slots_per_node)]
        return cls(config, owners)


def hash_payload_bytes(n_electrodes: int, hash_bytes: int = 1,
                       compression_ratio: float = 1.0) -> int:
    """Wire bytes for one window's worth of hashes from one node.

    All of a node's per-electrode hashes travel together (one packet for
    typical electrode counts), optionally compressed by HCOMP.
    """
    if n_electrodes < 0:
        raise ConfigurationError("electrode count cannot be negative")
    raw = n_electrodes * hash_bytes
    return max(1, int(round(raw / max(compression_ratio, 1e-9)))) if raw else 0

"""Link-level network partitions: asymmetric reachability as data.

A :class:`PartitionMatrix` is a set of *directed* blocked links laid
over the shared medium: ``blocks(src, dst)`` answers whether a frame
transmitted by ``src`` can physically reach ``dst``.  Real inter-site
fabric failures are frequently one-sided (a saturated uplink, a
misprogrammed route), so the matrix is directional by construction —
``blocks(a, b)`` and ``blocks(b, a)`` are independent facts — and the
convenience constructors expose the three canonical shapes:

* ``split(..., mode="both")`` — the textbook symmetric cut: neither
  side hears the other;
* ``mode="a_to_b"`` — frames from side A never reach side B, while
  B's frames still land on A (A hears a fleet that cannot hear it);
* ``mode="b_to_a"`` — the mirror image.

The matrix itself is pure data (no RNG, no clock): seeding and
scheduling live in :class:`~repro.faults.plan.FaultPlan`, which draws
split/heal windows and encodes them as ``PARTITION_*`` fault events,
and :class:`~repro.faults.injector.FaultInjector`, which installs and
clears the matrix on the live
:class:`~repro.network.network.WirelessNetwork`.  Keeping the layers
separate preserves the determinism contract: the same plan installs
byte-identical matrices round after round.

Note the asymmetry lives at the *data plane* only.  The failure
detector built on top (:class:`~repro.faults.health.FleetBelief`)
models round-trip liveness probes — a peer counts as alive only when
both the probe and its ack can flow — so belief always converges on
the symmetric closure of the matrix, which is what makes majority
components well-defined for quorum election.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Accepted directionality modes for :meth:`PartitionMatrix.split`.
SPLIT_MODES = ("both", "a_to_b", "b_to_a")


@dataclass(frozen=True)
class PartitionMatrix:
    """Directed blocked links over an ``n_nodes`` fleet.

    ``blocked`` holds ``(src, dst)`` pairs; a pair's presence means a
    transmission from ``src`` is never delivered at ``dst`` while the
    matrix is installed.  Instances are immutable — a heal is modelled
    by removing the matrix from the network, not by mutating it.
    """

    n_nodes: int
    blocked: frozenset[tuple[int, int]] = field(default_factory=frozenset)
    #: how the matrix was built, for logs ("split@2/both", "links", ...)
    label: str = "links"

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError("a partition needs at least two nodes")
        for src, dst in self.blocked:
            if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
                raise ConfigurationError(
                    f"blocked link ({src}, {dst}) outside the fleet"
                )
            if src == dst:
                raise ConfigurationError("a node cannot be cut from itself")

    # -- constructors -------------------------------------------------------------

    @classmethod
    def split(
        cls, n_nodes: int, cut: int, mode: str = "both"
    ) -> "PartitionMatrix":
        """Cut the fleet into sides A = {0..cut} and B = {cut+1..n-1}.

        ``mode`` selects the blocked direction(s): ``"both"`` blocks
        A↔B, ``"a_to_b"`` blocks only frames A transmits towards B,
        ``"b_to_a"`` only the reverse.
        """
        if not 0 <= cut < n_nodes - 1:
            raise ConfigurationError(
                f"cut {cut} must leave both sides non-empty "
                f"(0 <= cut < {n_nodes - 1})"
            )
        if mode not in SPLIT_MODES:
            raise ConfigurationError(
                f"unknown split mode {mode!r}; expected one of {SPLIT_MODES}"
            )
        side_a = range(cut + 1)
        side_b = range(cut + 1, n_nodes)
        links: set[tuple[int, int]] = set()
        if mode in ("both", "a_to_b"):
            links.update((a, b) for a in side_a for b in side_b)
        if mode in ("both", "b_to_a"):
            links.update((b, a) for a in side_a for b in side_b)
        return cls(
            n_nodes=n_nodes,
            blocked=frozenset(links),
            label=f"split@{cut}/{mode}",
        )

    @classmethod
    def isolate(cls, n_nodes: int, node: int) -> "PartitionMatrix":
        """Cut one node off from everybody (both directions)."""
        if not 0 <= node < n_nodes:
            raise ConfigurationError(f"node {node} outside the fleet")
        links = frozenset(
            pair
            for other in range(n_nodes)
            if other != node
            for pair in ((node, other), (other, node))
        )
        return cls(n_nodes=n_nodes, blocked=links, label=f"isolate@{node}")

    # -- queries ------------------------------------------------------------------

    def blocks(self, src: int, dst: int) -> bool:
        """Is the directed link ``src -> dst`` cut?"""
        return (src, dst) in self.blocked

    def reachable(self, src: int, dst: int) -> bool:
        """Can a frame from ``src`` land on ``dst`` (one hop)?"""
        return src == dst or (src, dst) not in self.blocked

    def symmetric(self) -> bool:
        """Does every blocked link have its mirror blocked too?"""
        return all((dst, src) in self.blocked for src, dst in self.blocked)

    def component_of(self, node: int) -> frozenset[int]:
        """The node's *bidirectional* reachability component.

        Two nodes share a component when frames flow both ways between
        them (directly).  This is the symmetric closure the round-trip
        failure detector converges on, hence the unit quorum election
        reasons over.
        """
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(f"node {node} outside the fleet")
        return frozenset(
            other
            for other in range(self.n_nodes)
            if self.reachable(node, other) and self.reachable(other, node)
        )

    def describe(self) -> str:
        """Canonical one-line form for deterministic logs."""
        return (
            f"partition {self.label} blocked={len(self.blocked)} "
            f"symmetric={int(self.symmetric())}"
        )

"""Sequence-tracked ACK/NACK ARQ over the intra-SCALO network.

The base receive policy silently drops hash-class packets whose CRC
fails (paper §3.4).  That is the right *per-packet* policy, but a
resilient deployment must eventually get the hashes through:
:class:`ReliableLink` adds a stop-and-wait ARQ on top of
:class:`~repro.network.network.WirelessNetwork` — after each burst the
receiver returns a short CONTROL-kind acknowledgement through the same
noisy channel, and unacknowledged targets are retransmitted with a
bounded retry budget and a backoff expressed in TDMA slots.

Accounting is honest: every retransmission and every ACK spends real
airtime in the network's :class:`~repro.network.network.DeliveryStats`,
so throughput numbers measured above this layer include the recovery
overhead.  Receivers attached through :meth:`ReliableLink.attach` are
wrapped with per-(src, seq) duplicate suppression, because a lost ACK
makes the sender retransmit a packet the application already saw.

Observability: the link shares the network's injectable telemetry
handle.  Every counter in :class:`ARQStats` is mirrored into the metrics
registry under the ``arq.*`` namespace (``arq.retries``,
``arq.acks_lost``, ``arq.backoff_ms``, the ``arq.attempts`` histogram),
and each retransmission opens an ``arq-retry`` span covering its backoff
and burst, so recovery cost shows up inside the owning query's trace.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, RetryExhausted
from repro.network.network import Receiver, WirelessNetwork
from repro.network.packet import BROADCAST, Packet, PayloadKind
from repro.telemetry import TelemetryLike

#: ACK payload: the acknowledged sequence number, big-endian.
ACK_PAYLOAD_BYTES = 2


@dataclass(frozen=True)
class ARQConfig:
    """The ARQ knobs.

    ``max_retries`` bounds the retransmissions *per packet* (total
    attempts = 1 + max_retries).  ``backoff_slots`` is the TDMA-slot wait
    before the first retry; with ``exponential_backoff`` the wait doubles
    per retry (1, 2, 4, ... slots), the classic congestion-friendly
    schedule.
    """

    max_retries: int = 4
    backoff_slots: int = 1
    exponential_backoff: bool = True
    #: duplicate-suppression memory per receiver set: an entry is evicted
    #: once this many newer packets have been accepted since it was last
    #: seen (``None`` = unbounded, the pre-bound behaviour).  Long fault
    #: sweeps no longer grow memory without limit; the window only needs
    #: to exceed the deepest plausible retransmission reordering.
    dedup_window: int | None = 4096

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_slots < 0:
            raise ConfigurationError("backoff_slots must be >= 0")
        if self.dedup_window is not None and self.dedup_window < 1:
            raise ConfigurationError("dedup_window must be >= 1 or None")

    def backoff_slots_for(self, retry: int) -> int:
        """Slots waited before retry number ``retry`` (1-based)."""
        if retry < 1:
            return 0
        if self.exponential_backoff:
            return self.backoff_slots * (1 << (retry - 1))
        return self.backoff_slots


@dataclass
class ARQStats:
    """Counters for one reliable link's lifetime."""

    packets: int = 0
    delivered_first_try: int = 0
    recovered: int = 0
    failed: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    acks_lost: int = 0
    duplicates_suppressed: int = 0
    dedup_evictions: int = 0
    ack_airtime_ms: float = 0.0
    backoff_ms: float = 0.0

    @property
    def recovery_rate(self) -> float:
        """Fraction of initially-failed packets the ARQ got through."""
        initially_failed = self.recovered + self.failed
        if initially_failed == 0:
            return 1.0
        return self.recovered / initially_failed


@dataclass
class ARQResult:
    """Outcome of one reliable send."""

    seq: int
    delivered: dict[int, int]  # target -> attempts needed
    failed: list[int]

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def attempts(self) -> int:
        return max(self.delivered.values(), default=0)


@dataclass
class ReliableLink:
    """Stop-and-wait ARQ endpoint manager over one wireless network."""

    network: WirelessNetwork
    config: ARQConfig = field(default_factory=ARQConfig)
    stats: ARQStats = field(default_factory=ARQStats)

    def __post_init__(self) -> None:
        # (src, dst, kind, seq) already handed to the application; kind is
        # part of the key because sequence spaces are per payload stream
        # (a HASHES seq=0 must not suppress a later QUERY seq=0).  Values
        # are accept ticks: the OrderedDict is an LRU bounded by the
        # config's dedup_window, so long sweeps hold O(window) memory.
        self._seen: OrderedDict[tuple[int, int, PayloadKind, int], int] = (
            OrderedDict()
        )
        self._accept_tick = 0

    @property
    def telemetry(self) -> TelemetryLike:
        """The link reports into its network's telemetry handle."""
        return self.network.telemetry

    # -- receive side -----------------------------------------------------------

    def attach(self, node_id: int, receiver: Receiver) -> None:
        """Register an endpoint behind duplicate suppression."""

        def deduped(packet: Packet, _dst: int = node_id) -> None:
            key = (
                packet.header.src, _dst, packet.header.kind,
                packet.header.seq,
            )
            if key in self._seen:
                # a live stream stays resident: refresh on every hit
                self._seen[key] = self._accept_tick
                self._seen.move_to_end(key)
                self.stats.duplicates_suppressed += 1
                self.telemetry.inc("arq.duplicates_suppressed")
                return
            self._accept_tick += 1
            self._seen[key] = self._accept_tick
            window = self.config.dedup_window
            if window is not None:
                while (
                    self._seen
                    and self._accept_tick - next(iter(self._seen.values()))
                    >= window
                ):
                    self._seen.popitem(last=False)
                    self.stats.dedup_evictions += 1
            receiver(packet)

        self.network.register(node_id, deduped)

    def forget(self, node_id: int) -> None:
        """Drop a receiver's dedup memory (its SRAM died with it).

        Called when a node crashes: after the reboot the resync path may
        legitimately redeliver batches the old incarnation had seen.
        """
        self._seen = OrderedDict(
            (key, tick) for key, tick in self._seen.items()
            if key[1] != node_id
        )

    # -- transmit side ----------------------------------------------------------

    def _ack_roundtrip_ok(self, packet: Packet, target: int) -> bool:
        """Model the receiver's ACK travelling back through the channel.

        The ACK is a minimal CONTROL packet; if it arrives corrupted the
        sender must assume loss (a NACK by timeout) and retransmit.  Its
        airtime lands in the network stats like any other transmission.
        """
        ack = Packet.build(
            target,
            packet.header.src,
            PayloadKind.CONTROL,
            packet.header.seq.to_bytes(ACK_PAYLOAD_BYTES, "big"),
            seq=packet.header.seq,
        )
        airtime = self.network.tdma.packet_airtime_ms(len(ack.payload))
        self.network.stats.airtime_ms += airtime
        self.stats.acks_sent += 1
        self.stats.ack_airtime_ms += airtime
        tel = self.telemetry
        if tel.enabled:
            tel.inc("arq.acks_sent")
            tel.inc("arq.ack_airtime_ms", airtime)
            tel.advance_ms(airtime)
        received, _ = self.network.channel.transmit(ack)
        if received.intact:
            return True
        self.stats.acks_lost += 1
        tel.inc("arq.acks_lost")
        return False

    def send(self, packet: Packet, raise_on_failure: bool = False) -> ARQResult:
        """Send one packet reliably; retransmit until ACKed or exhausted.

        Raises:
            RetryExhausted: when ``raise_on_failure`` and at least one
                target never acknowledged within the retry budget.
            NetworkError: on routing errors (unknown source/destination),
                exactly as :meth:`WirelessNetwork.send`.
        """
        if packet.header.dst == BROADCAST:
            pending = [
                n for n in self.network.node_ids if n != packet.header.src
            ]
        else:
            pending = [packet.header.dst]
        self.stats.packets += 1
        tel = self.telemetry
        tel.inc("arq.packets")
        delivered: dict[int, int] = {}
        slot_ms = self.network.tdma.slot_ms()
        needed_retry = False
        attempts_used = 0

        for attempt in range(1, self.config.max_retries + 2):
            attempts_used = attempt
            if attempt > 1:
                needed_retry = True
                self.stats.retransmissions += 1
                backoff_ms = (
                    self.config.backoff_slots_for(attempt - 1) * slot_ms
                )
                self.stats.backoff_ms += backoff_ms
                if tel.enabled:
                    tel.inc("arq.retries")
                    tel.inc("arq.backoff_ms", backoff_ms)
                    tel.advance_ms(backoff_ms)
                with tel.span(
                    "arq-retry",
                    trace=packet.trace,
                    seq=packet.header.seq,
                    attempt=attempt,
                    pending=len(pending),
                ):
                    outcomes = self._attempt(packet, pending)
            else:
                outcomes = self._attempt(packet, pending)
            still_pending: list[int] = []
            for target, acked in outcomes.items():
                if acked:
                    delivered[target] = attempt
                else:
                    still_pending.append(target)
            pending = still_pending
            if not pending:
                break

        if needed_retry:
            if pending:
                self.stats.failed += 1
                tel.inc("arq.failed")
            else:
                self.stats.recovered += 1
                tel.inc("arq.recovered")
        else:
            self.stats.delivered_first_try += 1
            tel.inc("arq.delivered_first_try")
        tel.observe("arq.attempts", attempts_used)
        result = ARQResult(packet.header.seq, delivered, sorted(pending))
        if pending and raise_on_failure:
            raise RetryExhausted(
                packet.header.seq, self.config.max_retries + 1, sorted(pending)
            )
        return result

    def _attempt(self, packet: Packet, pending: list[int]) -> dict[int, bool]:
        """One burst plus ACK round-trips: target -> acknowledged."""
        outcomes = self.network.transmit_to(packet, pending)
        return {
            target: outcome.received
            and self._ack_roundtrip_ok(packet, target)
            for target, outcome in outcomes.items()
        }

"""Radio models: the Table 3 intra-SCALO radios and the external radio.

The intra-SCALO radio is a modified Rahmani-Babakhani FDD UWB design:
7 Mbps, 1.721 mW, BER < 1e-5 at 20 cm through brain/skull/skin.  The
design-space exploration (paper §7) compares four (rate, power, BER)
triples, all scaled to a 20 cm range with a log-distance path-loss model
of exponent 3.5.  The external radio (retained from HALO) reaches 10 m at
46 Mbps for 9.2 mW.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RadioSpec:
    """A radio characterised the way the paper's evaluation uses it."""

    name: str
    data_rate_mbps: float
    power_mw: float
    bit_error_rate: float
    range_m: float
    carrier_ghz: float = 4.12

    def __post_init__(self) -> None:
        if self.data_rate_mbps <= 0 or self.power_mw <= 0:
            raise ConfigurationError("radio rate and power must be positive")
        if not 0 <= self.bit_error_rate < 1:
            raise ConfigurationError("BER must be in [0, 1)")

    def airtime_ms(self, n_bits: float) -> float:
        """Time to put ``n_bits`` on the air."""
        if n_bits < 0:
            raise ConfigurationError("bit count cannot be negative")
        return n_bits / (self.data_rate_mbps * 1e3)

    def energy_mj(self, n_bits: float) -> float:
        """Transmit/receive energy for ``n_bits`` (mJ)."""
        return self.power_mw * self.airtime_ms(n_bits) / 1e3

    def packet_error_rate(self, n_bits: int) -> float:
        """Probability that an ``n_bits`` frame suffers >= 1 bit error."""
        return 1.0 - (1.0 - self.bit_error_rate) ** n_bits


#: Default intra-SCALO radio (paper Table 3, "Low Power").
LOW_POWER = RadioSpec("Low Power", 7.0, 1.721, 1e-5, 0.20)

#: Table 3 alternatives.
HIGH_PERF = RadioSpec("High Perf", 14.0, 6.85, 1e-6, 0.20)
LOW_BER = RadioSpec("Low BER", 7.0, 3.4, 1e-6, 0.20)
LOW_DATA_RATE = RadioSpec("Low Data Rate", 3.5, 0.855, 1e-5, 0.20)

RADIO_CATALOG: dict[str, RadioSpec] = {
    spec.name: spec for spec in (LOW_POWER, HIGH_PERF, LOW_BER, LOW_DATA_RATE)
}

#: The external (to-environment) radio retained from HALO: 46 Mbps / 10 m.
EXTERNAL_RADIO = RadioSpec(
    "External", 46.0, 9.2, 1e-6, 10.0, carrier_ghz=0.25
)


def get_radio(name: str) -> RadioSpec:
    """Look up a Table 3 radio by name."""
    try:
        return RADIO_CATALOG[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown radio {name!r}; choose from {sorted(RADIO_CATALOG)}"
        ) from None


def path_loss_db(distance_m: float, exponent: float = 3.5,
                 reference_m: float = 0.01, reference_loss_db: float = 40.0) -> float:
    """Log-distance path loss through brain/skull/skin tissue.

    ``PL(d) = PL(d0) + 10 n log10(d / d0)`` with the paper's exponent
    n = 3.5 (IEEE 802.15.4a body-area model).
    """
    if distance_m <= 0:
        raise ConfigurationError("distance must be positive")
    return reference_loss_db + 10.0 * exponent * math.log10(
        distance_m / reference_m
    )


def scale_radio_to_distance(spec: RadioSpec, distance_m: float,
                            exponent: float = 3.5) -> RadioSpec:
    """Re-rate a radio for a different range at constant link margin.

    Received power must stay constant for the same BER, so transmit power
    scales by the path-loss ratio ``(d_new / d_old) ** n``.
    """
    if distance_m <= 0:
        raise ConfigurationError("distance must be positive")
    ratio_db = path_loss_db(distance_m, exponent) - path_loss_db(
        spec.range_m, exponent
    )
    power_scale = 10.0 ** (ratio_db / 10.0)
    return replace(
        spec,
        name=f"{spec.name}@{distance_m:g}m",
        power_mw=spec.power_mw * power_scale,
        range_m=distance_m,
    )

"""A functional simulator of the intra-SCALO wireless network.

Delivers packets between registered endpoints through a BER channel,
applying the paper's receive policy: packets with corrupted *hash*
payloads are dropped, corrupted *signal* payloads are delivered anyway
(DTW tolerates bit flips), and a corrupted header always drops the packet
since it cannot be routed (paper §3.4, §6.6).

Fault-injection hooks: endpoints can be :meth:`unregistered
<WirelessNetwork.unregister>` (a crashed implant) or put into a radio
outage (registered but deaf and mute), and the channel model is pluggable
so bursty Gilbert-Elliott noise can replace the memoryless default.
Every transmit reports a per-target :class:`DeliveryOutcome`, which is
what the ARQ layer in :mod:`repro.network.arq` builds on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import NetworkError
from repro.network.channel import BitErrorChannel
from repro.network.packet import BROADCAST, Packet, PayloadKind
from repro.network.partition import PartitionMatrix
from repro.network.tdma import TDMAConfig
from repro.telemetry import NULL_TELEMETRY, TelemetryLike

#: Payload kinds that are dropped when their CRC fails.
DROP_ON_ERROR = {
    PayloadKind.HASHES,
    PayloadKind.FEATURES,
    PayloadKind.PARTIAL_RESULT,
    PayloadKind.QUERY,
    PayloadKind.QUERY_RESULT,
    PayloadKind.CLOCK_SYNC,
    PayloadKind.CONTROL,
    PayloadKind.RESYNC,
}


class DeliveryOutcome(enum.Enum):
    """What happened to one packet at one receiver."""

    DELIVERED = "delivered"
    DELIVERED_CORRUPTED = "delivered_corrupted"
    DROPPED_HEADER = "dropped_header"
    DROPPED_PAYLOAD = "dropped_payload"
    DROPPED_OUTAGE = "dropped_outage"
    DROPPED_PARTITION = "dropped_partition"

    @property
    def received(self) -> bool:
        """Did the receiver's application see the packet at all?"""
        return self in (
            DeliveryOutcome.DELIVERED,
            DeliveryOutcome.DELIVERED_CORRUPTED,
        )


@dataclass
class DeliveryStats:
    """Counters for one network's lifetime.

    Retransmission counts live with the ARQ layer that causes them
    (:class:`~repro.network.arq.ARQStats` and the ``arq.retries``
    registry counter) — this struct only books what the medium itself
    sees: bursts, deliveries, drops, and airtime.
    """

    sent: int = 0
    delivered: int = 0
    dropped_header: int = 0
    dropped_payload: int = 0
    dropped_outage: int = 0
    dropped_partition: int = 0
    delivered_corrupted: int = 0
    airtime_ms: float = 0.0

    @property
    def drop_rate(self) -> float:
        if self.sent == 0:
            return 0.0
        # broadcast fan-out counts each delivery attempt
        attempts = (
            self.delivered
            + self.dropped_header
            + self.dropped_payload
            + self.dropped_outage
            + self.dropped_partition
        )
        return 1.0 - self.delivered / attempts if attempts else 0.0


Receiver = Callable[[Packet], None]


@dataclass
class WirelessNetwork:
    """Endpoints + channel + receive policy.

    Endpoints register a callback keyed by node id; :meth:`send` runs the
    channel per receiver (each receiver sees independent noise, as real
    radio links do).  ``channel`` accepts any object with the
    ``transmit(packet) -> (packet, n_flips)`` protocol
    (:class:`~repro.network.channel.BitErrorChannel` by default,
    :class:`~repro.network.channel.GilbertElliottChannel` for bursts).
    """

    tdma: TDMAConfig = field(default_factory=TDMAConfig)
    seed: int = 0
    channel: object | None = None
    _receivers: dict[int, Receiver] = field(default_factory=dict)
    stats: DeliveryStats = field(default_factory=DeliveryStats)
    #: Injectable observability handle; the no-op default keeps the
    #: transmit path byte-identical to an uninstrumented run.
    telemetry: TelemetryLike = field(default=NULL_TELEMETRY, repr=False)

    def __post_init__(self) -> None:
        if self.channel is None:
            self.channel = BitErrorChannel(
                self.tdma.radio.bit_error_rate, self.seed
            )
        self._outages: set[int] = set()
        self._partition: PartitionMatrix | None = None

    def register(self, node_id: int, receiver: Receiver) -> None:
        if node_id in self._receivers:
            raise NetworkError(f"node {node_id} already registered")
        self._receivers[node_id] = receiver

    def unregister(self, node_id: int) -> Receiver:
        """Remove an endpoint (a crashed node); returns its old callback.

        Subsequent broadcasts simply skip the node; addressing it directly
        raises :class:`NetworkError` as for any unknown destination.
        """
        if node_id not in self._receivers:
            raise NetworkError(f"node {node_id} not registered")
        self._outages.discard(node_id)
        return self._receivers.pop(node_id)

    # -- radio outages ----------------------------------------------------------

    def set_outage(self, node_id: int, out: bool = True) -> None:
        """Put a registered node's radio into (or out of) an outage window.

        An outaged node stays registered but cannot hear or be heard:
        deliveries to or from it count as ``dropped_outage``.
        """
        if node_id not in self._receivers:
            raise NetworkError(f"node {node_id} not registered")
        if out:
            self._outages.add(node_id)
        else:
            self._outages.discard(node_id)

    def in_outage(self, node_id: int) -> bool:
        return node_id in self._outages

    # -- partitions -------------------------------------------------------------

    def set_partition(self, matrix: PartitionMatrix) -> None:
        """Install a link-level partition over the medium.

        Unlike an outage (one deaf node), a partition cuts *directed
        links*: a frame whose ``src -> dst`` link the matrix blocks is
        counted as ``dropped_partition`` at that receiver while other
        receivers of the same burst still hear it.  Installing a new
        matrix replaces any previous one (the plan layer nets
        heal+split within a round to exactly this call order).
        """
        self._partition = matrix

    def clear_partition(self) -> None:
        """Heal the fabric: every link carries again."""
        self._partition = None

    @property
    def partition(self) -> PartitionMatrix | None:
        return self._partition

    def can_reach(self, src: int, dst: int) -> bool:
        """Is the directed link usable right now (partition-wise)?

        Only consults the partition matrix — outages, crashes, and
        channel noise are separate concerns layered on top.  This is
        the primitive the round-trip liveness probes in
        :class:`~repro.faults.health.FleetBelief` query in both
        directions.
        """
        if self._partition is None:
            return True
        return self._partition.reachable(src, dst)

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._receivers)

    # -- transmission -----------------------------------------------------------

    def send(self, packet: Packet) -> dict[int, DeliveryOutcome]:
        """Transmit a packet; deliveries follow the error policy.

        Returns the per-target outcomes (one entry per receiver for a
        broadcast).  Routing errors are raised before any statistics are
        touched, so a rejected send leaves no phantom traffic behind.
        """
        if packet.header.src not in self._receivers:
            raise NetworkError(f"unknown source {packet.header.src}")
        if packet.header.dst == BROADCAST:
            targets = [n for n in self._receivers if n != packet.header.src]
        else:
            if packet.header.dst not in self._receivers:
                raise NetworkError(f"unknown destination {packet.header.dst}")
            targets = [packet.header.dst]
        return self.transmit_to(packet, targets)

    def transmit_to(
        self, packet: Packet, targets: list[int]
    ) -> dict[int, DeliveryOutcome]:
        """One on-air transmission towards an explicit target set.

        The ARQ layer uses this to retransmit to only the unacknowledged
        subset of a broadcast.  Each call is one radio burst: it spends one
        packet's airtime regardless of how many receivers listen.
        """
        airtime_ms = self.tdma.packet_airtime_ms(len(packet.payload))
        self.stats.sent += 1
        self.stats.airtime_ms += airtime_ms
        tel = self.telemetry
        if tel.enabled:
            tel.inc("network.packets_sent")
            tel.inc("network.airtime_ms", airtime_ms)
            tel.inc("network.payload_bytes", len(packet.payload))
            tel.advance_ms(airtime_ms)
        outcomes: dict[int, DeliveryOutcome] = {}
        src = packet.header.src
        src_dark = src in self._outages
        for target in targets:
            if target not in self._receivers:
                raise NetworkError(f"unknown destination {target}")
            if src_dark or target in self._outages:
                self.stats.dropped_outage += 1
                outcomes[target] = DeliveryOutcome.DROPPED_OUTAGE
                continue
            if not self.can_reach(src, target):
                self.stats.dropped_partition += 1
                outcomes[target] = DeliveryOutcome.DROPPED_PARTITION
                continue
            received, _ = self.channel.transmit(packet)
            if received is not packet and packet.trace is not None:
                # the channel reparses corrupted frames from wire bytes,
                # which strips the out-of-band trace context — re-attach
                received = replace(received, trace=packet.trace)
            outcomes[target] = self._deliver(target, received)
        if tel.enabled:
            for outcome in outcomes.values():
                if outcome is DeliveryOutcome.DELIVERED:
                    tel.inc("network.delivered")
                elif outcome is DeliveryOutcome.DELIVERED_CORRUPTED:
                    tel.inc("network.delivered", corrupted="true")
                else:
                    tel.inc(
                        "network.dropped",
                        reason=outcome.value.removeprefix("dropped_"),
                    )
        return outcomes

    def _deliver(self, target: int, packet: Packet) -> DeliveryOutcome:
        if not packet.header_ok:
            self.stats.dropped_header += 1
            return DeliveryOutcome.DROPPED_HEADER
        outcome = DeliveryOutcome.DELIVERED
        if not packet.payload_ok:
            if packet.header.kind in DROP_ON_ERROR:
                self.stats.dropped_payload += 1
                return DeliveryOutcome.DROPPED_PAYLOAD
            self.stats.delivered_corrupted += 1
            outcome = DeliveryOutcome.DELIVERED_CORRUPTED
        self.stats.delivered += 1
        self._receivers[target](packet)
        return outcome

"""A functional simulator of the intra-SCALO wireless network.

Delivers packets between registered endpoints through a BER channel,
applying the paper's receive policy: packets with corrupted *hash*
payloads are dropped, corrupted *signal* payloads are delivered anyway
(DTW tolerates bit flips), and a corrupted header always drops the packet
since it cannot be routed (paper §3.4, §6.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError
from repro.network.channel import BitErrorChannel
from repro.network.packet import BROADCAST, Packet, PayloadKind
from repro.network.tdma import TDMAConfig

#: Payload kinds that are dropped when their CRC fails.
DROP_ON_ERROR = {
    PayloadKind.HASHES,
    PayloadKind.FEATURES,
    PayloadKind.PARTIAL_RESULT,
    PayloadKind.QUERY,
    PayloadKind.QUERY_RESULT,
    PayloadKind.CLOCK_SYNC,
    PayloadKind.CONTROL,
}


@dataclass
class DeliveryStats:
    """Counters for one network's lifetime."""

    sent: int = 0
    delivered: int = 0
    dropped_header: int = 0
    dropped_payload: int = 0
    delivered_corrupted: int = 0
    airtime_ms: float = 0.0

    @property
    def drop_rate(self) -> float:
        if self.sent == 0:
            return 0.0
        # broadcast fan-out counts each delivery attempt
        attempts = (
            self.delivered
            + self.dropped_header
            + self.dropped_payload
        )
        return 1.0 - self.delivered / attempts if attempts else 0.0


Receiver = Callable[[Packet], None]


@dataclass
class WirelessNetwork:
    """Endpoints + channel + receive policy.

    Endpoints register a callback keyed by node id; :meth:`send` runs the
    channel per receiver (each receiver sees independent noise, as real
    radio links do).
    """

    tdma: TDMAConfig = field(default_factory=TDMAConfig)
    seed: int = 0
    _receivers: dict[int, Receiver] = field(default_factory=dict)
    stats: DeliveryStats = field(default_factory=DeliveryStats)

    def __post_init__(self) -> None:
        self._channel = BitErrorChannel(self.tdma.radio.bit_error_rate, self.seed)

    def register(self, node_id: int, receiver: Receiver) -> None:
        if node_id in self._receivers:
            raise NetworkError(f"node {node_id} already registered")
        self._receivers[node_id] = receiver

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._receivers)

    def send(self, packet: Packet) -> None:
        """Transmit a packet; deliveries follow the error policy."""
        if packet.header.src not in self._receivers:
            raise NetworkError(f"unknown source {packet.header.src}")
        self.stats.sent += 1
        self.stats.airtime_ms += self.tdma.packet_airtime_ms(len(packet.payload))

        if packet.header.dst == BROADCAST:
            targets = [n for n in self._receivers if n != packet.header.src]
        else:
            if packet.header.dst not in self._receivers:
                raise NetworkError(f"unknown destination {packet.header.dst}")
            targets = [packet.header.dst]

        for target in targets:
            received, _ = self._channel.transmit(packet)
            self._deliver(target, received)

    def _deliver(self, target: int, packet: Packet) -> None:
        if not packet.header_ok:
            self.stats.dropped_header += 1
            return
        if not packet.payload_ok:
            if packet.header.kind in DROP_ON_ERROR:
                self.stats.dropped_payload += 1
                return
            self.stats.delivered_corrupted += 1
        self.stats.delivered += 1
        self._receivers[target](packet)

"""CRC32 (IEEE 802.3 polynomial), table-driven — the NPACK checksum.

Implemented from the polynomial rather than via :mod:`zlib` because the
checksum hardware is part of the system being reproduced.  The result
matches ``zlib.crc32`` (the reflected 0xEDB88320 form), which the tests
verify.
"""

from __future__ import annotations

_POLY = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC32 of ``data``; chainable via ``seed`` (pass the previous CRC)."""
    crc = seed ^ 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def verify(data: bytes, expected: int) -> bool:
    """Check ``data`` against a previously computed CRC."""
    return crc32(data) == expected

"""Discrete-event simulation of the TDMA medium.

:class:`~repro.network.network.WirelessNetwork` delivers packets
instantly — right for functional tests, wrong for timing questions.
This simulator runs the fixed TDMA frame slot by slot: nodes enqueue
packets, each slot carries at most one packet from its owner, the BER
channel corrupts in flight, and every delivery is stamped with the time
it actually completed.  It is how the reproduction answers "when did the
hashes arrive", not just "did they".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.network.channel import BitErrorChannel
from repro.network.network import DROP_ON_ERROR
from repro.network.packet import BROADCAST, Packet
from repro.network.tdma import TDMAConfig, TDMASchedule


@dataclass(frozen=True)
class Delivery:
    """One completed delivery."""

    packet: Packet
    src: int
    dst: int
    enqueued_ms: float
    delivered_ms: float
    corrupted: bool

    @property
    def latency_ms(self) -> float:
        return self.delivered_ms - self.enqueued_ms


@dataclass
class TDMASimulator:
    """Slot-stepped medium shared by ``n_nodes`` implants."""

    n_nodes: int
    config: TDMAConfig = field(default_factory=TDMAConfig)
    schedule: TDMASchedule | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise NetworkError("need at least one node")
        if self.schedule is None:
            self.schedule = TDMASchedule.round_robin(self.config, self.n_nodes)
        self._channel = BitErrorChannel(
            self.config.radio.bit_error_rate, self.seed
        )
        # per-node FIFO of (enqueue_time, order, packet)
        self._queues: dict[int, list[tuple[float, int, Packet]]] = {
            n: [] for n in range(self.n_nodes)
        }
        self._order = 0
        self.now_ms = 0.0
        self.slot_index = 0
        self.deliveries: list[Delivery] = []
        self.drops: list[Delivery] = []

    # -- transmit-side API ---------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Hand a packet to its source node's transmit queue."""
        src = packet.header.src
        if src not in self._queues:
            raise NetworkError(f"unknown source node {src}")
        heapq.heappush(self._queues[src], (self.now_ms, self._order, packet))
        self._order += 1

    def pending(self, node: int | None = None) -> int:
        if node is not None:
            return len(self._queues[node])
        return sum(len(q) for q in self._queues.values())

    # -- the clock ------------------------------------------------------------------

    def step_slot(self) -> list[Delivery]:
        """Advance one TDMA slot; returns deliveries completed in it."""
        assert self.schedule is not None
        owner = self.schedule.slot_owners[
            self.slot_index % len(self.schedule.slot_owners)
        ]
        self.slot_index += 1
        completed: list[Delivery] = []

        queue = self._queues[owner]
        if queue:
            enqueued_ms, _, packet = heapq.heappop(queue)
            airtime = self.config.packet_airtime_ms(len(packet.payload))
            delivered_ms = self.now_ms + airtime
            targets = (
                [n for n in self._queues if n != owner]
                if packet.header.dst == BROADCAST
                else [packet.header.dst]
            )
            for dst in targets:
                if dst not in self._queues:
                    raise NetworkError(f"unknown destination {dst}")
                received, flips = self._channel.transmit(packet)
                corrupted = flips > 0 and not received.intact
                delivery = Delivery(
                    received, owner, dst, enqueued_ms, delivered_ms, corrupted
                )
                dropped = not received.header_ok or (
                    corrupted and received.header.kind in DROP_ON_ERROR
                )
                if dropped:
                    self.drops.append(delivery)
                else:
                    self.deliveries.append(delivery)
                    completed.append(delivery)
        self.now_ms += self.config.slot_ms()
        return completed

    def run_until_idle(self, max_ms: float = 1e3) -> float:
        """Step until every queue drains; returns the elapsed time.

        Raises:
            NetworkError: if the medium cannot drain within ``max_ms``
                (offered load exceeds capacity).
        """
        start = self.now_ms
        while self.pending():
            if self.now_ms - start > max_ms:
                raise NetworkError(
                    f"medium saturated: {self.pending()} packets still "
                    f"queued after {max_ms} ms"
                )
            self.step_slot()
        return self.now_ms - start

    def run_for(self, duration_ms: float) -> list[Delivery]:
        """Step for a fixed duration; returns that window's deliveries."""
        end = self.now_ms + duration_ms
        completed: list[Delivery] = []
        while self.now_ms < end:
            completed.extend(self.step_slot())
        return completed

    # -- measurements ------------------------------------------------------------------

    def mean_latency_ms(self) -> float:
        if not self.deliveries:
            return 0.0
        unique = {
            (d.packet.header.seq, d.src, d.enqueued_ms): d.latency_ms
            for d in self.deliveries
        }
        return sum(unique.values()) / len(unique)

    def goodput_mbps(self) -> float:
        """Delivered payload bits over elapsed time."""
        if self.now_ms == 0:
            return 0.0
        unique = {}
        for d in self.deliveries:
            unique[(d.packet.header.seq, d.src, d.enqueued_ms)] = len(
                d.packet.payload
            )
        bits = 8 * sum(unique.values())
        return bits / (self.now_ms * 1e3)

"""Fig. 11: hash-vs-exact comparison errors by distance from threshold.

For each similarity measure we draw window pairs spanning the whole
similar...dissimilar range (lagged/attenuated twins, unrelated windows,
and ambiguous mixtures of synthetic iEEG windows), set a clinician-style
threshold between the correlated and uncorrelated populations, and
compare the hash match decision against the exact decision.  Errors are
binned by the pair's distance from the threshold (as a percentage of the
class separation); the paper reports total error < 8.5 % with errors
concentrated near the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic_ieeg import generate_ieeg
from repro.hashing.lsh import LSHFamily
from repro.similarity.measures import get_measure
from repro.units import WINDOW_SAMPLES

#: Bin edges on the distance-from-threshold axis (%), paper Fig. 11.
BIN_EDGES_PCT = np.arange(-70.0, 75.0, 10.0)


@dataclass
class HashAccuracyResult:
    """Binned errors for one measure."""

    measure: str
    bin_centers_pct: np.ndarray
    error_pct: np.ndarray
    total_error_pct: float
    false_positive_share: float


def _window_pool(n_windows: int, seed: int) -> np.ndarray:
    """Mixed seizure/background windows from the synthetic recording."""
    recording = generate_ieeg(
        n_nodes=2, n_electrodes=4, duration_s=max(1.0, n_windows / 250),
        n_seizures=2, seizure_duration_s=0.25, seed=seed,
    )
    flat = recording.data.reshape(-1, recording.n_samples)
    windows = []
    rng = np.random.default_rng(seed)
    n_per_channel = recording.n_samples // WINDOW_SAMPLES
    for _ in range(n_windows):
        channel = int(rng.integers(flat.shape[0]))
        w = int(rng.integers(n_per_channel))
        windows.append(flat[channel, w * WINDOW_SAMPLES:(w + 1) * WINDOW_SAMPLES])
    return np.stack(windows)


#: Pair class labels.
SIMILAR, DISSIMILAR, BOUNDARY = 0, 1, 2


@dataclass
class PairSet:
    """Window pairs plus their construction class."""

    pairs: list[tuple[np.ndarray, np.ndarray]]
    labels: np.ndarray  # SIMILAR / DISSIMILAR / BOUNDARY

    def __len__(self) -> int:
        return len(self.pairs)


def make_pairs(n_pairs: int = 400, seed: int = 0) -> PairSet:
    """Window pairs mirroring the physics of seizure propagation.

    * *Similar* pairs: the same waveform seen at a second site — a small
      time lag, amplitude attenuation, and sensor noise (what DTW and the
      hashes must recognise as correlated).
    * *Dissimilar* pairs: unrelated windows from the pool.
    * *Boundary* pairs: partial mixtures, deliberately sitting near any
      sensible decision threshold — where hash errors are expected to
      concentrate (paper §6.5).
    """
    rng = np.random.default_rng(seed)
    pool = _window_pool(max(64, n_pairs // 4), seed)
    pairs: list[tuple[np.ndarray, np.ndarray]] = []
    labels = np.empty(n_pairs, dtype=int)
    for i in range(n_pairs):
        a = pool[int(rng.integers(pool.shape[0]))]
        other = pool[int(rng.integers(pool.shape[0]))]
        mode = i % 20
        noise = a.std() * rng.standard_normal(a.shape[0])
        if mode < 9:  # correlated: lag + attenuation + noise
            shift = int(rng.integers(0, 9))
            gain = rng.uniform(0.7, 1.0)
            b = gain * np.roll(a, shift) + 0.02 * noise
            labels[i] = SIMILAR
        elif mode < 19:  # unrelated
            b = other + 0.02 * noise
            labels[i] = DISSIMILAR
        else:  # ambiguous mixture
            alpha = rng.uniform(0.35, 0.65)
            b = (1 - alpha) * a + alpha * other + 0.05 * noise
            labels[i] = BOUNDARY
        pairs.append((a, b))
    return PairSet(pairs, labels)


def hash_accuracy(
    measure_name: str,
    n_pairs: int = 400,
    seed: int = 0,
) -> HashAccuracyResult:
    """Run the Fig. 11 experiment for one measure."""
    measure = get_measure(measure_name)
    family = LSHFamily.for_measure(measure_name)
    pair_set = make_pairs(n_pairs, seed)
    pairs = pair_set.pairs

    values = np.array([measure(a, b) for a, b in pairs])
    threshold, separation = pick_threshold(values, pair_set.labels)
    # distance from threshold as a percentage of the correlated-vs-
    # uncorrelated class separation, positive on the similar side —
    # distance measures compress the dissimilar range, so normalising by
    # |threshold| alone would stretch one side of the axis
    sign = 1.0 if measure.higher_is_similar else -1.0
    margins = sign * (values - threshold) / separation * 100.0
    exact = np.array(
        [measure.is_similar(a, b, threshold) for a, b in pairs], dtype=bool
    )
    hashed = np.array(
        [
            family.matches(family.hash_window(a), family.hash_window(b))
            for a, b in pairs
        ],
        dtype=bool,
    )
    wrong = exact != hashed

    centers = (BIN_EDGES_PCT[:-1] + BIN_EDGES_PCT[1:]) / 2
    error_pct = np.zeros(centers.shape[0])
    clipped = np.clip(margins, BIN_EDGES_PCT[0], BIN_EDGES_PCT[-1] - 1e-9)
    for i in range(centers.shape[0]):
        mask = (clipped >= BIN_EDGES_PCT[i]) & (clipped < BIN_EDGES_PCT[i + 1])
        if mask.any():
            # errors in this bin as a share of all pairs (area = total)
            error_pct[i] = 100.0 * wrong[mask].sum() / len(pairs)

    false_positives = (~exact & hashed).sum()
    total_wrong = wrong.sum()
    return HashAccuracyResult(
        measure=measure_name,
        bin_centers_pct=centers,
        error_pct=error_pct,
        total_error_pct=100.0 * total_wrong / len(pairs),
        false_positive_share=(
            false_positives / total_wrong if total_wrong else 0.0
        ),
    )


def pick_threshold(
    values: np.ndarray, labels: np.ndarray, position: float = 0.3
) -> tuple[float, float]:
    """The clinician-style threshold, plus the class separation.

    The paper "sets a similarity threshold" per measure; a practitioner
    calibrating on annotated data places it between the correlated and
    uncorrelated populations, biased toward the correlated side
    (``position`` of the way across) so that only confidently-correlated
    pairs count as matches.

    Returns:
        (threshold, |dissimilar median - similar median|).
    """
    similar_median = float(np.median(values[labels == SIMILAR]))
    dissimilar_median = float(np.median(values[labels == DISSIMILAR]))
    threshold = similar_median + position * (dissimilar_median - similar_median)
    return threshold, abs(dissimilar_median - similar_median)


def fig11(n_pairs: int = 400, seed: int = 0
          ) -> dict[str, HashAccuracyResult]:
    """All four measures."""
    return {
        name: hash_accuracy(name, n_pairs, seed)
        for name in ("xcor", "emd", "dtw", "euclidean")
    }

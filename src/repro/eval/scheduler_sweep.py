"""Scheduler portfolio evaluation: optimality gap x solve-time sweep.

The portfolio promise is quantitative: at fleet scale (256+ nodes) the
seeded heuristics must land within 5 % of the exact ILP objective while
solving at least 10x faster, and incremental failover repair must beat a
from-scratch ILP re-solve by at least 5x.  This module measures all
three claims across representative workloads up to 1024 nodes, books
``scheduler.optimality_gap`` gauges (labelled by workload / solver /
node count) so the gates are assertable from a metrics CSV, and feeds
both the ``python -m repro sched`` command and the scheduler benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.scheduler.flowsched import MinCostFlowScheduler
from repro.scheduler.ilp import (
    AUTO_ILP_MAX_NODES,
    Flow,
    Schedule,
    SchedulerProblem,
)
from repro.scheduler.model import (
    dtw_similarity_task,
    hash_similarity_task,
    mi_kf_task,
    mi_svm_task,
    seizure_detection_task,
    spike_sorting_task,
)
from repro.telemetry import NULL_TELEMETRY, TelemetryLike
from repro.units import ELECTRODES_PER_NODE, NODE_POWER_CAP_MW

#: Node counts on the sweep x-axis — fleet scale, past the paper's 64.
SWEEP_NODE_COUNTS = (16, 64, 256, 1024)

#: Portfolio members the sweep compares against the exact ILP.
SWEEP_SOLVERS = ("greedy", "flow", "auto")

#: Gates: gap <= 5 % with >= 10x speedup at 256+ nodes; repair >= 5x.
GATE_MAX_GAP = 0.05
GATE_MIN_SPEEDUP = 10.0
GATE_NODE_FLOOR = 256
REPAIR_GATE_MIN_SPEEDUP = 5.0


def sweep_flows(workload: str) -> list[Flow]:
    """The flow mix for one named sweep workload.

    ``seizure`` is the Fig. 9a propagation triple; ``mixed`` adds local
    analytics so power and NVM rows bind alongside the medium; and
    ``movement`` exercises the latency-exempt all-one aggregation path.
    """
    if workload == "seizure":
        return [
            Flow(seizure_detection_task(), weight=3.0,
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
            Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
                 weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
        ]
    if workload == "mixed":
        return [
            Flow(seizure_detection_task(), weight=4.0,
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(spike_sorting_task(), weight=2.0,
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 weight=2.0, electrode_cap=ELECTRODES_PER_NODE),
            Flow(hash_similarity_task("one_all", net_budget_ms=2.0),
                 weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
            Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
                 weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
        ]
    if workload == "movement":
        return [
            Flow(mi_svm_task(), weight=2.0,
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(spike_sorting_task(), weight=1.0,
                 electrode_cap=ELECTRODES_PER_NODE),
            Flow(hash_similarity_task("one_all", net_budget_ms=2.0),
                 weight=1.0, electrode_cap=ELECTRODES_PER_NODE),
        ]
    if workload == "uncapped":
        # No electrode caps, so the power / medium / NVM budgets bind —
        # the cell where heuristic gaps are actually non-trivial.
        return [
            Flow(seizure_detection_task(), weight=2.0),
            Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
                 weight=1.0),
            Flow(mi_kf_task(), weight=1.0),
        ]
    raise SchedulingError(f"unknown sweep workload {workload!r}; "
                          f"expected one of {SWEEP_WORKLOADS}")


#: Workload names accepted by :func:`sweep_flows`.
SWEEP_WORKLOADS = ("seizure", "mixed", "movement", "uncapped")


@dataclass(frozen=True)
class GapPoint:
    """One (workload, node count, solver) cell of the sweep."""

    workload: str
    n_nodes: int
    solver: str
    #: relative objective shortfall vs the exact ILP (0.0 = optimal)
    gap: float
    solve_ms: float
    ilp_ms: float
    feasible: bool

    @property
    def speedup(self) -> float:
        return self.ilp_ms / self.solve_ms if self.solve_ms > 0 else 0.0

    def meets_gates(self) -> bool:
        """The BENCH gates for this cell (vacuous below the node floor)."""
        if not self.feasible or self.gap > GATE_MAX_GAP:
            return False
        if self.n_nodes >= GATE_NODE_FLOOR:
            return self.speedup >= GATE_MIN_SPEEDUP
        return True


@dataclass(frozen=True)
class RepairPoint:
    """Incremental failover repair vs a from-scratch ILP re-solve."""

    n_nodes: int
    repair_ms: float
    ilp_ms: float
    feasible: bool

    @property
    def speedup(self) -> float:
        return self.ilp_ms / self.repair_ms if self.repair_ms > 0 else 0.0

    def meets_gates(self) -> bool:
        return self.feasible and self.speedup >= REPAIR_GATE_MIN_SPEEDUP


def _objective(schedule: Schedule) -> float:
    """The ILP objective at a solved schedule (weighted electrodes)."""
    return sum(a.flow.weight * a.aggregate_electrodes
               for a in schedule.allocations)


def _best_ms(fn, repeats: int) -> tuple[object, float]:
    """(result, best wall-clock ms) over ``repeats`` timed calls."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - start) * 1e3)
    return result, best


def gap_sweep(
    node_counts=SWEEP_NODE_COUNTS,
    solvers=SWEEP_SOLVERS,
    workloads=SWEEP_WORKLOADS,
    power_mw: float = NODE_POWER_CAP_MW,
    seed: int = 0,
    repeats: int = 3,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> list[GapPoint]:
    """Measure gap and solve time for every (workload, nodes, solver).

    Both sides time the full :meth:`SchedulerProblem.solve` path
    (constraint build included) so the comparison is end to end.  The
    timed solves run untelemetered — a live handle books spans and
    histograms inside the solver, a fixed cost that would penalise a
    150 us heuristic ~20x harder than the 2 ms LP — and the measured
    values are booked into ``telemetry`` afterwards: one
    ``scheduler.optimality_gap`` gauge per cell plus
    ``scheduler.heuristic_solve_ms`` / ``scheduler.ilp_solve_ms``
    observations.  Every heuristic solution is re-checked against the
    exact constraint rows; an infeasible cell reports
    ``feasible=False`` rather than a gap.
    """
    points: list[GapPoint] = []
    for workload in workloads:
        for n in node_counts:
            # Flows are built once per cell, outside the timed region:
            # every production caller (reschedule, failover) already
            # holds its flow list when it asks for a solve.
            flows = sweep_flows(workload)

            def _solve(solver: str) -> Schedule:
                return SchedulerProblem(
                    n_nodes=n, flows=flows,
                    power_budget_mw=power_mw, solver=solver, seed=seed,
                ).solve()

            ilp_schedule, ilp_ms = _best_ms(lambda: _solve("ilp"), repeats)
            ilp_obj = _objective(ilp_schedule)
            telemetry.observe("scheduler.ilp_solve_ms", ilp_ms)
            for solver in solvers:
                try:
                    schedule, solve_ms = _best_ms(
                        lambda s=solver: _solve(s), repeats
                    )
                except SchedulingError:
                    points.append(GapPoint(workload, n, solver, float("inf"),
                                           float("inf"), ilp_ms, False))
                    continue
                gap = (max(0.0, ilp_obj - _objective(schedule)) / ilp_obj
                       if ilp_obj > 0 else 0.0)
                telemetry.set_gauge("scheduler.optimality_gap", gap,
                                    workload=workload, solver=solver,
                                    nodes=n)
                if solver != "auto" or n >= AUTO_ILP_MAX_NODES:
                    telemetry.observe("scheduler.heuristic_solve_ms",
                                      solve_ms)
                points.append(GapPoint(workload, n, solver, gap, solve_ms,
                                       ilp_ms, True))
    return points


def repair_speedup(
    n_nodes: int = 64,
    workload: str = "seizure",
    power_mw: float = NODE_POWER_CAP_MW,
    seed: int = 0,
    repeats: int = 3,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> RepairPoint:
    """Time one-node-crash repair against a from-scratch ILP re-solve.

    Warms a :class:`MinCostFlowScheduler` on the pre-crash fleet, then
    times :meth:`~MinCostFlowScheduler.repair` against the shrunken
    constraint system — exactly what :class:`~repro.recovery.failover.
    FailoverManager` runs at failover — and compares with a cold
    ``solver="ilp"`` solve of the same post-crash instance.
    """
    def _problem(n: int, solver: str) -> SchedulerProblem:
        return SchedulerProblem(
            n_nodes=n, flows=sweep_flows(workload),
            power_budget_mw=power_mw, solver=solver, seed=seed,
        )

    def _repair() -> tuple[bool, float]:
        repairer = MinCostFlowScheduler(
            _problem(n_nodes, "flow").constraints(), seed=seed
        )
        repairer.solve()
        after = _problem(n_nodes - 1, "flow").constraints()
        start = time.perf_counter()
        electrodes = repairer.repair(after)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        return not after.verify(electrodes), elapsed_ms

    best_repair = float("inf")
    feasible = True
    for _ in range(max(1, repeats)):
        ok, elapsed_ms = _repair()
        feasible = feasible and ok
        best_repair = min(best_repair, elapsed_ms)
    _, ilp_ms = _best_ms(lambda: _problem(n_nodes - 1, "ilp").solve(),
                         repeats)
    telemetry.observe("scheduler.repair_solve_ms", best_repair)
    return RepairPoint(n_nodes, best_repair, ilp_ms, feasible)

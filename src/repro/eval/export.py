"""CSV export of every figure's series (for plotting outside Python).

``python -m repro export --out results/`` writes one CSV per table and
figure, mirroring exactly what the benchmarks print.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Callable


def _write(path: pathlib.Path, header: list[str], rows: list[list]) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_fig8a(out: pathlib.Path) -> None:
    from repro.core.architectures import DESIGNS, TASKS
    from repro.eval.throughput import fig8a

    grid = fig8a()
    rows = [
        [design] + [grid[design][task] for task in TASKS]
        for design in DESIGNS
    ]
    _write(out / "fig8a.csv", ["design", *TASKS], rows)


def export_fig8b(out: pathlib.Path) -> None:
    from repro.eval.throughput import fig8b

    rows = []
    for method, surface in fig8b().items():
        for power, series in surface.items():
            for nodes, mbps in series.items():
                rows.append([method, power, nodes, mbps])
    _write(out / "fig8b.csv", ["method", "power_mw", "nodes", "mbps"], rows)


def export_fig8c(out: pathlib.Path) -> None:
    from repro.eval.throughput import fig8c

    rows = []
    for app, surface in fig8c().items():
        for power, series in surface.items():
            for nodes, mbps in series.items():
                rows.append([app, power, nodes, mbps])
    _write(out / "fig8c.csv", ["app", "power_mw", "nodes", "mbps"], rows)


def export_fig9(out: pathlib.Path) -> None:
    from repro.eval.application import fig9a, fig9b

    rows = [
        [weights, nodes, mbps]
        for weights, series in fig9a().items()
        for nodes, mbps in series.items()
    ]
    _write(out / "fig9a.csv", ["weights", "nodes", "weighted_mbps"], rows)
    rows = [
        [decoder, nodes, rate]
        for decoder, series in fig9b().items()
        for nodes, rate in series.items()
    ]
    _write(out / "fig9b.csv", ["decoder", "nodes", "intents_per_s"], rows)


def export_fig10(out: pathlib.Path) -> None:
    from repro.eval.queries import fig10

    rows = [
        [query, time_range, fraction, qps]
        for query, cells in fig10().items()
        for (time_range, fraction), qps in cells.items()
    ]
    _write(out / "fig10.csv",
           ["query", "time_range_ms", "match_fraction", "qps"], rows)


def export_fig11(out: pathlib.Path, n_pairs: int = 400) -> None:
    from repro.eval.hash_accuracy import fig11

    rows = []
    for measure, result in fig11(n_pairs=n_pairs).items():
        for center, error in zip(result.bin_centers_pct, result.error_pct):
            rows.append([measure, float(center), float(error),
                         result.total_error_pct])
    _write(out / "fig11.csv",
           ["measure", "margin_pct", "error_pct", "total_error_pct"], rows)


def export_fig12(out: pathlib.Path, n_packets: int = 400) -> None:
    from repro.eval.network_errors import fig12

    rows = [
        [ber, r.hash_packet_error_pct, r.signal_packet_error_pct,
         r.dtw_failure_pct]
        for ber, r in fig12(n_packets=n_packets).items()
    ]
    _write(out / "fig12.csv",
           ["ber", "hash_err_pct", "signal_err_pct", "dtw_fail_pct"], rows)


def export_fig13(out: pathlib.Path) -> None:
    from repro.eval.radio_dse import fig13

    rows = [
        [radio, app, value]
        for radio, series in fig13(n_nodes=11).items()
        for app, value in series.items()
    ]
    _write(out / "fig13.csv", ["radio", "app", "normalised"], rows)


def export_fig14(out: pathlib.Path, n_pairs: int = 240) -> None:
    from repro.eval.hash_params import fig14

    rows = []
    for measure, result in fig14(n_pairs=n_pairs).items():
        for (window, ngram), tpr in result.tpr.items():
            rows.append([
                measure, window, ngram, tpr,
                int((window, ngram) == result.best),
                int((window, ngram) in result.near_best),
            ])
    _write(out / "fig14.csv",
           ["measure", "window", "ngram", "tpr", "best", "near_best"], rows)


def export_fig15(out: pathlib.Path, n_reps: int = 500) -> None:
    from repro.eval.delay import fig15

    result = fig15(n_reps=n_reps)
    rows = [
        ["encoding", rate, stats.mean_ms, stats.max_ms]
        for rate, stats in result.encoding.items()
    ] + [
        ["network", ber, stats.mean_ms, stats.max_ms]
        for ber, stats in result.network.items()
    ]
    _write(out / "fig15.csv",
           ["sweep", "x", "mean_delay_ms", "max_delay_ms"], rows)


#: Everything, in paper order.
EXPORTERS: dict[str, Callable[[pathlib.Path], None]] = {
    "fig8a": export_fig8a,
    "fig8b": export_fig8b,
    "fig8c": export_fig8c,
    "fig9": export_fig9,
    "fig10": export_fig10,
    "fig11": export_fig11,
    "fig12": export_fig12,
    "fig13": export_fig13,
    "fig14": export_fig14,
    "fig15": export_fig15,
}


def export_all(out_dir: str | pathlib.Path) -> list[pathlib.Path]:
    """Write every figure's CSV into ``out_dir``; returns the paths."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for exporter in EXPORTERS.values():
        exporter(out)
    return sorted(out.glob("*.csv"))

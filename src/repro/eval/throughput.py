"""Throughput experiments: Fig. 8a/8b/8c and the §6.2 scalar curves.

Every function returns plain dicts of series so the benchmarks can print
the same rows the paper plots.
"""

from __future__ import annotations

from repro.core.architectures import fig8a_table
from repro.network.tdma import TDMAConfig
from repro.scheduler.ilp import max_throughput_mbps
from repro.scheduler.model import (
    dtw_similarity_task,
    hash_similarity_task,
    mi_kf_task,
    mi_nn_task,
    mi_svm_task,
    seizure_detection_task,
    spike_sorting_task,
)
from repro.telemetry import NULL_TELEMETRY, TelemetryLike

#: Node counts on the Fig. 8b/8c axes.
NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)

#: Power limits on the Fig. 8b/8c axes (mW).
POWER_LIMITS_MW = (6.0, 9.0, 12.0, 15.0)


def fig8a(n_nodes: int = 11, power_mw: float = 15.0
          ) -> dict[str, dict[str, float]]:
    """Fig. 8a: design -> task -> max aggregate Mbps at 11 nodes."""
    return fig8a_table(n_nodes, power_mw)


def _sweep(task_factory, tdma: TDMAConfig | None = None,
           node_counts=NODE_COUNTS, power_limits=POWER_LIMITS_MW,
           telemetry: TelemetryLike = NULL_TELEMETRY, solver: str = "ilp"
           ) -> dict[float, dict[int, float]]:
    """power -> nodes -> Mbps for one task."""
    surface: dict[float, dict[int, float]] = {}
    for power in power_limits:
        row = {}
        for n in node_counts:
            task = task_factory()
            row[n] = max_throughput_mbps(task, n, power, tdma=tdma,
                                         telemetry=telemetry, solver=solver)
        surface[power] = row
    return surface


def fig8b(tdma: TDMAConfig | None = None, node_counts=NODE_COUNTS,
          power_limits=POWER_LIMITS_MW,
          telemetry: TelemetryLike = NULL_TELEMETRY, solver: str = "ilp"
          ) -> dict[str, dict[float, dict[int, float]]]:
    """Fig. 8b: the four signal-similarity surfaces."""
    return {
        "DTW All-All": _sweep(lambda: dtw_similarity_task("all_all"), tdma,
                              node_counts, power_limits, telemetry, solver),
        "DTW One-All": _sweep(lambda: dtw_similarity_task("one_all"), tdma,
                              node_counts, power_limits, telemetry, solver),
        "Hash All-All": _sweep(lambda: hash_similarity_task("all_all"), tdma,
                               node_counts, power_limits, telemetry, solver),
        "Hash One-All": _sweep(lambda: hash_similarity_task("one_all"), tdma,
                               node_counts, power_limits, telemetry, solver),
    }


def fig8c(node_counts=NODE_COUNTS, power_limits=POWER_LIMITS_MW,
          telemetry: TelemetryLike = NULL_TELEMETRY, solver: str = "ilp"
          ) -> dict[str, dict[float, dict[int, float]]]:
    """Fig. 8c: the three movement-intent surfaces."""
    return {
        "MI SVM": _sweep(mi_svm_task, None, node_counts, power_limits,
                         telemetry, solver),
        "MI NN": _sweep(mi_nn_task, None, node_counts, power_limits,
                        telemetry, solver),
        "MI KF": _sweep(mi_kf_task, None, node_counts, power_limits,
                        telemetry, solver),
    }


def sec62_local_tasks(power_limits=(15.0, 12.0, 9.0, 6.0),
                      telemetry: TelemetryLike = NULL_TELEMETRY,
                      solver: str = "ilp"
                      ) -> dict[str, dict[float, float]]:
    """§6.2 scalars: per-node detection / sorting throughput vs power.

    Paper: detection 79 -> 46 Mbps (quadratic fall), sorting 118 -> 38.4
    Mbps (linear fall) from 15 to 6 mW.
    """
    out: dict[str, dict[float, float]] = {"seizure_detection": {},
                                          "spike_sorting": {}}
    for p in power_limits:
        out["seizure_detection"][p] = max_throughput_mbps(
            seizure_detection_task(), 1, p, telemetry=telemetry, solver=solver
        )
        out["spike_sorting"][p] = max_throughput_mbps(
            spike_sorting_task(), 1, p, telemetry=telemetry, solver=solver
        )
    return out

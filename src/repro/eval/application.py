"""Application-level experiments: Fig. 9a, Fig. 9b, and the §6.3 scalars.

Unlike the Fig. 8 experiments (which add ADCs freely), the application
experiments run real 96-electrode arrays, so every flow is capped at 96
channels per node.
"""

from __future__ import annotations

from repro.hardware.catalog import get_pe
from repro.network.packet import PACKET_OVERHEAD_BITS
from repro.network.tdma import TDMAConfig
from repro.scheduler.ilp import Flow, SchedulerProblem
from repro.scheduler.model import (
    dtw_similarity_task,
    hash_similarity_task,
    seizure_detection_task,
    spike_sorting_task,
)
from repro.telemetry import NULL_TELEMETRY, TelemetryLike
from repro.units import ELECTRODES_PER_NODE, NODE_POWER_CAP_MW

#: The Fig. 9a priority triples (detection : hash compare : DTW compare).
FIG9A_WEIGHTS = ((11, 1, 1), (3, 1, 1), (1, 3, 1))

#: Node counts on the Fig. 9 x-axis.
FIG9_NODE_COUNTS = (1, 2, 4, 8, 11, 16, 32, 64)

#: Spikes per electrode per second assumed by the sorting-rate metric
#: (the paper's 12,250 spikes/s/node at ~245 channels implies 50 Hz).
SPIKES_PER_ELECTRODE_HZ = 50.0


def seizure_propagation_schedule(
    n_nodes: int,
    weights: tuple[float, float, float] = (1, 1, 1),
    power_mw: float = NODE_POWER_CAP_MW,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    solver: str = "ilp",
):
    """Solve the three-flow seizure-propagation allocation."""
    flows = [
        Flow(seizure_detection_task(), weight=weights[0],
             electrode_cap=ELECTRODES_PER_NODE),
        Flow(hash_similarity_task("all_all", net_budget_ms=1.0),
             weight=weights[1], electrode_cap=ELECTRODES_PER_NODE),
        Flow(dtw_similarity_task("one_all", net_budget_ms=4.0),
             weight=weights[2], electrode_cap=ELECTRODES_PER_NODE),
    ]
    return SchedulerProblem(n_nodes=n_nodes, flows=flows,
                            power_budget_mw=power_mw,
                            telemetry=telemetry, solver=solver).solve()


def fig9a(node_counts=FIG9_NODE_COUNTS, power_mw: float = NODE_POWER_CAP_MW,
          solver: str = "ilp") -> dict[str, dict[int, float]]:
    """Fig. 9a: weighted seizure-propagation throughput per weight triple."""
    out: dict[str, dict[int, float]] = {}
    for weights in FIG9A_WEIGHTS:
        label = ":".join(str(int(w)) for w in weights)
        series = {}
        for n in node_counts:
            schedule = seizure_propagation_schedule(n, weights, power_mw,
                                                    solver=solver)
            series[n] = schedule.weighted_mbps()
        out[label] = series
    return out


# --- Fig. 9b: movement intents per second -------------------------------------


def _burst_ms(payload_bytes: float, tdma: TDMAConfig) -> float:
    bits = PACKET_OVERHEAD_BITS + 8.0 * payload_bytes
    return bits / (tdma.radio.data_rate_mbps * 1e3) + tdma.guard_ms


def mi_intents_per_second(
    decoder: str, n_nodes: int, tdma: TDMAConfig | None = None
) -> float:
    """Decoded intents per second for one movement pipeline.

    SVM/NN decode as fast as the partial-compute + all-to-one aggregation
    loop turns around (SCALO "decodes movements much faster" than the
    fixed 50 ms interval); KF keeps the conventional 20/s cadence because
    its filter step is tied to the 50 ms feature window.
    """
    tdma = tdma if tdma is not None else TDMAConfig()
    if decoder == "kf":
        return 20.0
    if decoder == "svm":
        latency_ms = (
            get_pe("SBP").latency_ms
            + get_pe("SVM").latency_ms
            + (n_nodes - 1) * _burst_ms(4.0, tdma)
            + get_pe("ADD").latency_ms  # aggregation
        )
        return 1e3 / latency_ms
    if decoder == "nn":
        latency_ms = (
            get_pe("SBP").latency_ms
            + get_pe("BMUL").latency_ms
            + (n_nodes - 1) * _burst_ms(1024.0, tdma)
            + get_pe("ADD").latency_ms
        )
        return 1e3 / latency_ms
    raise ValueError(f"unknown decoder {decoder!r}")


def fig9b(node_counts=FIG9_NODE_COUNTS) -> dict[str, dict[int, float]]:
    """Fig. 9b: max movement intents per second vs node count."""
    return {
        decoder.upper(): {
            n: mi_intents_per_second(decoder, n) for n in node_counts
        }
        for decoder in ("svm", "kf", "nn")
    }


# --- §6.3 scalars ---------------------------------------------------------------


def spike_sorting_rate_per_node(power_mw: float = NODE_POWER_CAP_MW) -> float:
    """Spikes sorted per second per node (paper: 12,250)."""
    from repro.scheduler.analytical import analytic_electrodes

    breakdown = analytic_electrodes(spike_sorting_task(), 1, power_mw)
    return breakdown.electrodes * SPIKES_PER_ELECTRODE_HZ


def spike_sorting_latency_ms() -> float:
    """Per-spike sorting latency (paper: ~2.5 ms).

    The spike path (Fig. 7): threshold, EMD hash (HCONV + EMDH),
    collision check against stored template hashes, SC template fetch.
    """
    return (
        get_pe("THR").latency_ms
        + get_pe("HCONV").latency_ms
        + get_pe("EMDH").latency_ms
        + get_pe("CCHECK").latency_ms
        + (get_pe("SC").latency_ms or 0.03)
        + 0.3  # MC dispatch of the final assignment
    )


def sec63_scalars() -> dict[str, float]:
    """The headline §6.3 numbers."""
    eleven = seizure_propagation_schedule(11, (1, 1, 1))
    return {
        "seizure_weighted_mbps_11_nodes": eleven.weighted_mbps(),
        "spikes_per_second_per_node": spike_sorting_rate_per_node(),
        "spike_sorting_latency_ms": spike_sorting_latency_ms(),
        "mi_kf_intents_per_second": mi_intents_per_second("kf", 4),
        "mi_kf_max_electrodes": 384.0,
    }

"""Fig. 14: LSH parameter flexibility (window size x n-gram size).

Sweeps the SSH sketch sub-window and n-gram sizes per measure and scores
each configuration by its true-positive rate at a fixed false-positive
budget — the paper marks the best configuration plus every configuration
within 90 % of its TPR, showing one PE configuration serves several
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.hash_accuracy import make_pairs, pick_threshold
from repro.hashing.lsh import LSHConfig, LSHFamily
from repro.similarity.measures import get_measure

#: Sweep grids (sketch window in samples, n-gram in bits).
WINDOW_GRID = (8, 16, 24, 40, 60, 80, 100, 120)
NGRAM_GRID = (1, 2, 3, 4, 5, 6)

#: Configurations within this fraction of the best TPR count as "good".
NEAR_BEST_FRACTION = 0.90


@dataclass
class ParamSweepResult:
    """One measure's sweep."""

    measure: str
    tpr: dict[tuple[int, int], float]  # (window, ngram) -> TPR
    best: tuple[int, int]
    near_best: list[tuple[int, int]]

    @property
    def best_tpr(self) -> float:
        return self.tpr[self.best]


def sweep_measure(
    measure_name: str,
    n_pairs: int = 300,
    seed: int = 0,
) -> ParamSweepResult:
    """Sweep (window, ngram) for one measure; returns TPR landscape."""
    measure = get_measure(measure_name)
    pair_set = make_pairs(n_pairs, seed)
    pairs = pair_set.pairs
    values = np.array([measure(a, b) for a, b in pairs])
    threshold, _ = pick_threshold(values, pair_set.labels)
    similar = np.array(
        [measure.is_similar(a, b, threshold) for a, b in pairs], dtype=bool
    )

    tpr: dict[tuple[int, int], float] = {}
    for window in WINDOW_GRID:
        for ngram in NGRAM_GRID:
            config = LSHConfig(
                measure=measure_name if measure_name != "emd" else "dtw",
                sketch_window=window,
                ngram=ngram,
                normalise=(measure_name == "xcor"),
            )
            family = LSHFamily(config)
            matches = np.array(
                [
                    family.matches(family.hash_window(a), family.hash_window(b))
                    for a, b in pairs
                ],
                dtype=bool,
            )
            positives = similar.sum()
            false_alarm = (matches & ~similar).sum() / max(1, (~similar).sum())
            raw_tpr = (matches & similar).sum() / max(1, positives)
            # penalise hashes that match everything: discount by FPR
            tpr[(window, ngram)] = raw_tpr * (1.0 - 0.5 * false_alarm)

    best = max(tpr, key=tpr.get)  # type: ignore[arg-type]
    cutoff = NEAR_BEST_FRACTION * tpr[best]
    near = [key for key, value in tpr.items() if value >= cutoff]
    return ParamSweepResult(measure_name, tpr, best, sorted(near))


def fig14(n_pairs: int = 300, seed: int = 0
          ) -> dict[str, ParamSweepResult]:
    """The three sketch-based measures (EMD has no window/n-gram)."""
    return {
        name: sweep_measure(name, n_pairs, seed)
        for name in ("xcor", "dtw", "euclidean")
    }


def shared_configs(results: dict[str, ParamSweepResult]
                   ) -> list[tuple[int, int]]:
    """Configurations near-best for *every* measure — the reuse argument."""
    sets = [set(r.near_best) for r in results.values()]
    if not sets:
        return []
    common = set.intersection(*sets)
    return sorted(common)

"""Fig. 10: interactive query throughput over 11 nodes."""

from __future__ import annotations

from repro.apps.queries import QueryCostModel, QuerySpec, query_data_bytes

#: The paper's four time ranges (ms) — 7, 24, 42, 60 MB over 11 nodes.
TIME_RANGES_MS = (110.0, 400.0, 700.0, 1000.0)

#: Match fractions evaluated for Q1/Q2.
MATCH_FRACTIONS = (0.05, 0.50, 1.00)


def fig10(n_nodes: int = 11) -> dict[str, dict[tuple[float, float], float]]:
    """QPS per query: {query: {(time_range_ms, match_fraction): qps}}."""
    model = QueryCostModel(n_nodes=n_nodes)
    out: dict[str, dict[tuple[float, float], float]] = {
        "Q1": {}, "Q2": {}, "Q3": {}
    }
    for time_range in TIME_RANGES_MS:
        for fraction in MATCH_FRACTIONS:
            out["Q1"][(time_range, fraction)] = model.cost(
                QuerySpec("q1", time_range, fraction)
            ).queries_per_second
            out["Q2"][(time_range, fraction)] = model.cost(
                QuerySpec("q2", time_range, fraction)
            ).queries_per_second
        out["Q3"][(time_range, 1.0)] = model.cost(
            QuerySpec("q3", time_range)
        ).queries_per_second
    return out


def q2_hash_vs_dtw(n_nodes: int = 11, time_range_ms: float = 110.0,
                   match_fraction: float = 0.05) -> dict[str, dict[str, float]]:
    """The §6.4 comparison: Q2 with hashes vs exact DTW (QPS and power)."""
    model = QueryCostModel(n_nodes=n_nodes)
    hash_cost = model.cost(QuerySpec("q2", time_range_ms, match_fraction,
                                     use_hash=True))
    dtw_cost = model.cost(QuerySpec("q2", time_range_ms, match_fraction,
                                    use_hash=False))
    return {
        "hash": {"qps": hash_cost.queries_per_second,
                 "power_mw": hash_cost.power_mw},
        "dtw": {"qps": dtw_cost.queries_per_second,
                "power_mw": dtw_cost.power_mw},
    }


def data_sizes_mb(n_nodes: int = 11) -> dict[float, float]:
    """Query data volumes per time range (the paper's 7/24/42/60 MB)."""
    return {
        t: query_data_bytes(t, n_nodes) / 1e6 for t in TIME_RANGES_MS
    }

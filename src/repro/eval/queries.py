"""Fig. 10: interactive query throughput over 11 nodes.

The grid is recorded into a :class:`~repro.telemetry.MetricsRegistry`
(gauges ``fig10.qps{query=,range_ms=,fraction=}``, plus latency and
power) and the returned dict is read *back* from the registry, so the
registry is the single source of truth and any telemetry consumer — the
CLI summary table, the JSON/CSV exporters — sees exactly the published
numbers.
"""

from __future__ import annotations

from repro.apps.queries import QueryCostModel, QuerySpec, query_data_bytes
from repro.telemetry import MetricsRegistry

#: The paper's four time ranges (ms) — 7, 24, 42, 60 MB over 11 nodes.
TIME_RANGES_MS = (110.0, 400.0, 700.0, 1000.0)

#: Match fractions evaluated for Q1/Q2.
MATCH_FRACTIONS = (0.05, 0.50, 1.00)


def _record_cell(
    registry: MetricsRegistry,
    model: QueryCostModel,
    query: str,
    time_range: float,
    fraction: float,
) -> None:
    cost = model.cost(QuerySpec(query.lower(), time_range, fraction))
    labels = {"query": query, "range_ms": time_range, "fraction": fraction}
    registry.set_gauge("fig10.qps", cost.queries_per_second, **labels)
    registry.set_gauge("fig10.latency_ms", cost.latency_ms, **labels)
    registry.set_gauge("fig10.power_mw", cost.power_mw, **labels)


def fig10_registry(
    n_nodes: int = 11, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Record the full Fig. 10 grid into a metrics registry."""
    registry = registry if registry is not None else MetricsRegistry()
    model = QueryCostModel(n_nodes=n_nodes)
    for time_range in TIME_RANGES_MS:
        for fraction in MATCH_FRACTIONS:
            _record_cell(registry, model, "Q1", time_range, fraction)
            _record_cell(registry, model, "Q2", time_range, fraction)
        _record_cell(registry, model, "Q3", time_range, 1.0)
    return registry


def fig10(
    n_nodes: int = 11, registry: MetricsRegistry | None = None
) -> dict[str, dict[tuple[float, float], float]]:
    """QPS per query: {query: {(time_range_ms, match_fraction): qps}}."""
    registry = fig10_registry(n_nodes, registry)
    out: dict[str, dict[tuple[float, float], float]] = {
        "Q1": {}, "Q2": {}, "Q3": {}
    }
    for labels, qps in registry.series("fig10.qps").items():
        cell = dict(labels)
        out[cell["query"]][
            (float(cell["range_ms"]), float(cell["fraction"]))
        ] = qps
    return out


def q2_hash_vs_dtw(n_nodes: int = 11, time_range_ms: float = 110.0,
                   match_fraction: float = 0.05) -> dict[str, dict[str, float]]:
    """The §6.4 comparison: Q2 with hashes vs exact DTW (QPS and power)."""
    model = QueryCostModel(n_nodes=n_nodes)
    hash_cost = model.cost(QuerySpec("q2", time_range_ms, match_fraction,
                                     use_hash=True))
    dtw_cost = model.cost(QuerySpec("q2", time_range_ms, match_fraction,
                                    use_hash=False))
    return {
        "hash": {"qps": hash_cost.queries_per_second,
                 "power_mw": hash_cost.power_mw},
        "dtw": {"qps": dtw_cost.queries_per_second,
                "power_mw": dtw_cost.power_mw},
    }


def data_sizes_mb(n_nodes: int = 11) -> dict[float, float]:
    """Query data volumes per time range (the paper's 7/24/42/60 MB)."""
    return {
        t: query_data_bytes(t, n_nodes) / 1e6 for t in TIME_RANGES_MS
    }

"""Fig. 15: seizure-propagation delay under hash and network errors.

Monte-Carlo over the distributed protocol with a precomputed *trace*:
one clean simulation pass records, per window, which nodes detect the
seizure and which (source, destination) electrode pairs would collide
and DTW-confirm.  Each Monte-Carlo repetition then replays the trace
under an error process:

* **encoding errors** (Fig. 15a): every electrode hash independently
  encodes to garbage with probability ``e``.  A true match survives only
  if both endpoint hashes encode correctly; corrupted hashes can still
  collide *randomly* (8-bit space), and during a correlated seizure the
  ensuing exact comparison confirms anyway — the bias-to-false-positive
  design that keeps delays bounded even at high error rates.
* **network errors** (Fig. 15b): one packet carries all of a node's
  hashes, so a CRC failure loses the whole round; the sender retransmits
  in its next TDMA slot.

Delay is the first confirmation's lateness versus the clean run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.seizure import (
    SeizurePropagationSimulator,
    train_detector_from_recording,
)
from repro.datasets.synthetic_ieeg import generate_ieeg
from repro.hashing.lsh import LSHFamily
from repro.network.packet import PACKET_OVERHEAD_BITS

#: Hash-encoding error rates on the Fig. 15a x-axis.
ENCODING_ERROR_RATES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: Network BERs on the Fig. 15b x-axis.
NETWORK_BERS = (1e-6, 1e-5, 1e-4)


@dataclass
class PropagationTrace:
    """The clean run's per-window protocol state."""

    window_ms: float
    n_electrodes: int
    hash_bits: int
    n_components: int
    min_matching: int
    #: windows (in order) where the source detects and a true
    #: hash-collision + DTW confirmation exists at the destination
    confirm_windows: list[int]
    #: per confirm window: how many independent electrode matches exist
    match_multiplicity: dict[int, int]
    #: stored hashes the destination holds per check (for the random-
    #: collision probability)
    store_size: int
    hash_packet_bits: int


def build_trace(
    n_electrodes: int = 8,
    seizure_duration_s: float = 0.4,
    seed: int = 0,
) -> PropagationTrace:
    """Run the clean two-node simulation once and extract the trace."""
    recording = generate_ieeg(
        n_nodes=2,
        n_electrodes=n_electrodes,
        duration_s=1.5,
        fs_hz=6000,
        n_seizures=1,
        seizure_duration_s=seizure_duration_s,
        propagation_delay_ms=(20.0, 60.0),
        seed=seed,
    )
    detector = train_detector_from_recording(
        recording, max_windows_per_node=200, seed=seed
    )
    lsh = LSHFamily.for_measure("dtw")
    simulator = SeizurePropagationSimulator(
        recording, detector, lsh, dtw_threshold=250.0
    )
    result = simulator.run()

    window_ms = 120 * 1e3 / recording.fs_hz
    confirm_windows = sorted(
        {event.window_index for event in result.confirmations}
    )
    multiplicity: dict[int, int] = {}
    for event in result.confirmations:
        multiplicity[event.window_index] = (
            multiplicity.get(event.window_index, 0) + event.n_collisions
        )
    horizon_windows = int(simulator.horizon_ms / window_ms)
    payload_bytes = n_electrodes * lsh.config.hash_bytes
    return PropagationTrace(
        window_ms=window_ms,
        n_electrodes=n_electrodes,
        hash_bits=lsh.config.bits,
        n_components=lsh.config.n_components,
        min_matching=lsh.config.min_matching,
        confirm_windows=confirm_windows,
        match_multiplicity=multiplicity,
        store_size=horizon_windows * n_electrodes,
        hash_packet_bits=PACKET_OVERHEAD_BITS + 8 * payload_bytes,
    )


@dataclass
class DelayStats:
    """Delay distribution over Monte-Carlo repetitions (ms)."""

    mean_ms: float
    max_ms: float
    min_ms: float


def _random_collision_prob(trace: PropagationTrace) -> float:
    """Probability a garbage signature collides with *some* stored hash.

    A match needs ``min_matching`` of ``n_components`` components equal;
    for a uniformly-random signature each component agrees w.p.
    ``2^-bits``, so the per-pair probability is a binomial tail — tiny
    for the default 7-of-12 x 4-bit configuration (the price of the
    selectivity that keeps Fig. 11 errors low).
    """
    from math import comb

    p = 2.0 ** -trace.hash_bits
    k = trace.n_components
    m = trace.min_matching
    per_pair = sum(
        comb(k, j) * p**j * (1 - p) ** (k - j) for j in range(m, k + 1)
    )
    return 1.0 - (1.0 - per_pair) ** trace.store_size


def encoding_delay(
    trace: PropagationTrace,
    error_rate: float,
    n_reps: int = 200,
    seed: int = 0,
) -> DelayStats:
    """Fig. 15a: delay distribution at one hash-encoding error rate."""
    if not trace.confirm_windows:
        raise ValueError("trace has no confirmations to delay")
    rng = np.random.default_rng(seed)
    p_random = _random_collision_prob(trace)
    baseline = trace.confirm_windows[0]
    delays = np.empty(n_reps)
    for rep in range(n_reps):
        confirmed_at = None
        for w in trace.confirm_windows:
            k = trace.match_multiplicity.get(w, 1)
            # each true electrode match survives if both endpoint hashes
            # encoded correctly
            survive = rng.random(k) < (1.0 - error_rate) ** 2
            if survive.any():
                confirmed_at = w
                break
            # corrupted hashes may still randomly collide; the exact
            # comparison then confirms (both sites are mid-seizure)
            n_corrupted = rng.binomial(trace.n_electrodes, error_rate)
            if n_corrupted and rng.random() < 1.0 - (1.0 - p_random) ** n_corrupted:
                confirmed_at = w
                break
        if confirmed_at is None:
            confirmed_at = trace.confirm_windows[-1] + 1
        # the application gives up at the 10 ms response deadline and
        # falls back to the next detection round — cap the reported delay
        delays[rep] = min((confirmed_at - baseline) * trace.window_ms, 10.0)
    return DelayStats(float(delays.mean()), float(delays.max()),
                      float(delays.min()))


def network_delay(
    trace: PropagationTrace,
    ber: float,
    n_reps: int = 200,
    seed: int = 0,
    slot_airtime_ms: float | None = None,
    deployment_electrodes: int = 96,
    wire_hash_bytes: int = 1,
) -> DelayStats:
    """Fig. 15b: delay distribution at one network BER.

    A lost hash packet costs one retransmission slot; losses repeat
    geometrically until a packet survives.  Packet sizing uses the
    deployment scale (96 electrodes at 1 B of HCOMP-compressed hash
    each — all of a node's hashes travel in one packet, paper §6.7).
    """
    rng = np.random.default_rng(seed)
    packet_bits = PACKET_OVERHEAD_BITS + 8 * deployment_electrodes * wire_hash_bytes
    p_loss = 1.0 - (1.0 - ber) ** packet_bits
    if slot_airtime_ms is None:
        slot_airtime_ms = packet_bits / 7e3  # 7 Mbps radio
    delays = np.empty(n_reps)
    for rep in range(n_reps):
        losses = 0
        while rng.random() < p_loss:
            losses += 1
            if losses * slot_airtime_ms > 10.0:  # response deadline
                break
        delays[rep] = losses * slot_airtime_ms
    return DelayStats(float(delays.mean()), float(delays.max()),
                      float(delays.min()))


@dataclass
class Fig15Result:
    """Both sweeps."""

    encoding: dict[float, DelayStats] = field(default_factory=dict)
    network: dict[float, DelayStats] = field(default_factory=dict)


def fig15(n_reps: int = 200, seed: int = 0) -> Fig15Result:
    """Run both Fig. 15 sweeps on a shared trace."""
    trace = build_trace(seed=seed)
    result = Fig15Result()
    for rate in ENCODING_ERROR_RATES:
        result.encoding[rate] = encoding_delay(trace, rate, n_reps, seed + 1)
    for ber in NETWORK_BERS:
        result.network[ber] = network_delay(trace, ber, n_reps, seed + 2)
    return result

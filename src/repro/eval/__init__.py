"""Experiment drivers: one module per paper table/figure.

| Paper artefact | Module |
|---|---|
| Table 1, Table 3 | :mod:`repro.eval.tables` |
| Fig. 8a/8b/8c, §6.2 scalars | :mod:`repro.eval.throughput` |
| Fig. 9a/9b, §6.3 scalars | :mod:`repro.eval.application` |
| Fig. 10 | :mod:`repro.eval.queries` |
| Fig. 11 | :mod:`repro.eval.hash_accuracy` |
| Fig. 12 | :mod:`repro.eval.network_errors` |
| Fig. 12 + ARQ recovery | :mod:`repro.eval.resilience` |
| Fig. 13 | :mod:`repro.eval.radio_dse` |
| Fig. 14 | :mod:`repro.eval.hash_params` |
| Fig. 15 | :mod:`repro.eval.delay` |
"""

from repro.eval.application import (
    fig9a,
    fig9b,
    mi_intents_per_second,
    sec63_scalars,
    seizure_propagation_schedule,
    spike_sorting_latency_ms,
    spike_sorting_rate_per_node,
)
from repro.eval.delay import (
    DelayStats,
    Fig15Result,
    PropagationTrace,
    build_trace,
    encoding_delay,
    fig15,
    network_delay,
)
from repro.eval.export import EXPORTERS, export_all
from repro.eval.hash_accuracy import HashAccuracyResult, fig11, hash_accuracy, make_pairs
from repro.eval.hash_params import (
    ParamSweepResult,
    fig14,
    shared_configs,
    sweep_measure,
)
from repro.eval.network_errors import NetworkErrorResult, fig12, network_errors
from repro.eval.queries import data_sizes_mb, fig10, q2_hash_vs_dtw
from repro.eval.resilience import (
    ResilienceResult,
    arq_recovery,
    crash_query_degradation,
    resilience_sweep,
)
from repro.eval.radio_dse import fig13, radio_throughputs, table3
from repro.eval.reporting import format_series, format_table
from repro.eval.tables import table1_summary, table1_text, table3_text
from repro.eval.throughput import fig8a, fig8b, fig8c, sec62_local_tasks

__all__ = [
    "fig9a",
    "fig9b",
    "mi_intents_per_second",
    "sec63_scalars",
    "seizure_propagation_schedule",
    "spike_sorting_latency_ms",
    "spike_sorting_rate_per_node",
    "DelayStats",
    "Fig15Result",
    "PropagationTrace",
    "build_trace",
    "encoding_delay",
    "fig15",
    "network_delay",
    "EXPORTERS",
    "export_all",
    "HashAccuracyResult",
    "fig11",
    "hash_accuracy",
    "make_pairs",
    "ParamSweepResult",
    "fig14",
    "shared_configs",
    "sweep_measure",
    "NetworkErrorResult",
    "fig12",
    "network_errors",
    "ResilienceResult",
    "arq_recovery",
    "crash_query_degradation",
    "resilience_sweep",
    "data_sizes_mb",
    "fig10",
    "q2_hash_vs_dtw",
    "fig13",
    "radio_throughputs",
    "table3",
    "format_series",
    "format_table",
    "table1_summary",
    "table1_text",
    "table3_text",
    "fig8a",
    "fig8b",
    "fig8c",
    "sec62_local_tasks",
]

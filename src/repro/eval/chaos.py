r"""Chaos evaluation: serving availability under graded fault storms.

SCALO's query path is safety-adjacent — seizure detection has hard
deadlines — so the serving layer must keep answering while implants
crash, radios go dark, and NVM pages rot.  This module sweeps a seeded
open-loop load through :func:`~repro.serving.serve_session` under three
:class:`StormLevel`\ s of :class:`~repro.faults.plan.FaultPlan`
intensity with the full reliability stack enabled (client retries,
server-side coverage-SLA re-execution, per-node circuit breakers,
brownout tiers) and reports the numbers the chaos gates care about:

* **availability** — unique requests answered / offered, with shed
  offers retried client-side until the policy is exhausted;
* **coverage-SLA satisfaction** — every request carries
  ``min_coverage``; answers below it are re-executed server-side once
  the health layer sees the fleet recover, and only each request's
  *final* answer counts;
* **p99 latency** — over final answers, in simulated milliseconds.

Everything is a pure function of the seed: the same sweep replays
byte-identically with or without a live telemetry handle — the serving
determinism contract extended to the chaos path.  The gates themselves
(mild ≥ 99% availability, moderate 0 final SLA violations, severe p99
bound) live here so the ``chaos`` CLI, the telemetry scenario, and
``benchmarks/test_chaos.py`` (which writes ``BENCH_chaos.json``)
enforce the same numbers.

A fourth storm sits apart from the sweep: the :data:`PARTITION` storm
(``python -m repro chaos partition``) splits the radio fabric itself —
asymmetric link-level partitions over crashes and outages — and gates
the *coordination* layer: at most one coordinator writes accepted
checkpoints per round, epochs never move backwards, no query sequence
number is broadcast twice, every stale-epoch write is fenced, and the
majority side keeps availability ≥ 95%.  Its audit comes from the
:class:`~repro.recovery.FailoverManager`'s deterministic counters, and
``benchmarks/test_partition.py`` writes it to ``BENCH_partition.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.serving import (
    BreakerConfig,
    BrownoutConfig,
    LoadGenConfig,
    RetryPolicy,
    ServeReport,
    ServerConfig,
    serve_session,
)
from repro.telemetry import NULL_TELEMETRY, TelemetryLike
from repro.telemetry.health import HealthEngine

# -- storm levels --------------------------------------------------------------


@dataclass(frozen=True)
class StormLevel:
    """One fault-storm intensity, expressed as FaultPlan.generate rates."""

    name: str
    n_crashes: int = 0
    reboot_after: int | None = None
    n_outages: int = 0
    outage_rounds: int = 3
    n_bit_rot: int = 0
    rot_bits: int = 1
    n_drift_spikes: int = 0
    drift_spike_us: float = 50.0
    n_partitions: int = 0
    partition_rounds: int = 6
    partition_asymmetric: bool = True

    def plan(self, n_nodes: int, n_rounds: int, seed: int) -> FaultPlan:
        """Draw this level's deterministic plan for one fleet/horizon."""
        return FaultPlan.generate(
            n_nodes,
            n_rounds,
            seed,
            n_crashes=self.n_crashes,
            reboot_after=self.reboot_after,
            n_outages=self.n_outages,
            outage_rounds=self.outage_rounds,
            n_bit_rot=self.n_bit_rot,
            rot_bits=self.rot_bits,
            n_drift_spikes=self.n_drift_spikes,
            drift_spike_us=self.drift_spike_us,
            n_partitions=self.n_partitions,
            partition_rounds=self.partition_rounds,
            partition_asymmetric=self.partition_asymmetric,
        )


#: One crash that reboots: the storm any fleet must shrug off.
MILD = StormLevel(name="mild", n_crashes=1, reboot_after=4)

#: Several crashes (all rebooting), a short radio outage, and
#: single-bit NVM rot (correctable by ECC on the next read/scrub) —
#: coverage dips but the fleet fully recovers, so SLA re-execution must
#: converge to zero final violations.
MODERATE = StormLevel(
    name="moderate",
    n_crashes=2,
    reboot_after=4,
    n_outages=1,
    outage_rounds=3,
    n_bit_rot=2,
    rot_bits=1,
)

#: Heavy weather: more crashes with slower reboots, overlapping
#: outages, multi-bit rot (may exceed ECC), and clock-drift spikes.
#: Only availability and the documented p99 bound are gated here.
SEVERE = StormLevel(
    name="severe",
    n_crashes=3,
    reboot_after=8,
    n_outages=2,
    outage_rounds=5,
    n_bit_rot=3,
    rot_bits=8,
    n_drift_spikes=2,
)

#: The split-brain storm: four link-level partitions (asymmetric modes
#: drawn per split) over rebooting crashes and radio outages.  The
#: crashes matter — with an odd fleet a lone cut always leaves one side
#: holding a strict majority, so only crash+split combinations exercise
#: the stepdown / quorum-lost / cache-only path.  Calibrated against
#: :func:`partition_config` at seed 0: the storm deposes the
#: coordinator into a minority (8 fenced stale writes, 2 epoch
#: reconciliations), forces one stepdown (quorum lost and regained),
#: and still serves every request.
PARTITION = StormLevel(
    name="partition",
    n_crashes=2,
    reboot_after=4,
    n_outages=2,
    outage_rounds=3,
    n_partitions=4,
    partition_rounds=10,
)

STORM_LEVELS: tuple[StormLevel, ...] = (MILD, MODERATE, SEVERE)

#: Presets accepted by ``python -m repro serve --fault-plan``.
FAULT_PRESETS: dict[str, StormLevel | None] = {
    "none": None,
    "mild": MILD,
    "moderate": MODERATE,
    "severe": SEVERE,
    "partition": PARTITION,
}

# -- gates ---------------------------------------------------------------------

#: mild storm: unique requests answered / offered
MILD_MIN_AVAILABILITY = 0.99
#: moderate storm: final coverage-SLA violations after re-execution
MODERATE_MAX_FINAL_SLA_VIOLATIONS = 0
#: severe storm: p99 latency bound over final answers (simulated ms).
#: Measured ≈ 418 ms at the default seed; the bound leaves ~2.4x
#: headroom for storm-level retuning without masking a regression.
SEVERE_P99_BOUND_MS = 1000.0
#: mild storm, SLO verdict: a fleet must ride out one rebooting crash
#: without waking anyone (its peak coverage burn is ~2.9x budget,
#: under the 4.5x fast-burn threshold — see DEFAULT_SERVING_SLOS)
MILD_MAX_ALERTS = 0
#: moderate storm, SLO verdict: the second coverage excursion (~6.7x
#: budget over the fast window) must fire a fast-burn alert and
#: snapshot an incident bundle
MODERATE_MIN_FAST_BURN_ALERTS = 1
#: partition storm: unique requests answered / offered — the majority
#: side must keep serving through both splits and the crash
PARTITION_MIN_AVAILABILITY = 0.95


# -- the sweep -----------------------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos sweep: fleet, load, SLA, and fault-plan horizon."""

    n_nodes: int = 6
    electrodes: int = 4
    n_windows: int = 4
    n_requests: int = 96
    offered_qps: float = 40.0
    deadline_ms: float = 300.0
    #: coverage SLA on every request; one dead node out of six violates
    min_coverage: float = 0.9
    seed: int = 0
    #: TDMA rounds the fault plan spans (1 round per ``round_ms``)
    n_rounds: int = 64
    round_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError("chaos needs at least two nodes")
        if self.n_requests < 1:
            raise ConfigurationError("need at least one request")
        if not 0 <= self.min_coverage <= 1:
            raise ConfigurationError("coverage SLA must be in [0, 1]")
        if self.n_rounds < 1:
            raise ConfigurationError("need at least one fault round")

    def load(self) -> LoadGenConfig:
        return LoadGenConfig(
            n_requests=self.n_requests,
            offered_qps=self.offered_qps,
            seed=self.seed,
            deadline_ms=self.deadline_ms,
            min_coverage=self.min_coverage,
        )

    def server_config(self) -> ServerConfig:
        """The chaos-hardened server: every reliability knob enabled."""
        return ServerConfig(
            max_queue=24,
            breaker=BreakerConfig(failure_threshold=2, open_ms=300.0),
            brownout=BrownoutConfig(),
            retry=RetryPolicy(max_attempts=3, base_ms=40.0, cap_ms=400.0,
                              seed=self.seed),
            default_min_coverage=self.min_coverage,
        )

    def client_retry(self) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=4, base_ms=25.0, cap_ms=500.0, seed=self.seed + 1
        )


@dataclass(frozen=True)
class PartitionInvariants:
    """The coordination audit of one partition storm.

    Every number is read off the :class:`~repro.recovery.FailoverManager`
    after the run — deterministic counters, not telemetry — so the
    split-brain gates hold with or without a live telemetry handle.
    """

    #: most distinct coordinators that wrote an accepted checkpoint in
    #: any single TDMA round (the split-brain invariant: must be 1)
    max_coordinators_per_round: int
    #: accepted checkpoint epochs never went backwards
    epochs_monotonic: bool
    #: query sequence numbers broadcast more than once
    duplicate_query_seqs: int
    #: stale-epoch checkpoint writes rejected by the fence
    fencing_rejected: int
    #: stale-epoch writes that slipped past the fence (must be 0)
    fencing_accepted_stale: int
    #: the highest epoch installed
    epoch: int
    failovers: int
    stepdowns: int
    #: stale claimants that re-adopted the current epoch after a heal
    reconciliations: int
    #: elections decided from ground truth because no health view was
    #: attached (must be 0 under the partition wiring)
    blind_fallbacks: int

    def row(self) -> dict:
        return {
            "max_coordinators_per_round": self.max_coordinators_per_round,
            "epochs_monotonic": self.epochs_monotonic,
            "duplicate_query_seqs": self.duplicate_query_seqs,
            "fencing_rejected": self.fencing_rejected,
            "fencing_accepted_stale": self.fencing_accepted_stale,
            "epoch": self.epoch,
            "failovers": self.failovers,
            "stepdowns": self.stepdowns,
            "reconciliations": self.reconciliations,
            "blind_fallbacks": self.blind_fallbacks,
        }


def _audit_coordination(manager) -> PartitionInvariants:
    """Distill one manager's claim log and counters into the invariants."""
    per_round: dict[int, set[int]] = {}
    for round_index, coordinator, _epoch in manager.claim_log:
        per_round.setdefault(round_index, set()).add(coordinator)
    epochs = [epoch for _, _, epoch in manager.claim_log]
    return PartitionInvariants(
        max_coordinators_per_round=max(
            (len(claimants) for claimants in per_round.values()), default=0
        ),
        epochs_monotonic=all(a <= b for a, b in zip(epochs, epochs[1:])),
        duplicate_query_seqs=manager.duplicate_seqs,
        fencing_rejected=manager.fencing_rejected,
        fencing_accepted_stale=manager.fencing_accepted_stale,
        epoch=manager.epoch,
        failovers=len(manager.history),
        stepdowns=manager.stepdowns,
        reconciliations=manager.reconciliations,
        blind_fallbacks=manager.blind_fallbacks,
    )


@dataclass
class StormResult:
    """One storm level's run: the plan, the report, the breaker story."""

    level: StormLevel
    plan: FaultPlan
    report: ServeReport
    #: every breaker transition as ``(node, now_ms, from, to)``
    breaker_transitions: list[tuple[int, float, str, str]] = field(
        default_factory=list
    )
    #: :meth:`HealthEngine.report` for this storm (None without live
    #: telemetry — the health engine needs a registry to observe)
    health: dict | None = None
    #: the coordination audit, when the plan scheduled partitions and
    #: the quorum/epoch stack was therefore attached
    coordination: PartitionInvariants | None = None

    def row(self) -> dict:
        """The BENCH/table view of this storm level."""
        r = self.report
        return {
            "level": self.level.name,
            "events": len(self.plan.events),
            "offered": r.n_offered,
            "completed": r.completed,
            "shed": r.shed,
            "availability": r.availability,
            "client_retries": r.client_retries,
            "server_retries": r.server_retries,
            "sla_violations_initial": r.sla_violations_initial,
            "sla_violations_final": r.sla_violations_final,
            "deadline_misses": r.deadline_misses,
            "degraded_responses": r.degraded_responses,
            "breaker_opened": r.breaker_opened,
            "breaker_half_open": r.breaker_half_open,
            "breaker_closed": r.breaker_closed,
            "brownout_waves": {
                str(tier): count for tier, count in r.brownout_waves.items()
            },
            "brownout_rejections": r.brownout_rejections,
            "timeouts_charged": r.timeouts_charged,
            "p50_latency_ms": r.p50_latency_ms,
            "p99_latency_ms": r.p99_latency_ms,
            "mean_latency_ms": r.mean_latency_ms,
        }


def run_storm(
    level: StormLevel,
    config: ChaosConfig | None = None,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    health: HealthEngine | None = None,
) -> StormResult:
    """Serve one seeded load through one storm level's fault plan.

    With live telemetry a :class:`HealthEngine` (a fresh one per storm
    unless the caller passes its own) watches the run: its SLO burn
    rates, anomalies, and incident bundles land in the result's
    ``health`` report, and its flight recorder collects the storm's
    breaker/brownout/shed evidence.  The engine is observational, so
    the response log stays byte-identical either way.
    """
    config = config if config is not None else ChaosConfig()
    plan = level.plan(config.n_nodes, config.n_rounds, config.seed)
    if health is None and telemetry.enabled:
        health = HealthEngine(telemetry)
    server, report = serve_session(
        n_nodes=config.n_nodes,
        electrodes=config.electrodes,
        n_windows=config.n_windows,
        seed=config.seed,
        load=config.load(),
        server_config=config.server_config(),
        telemetry=telemetry,
        fault_plan=plan,
        round_ms=config.round_ms,
        client_retry=config.client_retry(),
        health=health,
    )
    transitions = (
        server.breakers.transition_log() if server.breakers is not None else []
    )
    return StormResult(
        level=level, plan=plan, report=report,
        breaker_transitions=transitions,
        health=health.report() if health is not None else None,
        coordination=(
            _audit_coordination(server.failover)
            if server.failover is not None else None
        ),
    )


@dataclass
class ChaosReport:
    """The full three-level sweep plus its gate verdicts."""

    config: ChaosConfig
    results: list[StormResult]

    def result(self, name: str) -> StormResult:
        for result in self.results:
            if result.level.name == name:
                return result
        raise KeyError(f"no storm level named {name!r}")

    def gate_failures(self) -> list[str]:
        """Every gate the sweep missed (empty = all gates pass)."""
        failures = []
        mild = self.result("mild").report
        if mild.availability < MILD_MIN_AVAILABILITY:
            failures.append(
                f"mild availability {mild.availability:.4f} < "
                f"{MILD_MIN_AVAILABILITY}"
            )
        moderate = self.result("moderate").report
        if moderate.sla_violations_final > MODERATE_MAX_FINAL_SLA_VIOLATIONS:
            failures.append(
                f"moderate final SLA violations "
                f"{moderate.sla_violations_final} > "
                f"{MODERATE_MAX_FINAL_SLA_VIOLATIONS}"
            )
        severe = self.result("severe").report
        if severe.p99_latency_ms > SEVERE_P99_BOUND_MS:
            failures.append(
                f"severe p99 {severe.p99_latency_ms:.1f} ms > "
                f"{SEVERE_P99_BOUND_MS} ms"
            )
        failures.extend(self.slo_gate_failures())
        return failures

    def slo_gate_failures(self) -> list[str]:
        """The chaos gates re-expressed as SLO verdicts.

        Evaluated only when the sweep ran with live telemetry (the
        health engine needs a registry to observe): the mild storm must
        fire zero burn-rate alerts, and the moderate storm's coverage
        excursion must fire a fast-burn alert with an incident bundle
        capturing the evidence.
        """
        failures = []
        mild = self.result("mild").health
        if mild is not None and len(mild["alerts"]) > MILD_MAX_ALERTS:
            failures.append(
                f"mild storm fired {len(mild['alerts'])} alerts > "
                f"{MILD_MAX_ALERTS} (a fleet must ride out one "
                "rebooting crash)"
            )
        moderate = self.result("moderate").health
        if moderate is not None:
            fast = [a for a in moderate["alerts"] if a["severity"] == "fast"]
            if len(fast) < MODERATE_MIN_FAST_BURN_ALERTS:
                failures.append(
                    "moderate storm fired no fast-burn alert "
                    "(the second coverage excursion must page)"
                )
            if len(moderate["incidents"]) < len(moderate["alerts"]):
                failures.append(
                    "moderate storm alerts missing incident bundles"
                )
        return failures

    @property
    def passed(self) -> bool:
        return not self.gate_failures()

    def gates(self) -> dict:
        return {
            "mild_availability_min": MILD_MIN_AVAILABILITY,
            "moderate_final_sla_violations_max": (
                MODERATE_MAX_FINAL_SLA_VIOLATIONS
            ),
            "severe_p99_max_ms": SEVERE_P99_BOUND_MS,
            "mild_alerts_max": MILD_MAX_ALERTS,
            "moderate_fast_burn_alerts_min": MODERATE_MIN_FAST_BURN_ALERTS,
        }

    def health_report(self) -> dict:
        """The ``--health-report`` JSON: verdicts + per-storm evidence."""
        storms = {}
        for result in self.results:
            entry: dict = {"row": result.row()}
            if result.health is not None:
                entry["health"] = result.health
            storms[result.level.name] = entry
        return {
            "gates": self.gates(),
            "gate_failures": self.gate_failures(),
            "passed": self.passed,
            "storms": storms,
        }

    def table(self) -> list[str]:
        """Fixed-width summary lines for the CLI and the benchmark."""
        lines = [
            f"{'level':>9s}{'events':>8s}{'avail':>8s}{'c-retry':>8s}"
            f"{'s-retry':>8s}{'sla0':>6s}{'slaF':>6s}{'brk-o':>7s}"
            f"{'p99':>10s}"
        ]
        for result in self.results:
            r = result.report
            lines.append(
                f"{result.level.name:>9s}{len(result.plan.events):8d}"
                f"{r.availability:8.4f}{r.client_retries:8d}"
                f"{r.server_retries:8d}{r.sla_violations_initial:6d}"
                f"{r.sla_violations_final:6d}{r.breaker_opened:7d}"
                f"{r.p99_latency_ms:8.1f}ms"
            )
        for failure in self.gate_failures():
            lines.append(f"GATE FAILED: {failure}")
        if self.passed:
            lines.append("all chaos gates pass")
        return lines


def chaos_sweep(
    config: ChaosConfig | None = None,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    levels: tuple[StormLevel, ...] = STORM_LEVELS,
) -> ChaosReport:
    """Run every storm level against the same seeded fleet and load."""
    config = config if config is not None else ChaosConfig()
    return ChaosReport(
        config=config,
        results=[run_storm(level, config, telemetry) for level in levels],
    )


# -- the partition storm -------------------------------------------------------


def partition_config(seed: int = 0) -> ChaosConfig:
    """The partition storm's fleet: seven implants.

    An odd fleet guarantees every single-cut split leaves one side with
    a strict majority (quorum 4 of 7), so the majority side can always
    elect and the minority can never — the structural half of the
    split-brain invariant the gates then verify end to end.
    """
    return ChaosConfig(n_nodes=7, seed=seed)


@dataclass
class PartitionStormReport:
    """One partition storm plus its split-brain gate verdicts."""

    config: ChaosConfig
    result: StormResult

    @property
    def invariants(self) -> PartitionInvariants:
        assert self.result.coordination is not None
        return self.result.coordination

    def gate_failures(self) -> list[str]:
        """Every split-brain gate the storm missed (empty = all pass)."""
        failures = []
        inv = self.invariants
        report = self.result.report
        if report.availability < PARTITION_MIN_AVAILABILITY:
            failures.append(
                f"availability {report.availability:.4f} < "
                f"{PARTITION_MIN_AVAILABILITY} (majority side must serve)"
            )
        if inv.max_coordinators_per_round > 1:
            failures.append(
                f"{inv.max_coordinators_per_round} coordinators wrote "
                "accepted checkpoints in one round (split brain)"
            )
        if not inv.epochs_monotonic:
            failures.append("accepted checkpoint epochs went backwards")
        if inv.duplicate_query_seqs > 0:
            failures.append(
                f"{inv.duplicate_query_seqs} query seqs broadcast twice"
            )
        if inv.fencing_accepted_stale > 0:
            failures.append(
                f"{inv.fencing_accepted_stale} stale-epoch writes "
                "slipped past the fence"
            )
        if inv.fencing_rejected < 1:
            failures.append(
                "fence never exercised: no stale-epoch write was rejected "
                "(the storm must depose a coordinator that keeps writing)"
            )
        if inv.blind_fallbacks > 0:
            failures.append(
                f"{inv.blind_fallbacks} elections fell back to ground "
                "truth (belief wiring missing)"
            )
        return failures

    @property
    def passed(self) -> bool:
        return not self.gate_failures()

    def gates(self) -> dict:
        return {
            "partition_availability_min": PARTITION_MIN_AVAILABILITY,
            "coordinators_per_round_max": 1,
            "duplicate_query_seqs_max": 0,
            "fencing_accepted_stale_max": 0,
            "fencing_rejected_min": 1,
            "blind_fallbacks_max": 0,
        }

    def row(self) -> dict:
        """The BENCH view: serving row + the coordination audit."""
        row = self.result.row()
        row["coordination"] = self.invariants.row()
        return row

    def health_report(self) -> dict:
        """The ``--health-report`` JSON: verdicts + storm evidence."""
        entry: dict = {"row": self.row()}
        if self.result.health is not None:
            entry["health"] = self.result.health
        return {
            "gates": self.gates(),
            "gate_failures": self.gate_failures(),
            "passed": self.passed,
            "storms": {self.result.level.name: entry},
        }

    def table(self) -> list[str]:
        """Fixed-width summary lines for the CLI and the benchmark."""
        r = self.result.report
        inv = self.invariants
        lines = [
            f"{'level':>9s}{'events':>8s}{'avail':>8s}{'epoch':>7s}"
            f"{'fails':>7s}{'steps':>7s}{'fenced':>8s}{'recon':>7s}"
            f"{'p99':>10s}",
            f"{self.result.level.name:>9s}{len(self.result.plan.events):8d}"
            f"{r.availability:8.4f}{inv.epoch:7d}{inv.failovers:7d}"
            f"{inv.stepdowns:7d}{inv.fencing_rejected:8d}"
            f"{inv.reconciliations:7d}{r.p99_latency_ms:8.1f}ms",
        ]
        for failure in self.gate_failures():
            lines.append(f"GATE FAILED: {failure}")
        if self.passed:
            lines.append("all split-brain gates pass")
        return lines


def run_partition_storm(
    config: ChaosConfig | None = None,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    health: HealthEngine | None = None,
    level: StormLevel = PARTITION,
) -> PartitionStormReport:
    """Run the split-brain storm and audit the coordination layer.

    Same determinism contract as :func:`run_storm` — the response log
    and every invariant counter replay byte-identically per seed — with
    the quorum/epoch stack attached (the plan schedules partitions, so
    :func:`~repro.serving.serve_session` wires per-node belief views
    and the epoch-fenced failover manager automatically).
    """
    config = config if config is not None else partition_config()
    if level.n_partitions < 1:
        raise ConfigurationError(
            f"storm level {level.name!r} schedules no partitions; the "
            "split-brain gates need at least one"
        )
    result = run_storm(level, config, telemetry, health)
    assert result.coordination is not None
    return PartitionStormReport(config=config, result=result)

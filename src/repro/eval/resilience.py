"""Resilience evaluation: Fig. 12 extended with recovery under ARQ.

Fig. 12 reports how many hash packets the BER channel destroys; this
module asks the follow-up question the resilience layer exists to
answer: *how many of those losses does the ARQ win back, and what does
the recovery cost in airtime?*  :func:`arq_recovery` runs one BER point;
:func:`resilience_sweep` produces the recovery-rate-vs-BER curve.

:func:`crash_query_degradation` exercises the other half of the fault
model: an N-node :class:`~repro.core.system.ScaloSystem` loses an
implant mid-session and interactive queries keep answering over the
survivors, tagged degraded.  :func:`crash_recovery_coverage` continues
that story through the recovery layer: the crashed node reboots via
journal replay + scrub + anti-entropy resync, rejoins the ingest
schedule, and the same Q3 query comes back at full coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.apps.queries import DistributedQueryResult, QuerySpec
from repro.core.system import ScaloSystem
from repro.eval.network_errors import BER_POINTS, HASH_PAYLOAD_BYTES
from repro.network.arq import ARQConfig, ReliableLink
from repro.network.network import WirelessNetwork
from repro.network.packet import Packet, PayloadKind
from repro.network.radio import LOW_POWER
from repro.network.tdma import TDMAConfig
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetryLike


@dataclass
class ResilienceResult:
    """One BER point of the ARQ recovery curve."""

    ber: float
    packets: int
    first_try: int
    recovered: int
    unrecovered: int
    retransmissions: int
    data_airtime_ms: float
    ack_airtime_ms: float
    backoff_ms: float

    @property
    def initial_loss_pct(self) -> float:
        """Fig. 12's number: packets the first transmission lost."""
        return 100.0 * (self.packets - self.first_try) / self.packets

    @property
    def recovery_rate_pct(self) -> float:
        """Of the initially-lost packets, the fraction ARQ got through."""
        lost = self.recovered + self.unrecovered
        return 100.0 * self.recovered / lost if lost else 100.0

    @property
    def residual_loss_pct(self) -> float:
        """End-to-end loss after the retry budget."""
        return 100.0 * self.unrecovered / self.packets

    @property
    def airtime_overhead_pct(self) -> float:
        """Extra airtime (retransmissions + ACKs) over one clean pass."""
        clean = self.data_airtime_ms - self.ack_airtime_ms
        per_packet = clean / (self.packets + self.retransmissions)
        baseline = per_packet * self.packets
        return 100.0 * (self.data_airtime_ms - baseline) / baseline


def arq_recovery(
    ber: float,
    n_packets: int = 400,
    config: ARQConfig | None = None,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> ResilienceResult:
    """Send hash packets point-to-point under ARQ at one BER.

    The result is read back from the telemetry registry — the single
    source of truth for ARQ/airtime accounting — rather than from ad-hoc
    stat structs.  Pass an existing ``telemetry`` handle to accumulate
    the run into a larger session (the sweep gives each point its own).
    """
    config = config or ARQConfig()
    telemetry = telemetry if telemetry is not None else Telemetry()
    radio = replace(LOW_POWER, bit_error_rate=ber)
    network = WirelessNetwork(
        tdma=TDMAConfig(radio=radio), seed=seed, telemetry=telemetry
    )
    link = ReliableLink(network, config=config)
    link.attach(0, lambda p: None)
    link.attach(1, lambda p: None)

    rng = np.random.default_rng(seed)
    for i in range(n_packets):
        payload = bytes(rng.integers(0, 256, HASH_PAYLOAD_BYTES, dtype=np.uint8))
        packet = Packet.build(0, 1, PayloadKind.HASHES, payload, seq=i & 0xFFFF)
        link.send(packet)

    reg = telemetry.registry
    # ``network.airtime_ms`` books data bursts only; ACKs are booked by
    # the ARQ layer under ``arq.ack_airtime_ms`` — their sum is the total
    # time the medium was busy
    return ResilienceResult(
        ber=ber,
        packets=int(reg.counter("arq.packets")),
        first_try=int(reg.counter("arq.delivered_first_try")),
        recovered=int(reg.counter("arq.recovered")),
        unrecovered=int(reg.counter("arq.failed")),
        retransmissions=int(reg.counter("arq.retries")),
        data_airtime_ms=reg.counter("network.airtime_ms")
        + reg.counter("arq.ack_airtime_ms"),
        ack_airtime_ms=reg.counter("arq.ack_airtime_ms"),
        backoff_ms=reg.counter("arq.backoff_ms"),
    )


def resilience_sweep(
    bers: tuple[float, ...] = (1e-3, *BER_POINTS),
    n_packets: int = 400,
    config: ARQConfig | None = None,
    seed: int = 0,
) -> dict[float, ResilienceResult]:
    """The recovery-rate-vs-BER curve (Fig. 12's x-axis, plus 1e-3)."""
    return {
        ber: arq_recovery(ber, n_packets, config=config, seed=seed)
        for ber in bers
    }


def crash_query_degradation(
    n_nodes: int = 4,
    electrodes_per_node: int = 4,
    n_windows: int = 6,
    crash_node: int = 1,
    seed: int = 0,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> DistributedQueryResult:
    """Lose one implant mid-session; show queries keep answering.

    Ingests a few windows fleet-wide, crashes one node, then runs a Q3
    time-range query over the survivors.  The returned result is tagged
    ``degraded`` with coverage ``(n_nodes - 1) / n_nodes`` — the paper's
    availability story under a real node failure.  With a live
    ``telemetry`` handle the degradation shows up as ``query.degraded``
    and a sub-1.0 ``query.coverage`` gauge.
    """
    system = ScaloSystem(
        n_nodes=n_nodes, electrodes_per_node=electrodes_per_node, seed=seed,
        telemetry=telemetry,
    )
    rng = np.random.default_rng(seed)
    from repro.units import WINDOW_SAMPLES

    for _ in range(n_windows):
        system.ingest(
            rng.normal(
                size=(n_nodes, electrodes_per_node, WINDOW_SAMPLES)
            ).astype(np.float32)
        )
    system.fail_node(crash_node)
    spec = QuerySpec(kind="q3", time_range_ms=100.0)
    return system.query(spec, (0, n_windows))


@dataclass
class RecoveryCoverageResult:
    """Coverage before and after one crash → reboot → resync cycle."""

    before: DistributedQueryResult
    after: DistributedQueryResult
    records_replayed: int
    batches_pulled: int
    batches_pushed: int
    scrub_bits_corrected: int

    @property
    def coverage_before(self) -> float:
        return self.before.coverage

    @property
    def coverage_after(self) -> float:
        return self.after.coverage


def crash_recovery_coverage(
    n_nodes: int = 4,
    electrodes_per_node: int = 4,
    n_windows: int = 6,
    crash_node: int = 1,
    crash_after: int = 3,
    seed: int = 0,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> RecoveryCoverageResult:
    """Lose an implant, reboot it through recovery, regain full coverage.

    The fleet ingests ``crash_after`` windows (hashes exchanged over an
    ARQ link), then ``crash_node`` goes down and a Q3 query answers
    degraded at ``(n_nodes - 1) / n_nodes`` coverage.  While the node is
    down one NVM bit rots (downtime is retention time).  The reboot runs
    the full :meth:`~repro.core.system.ScaloSystem.recover_node` path —
    journal replay, a scrub pass that repairs the rot, and an
    anti-entropy round that pulls the hash batches broadcast while it
    was dark — after which ingest resumes fleet-wide and the same query
    over *all* windows answers at coverage 1.0.
    """
    from repro.errors import ConfigurationError
    from repro.units import WINDOW_SAMPLES

    if not 0 < crash_after <= n_windows:
        raise ConfigurationError("crash_after must be in (0, n_windows]")
    system = ScaloSystem(
        n_nodes=n_nodes, electrodes_per_node=electrodes_per_node, seed=seed,
        arq=ARQConfig(), telemetry=telemetry,
    )
    rng = np.random.default_rng(seed)

    def ingest_round(window: int) -> None:
        batch = system.ingest(
            rng.normal(
                size=(n_nodes, electrodes_per_node, WINDOW_SAMPLES)
            ).astype(np.float32)
        )
        for src in system.alive_node_ids:
            if batch[src]:
                system.broadcast_hashes(src, batch[src], seq=window)
        for node in system.alive_node_ids:
            system.drain_inbox(node)

    for window in range(crash_after):
        ingest_round(window)
    system.fail_node(crash_node)
    # downtime is retention time: one bit rots before the reboot
    device = system.nodes[crash_node].storage.device
    device.inject_bit_rot(device.programmed_pages[0], np.array([0]))

    spec = QuerySpec(kind="q3", time_range_ms=100.0)
    before = system.query(spec, (0, crash_after))

    report = system.recover_node(crash_node)
    for window in range(crash_after, n_windows):
        ingest_round(window)
    after = system.query(spec, (0, n_windows))
    return RecoveryCoverageResult(
        before=before,
        after=after,
        records_replayed=report.replay.records_replayed,
        batches_pulled=report.resync.batches_pulled,
        batches_pushed=report.resync.batches_pushed,
        scrub_bits_corrected=report.scrub.bits_corrected,
    )

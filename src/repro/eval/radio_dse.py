"""Fig. 13 / Table 3: radio design-space exploration.

Re-evaluates Hash All-All and DTW One-All under the four Table 3 radios
and normalises by the default (Low Power) radio, as the paper plots.
"""

from __future__ import annotations

from repro.network.radio import RADIO_CATALOG
from repro.network.tdma import TDMAConfig
from repro.scheduler.ilp import max_throughput_mbps
from repro.scheduler.model import dtw_similarity_task, hash_similarity_task
from repro.telemetry import NULL_TELEMETRY, TelemetryLike
from repro.units import NODE_POWER_CAP_MW

#: Radio order on the Fig. 13 x-axis.
RADIO_ORDER = ("High Perf", "Low Data Rate", "Low BER", "Low Power")


def radio_throughputs(
    n_nodes: int = 6, power_mw: float = NODE_POWER_CAP_MW,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> dict[str, dict[str, float]]:
    """Absolute Mbps per radio: {radio: {app: mbps}}.

    The radio's own power draw comes out of the node budget (the High
    Perf radio "occupies nearly half the available 15 mW budget").
    """
    out: dict[str, dict[str, float]] = {}
    for name in RADIO_ORDER:
        radio = RADIO_CATALOG[name]
        tdma = TDMAConfig(radio=radio)
        budget = power_mw - radio.power_mw
        out[name] = {
            "Hash All-All": max_throughput_mbps(
                hash_similarity_task("all_all"), n_nodes, budget, tdma=tdma,
                telemetry=telemetry,
            ),
            "DTW One-All": max_throughput_mbps(
                dtw_similarity_task("one_all"), n_nodes, budget, tdma=tdma,
                telemetry=telemetry,
            ),
        }
    return out


def fig13(n_nodes: int = 6, power_mw: float = NODE_POWER_CAP_MW,
          telemetry: TelemetryLike = NULL_TELEMETRY
          ) -> dict[str, dict[str, float]]:
    """Fig. 13: throughput normalised to the Low Power radio."""
    absolute = radio_throughputs(n_nodes, power_mw, telemetry=telemetry)
    baseline = absolute["Low Power"]
    return {
        radio: {
            app: (value / baseline[app] if baseline[app] else 0.0)
            for app, value in row.items()
        }
        for radio, row in absolute.items()
    }


def table3() -> dict[str, dict[str, float]]:
    """Table 3 rows."""
    return {
        name: {
            "ber": spec.bit_error_rate,
            "data_rate_mbps": spec.data_rate_mbps,
            "power_mw": spec.power_mw,
        }
        for name, spec in RADIO_CATALOG.items()
    }

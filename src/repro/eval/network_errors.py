"""Fig. 12: packet error rates and DTW failures vs network BER.

Simulates the intra-SCALO packet stream through the binary-symmetric
channel: hash packets (dropped when their CRC fails) and signal packets
(delivered corrupted — DTW tolerates bit flips).  A "DTW failure" is a
corrupted signal packet whose similarity *decision* flips relative to the
clean signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic_ieeg import generate_ieeg
from repro.network.channel import BitErrorChannel
from repro.network.packet import Packet, PayloadKind
from repro.similarity.dtw import dtw_distance
from repro.units import WINDOW_SAMPLES

#: BER points on the Fig. 12 x-axis.
BER_POINTS = (1e-4, 1e-5, 1e-6)

#: Hash payload: 96 electrodes x 1 B, HCOMP-compressed ~2x.
HASH_PAYLOAD_BYTES = 48

#: Signal payload: one 240 B window (120 x 16-bit samples).
SIGNAL_PAYLOAD_BYTES = 240


@dataclass
class NetworkErrorResult:
    """One BER point."""

    ber: float
    hash_packet_error_pct: float
    signal_packet_error_pct: float
    dtw_failure_pct: float


def _signal_windows(n: int, seed: int) -> np.ndarray:
    recording = generate_ieeg(
        n_nodes=1, n_electrodes=4, duration_s=max(0.5, n / 500),
        n_seizures=1, seizure_duration_s=0.2, seed=seed,
    )
    flat = recording.data.reshape(-1, recording.n_samples)
    rng = np.random.default_rng(seed)
    out = []
    per_channel = recording.n_samples // WINDOW_SAMPLES
    for _ in range(n):
        c = int(rng.integers(flat.shape[0]))
        w = int(rng.integers(per_channel))
        out.append(flat[c, w * WINDOW_SAMPLES:(w + 1) * WINDOW_SAMPLES])
    return np.stack(out)


def _quantise(window: np.ndarray) -> np.ndarray:
    scale = 1000.0
    return np.clip(np.round(window * scale), -32768, 32767).astype("<i2")


def network_errors(
    ber: float,
    n_packets: int = 400,
    dtw_threshold_band: int = 10,
    seed: int = 0,
) -> NetworkErrorResult:
    """Run the Fig. 12 experiment at one BER."""
    rng = np.random.default_rng(seed)
    channel = BitErrorChannel(ber, seed=seed + 1)

    # hash packets
    hash_errors = 0
    for i in range(n_packets):
        payload = bytes(rng.integers(0, 256, HASH_PAYLOAD_BYTES, dtype=np.uint8))
        packet = Packet.build(0, 1, PayloadKind.HASHES, payload, seq=i & 0xFFFF)
        received, flips = channel.transmit(packet)
        if flips and not received.intact:
            hash_errors += 1

    # signal packets + DTW decision flips
    windows = _signal_windows(n_packets, seed)
    partner = np.roll(windows, 1, axis=0)
    signal_errors = 0
    dtw_failures = 0
    clean_costs = np.array(
        [
            dtw_distance(w.astype(float), p.astype(float), dtw_threshold_band)
            for w, p in zip(windows, partner)
        ]
    )
    threshold = float(np.median(clean_costs))
    for i in range(n_packets):
        samples = _quantise(windows[i])
        packet = Packet.build(
            0, 1, PayloadKind.SIGNAL, samples.tobytes(), seq=i & 0xFFFF
        )
        received, flips = channel.transmit(packet)
        if flips == 0:
            continue
        if not received.intact:
            signal_errors += 1
        if not received.header_ok:
            continue  # unroutable; counted as an error above
        corrupted = np.frombuffer(received.payload, dtype="<i2").astype(float)
        if corrupted.shape[0] != WINDOW_SAMPLES:
            continue
        cost = dtw_distance(corrupted / 1000.0,
                            partner[i].astype(float), dtw_threshold_band)
        clean_decision = clean_costs[i] <= threshold
        corrupt_decision = cost <= threshold
        if clean_decision != corrupt_decision:
            dtw_failures += 1

    return NetworkErrorResult(
        ber=ber,
        hash_packet_error_pct=100.0 * hash_errors / n_packets,
        signal_packet_error_pct=100.0 * signal_errors / n_packets,
        dtw_failure_pct=100.0 * dtw_failures / n_packets,
    )


def fig12(n_packets: int = 400, seed: int = 0
          ) -> dict[float, NetworkErrorResult]:
    """All BER points."""
    return {ber: network_errors(ber, n_packets, seed=seed)
            for ber in BER_POINTS}

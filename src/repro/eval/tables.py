"""Table reproductions: Table 1 (PE catalog) and Table 3 (radios)."""

from __future__ import annotations

from repro.eval.reporting import format_table
from repro.hardware.catalog import PE_CATALOG, format_table1, total_area_kge
from repro.network.radio import RADIO_CATALOG


def table1_text() -> str:
    """Paper Table 1 as text."""
    return format_table1()


def table1_summary() -> dict[str, float]:
    """Aggregates over the catalog (sanity anchors for tests)."""
    return {
        "n_pes": float(len(PE_CATALOG)),
        "total_area_kge": total_area_kge(),
        "max_freq_mhz": max(s.max_freq_mhz for s in PE_CATALOG.values()),
        "total_static_uw": sum(s.static_uw for s in PE_CATALOG.values()),
    }


def table3_text() -> str:
    """Paper Table 3 as text."""
    rows = [
        (name, f"{spec.bit_error_rate:g}", spec.data_rate_mbps, spec.power_mw)
        for name, spec in RADIO_CATALOG.items()
    ]
    return format_table(
        ("Name", "BER", "Data rate (Mbps)", "Power (mW)"), rows, precision=3
    )

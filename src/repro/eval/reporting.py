"""Tiny text-report helpers shared by the experiment drivers."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
) -> str:
    """Render rows as a fixed-width text table."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, series: Mapping[object, float],
                  precision: int = 2) -> str:
    """Render one named series as 'name: k=v k=v ...'."""
    body = " ".join(f"{k}={v:.{precision}f}" for k, v in series.items())
    return f"{name}: {body}"

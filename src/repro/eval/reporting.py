"""Tiny text-report helpers shared by the experiment drivers.

Besides the generic :func:`format_table`, this module renders telemetry:
:func:`telemetry_summary` turns a metrics registry into counter/gauge/
histogram tables and :func:`span_summary` aggregates a tracer's spans by
name — the text the ``python -m repro trace`` CLI prints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:
    from repro.telemetry import MetricsRegistry, Tracer


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
) -> str:
    """Render rows as a fixed-width text table."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, series: Mapping[object, float],
                  precision: int = 2) -> str:
    """Render one named series as 'name: k=v k=v ...'."""
    body = " ".join(f"{k}={v:.{precision}f}" for k, v in series.items())
    return f"{name}: {body}"


def telemetry_summary(registry: "MetricsRegistry", precision: int = 2) -> str:
    """Render a registry as counter / gauge / histogram tables."""
    from repro.telemetry import format_metric

    sections: list[str] = []
    counter_rows = [
        (format_metric(name, labels), value)
        for name, labels, value in registry.counters()
    ]
    if counter_rows:
        sections.append("== counters ==\n" + format_table(
            ("counter", "value"), counter_rows, precision=precision
        ))
    gauge_rows = [
        (format_metric(name, labels), value)
        for name, labels, value in registry.gauges()
    ]
    if gauge_rows:
        sections.append("== gauges ==\n" + format_table(
            ("gauge", "value"), gauge_rows, precision=precision
        ))
    hist_rows = [
        (
            format_metric(name, labels),
            hist.n,
            hist.mean,
            hist.min_value if hist.n else 0.0,
            hist.max_value if hist.n else 0.0,
        )
        for name, labels, hist in registry.histograms()
    ]
    if hist_rows:
        sections.append("== histograms ==\n" + format_table(
            ("histogram", "count", "mean", "min", "max"),
            hist_rows,
            precision=precision,
        ))
    return "\n\n".join(sections) if sections else "(no metrics recorded)"


def span_summary(tracer: "Tracer", precision: int = 2) -> str:
    """Aggregate finished spans by name: count and simulated-time totals."""
    by_name: dict[str, list[float]] = {}
    n_traces = len({s.trace_id for s in tracer.spans})
    for span in tracer.spans:
        if span.end_us is None:
            continue
        by_name.setdefault(span.name, []).append(span.duration_us)
    rows = [
        (
            name,
            len(durations),
            sum(durations) / 1e3,
            sum(durations) / len(durations) / 1e3,
        )
        for name, durations in sorted(by_name.items())
    ]
    if not rows:
        return "(no spans recorded)"
    table = format_table(
        ("span", "count", "total_ms", "mean_ms"), rows, precision=precision
    )
    return f"== spans ({n_traces} traces) ==\n{table}"

"""The HCOMP/DCOMP hash codec: dictionary + run-length + Elias-gamma.

HCOMP "first encodes the hashes with dictionary coding, then uses
run-length encoding of the dictionary indexes, and finally uses Elias-g
coding on the run-length counts" (paper §3.2).  DCOMP reverses the three
steps on the receiving side.

Wire format (byte-aligned header, then a tight bit stream)::

    u16  number of source symbols
    u8   dictionary size D (0 means 256)
    D*u8 dictionary entries (hash values, one byte each)
    u16  number of runs R
    u16  bit length of the payload
    ...  R x [ index: ceil(log2 D) bits | count: Elias-gamma ]
"""

from __future__ import annotations

import math
import struct

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.dictionary import (
    dictionary_decode,
    dictionary_encode,
    frequency_dictionary,
)
from repro.compression.elias import decode_gamma, encode_gamma
from repro.compression.rle import rle_decode, rle_encode
from repro.errors import ConfigurationError


def _index_width(dictionary_size: int) -> int:
    if dictionary_size <= 1:
        return 1
    return math.ceil(math.log2(dictionary_size))


def hcomp_compress(hashes: list[int]) -> bytes:
    """Compress a stream of 8-bit hash values.

    Raises:
        ConfigurationError: if any value does not fit one byte, or the
            stream is empty (nothing to send).
    """
    if not hashes:
        raise ConfigurationError("nothing to compress")
    if any(not 0 <= h <= 0xFF for h in hashes):
        raise ConfigurationError("hash values must fit in one byte")

    dictionary = frequency_dictionary(hashes)
    indexes, _ = dictionary_encode(hashes, dictionary)
    runs = rle_encode(indexes)

    writer = BitWriter()
    width = _index_width(len(dictionary))
    for index, count in runs:
        writer.write_bits(index, width)
        encode_gamma(writer, count)
    payload = writer.to_bytes()

    header = struct.pack(
        "<HBxHH",
        len(hashes),
        len(dictionary) & 0xFF,  # 256 wraps to 0
        len(runs),
        writer.bit_length,
    )
    return header + bytes(dictionary) + payload


def dcomp_decompress(blob: bytes) -> list[int]:
    """Inverse of :func:`hcomp_compress`."""
    header_size = struct.calcsize("<HBxHH")
    if len(blob) < header_size:
        raise ConfigurationError("truncated HCOMP blob")
    n_symbols, dict_size_raw, n_runs, bit_length = struct.unpack(
        "<HBxHH", blob[:header_size]
    )
    dict_size = dict_size_raw or 256
    dict_end = header_size + dict_size
    if len(blob) < dict_end:
        raise ConfigurationError("truncated HCOMP dictionary")
    dictionary = list(blob[header_size:dict_end])
    payload = blob[dict_end:]

    reader = BitReader(payload, bit_length)
    width = _index_width(dict_size)
    runs = []
    for _ in range(n_runs):
        index = reader.read_bits(width)
        count = decode_gamma(reader)
        runs.append((index, count))
    indexes = rle_decode(runs)
    if len(indexes) != n_symbols:
        raise ConfigurationError(
            f"decoded {len(indexes)} symbols, header said {n_symbols}"
        )
    return dictionary_decode(indexes, dictionary)


def compression_ratio(hashes: list[int]) -> float:
    """Raw size over compressed size for a hash stream."""
    compressed = hcomp_compress(hashes)
    return len(hashes) / len(compressed)

"""Run-length encoding over symbol sequences."""

from __future__ import annotations

from repro.errors import ConfigurationError


def rle_encode(symbols: list[int]) -> list[tuple[int, int]]:
    """Collapse a symbol sequence into (symbol, run_length) pairs."""
    runs: list[tuple[int, int]] = []
    for symbol in symbols:
        if runs and runs[-1][0] == symbol:
            runs[-1] = (symbol, runs[-1][1] + 1)
        else:
            runs.append((symbol, 1))
    return runs


def rle_decode(runs: list[tuple[int, int]]) -> list[int]:
    """Inverse of :func:`rle_encode`."""
    symbols: list[int] = []
    for symbol, length in runs:
        if length < 1:
            raise ConfigurationError("run length must be >= 1")
        symbols.extend([symbol] * length)
    return symbols

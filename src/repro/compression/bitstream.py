"""Bit-level I/O used by the entropy coders."""

from __future__ import annotations

from repro.errors import ConfigurationError


class BitWriter:
    """Accumulates bits MSB-first and renders them as bytes."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ConfigurationError("bit must be 0 or 1")
        self._bits.append(bit)

    def write_bits(self, value: int, width: int) -> None:
        """Write ``value`` as ``width`` bits, MSB first."""
        if width < 0:
            raise ConfigurationError("width cannot be negative")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ConfigurationError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_unary(self, count: int) -> None:
        """``count`` zeros followed by a one (Elias-gamma prefix)."""
        if count < 0:
            raise ConfigurationError("unary count cannot be negative")
        self._bits.extend([0] * count)
        self._bits.append(1)

    @property
    def bit_length(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        """Pack to bytes, zero-padded to a byte boundary."""
        out = bytearray()
        acc = 0
        n = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            n += 1
            if n == 8:
                out.append(acc)
                acc = 0
                n = 0
        if n:
            out.append(acc << (8 - n))
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes, bit_length: int | None = None):
        self._data = data
        self._pos = 0
        self._limit = bit_length if bit_length is not None else 8 * len(data)
        if self._limit > 8 * len(data):
            raise ConfigurationError("bit_length exceeds the data")

    @property
    def remaining(self) -> int:
        return self._limit - self._pos

    def read_bit(self) -> int:
        if self._pos >= self._limit:
            raise ConfigurationError("bit stream exhausted")
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - self._pos % 8)) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Count zeros until the terminating one."""
        count = 0
        while self.read_bit() == 0:
            count += 1
        return count

"""Linear integer coding of sample streams (the LIC PE).

Neural samples are smooth: consecutive 16-bit ADC values differ by small
amounts.  LIC exploits this with a linear predictor (delta or
second-order), zig-zag mapping of the signed residuals, and Golomb-Rice
coding with a per-block tuned Rice parameter — the standard low-power
integer compressor for telemetry.

Wire format::

    u32  number of samples
    u8   predictor order (1 or 2)
    then per 256-sample block: u8 rice parameter k, bit-packed residuals
"""

from __future__ import annotations

import numpy as np

from repro.compression.bitstream import BitReader, BitWriter
from repro.errors import ConfigurationError

BLOCK_SAMPLES = 256


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed to unsigned: 0,-1,1,-2,2 ... -> 0,1,2,3,4 ..."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values >= 0, 2 * values, -2 * values - 1).astype(np.int64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.int64)
    return np.where(values % 2 == 0, values // 2, -(values + 1) // 2)


def _predict_residuals(samples: np.ndarray, order: int) -> np.ndarray:
    if order == 1:
        residuals = np.diff(samples, prepend=0)
    elif order == 2:
        prediction = np.zeros_like(samples)
        if samples.shape[0] >= 2:
            prediction[1] = samples[0]
        if samples.shape[0] >= 3:
            prediction[2:] = 2 * samples[1:-1] - samples[:-2]
        residuals = samples - prediction
    else:
        raise ConfigurationError("predictor order must be 1 or 2")
    return residuals


def _unpredict(residuals: np.ndarray, order: int) -> np.ndarray:
    samples = np.zeros_like(residuals)
    if order == 1:
        samples = np.cumsum(residuals)
    else:
        for i, r in enumerate(residuals):
            if i == 0:
                samples[i] = r
            elif i == 1:
                samples[i] = samples[0] + r
            else:
                samples[i] = 2 * samples[i - 1] - samples[i - 2] + r
    return samples


def _best_rice_k(values: np.ndarray) -> int:
    """Rice parameter minimising the coded length (mean-based heuristic)."""
    mean = float(values.mean()) if values.size else 0.0
    k = 0
    while (1 << (k + 1)) < mean + 1 and k < 30:
        k += 1
    return k


def _rice_encode(writer: BitWriter, value: int, k: int) -> None:
    quotient = value >> k
    if quotient > 512:
        # escape: long unary would explode; emit 513 zeros then 32-bit raw
        writer.write_unary(513)
        writer.write_bits(value, 32)
        return
    writer.write_unary(quotient)
    if k:
        writer.write_bits(value & ((1 << k) - 1), k)


def _rice_decode(reader: BitReader, k: int) -> int:
    quotient = reader.read_unary()
    if quotient == 513:
        return reader.read_bits(32)
    value = quotient << k
    if k:
        value |= reader.read_bits(k)
    return value


def lic_compress(samples: np.ndarray, order: int = 2) -> bytes:
    """Compress a 1-D int stream (16-bit ADC samples or features)."""
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1:
        raise ConfigurationError("LIC expects a 1-D sample stream")
    residuals = zigzag(_predict_residuals(samples, order))

    writer = BitWriter()
    ks: list[int] = []
    for start in range(0, residuals.shape[0], BLOCK_SAMPLES):
        block = residuals[start : start + BLOCK_SAMPLES]
        k = _best_rice_k(block)
        ks.append(k)
        for value in block:
            _rice_encode(writer, int(value), k)
    payload = writer.to_bytes()

    header = (
        samples.shape[0].to_bytes(4, "little")
        + bytes([order])
        + len(ks).to_bytes(2, "little")
        + bytes(ks)
        + writer.bit_length.to_bytes(4, "little")
    )
    return header + payload


def lic_decompress(blob: bytes) -> np.ndarray:
    """Inverse of :func:`lic_compress`."""
    if len(blob) < 11:
        raise ConfigurationError("truncated LIC blob")
    n_samples = int.from_bytes(blob[:4], "little")
    order = blob[4]
    n_blocks = int.from_bytes(blob[5:7], "little")
    ks = list(blob[7 : 7 + n_blocks])
    offset = 7 + n_blocks
    bit_length = int.from_bytes(blob[offset : offset + 4], "little")
    reader = BitReader(blob[offset + 4 :], bit_length)

    residuals = np.empty(n_samples, dtype=np.int64)
    index = 0
    for block_index in range(n_blocks):
        k = ks[block_index]
        block_len = min(BLOCK_SAMPLES, n_samples - index)
        for _ in range(block_len):
            residuals[index] = _rice_decode(reader, k)
            index += 1
    return _unpredict(unzigzag(residuals), order)


def lic_ratio(samples: np.ndarray, order: int = 2) -> float:
    """Raw 16-bit size over compressed size."""
    compressed = lic_compress(samples, order)
    return 2 * np.asarray(samples).shape[0] / len(compressed)

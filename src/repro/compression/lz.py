"""A compact LZ77 codec — the software twin of HALO's LZ PE.

HALO's LZ/LZMA PEs were built for bulk offload to external servers; SCALO
keeps them for that purpose and compares HCOMP's ratio against them
(HCOMP is within ~10 % at 7x less power).  This LZ77 uses a small sliding
window suitable for the comparison experiments.

Token format: a flag byte covers 8 tokens (bit set = match); literals are
single bytes; matches are ``u16 offset | u8 length`` with lengths 3..258.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

_MIN_MATCH = 3
_MAX_MATCH = 258
_WINDOW = 4096


def lz_compress(data: bytes) -> bytes:
    """LZ77-compress ``data`` (empty input allowed)."""
    out = bytearray()
    tokens: list[tuple[bool, bytes]] = []
    i = 0
    n = len(data)
    # index 3-grams for match finding
    table: dict[bytes, list[int]] = {}
    while i < n:
        best_len = 0
        best_off = 0
        if i + _MIN_MATCH <= n:
            key = data[i : i + _MIN_MATCH]
            for start in reversed(table.get(key, [])):
                if i - start > _WINDOW:
                    break
                length = _MIN_MATCH
                limit = min(_MAX_MATCH, n - i)
                while (
                    length < limit and data[start + length] == data[i + length]
                ):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_off = i - start
                    if length == limit:
                        break
        if best_len >= _MIN_MATCH:
            tokens.append(
                (True, best_off.to_bytes(2, "little") + bytes([best_len - _MIN_MATCH]))
            )
            for j in range(i, i + best_len):
                if j + _MIN_MATCH <= n:
                    table.setdefault(data[j : j + _MIN_MATCH], []).append(j)
            i += best_len
        else:
            tokens.append((False, data[i : i + 1]))
            if i + _MIN_MATCH <= n:
                table.setdefault(data[i : i + _MIN_MATCH], []).append(i)
            i += 1

    out += len(data).to_bytes(4, "little")
    for group_start in range(0, len(tokens), 8):
        group = tokens[group_start : group_start + 8]
        flags = 0
        for bit, (is_match, _) in enumerate(group):
            if is_match:
                flags |= 1 << bit
        out.append(flags)
        for _, payload in group:
            out += payload
    return bytes(out)


def lz_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`lz_compress`."""
    if len(blob) < 4:
        raise ConfigurationError("truncated LZ blob")
    expected = int.from_bytes(blob[:4], "little")
    out = bytearray()
    pos = 4
    while len(out) < expected:
        if pos >= len(blob):
            raise ConfigurationError("LZ stream ended early")
        flags = blob[pos]
        pos += 1
        for bit in range(8):
            if len(out) >= expected:
                break
            if flags & (1 << bit):
                if pos + 3 > len(blob):
                    raise ConfigurationError("truncated LZ match token")
                offset = int.from_bytes(blob[pos : pos + 2], "little")
                length = blob[pos + 2] + _MIN_MATCH
                pos += 3
                if offset == 0 or offset > len(out):
                    raise ConfigurationError("invalid LZ match offset")
                start = len(out) - offset
                for k in range(length):
                    out.append(out[start + k])
            else:
                if pos >= len(blob):
                    raise ConfigurationError("truncated LZ literal")
                out.append(blob[pos])
                pos += 1
    return bytes(out)

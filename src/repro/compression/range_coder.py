"""Range coding with an adaptive Markov model (the RC and MA PEs).

HALO's bulk-offload compression suite includes a range coder (RC) fed by
a Markov-chain context model (MA): each byte is coded under an adaptive
frequency table conditioned on the previous byte, which captures the
strong sample-to-sample correlation of neural data.

The implementation is a classic 32-bit renormalising range coder
(Subbotin style) with per-context adaptive byte frequencies.  Order-0
(single shared context) and order-1 (previous byte as context) models
are supported; the MA PE corresponds to order-1.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

_TOP = 1 << 24
_BOTTOM = 1 << 16

#: Halve all frequencies when a context's total reaches this (adaptivity).
_MAX_TOTAL = _BOTTOM - 256


class _Model:
    """Adaptive per-context byte frequencies."""

    def __init__(self, order: int):
        if order not in (0, 1):
            raise ConfigurationError("model order must be 0 or 1")
        self.order = order
        self._contexts: dict[int, list[int]] = {}

    def frequencies(self, context: int) -> list[int]:
        key = context if self.order else 0
        table = self._contexts.get(key)
        if table is None:
            table = [1] * 256
            self._contexts[key] = table
        return table

    def update(self, context: int, symbol: int, increment: int = 32) -> None:
        table = self.frequencies(context)
        table[symbol] += increment
        if sum(table) >= _MAX_TOTAL:
            for i in range(256):
                table[i] = (table[i] + 1) >> 1


class RangeEncoder:
    """Streaming range encoder."""

    def __init__(self) -> None:
        self._low = 0
        self._range = 0xFFFFFFFF
        self._output = bytearray()

    def encode(self, cum_freq: int, freq: int, total: int) -> None:
        self._range //= total
        self._low += cum_freq * self._range
        self._range *= freq
        self._normalise()

    def _normalise(self) -> None:
        while True:
            if (self._low ^ (self._low + self._range)) < _TOP:
                pass
            elif self._range < _BOTTOM:
                self._range = (-self._low) & (_BOTTOM - 1)
            else:
                break
            self._output.append((self._low >> 24) & 0xFF)
            self._low = (self._low << 8) & 0xFFFFFFFF
            self._range = (self._range << 8) & 0xFFFFFFFF

    def finish(self) -> bytes:
        for _ in range(4):
            self._output.append((self._low >> 24) & 0xFF)
            self._low = (self._low << 8) & 0xFFFFFFFF
        return bytes(self._output)


class RangeDecoder:
    """Streaming range decoder (mirrors :class:`RangeEncoder`)."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._low = 0
        self._range = 0xFFFFFFFF
        self._code = 0
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & 0xFFFFFFFF

    def _next_byte(self) -> int:
        byte = self._data[self._pos] if self._pos < len(self._data) else 0
        self._pos += 1
        return byte

    def decode_target(self, total: int) -> int:
        self._range //= total
        return min(total - 1, (self._code - self._low) // self._range)

    def advance(self, cum_freq: int, freq: int) -> None:
        self._low += cum_freq * self._range
        self._range *= freq
        while True:
            if (self._low ^ (self._low + self._range)) < _TOP:
                pass
            elif self._range < _BOTTOM:
                self._range = (-self._low) & (_BOTTOM - 1)
            else:
                break
            self._code = ((self._code << 8) | self._next_byte()) & 0xFFFFFFFF
            self._low = (self._low << 8) & 0xFFFFFFFF
            self._range = (self._range << 8) & 0xFFFFFFFF


def rc_compress(data: bytes, order: int = 1) -> bytes:
    """Compress with the adaptive Markov-context range coder.

    Args:
        data: bytes to compress.
        order: 0 for a single adaptive table, 1 for previous-byte
            contexts (the MA PE's configuration).
    """
    model = _Model(order)
    encoder = RangeEncoder()
    context = 0
    for symbol in data:
        table = model.frequencies(context)
        total = sum(table)
        cum = sum(table[:symbol])
        encoder.encode(cum, table[symbol], total)
        model.update(context, symbol)
        context = symbol
    payload = encoder.finish()
    header = len(data).to_bytes(4, "little") + bytes([order])
    return header + payload


def rc_decompress(blob: bytes) -> bytes:
    """Inverse of :func:`rc_compress`."""
    if len(blob) < 5:
        raise ConfigurationError("truncated RC blob")
    n_symbols = int.from_bytes(blob[:4], "little")
    order = blob[4]
    model = _Model(order)
    decoder = RangeDecoder(blob[5:])
    out = bytearray()
    context = 0
    for _ in range(n_symbols):
        table = model.frequencies(context)
        total = sum(table)
        target = decoder.decode_target(total)
        cum = 0
        symbol = 0
        for symbol in range(256):  # noqa: B007 - symbol used after loop
            if cum + table[symbol] > target:
                break
            cum += table[symbol]
        decoder.advance(cum, table[symbol])
        model.update(context, symbol)
        out.append(symbol)
        context = symbol
    return bytes(out)

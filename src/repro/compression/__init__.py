"""Compression substrate: the HCOMP/DCOMP hash codec and an LZ baseline."""

from repro.compression.bitstream import BitReader, BitWriter
from repro.compression.dictionary import (
    dictionary_decode,
    dictionary_encode,
    frequency_dictionary,
)
from repro.compression.elias import (
    decode_gamma,
    decode_gamma_sequence,
    encode_gamma,
    encode_gamma_sequence,
)
from repro.compression.hash_codec import (
    compression_ratio,
    dcomp_decompress,
    hcomp_compress,
)
from repro.compression.lic import (
    lic_compress,
    lic_decompress,
    lic_ratio,
    unzigzag,
    zigzag,
)
from repro.compression.lz import lz_compress, lz_decompress
from repro.compression.range_coder import rc_compress, rc_decompress
from repro.compression.rle import rle_decode, rle_encode

__all__ = [
    "BitReader",
    "BitWriter",
    "dictionary_decode",
    "dictionary_encode",
    "frequency_dictionary",
    "decode_gamma",
    "decode_gamma_sequence",
    "encode_gamma",
    "encode_gamma_sequence",
    "compression_ratio",
    "dcomp_decompress",
    "hcomp_compress",
    "lic_compress",
    "lic_decompress",
    "lic_ratio",
    "unzigzag",
    "zigzag",
    "lz_compress",
    "lz_decompress",
    "rc_compress",
    "rc_decompress",
    "rle_decode",
    "rle_encode",
]

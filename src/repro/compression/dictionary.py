"""Frequency-sorted dictionary coding (the HFREQ PE's output ordering).

HFREQ collects hash values and sorts them by frequency of occurrence so
that dictionary coding assigns the shortest indexes to the most frequent
hashes (paper §3.2, "Networking Support").  Because neighbouring brain
signals are correlated, hash streams are highly skewed and the frequent
few dominate.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ConfigurationError


def frequency_dictionary(symbols: list[int]) -> list[int]:
    """Symbols ordered by descending frequency (ties by value, stable).

    This is the dictionary HFREQ emits: index 0 is the most frequent hash.
    """
    counts = Counter(symbols)
    return [symbol for symbol, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]


def dictionary_encode(
    symbols: list[int], dictionary: list[int] | None = None
) -> tuple[list[int], list[int]]:
    """Map symbols to dictionary indexes.

    Returns:
        (indexes, dictionary).  If no dictionary is supplied, the
        frequency-sorted one is built from the input.
    """
    if dictionary is None:
        dictionary = frequency_dictionary(symbols)
    lookup = {symbol: idx for idx, symbol in enumerate(dictionary)}
    try:
        indexes = [lookup[symbol] for symbol in symbols]
    except KeyError as missing:
        raise ConfigurationError(f"symbol {missing} not in dictionary") from None
    return indexes, dictionary


def dictionary_decode(indexes: list[int], dictionary: list[int]) -> list[int]:
    """Inverse of :func:`dictionary_encode`."""
    try:
        return [dictionary[idx] for idx in indexes]
    except IndexError:
        raise ConfigurationError("index outside the dictionary") from None

"""Elias-gamma coding of positive integers (used on run-length counts)."""

from __future__ import annotations

from repro.compression.bitstream import BitReader, BitWriter
from repro.errors import ConfigurationError


def encode_gamma(writer: BitWriter, value: int) -> None:
    """Append the Elias-gamma code of ``value`` (must be >= 1)."""
    if value < 1:
        raise ConfigurationError("Elias-gamma encodes integers >= 1")
    n = value.bit_length() - 1
    writer.write_unary(n)
    if n:
        writer.write_bits(value - (1 << n), n)


def decode_gamma(reader: BitReader) -> int:
    """Read one Elias-gamma-coded integer."""
    n = reader.read_unary()
    if n == 0:
        return 1
    return (1 << n) + reader.read_bits(n)


def encode_gamma_sequence(values: list[int]) -> tuple[bytes, int]:
    """Encode a sequence; returns (bytes, exact bit length)."""
    writer = BitWriter()
    for value in values:
        encode_gamma(writer, value)
    return writer.to_bytes(), writer.bit_length


def decode_gamma_sequence(data: bytes, count: int, bit_length: int) -> list[int]:
    """Decode ``count`` integers from gamma-coded ``data``."""
    reader = BitReader(data, bit_length)
    return [decode_gamma(reader) for _ in range(count)]

"""The per-node processor fabric: PEs plus programmable switches.

The fabric is a directed graph whose vertices are PE instances and whose
edges are circuit-switched connections configured by the microcontroller
(paper Fig. 2b).  SCALO does not support loops — pipelines must be acyclic —
so configuration is validated to be a DAG.  The fabric can host several
concurrent pipelines (flows); the hardware tags signals per flow so two
flows may share a PE (paper §3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import FabricError
from repro.hardware.catalog import get_pe
from repro.hardware.pe import ProcessingElement
from repro.hardware.pipeline import Pipeline


@dataclass
class Fabric:
    """A configurable collection of PE instances and switch connections."""

    pes: dict[str, ProcessingElement] = field(default_factory=dict)
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_pe(self, name: str, instance_id: str | None = None, **kwargs) -> str:
        """Instantiate catalog PE ``name``; returns the instance id.

        Multiple instances of the same PE type (e.g. the ten MAD units in
        the LIN ALG cluster) get distinct ids like ``MAD.0``, ``MAD.1``.
        """
        if instance_id is None:
            count = sum(1 for key in self.pes if key.split(".")[0] == name)
            instance_id = f"{name}.{count}" if count or f"{name}" in self.pes else name
        if instance_id in self.pes:
            raise FabricError(f"duplicate PE instance id {instance_id!r}")
        self.pes[instance_id] = ProcessingElement(spec=get_pe(name), **kwargs)
        self.graph.add_node(instance_id)
        return instance_id

    def connect(self, src: str, dst: str) -> None:
        """Configure a switch path from ``src`` to ``dst``."""
        for endpoint in (src, dst):
            if endpoint not in self.pes:
                raise FabricError(f"unknown PE instance {endpoint!r}")
        if src == dst:
            raise FabricError("a PE cannot feed itself (no loops in SCALO)")
        self.graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(src, dst)
            raise FabricError(
                f"connecting {src} -> {dst} would create a cycle; "
                "SCALO pipelines are loop-free"
            )

    def disconnect(self, src: str, dst: str) -> None:
        if not self.graph.has_edge(src, dst):
            raise FabricError(f"no connection {src} -> {dst}")
        self.graph.remove_edge(src, dst)

    def pipeline(self, name: str, instance_ids: list[str]) -> Pipeline:
        """Materialise a pipeline along connected instances.

        Validates that consecutive instances are actually wired together.
        """
        pipe = Pipeline(name)
        for i, instance_id in enumerate(instance_ids):
            if instance_id not in self.pes:
                raise FabricError(f"unknown PE instance {instance_id!r}")
            if i and not self.graph.has_edge(instance_ids[i - 1], instance_id):
                raise FabricError(
                    f"{instance_ids[i - 1]} is not wired to {instance_id}"
                )
            pipe.add(self.pes[instance_id])
        return pipe

    def wire_chain(self, name: str, pe_names: list[str], **pe_kwargs) -> Pipeline:
        """Convenience: instantiate and connect a fresh chain of PEs."""
        ids = [self.add_pe(pe_name, **pe_kwargs) for pe_name in pe_names]
        for src, dst in zip(ids, ids[1:]):
            self.connect(src, dst)
        return self.pipeline(name, ids)

    # -- roll-ups ---------------------------------------------------------------

    @property
    def static_uw(self) -> float:
        return sum(pe.static_uw for pe in self.pes.values())

    @property
    def dynamic_uw(self) -> float:
        return sum(pe.dynamic_uw for pe in self.pes.values())

    @property
    def power_mw(self) -> float:
        return (self.static_uw + self.dynamic_uw) / 1e3

    @property
    def area_kge(self) -> float:
        return sum(pe.spec.area_kge for pe in self.pes.values())

    def topological_order(self) -> list[str]:
        """Instances in dataflow order."""
        return list(nx.topological_sort(self.graph))

"""The SCALO processing-element catalog (paper Table 1 + Table 4).

Every PE the paper synthesised at 28 nm is described here with its maximum
frequency, leakage power, SRAM leakage, dynamic power per electrode channel,
latency, and area.  Blank latency entries in the paper (data-dependent PEs)
are represented as ``None``; the storage controller's 0.03-0.04 ms range is
kept as min/max.

These numbers are the paper's measured values — the reproduction treats them
as ground truth for the analytical power/latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownPEError


@dataclass(frozen=True)
class PESpec:
    """Static description of one processing element.

    Attributes mirror the columns of paper Table 1:

    * ``max_freq_mhz`` — highest clock the PE was synthesised for.
    * ``leakage_uw`` — logic leakage power at 40 C (uW).
    * ``sram_uw`` — SRAM leakage, reported separately in the paper (uW).
    * ``dyn_uw_per_electrode`` — dynamic power per electrode channel at the
      maximum frequency (uW); scales linearly with the clock divider.
    * ``latency_ms`` — processing latency for one window/batch of data, or
      ``None`` for data-dependent PEs (AES, LZ, MA, RC, LIC).
    * ``latency_max_ms`` — upper bound for PEs with a latency range (SC).
    * ``area_kge`` — area in kilo-gate-equivalents.
    * ``function`` — human-readable function (paper Table 4).
    """

    name: str
    function: str
    max_freq_mhz: float
    leakage_uw: float
    sram_uw: float
    dyn_uw_per_electrode: float
    latency_ms: float | None
    area_kge: float
    latency_max_ms: float | None = None

    @property
    def static_uw(self) -> float:
        """Total static (leakage + SRAM) power in uW."""
        return self.leakage_uw + self.sram_uw

    @property
    def data_dependent(self) -> bool:
        """True when the paper reports no fixed latency for this PE."""
        return self.latency_ms is None


def _pe(
    name: str,
    function: str,
    max_freq_mhz: float,
    leakage_uw: float,
    sram_uw: float,
    dyn_uw: float,
    latency_ms: float | None,
    area_kge: float,
    latency_max_ms: float | None = None,
) -> PESpec:
    return PESpec(
        name=name,
        function=function,
        max_freq_mhz=max_freq_mhz,
        leakage_uw=leakage_uw,
        sram_uw=sram_uw,
        dyn_uw_per_electrode=dyn_uw,
        latency_ms=latency_ms,
        area_kge=area_kge,
        latency_max_ms=latency_max_ms,
    )


#: Paper Table 1, one entry per row.  Ordering matches the paper.
PE_CATALOG: dict[str, PESpec] = {
    spec.name: spec
    for spec in (
        _pe("ADD", "Matrix Adder", 3, 0.08, 0.00, 0.983, 2, 68),
        _pe("AES", "AES Encryption", 5, 53, 0.00, 0.61, None, 55),
        _pe("BBF", "Butterworth Bandpass Filter", 6, 66.00, 19.88, 0.35, 4.00, 23),
        _pe("BMUL", "Block Multiplier", 3, 145, 0.00, 1.544, 2, 77),
        _pe("CCHECK", "Collision Check", 16.393, 7.20, 0.88, 0.14, 0.50, 3),
        _pe("CSEL", "Channel Selection", 0.1, 4.00, 0.00, 6.00, 0.04, 2),
        _pe("DCOMP", "Decompression", 16.393, 7.20, 0.00, 0.14, 0.50, 3),
        _pe("DTW", "Dynamic Time Warping", 50, 167.93, 48.50, 26.94, 0.003, 72),
        _pe("DWT", "Discrete Wavelet Transform", 3, 4, 0.00, 0.02, 4, 2),
        _pe("EMDH", "Earth-Mover's Distance Hash", 0.03, 10.47, 0.00, 0.00, 0.04, 9),
        _pe("FFT", "Fast Fourier Transform", 15.7, 141.97, 85.58, 9.02, 4.00, 22),
        _pe("GATE", "Gate Module to buffer data", 5, 67.00, 34.37, 0.63, 0.00, 17),
        _pe("HCOMP", "Hash Compression", 2.88, 77.00, 0.00, 0.65, 4.00, 4),
        _pe("HCONV", "Hash Convolution Operation", 3, 89.89, 0.00, 0.80, 1.50, 8),
        _pe("HFREQ", "Hash Frequency", 2.88, 61.98, 0.00, 0.52, 4.00, 6),
        _pe("INV", "Matrix Inverter", 41, 0.267, 0.00, 11.875, 30, 167),
        _pe("LIC", "Linear Integer Coding", 22.5, 63, 6.00, 3.26, None, 55),
        _pe("LZ", "Lempel Ziv", 129, 150, 95.00, 30.43, None, 55),
        _pe("MA", "Markov Chain", 92, 194, 67.00, 32.76, None, 55),
        _pe("NEO", "Non-linear Energy Operator", 3, 12.00, 0.00, 0.03, 4.00, 5),
        _pe("NGRAM", "Hash Ngram Generation", 0.2, 15.69, 9.07, 0.08, 1.50, 10),
        _pe("NPACK", "Network Packing", 3, 3.53, 0.00, 5.49, 0.008, 2),
        _pe("RC", "Range Coding", 90, 29, 0.00, 7.95, None, 55),
        _pe("SBP", "Spike Band Power", 3, 12.00, 0.00, 0.03, 0.03, 6),
        _pe("SC", "Storage Controller", 3.2, 95.30, 64.49, 1.64, 0.03, 12, 4.0),
        _pe("SUB", "Matrix Subtractor", 3, 0.08, 0.00, 0.988, 2, 69),
        _pe("SVM", "Support Vector Machine", 3, 99.00, 53.58, 0.53, 1.67, 8),
        _pe("THR", "Threshold", 16, 2.00, 0.00, 0.11, 0.06, 1),
        _pe("TOK", "Tokenizer", 6, 5.57, 0.00, 0.14, 0.001, 3),
        _pe("UNPACK", "Network Unpacking", 3, 3.53, 0.00, 5.49, 0.008, 2),
        _pe("XCOR", "Pearson's Cross Correlation", 85, 377.00, 306.88, 44.11, 4.00, 81),
    )
}

#: PEs that are new in SCALO (vs. its HALO predecessor).  HALO+NVM, the
#: strongest prior-work baseline, lacks these and must emulate them on the
#: 20 MHz RISC-V microcontroller (paper §6.1).
SCALO_ONLY_PES = frozenset(
    {
        "HCONV", "NGRAM", "EMDH", "CCHECK", "CSEL", "HCOMP", "HFREQ",
        "DCOMP", "DTW", "NPACK", "UNPACK", "ADD", "SUB", "BMUL", "INV",
    }
)


def get_pe(name: str) -> PESpec:
    """Return the catalog entry for ``name``.

    Raises:
        UnknownPEError: if ``name`` is not a PE in Table 1.
    """
    try:
        return PE_CATALOG[name]
    except KeyError:
        raise UnknownPEError(name) from None


def catalog_names() -> list[str]:
    """All PE names in paper order."""
    return list(PE_CATALOG)


def total_area_kge(names: list[str] | None = None) -> float:
    """Sum of PE areas (KGE) for ``names`` (default: the whole catalog)."""
    if names is None:
        names = catalog_names()
    return sum(get_pe(n).area_kge for n in names)


def format_table1() -> str:
    """Render the catalog as the rows of paper Table 1 (for benches/docs)."""
    header = (
        f"{'PE':8s} {'MaxFreq(MHz)':>12s} {'Leak(uW)':>9s} {'SRAM(uW)':>9s} "
        f"{'Dyn/Elec(uW)':>13s} {'Latency(ms)':>12s} {'Area(KGE)':>10s}"
    )
    lines = [header, "-" * len(header)]
    for spec in PE_CATALOG.values():
        if spec.latency_ms is None:
            lat = "-"
        elif spec.latency_max_ms is not None:
            lat = f"{spec.latency_ms:g}-{spec.latency_max_ms:g}"
        else:
            lat = f"{spec.latency_ms:g}"
        lines.append(
            f"{spec.name:8s} {spec.max_freq_mhz:12g} {spec.leakage_uw:9g} "
            f"{spec.sram_uw:9g} {spec.dyn_uw_per_electrode:13g} {lat:>12s} "
            f"{spec.area_kge:10g}"
        )
    return "\n".join(lines)

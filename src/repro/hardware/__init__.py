"""Hardware substrate: PE catalog, clock domains, fabric, microcontroller.

This package models the per-implant processor of paper Fig. 2b using the
published Table 1 numbers.  Everything is deterministic in latency and
power, which is the property SCALO's ILP scheduler relies on.
"""

from repro.hardware.catalog import (
    PE_CATALOG,
    PESpec,
    SCALO_ONLY_PES,
    catalog_names,
    format_table1,
    get_pe,
    total_area_kge,
)
from repro.hardware.fabric import Fabric
from repro.hardware.microcontroller import (
    MC_FREQ_MHZ,
    Microcontroller,
    SOFTWARE_ROUTINES,
    SoftwareRoutine,
)
from repro.hardware.node_fabric import (
    block_unit_ids,
    mad_cluster_ids,
    node_area_kge,
    node_static_power_mw,
    standard_node_fabric,
)
from repro.hardware.pe import ClockDomain, ProcessingElement
from repro.hardware.pipeline import Pipeline, PipelineStage, chain

__all__ = [
    "PE_CATALOG",
    "PESpec",
    "SCALO_ONLY_PES",
    "catalog_names",
    "format_table1",
    "get_pe",
    "total_area_kge",
    "Fabric",
    "MC_FREQ_MHZ",
    "Microcontroller",
    "SOFTWARE_ROUTINES",
    "SoftwareRoutine",
    "block_unit_ids",
    "mad_cluster_ids",
    "node_area_kge",
    "node_static_power_mw",
    "standard_node_fabric",
    "ClockDomain",
    "ProcessingElement",
    "Pipeline",
    "PipelineStage",
    "chain",
]

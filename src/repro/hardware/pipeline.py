"""Pipeline composition: latency and power roll-up over chains of PEs.

A SCALO application maps to one or more linear chains of PEs (plus forks
and joins handled by the fabric).  Because every PE has deterministic
latency and power, a pipeline's end-to-end latency is the sum of stage
latencies and its power is the sum of stage powers — the determinism that
makes ILP scheduling possible (paper §3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, DeadlineExceeded, PowerBudgetExceeded
from repro.hardware.pe import ProcessingElement


@dataclass
class PipelineStage:
    """One stage of a pipeline: a PE plus an optional latency override.

    ``latency_override_ms`` supplies the latency for data-dependent PEs
    (e.g. the SC storage controller, whose latency depends on whether the
    NVM is busy) or for PEs processing non-standard batch sizes.
    """

    pe: ProcessingElement
    latency_override_ms: float | None = None

    @property
    def latency_ms(self) -> float:
        if self.latency_override_ms is not None:
            return self.latency_override_ms
        return self.pe.latency_ms


@dataclass
class Pipeline:
    """An ordered chain of PE stages with roll-up metrics."""

    name: str
    stages: list[PipelineStage] = field(default_factory=list)

    def add(
        self, pe: ProcessingElement, latency_override_ms: float | None = None
    ) -> "Pipeline":
        """Append a stage; returns self for chaining."""
        self.stages.append(PipelineStage(pe, latency_override_ms))
        return self

    @property
    def pe_names(self) -> list[str]:
        return [stage.pe.name for stage in self.stages]

    @property
    def latency_ms(self) -> float:
        """End-to-end latency: sum of stage latencies."""
        return sum(stage.latency_ms for stage in self.stages)

    @property
    def static_uw(self) -> float:
        return sum(stage.pe.static_uw for stage in self.stages)

    @property
    def dynamic_uw(self) -> float:
        return sum(stage.pe.dynamic_uw for stage in self.stages)

    @property
    def power_mw(self) -> float:
        return (self.static_uw + self.dynamic_uw) / 1e3

    def set_electrodes(self, n_electrodes: float) -> None:
        """Drive every stage with ``n_electrodes`` channels."""
        if n_electrodes < 0:
            raise ConfigurationError("electrode count cannot be negative")
        for stage in self.stages:
            stage.pe.n_electrodes = n_electrodes

    def check_deadline(self, deadline_ms: float) -> None:
        """Raise :class:`DeadlineExceeded` if the pipeline is too slow."""
        if self.latency_ms > deadline_ms:
            raise DeadlineExceeded(self.latency_ms, deadline_ms, self.name)

    def check_power(self, budget_mw: float) -> None:
        """Raise :class:`PowerBudgetExceeded` if the pipeline is too hungry."""
        if self.power_mw > budget_mw:
            raise PowerBudgetExceeded(self.power_mw, budget_mw, self.name)

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        chain = " -> ".join(self.pe_names)
        return f"Pipeline({self.name}: {chain})"


def chain(name: str, *pes: ProcessingElement) -> Pipeline:
    """Build a pipeline from PEs in order."""
    pipeline = Pipeline(name)
    for pe in pes:
        pipeline.add(pe)
    return pipeline

"""Processing-element instances: clock domains, frequency division, power.

SCALO composes PEs in a GALS (globally asynchronous, locally synchronous)
architecture: every PE sits in its own clock domain and can be slowed to
``f_max / k`` for an integer divider ``k`` chosen to just sustain the
application's data rate (paper §3.2, "Optimal Power Tuning").  Dynamic power
scales linearly with frequency; static power is always paid while the PE is
powered on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hardware.catalog import PESpec, get_pe


@dataclass
class ClockDomain:
    """A pausable per-PE clock running at ``max_freq_mhz / divider``.

    The divider is realised in hardware as a counter passing through every
    k-th pulse; it costs only microwatts (paper cites QDI constant-time
    counters) so we ignore its power.
    """

    max_freq_mhz: float
    divider: int = 1

    def __post_init__(self) -> None:
        if self.max_freq_mhz <= 0:
            raise ConfigurationError("clock max frequency must be positive")
        if self.divider < 1 or int(self.divider) != self.divider:
            raise ConfigurationError("clock divider must be a positive integer")

    @property
    def freq_mhz(self) -> float:
        """Effective clock frequency after division."""
        return self.max_freq_mhz / self.divider

    def slowest_divider_for(self, required_freq_mhz: float) -> int:
        """Largest integer divider whose output still meets ``required_freq_mhz``.

        This is the power-optimal setting: the slowest clock that sustains
        the target data rate.
        """
        if required_freq_mhz <= 0:
            raise ConfigurationError("required frequency must be positive")
        if required_freq_mhz > self.max_freq_mhz:
            raise ConfigurationError(
                f"required {required_freq_mhz} MHz exceeds max "
                f"{self.max_freq_mhz} MHz"
            )
        return int(self.max_freq_mhz // required_freq_mhz)


@dataclass
class ProcessingElement:
    """A live PE instance: a catalog spec plus a clock-domain configuration.

    ``n_electrodes`` is the number of electrode channels whose data stream
    this PE instance is currently processing; dynamic power is the catalog's
    per-electrode figure scaled by channel count and clock ratio.

    ``pairwise`` marks PEs whose work grows with the number of channel
    *pairs* rather than channels (the XCOR feature extractor correlating
    electrode pairs); their dynamic power picks up an extra ``n/pair_norm``
    factor, which is what bends seizure detection's throughput-vs-power
    curve quadratic in the paper (§6.2).
    """

    spec: PESpec
    clock: ClockDomain = field(default=None)  # type: ignore[assignment]
    n_electrodes: float = 0.0
    pairwise: bool = False
    #: channel-pair normalisation: at pair_norm channels a pairwise PE burns
    #: exactly its catalog per-electrode dynamic power per channel.
    pair_norm: float = 96.0

    def __post_init__(self) -> None:
        if self.clock is None:
            self.clock = ClockDomain(self.spec.max_freq_mhz)
        if self.n_electrodes < 0:
            raise ConfigurationError("electrode count cannot be negative")

    @classmethod
    def from_name(cls, name: str, **kwargs) -> "ProcessingElement":
        """Instantiate a PE by its Table 1 name."""
        return cls(spec=get_pe(name), **kwargs)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def freq_mhz(self) -> float:
        return self.clock.freq_mhz

    @property
    def clock_ratio(self) -> float:
        """Fraction of the maximum frequency the PE currently runs at."""
        return self.clock.freq_mhz / self.spec.max_freq_mhz

    # -- power ----------------------------------------------------------------

    @property
    def static_uw(self) -> float:
        """Leakage + SRAM power (uW); paid whenever the PE is on."""
        return self.spec.static_uw

    @property
    def dynamic_uw(self) -> float:
        """Dynamic power (uW) at the current channel count and clock."""
        per_channel = self.spec.dyn_uw_per_electrode * self.clock_ratio
        if self.pairwise:
            per_channel *= self.n_electrodes / self.pair_norm
        return per_channel * self.n_electrodes

    @property
    def power_uw(self) -> float:
        """Total power (uW)."""
        return self.static_uw + self.dynamic_uw

    @property
    def power_mw(self) -> float:
        """Total power (mW)."""
        return self.power_uw / 1e3

    # -- latency ---------------------------------------------------------------

    @property
    def latency_ms(self) -> float:
        """Latency for one window/batch at the current configuration.

        The paper's multi-rail frequency scheme keeps PE latency at the
        Table 1 value regardless of how many inputs are active, as long as
        the clock meets the data rate; we model exactly that.  For
        data-dependent PEs the caller must supply latency externally.
        """
        if self.spec.latency_ms is None:
            raise ConfigurationError(
                f"{self.name} has data-dependent latency; "
                "compute it from the workload instead"
            )
        return self.spec.latency_ms

    # -- tuning ----------------------------------------------------------------

    def tune_for_load(self, load_fraction: float) -> None:
        """Pick the slowest clock that sustains ``load_fraction`` of max rate.

        ``load_fraction`` is the PE's required processing rate relative to
        the rate it sustains at maximum frequency (e.g. electrodes handled
        over electrodes handled at f_max).
        """
        if not 0 < load_fraction <= 1:
            raise ConfigurationError(
                f"load fraction must be in (0, 1], got {load_fraction}"
            )
        self.clock.divider = self.clock.slowest_divider_for(
            self.spec.max_freq_mhz * load_fraction
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessingElement({self.name}, {self.freq_mhz:g} MHz, "
            f"{self.n_electrodes:g} ch, {self.power_uw:.1f} uW)"
        )

"""The on-node RISC-V microcontroller (MC) model.

The MC configures PE pipelines, runs stimulation commands, executes
algorithms with no dedicated PE (e.g. the fast 1-D EMD), and performs
system chores like clock synchronisation (paper §3.2).  It runs at a fixed
20 MHz with 8 KB SRAM.

For the architecture comparison (paper §6.1) the key property is that
running a task on the MC instead of its PE is 10-100x slower: HALO+NVM
must hash and collision-check on the MC and loses up to 385x throughput.
We model MC execution time via a cycles-per-item cost for each emulated
task, calibrated so the paper's relative gaps reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: MC clock (paper §3.2).
MC_FREQ_MHZ = 20.0

#: MC on-chip SRAM (bytes).
MC_SRAM_BYTES = 8 * 1024

#: Active power of the MC core (mW).  The paper does not tabulate the MC in
#: Table 1; a 20 MHz in-order RV32 core in 28 nm burns on the order of one
#: milliwatt, and the artifact's HALO.json uses a similar allowance.
MC_ACTIVE_POWER_MW = 1.0

#: Idle (retention) power of the MC (mW).
MC_IDLE_POWER_MW = 0.05


@dataclass(frozen=True)
class SoftwareRoutine:
    """A task the MC can run in software, with a per-item cycle cost.

    ``cycles_per_item`` is the dominant cost: cycles to process one unit of
    work (one sample for hashing, one hash for collision checks, one
    histogram bin for EMD).  Costs are order-of-magnitude estimates for a
    scalar in-order core; what matters for the reproduction is the ~100x
    gap versus the dedicated PEs, which the paper reports directly.
    """

    name: str
    cycles_per_item: float

    def items_per_second(self, freq_mhz: float = MC_FREQ_MHZ) -> float:
        return freq_mhz * 1e6 / self.cycles_per_item

    def time_ms(self, n_items: float, freq_mhz: float = MC_FREQ_MHZ) -> float:
        if n_items < 0:
            raise ConfigurationError("item count cannot be negative")
        return n_items * self.cycles_per_item / (freq_mhz * 1e3)


#: Software routines used by the paper's baselines and by SCALO itself.
SOFTWARE_ROUTINES: dict[str, SoftwareRoutine] = {
    # SSH sketch: one MAC + sign per sample per sliding window position.
    "hash_sketch": SoftwareRoutine("hash_sketch", cycles_per_item=24.0),
    # Weighted min-hash over n-gram counts.
    "hash_minhash": SoftwareRoutine("hash_minhash", cycles_per_item=180.0),
    # Binary-search collision check per received hash (log2(n) compares
    # plus bookkeeping) — slower than the CCHECK PE's 0.5 ms for a batch.
    "collision_check": SoftwareRoutine("collision_check", cycles_per_item=400.0),
    # Fast 1-D EMD between two histograms, per bin.
    "emd": SoftwareRoutine("emd", cycles_per_item=60.0),
    # DTW cell updates (banded), per cell.
    "dtw_cell": SoftwareRoutine("dtw_cell", cycles_per_item=12.0),
    # Matrix multiply-accumulate, per MAC.
    "mac": SoftwareRoutine("mac", cycles_per_item=8.0),
    # SNTP exchange processing, per message.
    "sntp": SoftwareRoutine("sntp", cycles_per_item=2_000.0),
    # PE/pipeline reconfiguration, per switch setting.
    "reconfigure": SoftwareRoutine("reconfigure", cycles_per_item=500.0),
}


@dataclass
class Microcontroller:
    """A 20 MHz RISC-V service core with a small SRAM."""

    freq_mhz: float = MC_FREQ_MHZ
    sram_bytes: int = MC_SRAM_BYTES
    active_power_mw: float = MC_ACTIVE_POWER_MW
    idle_power_mw: float = MC_IDLE_POWER_MW
    #: accumulated busy time (ms) since last reset, for utilisation accounting
    busy_ms: float = field(default=0.0)

    def run(self, routine: str, n_items: float) -> float:
        """Execute ``routine`` over ``n_items``; returns elapsed ms."""
        try:
            software = SOFTWARE_ROUTINES[routine]
        except KeyError:
            raise ConfigurationError(f"unknown MC routine {routine!r}") from None
        elapsed_ms = software.time_ms(n_items, self.freq_mhz)
        self.busy_ms += elapsed_ms
        return elapsed_ms

    def throughput_items_per_s(self, routine: str) -> float:
        """Sustained rate for ``routine`` when the MC does nothing else."""
        try:
            software = SOFTWARE_ROUTINES[routine]
        except KeyError:
            raise ConfigurationError(f"unknown MC routine {routine!r}") from None
        return software.items_per_second(self.freq_mhz)

    def energy_mj(self, elapsed_ms: float) -> float:
        """Active energy for ``elapsed_ms`` of computation (mJ)."""
        return self.active_power_mw * elapsed_ms / 1e3

    def reset_accounting(self) -> None:
        self.busy_ms = 0.0

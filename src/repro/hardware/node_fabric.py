"""The full per-node processor of paper Fig. 2b.

Instantiates every PE a SCALO node carries: the complete Table 1 catalog
plus the replicated LIN ALG cluster (ten multiply-add units, four of
them tiled into the 4-way block for large matrices).  Used for area and
idle-power accounting of the whole chip, and as the substrate on which
deployments wire their pipelines.
"""

from __future__ import annotations

from repro.hardware.catalog import catalog_names
from repro.hardware.fabric import Fabric
from repro.linalg.tiling import BLOCK_WAYS, MAD_CLUSTER_SIZE

#: The multiply-add PE that the LIN ALG cluster replicates (paper §3.2:
#: ten MAD units; Table 1 lists the block multiplier that realises them).
MAD_PE = "BMUL"


def standard_node_fabric() -> Fabric:
    """Every PE of Fig. 2b, unwired (switch programs come from codegen).

    One instance of each catalog PE, plus nine extra MAD replicas so the
    cluster totals ten; the first ``BLOCK_WAYS`` replicas form the tiled
    block unit.
    """
    fabric = Fabric()
    for name in catalog_names():
        fabric.add_pe(name)
    for _ in range(MAD_CLUSTER_SIZE - 1):
        fabric.add_pe(MAD_PE)
    return fabric


def mad_cluster_ids(fabric: Fabric) -> list[str]:
    """Instance ids of the MAD cluster, block-unit members first."""
    ids = sorted(
        key for key in fabric.pes if key.split(".")[0] == MAD_PE
    )
    return ids[:MAD_CLUSTER_SIZE]


def block_unit_ids(fabric: Fabric) -> list[str]:
    """The four MAD replicas ganged into the 4-way block multiplier."""
    return mad_cluster_ids(fabric)[:BLOCK_WAYS]


def node_area_kge() -> float:
    """Total logic area of one node's fabric (KGE)."""
    return standard_node_fabric().area_kge


def node_static_power_mw() -> float:
    """Leakage + SRAM power with every PE powered (the worst case; real
    schedules power-gate unused PEs)."""
    return standard_node_fabric().static_uw / 1e3

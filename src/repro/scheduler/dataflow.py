"""Dataflow DAGs: the intermediate representation between queries and PEs.

Programs are parsed into directed acyclic dataflow graphs (paper §3.7);
each vertex is an operator bound to a PE (or the MC), each edge carries a
data rate.  The compiler lowers these graphs onto the fabric and the ILP
maps them to flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import CompilationError

#: Operator name -> the PE (or "MC") that implements it.
OPERATOR_PES: dict[str, str] = {
    "window": "GATE",
    "fft": "FFT",
    "bbf": "BBF",
    "xcor": "XCOR",
    "svm": "SVM",
    "sbp": "SBP",
    "neo": "NEO",
    "thr": "THR",
    "dwt": "DWT",
    "hash": "HCONV",
    "ngram": "NGRAM",
    "emdh": "EMDH",
    "ccheck": "CCHECK",
    "dtw": "DTW",
    "emd": "MC",
    "kf": "INV",
    "nn": "BMUL",
    "compress": "HCOMP",
    "decompress": "DCOMP",
    "pack": "NPACK",
    "unpack": "UNPACK",
    "store": "SC",
    "load": "SC",
    "select": "CSEL",
    "seizure_detect": "SVM",
    "stimulate": "MC",
    "call_runtime": "MC",
    "map": "GATE",
}


@dataclass(frozen=True)
class Operator:
    """One dataflow vertex."""

    op_id: int
    name: str
    params: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def pe_name(self) -> str:
        try:
            return OPERATOR_PES[self.name]
        except KeyError:
            raise CompilationError(
                f"operator {self.name!r} has no PE mapping"
            ) from None

    @property
    def runs_on_mc(self) -> bool:
        return OPERATOR_PES.get(self.name) == "MC"


@dataclass
class DataflowGraph:
    """A DAG of operators."""

    graph: nx.DiGraph = field(default_factory=nx.DiGraph)
    _next_id: int = 0

    def add_operator(self, name: str, **params) -> Operator:
        if name not in OPERATOR_PES:
            raise CompilationError(f"unknown operator {name!r}")
        op = Operator(self._next_id, name, params)
        self._next_id += 1
        self.graph.add_node(op)
        return op

    def connect(self, src: Operator, dst: Operator) -> None:
        if src not in self.graph or dst not in self.graph:
            raise CompilationError("operators must be added before wiring")
        self.graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(src, dst)
            raise CompilationError(
                "dataflow must stay acyclic (SCALO has no loops)"
            )

    def chain(self, names: list[str]) -> list[Operator]:
        """Add and wire a linear chain of operators."""
        ops = [self.add_operator(name) for name in names]
        for a, b in zip(ops, ops[1:]):
            self.connect(a, b)
        return ops

    @property
    def operators(self) -> list[Operator]:
        return list(nx.topological_sort(self.graph))

    @property
    def pe_names(self) -> list[str]:
        """The PEs this graph needs, in dataflow order (MC ops excluded)."""
        return [op.pe_name for op in self.operators if not op.runs_on_mc]

    def sources(self) -> list[Operator]:
        return [op for op in self.graph if self.graph.in_degree(op) == 0]

    def sinks(self) -> list[Operator]:
        return [op for op in self.graph if self.graph.out_degree(op) == 0]

    def validate(self) -> None:
        """Raise if the graph is empty or disconnected."""
        if not self.graph:
            raise CompilationError("empty dataflow graph")
        undirected = self.graph.to_undirected()
        if not nx.is_connected(undirected):
            raise CompilationError("dataflow graph is disconnected")

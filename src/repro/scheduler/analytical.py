"""Closed-form throughput model (the artifact's `lineqn` shortcut).

The paper's artifact notes that large ILP instances are slow, so it also
ships "reduced linear equations that resulted from a prior solution" for
fast plotting.  This module is our equivalent: for a *single* flow the
LP's optimum is simply the minimum of four analytic caps (power, network
latency, NVM bandwidth, electrode count).  Tests assert agreement with
the full LP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.packet import PACKET_OVERHEAD_BITS
from repro.network.tdma import TDMAConfig
from repro.scheduler.ilp import NETWORK_UTILISATION_CAP
from repro.scheduler.model import (
    BASE_STATIC_MW,
    MI_KF_NVM_BYTES_PER_E2,
    PAIR_NORM,
    TaskModel,
)
from repro.storage.nvm import NVMDevice
from repro.units import NODE_POWER_CAP_MW, electrodes_to_mbps


@dataclass(frozen=True)
class ThroughputBreakdown:
    """The individual caps and the binding one."""

    power_cap: float
    network_cap: float
    nvm_cap: float
    electrode_cap: float

    @property
    def electrodes(self) -> float:
        return max(
            0.0,
            min(self.power_cap, self.network_cap, self.nvm_cap,
                self.electrode_cap),
        )

    @property
    def binding(self) -> str:
        caps = {
            "power": self.power_cap,
            "network": self.network_cap,
            "nvm": self.nvm_cap,
            "electrodes": self.electrode_cap,
        }
        return min(caps, key=caps.get)  # type: ignore[arg-type]


def static_power_mw(task: TaskModel) -> float:
    """Static power when only this task runs on a node."""
    return task.static_mw + BASE_STATIC_MW


def analytic_electrodes(
    task: TaskModel,
    n_nodes: int,
    power_budget_mw: float = NODE_POWER_CAP_MW,
    electrode_cap: float | None = None,
    tdma: TDMAConfig | None = None,
) -> ThroughputBreakdown:
    """Per-flow electrode caps (per node, or total for centralised)."""
    tdma = tdma if tdma is not None else TDMAConfig()
    dyn_budget_mw = power_budget_mw - static_power_mw(task)

    # power
    share = 1.0 / n_nodes if task.centralised else 1.0
    if dyn_budget_mw <= 0:
        power_cap = 0.0
    else:
        a = task.pairwise_uw / PAIR_NORM
        b = task.dyn_uw_per_electrode * share
        budget_uw = dyn_budget_mw * 1e3
        if a == 0:
            power_cap = budget_uw / b if b > 0 else float("inf")
        else:
            power_cap = (-b + np.sqrt(b * b + 4 * a * budget_uw)) / (2 * a)

    # network latency (all-to-one aggregations pipeline: no hard cap)
    if task.comm in ("none", "all_one"):
        network_cap = float("inf")
    else:
        mult = 1.0 if task.comm == "one_all" else float(n_nodes)
        rate_bits_per_ms = tdma.radio.data_rate_mbps * 1e3
        fixed = (
            (PACKET_OVERHEAD_BITS + 8 * task.wire_bytes_fixed)
            / rate_bits_per_ms
            + tdma.guard_ms
        )
        slope = 8 * task.wire_bytes_per_electrode / rate_bits_per_ms
        remaining = task.net_budget_ms - mult * fixed
        if remaining <= 0:
            network_cap = 0.0
        elif slope == 0:
            network_cap = float("inf")
        else:
            latency_cap = remaining / (mult * slope)
            # the shared medium cannot exceed its duty-cycle ceiling
            util_budget = (
                NETWORK_UTILISATION_CAP - mult * fixed / task.period_ms
            )
            util_cap = (
                util_budget * task.period_ms / (mult * slope)
                if util_budget > 0
                else 0.0
            )
            network_cap = min(latency_cap, util_cap)

    # NVM bandwidth
    bw_bytes_per_ms = NVMDevice.read_bandwidth_mbps() * 1e3 / 8
    if task.centralised:
        budget_bytes = bw_bytes_per_ms * task.period_ms
        nvm_cap = float(np.sqrt(budget_bytes / MI_KF_NVM_BYTES_PER_E2))
    elif task.nvm_bytes_per_electrode_period > 0:
        nvm_cap = (
            bw_bytes_per_ms
            * task.period_ms
            / task.nvm_bytes_per_electrode_period
        )
    else:
        nvm_cap = float("inf")

    if electrode_cap is None:
        e_cap = float("inf")
    else:
        e_cap = electrode_cap * n_nodes if task.centralised else electrode_cap
    return ThroughputBreakdown(power_cap, network_cap, nvm_cap, e_cap)


def analytic_throughput_mbps(
    task: TaskModel,
    n_nodes: int,
    power_budget_mw: float = NODE_POWER_CAP_MW,
    electrode_cap: float | None = None,
    tdma: TDMAConfig | None = None,
) -> float:
    """Closed-form twin of :func:`repro.scheduler.ilp.max_throughput_mbps`."""
    breakdown = analytic_electrodes(
        task, n_nodes, power_budget_mw, electrode_cap, tdma
    )
    count = 1.0 if task.centralised else float(n_nodes)
    return electrodes_to_mbps(breakdown.electrodes * count)

"""Configuration-program emission (paper §3.7's final lowering step).

The real toolchain translates the ILP's output into a C program — calls
into a library of predefined functions that set PE parameters and switch
connections — which is then compiled to a RISC-V binary for the per-node
MC.  This module emits that C program as text from a materialised
schedule, so the reproduction covers the full ILP -> binary path up to
the (off-repo) RISC-V compiler.
"""

from __future__ import annotations

from repro.scheduler.schedule import MaterialisedSchedule

_HEADER = """\
/* Auto-generated SCALO node configuration.
 * Produced by the ILP scheduler; compile against scalo_runtime.h
 * and load through the external radio (see paper Sec. 3.7).
 */
#include "scalo_runtime.h"
"""


def emit_config_program(
    materialised: MaterialisedSchedule, node_id: int = 0
) -> str:
    """Render the per-node configuration program as C source text."""
    schedule = materialised.schedule
    lines = [_HEADER]
    lines.append(f"void configure_node_{node_id}(void) {{")
    lines.append(f"    scalo_set_power_budget_mw({schedule.power_budget_mw:g});")
    lines.append("")
    lines.append("    /* per-PE clock dividers (f_max / k) */")
    for pe_name, divider in sorted(materialised.dividers.items()):
        lines.append(f"    scalo_set_clock_divider(PE_{pe_name}, {divider});")
    lines.append("")
    lines.append("    /* flows: electrode allocation and switch routes */")
    for flow_index, allocation in enumerate(schedule.allocations):
        task = allocation.flow.task
        electrodes = int(allocation.electrodes_per_node)
        lines.append(
            f"    scalo_flow_t *flow{flow_index} = "
            f"scalo_new_flow(\"{task.name}\", {electrodes});"
        )
        chain = list(task.pe_names)
        for src, dst in zip(chain, chain[1:]):
            lines.append(
                f"    scalo_connect(flow{flow_index}, "
                f"PE_{src}, PE_{dst});"
            )
        if task.comm != "none":
            lines.append(
                f"    scalo_set_comm(flow{flow_index}, "
                f"COMM_{task.comm.upper()}, "
                f"{task.net_budget_ms:g} /* ms budget */);"
            )
        lines.append("")
    lines.append("    /* TDMA frame */")
    owners = ", ".join(str(o) for o in materialised.tdma_frame.slot_owners)
    lines.append(
        f"    static const uint8_t tdma_frame[] = {{{owners}}};"
    )
    lines.append(
        "    scalo_load_tdma(tdma_frame, sizeof tdma_frame / "
        "sizeof tdma_frame[0]);"
    )
    lines.append("}")
    return "\n".join(lines) + "\n"


def emit_all_nodes(materialised: MaterialisedSchedule) -> dict[int, str]:
    """One program per node (identical allocations, distinct TDMA slots)."""
    return {
        node: emit_config_program(materialised, node)
        for node in range(materialised.schedule.n_nodes)
    }

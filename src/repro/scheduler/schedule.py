"""Schedule materialisation: TDMA slots and per-PE clock dividers.

The ILP's output is translated into the artefacts the hardware consumes
(paper §3.5/3.7): a fixed TDMA slot assignment proportional to each
node's airtime demand, and per-PE clock dividers — the slowest clock that
sustains each PE's share of the electrode stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.hardware.catalog import get_pe
from repro.hardware.pe import ClockDomain
from repro.network.tdma import TDMAConfig, TDMASchedule
from repro.scheduler.ilp import Schedule
from repro.units import ELECTRODES_PER_NODE


def clock_divider_for_load(
    pe_name: str, electrodes: float, reference_electrodes: float = ELECTRODES_PER_NODE
) -> int:
    """The power-optimal divider for a PE processing ``electrodes`` channels.

    A PE at its maximum frequency sustains ``reference_electrodes``
    channels; the divider is the largest integer k with f_max/k still
    meeting the required rate (paper §3.2, "Optimal Power Tuning").
    """
    if electrodes < 0 or reference_electrodes <= 0:
        raise SchedulingError("invalid electrode counts")
    spec = get_pe(pe_name)
    clock = ClockDomain(spec.max_freq_mhz)
    if electrodes == 0:
        return int(spec.max_freq_mhz // (spec.max_freq_mhz / 2**10)) or 1
    load = min(1.0, electrodes / reference_electrodes)
    return clock.slowest_divider_for(spec.max_freq_mhz * load)


@dataclass
class MaterialisedSchedule:
    """PE clock settings plus the TDMA frame for a solved schedule."""

    schedule: Schedule
    dividers: dict[str, int]
    tdma_frame: TDMASchedule


def materialise(
    schedule: Schedule, tdma: TDMAConfig | None = None
) -> MaterialisedSchedule:
    """Emit dividers and a TDMA frame from a solved schedule.

    Slots are allocated round-robin, with each node's slot count
    proportional to the total per-period airtime of the flows (at least
    one slot per node so control traffic can flow).
    """
    tdma = tdma if tdma is not None else TDMAConfig()

    dividers: dict[str, int] = {}
    for allocation in schedule.allocations:
        electrodes = allocation.electrodes_per_node
        for pe_name in allocation.flow.task.pe_names:
            divider = clock_divider_for_load(pe_name, electrodes)
            # a PE shared by several flows must satisfy the fastest demand
            dividers[pe_name] = min(dividers.get(pe_name, divider), divider)

    total_airtime = sum(
        a.airtime_ms_per_period for a in schedule.allocations
    )
    slot_ms = tdma.slot_ms()
    slots_per_node = max(1, round(total_airtime / max(slot_ms, 1e-9)
                                  / schedule.n_nodes))
    frame = TDMASchedule.round_robin(tdma, schedule.n_nodes, slots_per_node)
    return MaterialisedSchedule(schedule, dividers, frame)

"""Greedy water-filling over the exact constraint rows.

The LP's feasible region is a box (per-flow caps and latency rows)
intersected with three budget rows (power, shared-medium utilisation,
NVM bandwidth).  Because the objective is linear, a good solution fills
flows one at a time, each up to the tightest of its private caps and the
remaining budgets — classic water-filling.  Which *order* the flows fill
in decides everything, so the solver runs a small portfolio of
deterministic candidate orderings (per-resource densities, priority
weight, index) plus a few seeded shuffles, and keeps the best objective.
A proportional "water level" candidate (the largest common fraction of
every flow's standalone cap that fits all budgets, in closed form)
covers the case where strict orderings starve a flow that shares a
budget row with a denser one.

Every candidate is feasible *by construction*: an allocation never
exceeds a residual budget, the per-flow power chunk is the exact
quadratic inversion, and budgets are debited with the exact row
coefficients — the same rows :meth:`ConstraintSystem.verify` replays
post-hoc.  At equal seeds the result is byte-identical across runs (the
repo-wide determinism contract): orderings are tried in a fixed
sequence and ties break on the earlier candidate.

Wall-clock is ~100 microseconds per solve — independent of the node
count, because the rows themselves are fleet-size-independent — which
is what buys the >=10x win over the HiGHS LP at fleet scale.
"""

from __future__ import annotations

import random

import numpy as np

from repro.scheduler.constraints import ConstraintSystem

#: Seeded random orderings tried in addition to the deterministic ones.
N_SHUFFLES = 3

#: Relative slack kept on every budget debit so float roundoff can never
#: push a constructed solution over a row.
_MARGIN = 1e-12


def _water_fill(
    cs: ConstraintSystem, order: tuple[int, ...]
) -> tuple[np.ndarray, float]:
    """Fill flows in ``order``; returns (allocation, objective)."""
    electrodes = np.zeros(len(cs.rows))
    power_left = cs.dyn_budget_mw
    util_left = cs.util_rhs
    nvm_left = cs.nvm_budget_bytes_per_ms
    objective = 0.0
    for i in order:
        row = cs.rows[i]
        if row.cap <= 0.0:
            continue
        limit = min(row.cap, row.latency_cap)
        if row.util_slope_per_ms > 0.0:
            limit = min(limit, util_left / row.util_slope_per_ms)
        if row.nvm_per_ms > 0.0:
            limit = min(limit, nvm_left / row.nvm_per_ms)
        limit = min(limit, row.electrodes_for_power(power_left))
        e = max(limit, 0.0) * (1.0 - _MARGIN)
        if e <= 0.0:
            continue
        electrodes[i] = e
        objective += row.objective_density * e
        power_left -= row.dynamic_mw(e)
        util_left -= row.util_slope_per_ms * e
        nvm_left -= row.nvm_per_ms * e
    return electrodes, objective


def _orderings(cs: ConstraintSystem, seed: int) -> list[tuple[int, ...]]:
    """Deduped deterministic candidate orderings plus seeded shuffles."""
    n = len(cs.rows)
    base = list(range(n))
    density = cs.densities
    lin, quad = cs.lin_mw, cs.quad_mw
    caps = np.array([max(row.cap, 1.0) for row in cs.rows])
    power_per_e = lin + quad * caps  # marginal power at the cap

    def per_unit(values: np.ndarray) -> list[int]:
        # highest objective gain per unit of this resource first; flows
        # free on the resource (consumption 0) fill before everything
        with np.errstate(divide="ignore"):
            ratio = np.where(values > 0.0, density / values, np.inf)
        return sorted(base, key=lambda i: (-ratio[i], i))

    candidates = [
        tuple(base),
        tuple(sorted(base, key=lambda i: (-density[i], i))),
        tuple(sorted(base, key=lambda i: (-cs.rows[i].weight, i))),
        tuple(per_unit(power_per_e)),
        tuple(per_unit(cs.util_slopes)),
        tuple(per_unit(cs.nvm_rates)),
    ]
    rng = random.Random(seed)
    for _ in range(N_SHUFFLES):
        shuffled = base[:]
        rng.shuffle(shuffled)
        candidates.append(tuple(shuffled))
    unique: list[tuple[int, ...]] = []
    for order in candidates:
        if order not in unique:
            unique.append(order)
    return unique


def _proportional(cs: ConstraintSystem) -> tuple[np.ndarray, float]:
    """Largest feasible common fraction of standalone caps, topped up.

    All three budget rows are (at most quadratically) monotone in the
    common scale factor theta, so the water level is closed-form: the
    tightest of the linear util/NVM caps and the positive root of the
    quadratic power equation.  The remaining slack is then topped up in
    density order.
    """
    standalone = np.array(
        [
            min(
                row.cap,
                row.latency_cap,
                row.electrodes_for_power(cs.dyn_budget_mw),
            )
            if row.cap > 0.0
            else 0.0
            for row in cs.rows
        ]
    )
    # power(theta) = A theta^2 + B theta, util/nvm linear in theta
    a = float(np.dot(cs.quad_mw, standalone * standalone))
    b = float(np.dot(cs.lin_mw, standalone))
    theta = 1.0
    if a > 0.0:
        theta = min(
            theta,
            (-b + np.sqrt(b * b + 4.0 * a * cs.dyn_budget_mw)) / (2.0 * a),
        )
    elif b > 0.0:
        theta = min(theta, cs.dyn_budget_mw / b)
    util_total = float(np.dot(cs.util_slopes, standalone))
    if util_total > 0.0:
        theta = min(theta, cs.util_rhs / util_total)
    nvm_total = float(np.dot(cs.nvm_rates, standalone))
    if nvm_total > 0.0:
        theta = min(theta, cs.nvm_budget_bytes_per_ms / nvm_total)
    start = standalone * max(theta, 0.0) * (1.0 - _MARGIN)

    # top up the slack in density order
    electrodes = start.copy()
    power_left = cs.dyn_budget_mw
    util_left = cs.util_rhs
    nvm_left = cs.nvm_budget_bytes_per_ms
    objective = 0.0
    for i, row in enumerate(cs.rows):
        power_left -= row.dynamic_mw(electrodes[i])
        util_left -= row.util_slope_per_ms * electrodes[i]
        nvm_left -= row.nvm_per_ms * electrodes[i]
        objective += row.objective_density * electrodes[i]
    order = sorted(
        range(len(cs.rows)),
        key=lambda i: (-cs.rows[i].objective_density, i),
    )
    for i in order:
        row = cs.rows[i]
        e0 = electrodes[i]
        if row.cap <= 0.0:
            continue
        limit = min(row.cap, row.latency_cap)
        if row.util_slope_per_ms > 0.0:
            limit = min(limit, e0 + util_left / row.util_slope_per_ms)
        if row.nvm_per_ms > 0.0:
            limit = min(limit, e0 + nvm_left / row.nvm_per_ms)
        # residual power pays for the *increase* on top of e0
        limit = min(
            limit,
            row.electrodes_for_power(power_left + row.dynamic_mw(e0)),
        )
        e = max(limit, e0) * (1.0 - _MARGIN)
        if e <= e0:
            continue
        power_left -= row.dynamic_mw(e) - row.dynamic_mw(e0)
        util_left -= row.util_slope_per_ms * (e - e0)
        nvm_left -= row.nvm_per_ms * (e - e0)
        objective += row.objective_density * (e - e0)
        electrodes[i] = e
    return electrodes, objective


def solve_greedy(cs: ConstraintSystem, seed: int = 0) -> np.ndarray:
    """Best-of-orderings water-filling; feasible by construction."""
    best, best_objective = _proportional(cs)
    for order in _orderings(cs, seed):
        electrodes, objective = _water_fill(cs, order)
        if objective > best_objective:
            best, best_objective = electrodes, objective
    return best

"""Exact constraint rows shared by every solver in the portfolio.

The LP, the greedy water-filler, and the min-cost-flow scheduler must
all agree on what *feasible* means, or a fast heuristic could return a
schedule the fleet cannot actually run.  This module builds the one
authoritative :class:`ConstraintSystem` for a scheduling instance — the
per-flow electrode caps, the exact (quadratic) power row, the per-flow
latency rows, the shared-medium utilisation row, and the NVM-bandwidth
row — and owns:

* **post-hoc verification** (:meth:`ConstraintSystem.verify`): every
  heuristic solution is checked against these rows before it is
  returned, so the portfolio can never silently ship an infeasible
  schedule;
* **schedule materialisation** (:meth:`ConstraintSystem.schedule`): the
  single place allocations and the reported ``network_utilisation`` are
  derived, so the report is the utilisation constraint's left-hand side
  evaluated at the solution — a feasible schedule can never report
  utilisation above :data:`NETWORK_UTILISATION_CAP` (flows whose cap
  collapsed to zero burst nothing and book no airtime);
* **explicit medium-saturation degrade**: when the fixed per-burst
  airtime alone exceeds the utilisation cap, the medium-sharing flows
  cannot run at this node count.  Instead of silently clamping the
  utilisation right-hand side to zero, the builder zeroes those flows'
  caps, books ``scheduler.medium_saturated``, and records the degrade
  on the system (:attr:`ConstraintSystem.medium_saturated`) so callers
  can tell "the optimiser chose zero" from "the medium was full".

Communication-pattern semantics mirror the LP exactly: ``all_one``
aggregations pipeline across periods and therefore appear in neither
the latency rows nor the utilisation row (their airtime is still
reported per allocation); a medium-sharing flow with a positive cap
contributes its fixed burst airtime to utilisation even at zero
allocated electrodes, because the constraint charges it conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.network.packet import PACKET_OVERHEAD_BITS
from repro.network.tdma import TDMAConfig
from repro.scheduler.model import (
    BASE_STATIC_MW,
    MI_KF_NVM_BYTES_PER_E2,
    PAIR_NORM,
    TaskModel,
)
from repro.storage.nvm import NVMDevice
from repro.telemetry import NULL_TELEMETRY, TelemetryLike

if TYPE_CHECKING:
    from repro.scheduler.ilp import Flow, Schedule

#: Medium-utilisation cap: the TDMA schedule cannot fill more than this
#: fraction of wall-clock time (guard slots, resync).
NETWORK_UTILISATION_CAP = 0.95

#: Feasibility slack the verifier grants (LP/solver roundoff, not model
#: error): absolute on electrode counts, relative on budget rows.
VERIFY_TOL = 1e-6


def comm_multiplier(task: TaskModel, n_nodes: int) -> float:
    """How many bursts per period the pattern puts on the shared medium."""
    if task.comm == "none":
        return 0.0
    if task.comm == "one_all":
        return 1.0
    if task.comm == "all_all":
        return float(n_nodes)
    return float(max(0, n_nodes - 1))  # all_one


@dataclass(frozen=True)
class FlowRow:
    """One flow's exact coefficients in every constraint it appears in."""

    flow: "Flow"
    index: int
    #: final upper bound on the decision variable (electrodes; total for
    #: centralised flows, per-node otherwise)
    cap: float
    #: the cap before network-latency zeroing — the LP's breakpoint grid
    #: for quadratic flows is built from this (kept for bit-identity)
    power_grid_cap: float
    #: objective multiplier: aggregate electrodes per decision unit
    count: float
    #: fraction of the linear power cost the binding node pays
    linear_share: float
    #: bursts per period on the shared medium
    mult: float
    #: airtime per electrode per burst (ms)
    airtime_slope_ms: float
    #: airtime per burst independent of electrodes (ms)
    airtime_fixed_ms: float
    #: RHS of this flow's latency row (ms); None = no latency row
    latency_rhs_ms: float | None
    #: whether the flow occupies the shared-medium utilisation budget
    #: (one_all / all_all patterns; all_one pipelines and is exempt)
    shares_medium: bool
    #: electrode coefficient in the utilisation row
    #: (``mult * slope / period``; zero when the flow cannot run)
    util_slope_per_ms: float
    #: NVM bytes per electrode per ms
    nvm_per_ms: float

    @property
    def weight(self) -> float:
        return self.flow.weight

    @property
    def task(self) -> TaskModel:
        return self.flow.task

    @property
    def objective_density(self) -> float:
        """Objective gain per allocated electrode unit."""
        return self.flow.weight * self.count

    def dynamic_mw(self, electrodes: float) -> float:
        """Exact dynamic power on the binding node (mW)."""
        task = self.task
        linear = task.dyn_uw_per_electrode * self.linear_share * electrodes
        quad = task.pairwise_uw * electrodes * electrodes / PAIR_NORM
        return (linear + quad) / 1e3

    def electrodes_for_power(self, dyn_budget_mw: float) -> float:
        """Invert :meth:`dynamic_mw` (closed form, quadratic)."""
        if dyn_budget_mw <= 0:
            return 0.0
        budget_uw = dyn_budget_mw * 1e3
        a = self.task.pairwise_uw / PAIR_NORM
        b = self.task.dyn_uw_per_electrode * self.linear_share
        if a == 0:
            return budget_uw / b if b > 0 else float("inf")
        return (-b + (b * b + 4 * a * budget_uw) ** 0.5) / (2 * a)

    def airtime_ms(self, electrodes: float) -> float:
        """Airtime per period, as reported on the allocation.

        A flow whose cap collapsed to zero cannot burst at all — it
        books no airtime (this is the reporting bugfix: zero-cap flows
        used to contribute ``mult * fixed`` phantom airtime).
        """
        if self.mult == 0.0 or self.cap <= 0.0:
            return 0.0
        return self.mult * (
            self.airtime_slope_ms * electrodes + self.airtime_fixed_ms
        )

    def utilisation(self, electrodes: float) -> float:
        """This flow's share of the medium duty cycle (constraint LHS)."""
        if not self.shares_medium or self.cap <= 0.0:
            return 0.0
        return self.airtime_ms(electrodes) / self.task.period_ms

    @property
    def latency_cap(self) -> float:
        """Max electrodes the latency row admits (inf = no row)."""
        if self.latency_rhs_ms is None:
            return float("inf")
        denom = self.mult * self.airtime_slope_ms
        if denom <= 0:
            return float("inf")
        return self.latency_rhs_ms / denom


@dataclass(frozen=True)
class ConstraintSystem:
    """The exact feasible region of one scheduling instance."""

    n_nodes: int
    power_budget_mw: float
    static_mw: float
    dyn_budget_mw: float
    rows: tuple[FlowRow, ...]
    utilisation_cap: float
    #: fixed burst airtime already committed by capped-in sharing flows
    fixed_util: float
    #: electrode-dependent utilisation budget remaining after fixed_util
    util_rhs: float
    #: True when fixed bursts alone exceeded the cap and the sharing
    #: flows were explicitly degraded to zero (counted, never silent)
    medium_saturated: bool
    nvm_budget_bytes_per_ms: float

    # -- cached coefficient arrays (hot-path fuel for the heuristics) -------------

    @cached_property
    def densities(self) -> np.ndarray:
        """Objective density per row (``weight * count``)."""
        return np.array([row.objective_density for row in self.rows])

    @cached_property
    def lin_mw(self) -> np.ndarray:
        """Linear dynamic power per electrode per row (mW)."""
        return np.array(
            [
                row.task.dyn_uw_per_electrode * row.linear_share / 1e3
                for row in self.rows
            ]
        )

    @cached_property
    def quad_mw(self) -> np.ndarray:
        """Quadratic dynamic power coefficient per row (mW per e^2)."""
        return np.array(
            [
                row.task.pairwise_uw / (1e3 * PAIR_NORM)
                for row in self.rows
            ]
        )

    @cached_property
    def util_slopes(self) -> np.ndarray:
        return np.array([row.util_slope_per_ms for row in self.rows])

    @cached_property
    def nvm_rates(self) -> np.ndarray:
        return np.array([row.nvm_per_ms for row in self.rows])

    # -- evaluation ---------------------------------------------------------------

    def objective(self, electrodes: Sequence[float]) -> float:
        """Priority-weighted aggregate electrodes (the LP objective)."""
        return float(
            sum(
                row.objective_density * e
                for row, e in zip(self.rows, electrodes)
            )
        )

    def node_power_mw(self, electrodes: Sequence[float]) -> float:
        """Exact binding-node power (static + quadratic dynamic)."""
        return self.static_mw + sum(
            row.dynamic_mw(e) for row, e in zip(self.rows, electrodes)
        )

    def utilisation(self, electrodes: Sequence[float]) -> float:
        """Shared-medium duty cycle: the utilisation constraint's LHS."""
        return sum(
            row.utilisation(e) for row, e in zip(self.rows, electrodes)
        )

    def nvm_rate(self, electrodes: Sequence[float]) -> float:
        """NVM traffic (bytes/ms) of the electrode-linear flows."""
        return sum(
            row.nvm_per_ms * e for row, e in zip(self.rows, electrodes)
        )

    # -- verification -------------------------------------------------------------

    def verify(
        self, electrodes: Sequence[float], tol: float = VERIFY_TOL
    ) -> tuple[str, ...]:
        """Check a solution against every exact row; return violations.

        An empty tuple means feasible.  Every heuristic in the portfolio
        calls this before returning, and the property tests call it on
        the ILP's own output.
        """
        violations: list[str] = []
        for row, e in zip(self.rows, electrodes):
            slack = tol * max(1.0, row.cap)
            if e < -tol:
                violations.append(
                    f"{row.task.name}: negative allocation {e:.6g}"
                )
            if e > row.cap + slack:
                violations.append(
                    f"{row.task.name}: {e:.6g} electrodes over cap "
                    f"{row.cap:.6g}"
                )
            if row.latency_rhs_ms is not None:
                lhs = row.mult * row.airtime_slope_ms * e
                if lhs > row.latency_rhs_ms * (1 + tol) + tol:
                    violations.append(
                        f"{row.task.name}: airtime {lhs:.6g} ms over "
                        f"latency budget {row.latency_rhs_ms:.6g} ms"
                    )
        power = self.node_power_mw(electrodes)
        if power > self.power_budget_mw * (1 + tol) + tol:
            violations.append(
                f"node power {power:.6g} mW over budget "
                f"{self.power_budget_mw:.6g} mW"
            )
        util = self.utilisation(electrodes)
        if util > self.utilisation_cap * (1 + tol) + tol:
            violations.append(
                f"medium utilisation {util:.6g} over cap "
                f"{self.utilisation_cap:.6g}"
            )
        nvm = self.nvm_rate(electrodes)
        if nvm > self.nvm_budget_bytes_per_ms * (1 + tol) + tol:
            violations.append(
                f"NVM traffic {nvm:.6g} B/ms over bandwidth "
                f"{self.nvm_budget_bytes_per_ms:.6g} B/ms"
            )
        return tuple(violations)

    # -- materialisation ----------------------------------------------------------

    def schedule(self, electrodes: Sequence[float]) -> "Schedule":
        """Materialise a :class:`~repro.scheduler.ilp.Schedule`.

        The one shared reporting path: ``network_utilisation`` is the
        utilisation constraint's LHS at this solution, so it is capped
        by :data:`NETWORK_UTILISATION_CAP` whenever the solution is
        feasible (``all_one`` aggregations pipeline and are exempt,
        exactly as in the constraint).
        """
        from repro.scheduler.ilp import FlowAllocation, Schedule

        allocations = []
        node_power = self.static_mw
        utilisation = 0.0
        for row, e in zip(self.rows, electrodes):
            e = float(e)
            task = row.task
            allocations.append(
                FlowAllocation(
                    flow=row.flow,
                    electrodes_per_node=(
                        e / self.n_nodes if task.centralised else e
                    ),
                    aggregate_electrodes=e * row.count,
                    power_mw_per_node=task.dynamic_mw(e),
                    airtime_ms_per_period=row.airtime_ms(e),
                )
            )
            node_power += task.dynamic_mw(e)
            utilisation += row.utilisation(e)
        return Schedule(
            allocations=allocations,
            n_nodes=self.n_nodes,
            power_budget_mw=self.power_budget_mw,
            node_power_mw=node_power,
            network_utilisation=utilisation,
        )


def build_constraints(
    n_nodes: int,
    flows: Sequence["Flow"],
    power_budget_mw: float,
    tdma: TDMAConfig,
    round_overhead_ms: float = 0.0,
    unbounded_cap: float = 4096.0,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> ConstraintSystem:
    """Build the exact constraint rows for one scheduling instance.

    Raises:
        SchedulingError: when static power alone exceeds the budget —
            no allocation can fix that.
    """
    static_mw = _static_mw(flows)
    dyn_budget = power_budget_mw - static_mw
    if dyn_budget <= 0:
        raise SchedulingError(
            f"static power {static_mw:.2f} mW exceeds the "
            f"{power_budget_mw:.2f} mW budget"
        )

    rate_kbps_ms = tdma.radio.data_rate_mbps * 1e3  # bits per ms
    bw_bytes_per_ms = NVMDevice.read_bandwidth_mbps() * 1e3 / 8

    caps: list[float] = []
    for flow in flows:
        cap = (
            flow.electrode_cap
            if flow.electrode_cap is not None
            else unbounded_cap
        )
        task = flow.task
        if task.centralised:
            budget_bytes = bw_bytes_per_ms * task.period_ms
            central = float(np.sqrt(budget_bytes / MI_KF_NVM_BYTES_PER_E2))
            cap = min(cap * n_nodes, central)
        share = 1.0 / n_nodes if task.centralised else 1.0
        cap = min(cap, _power_cap(task, dyn_budget, share))
        caps.append(max(cap, 0.0))
    power_grid_caps = list(caps)

    mults: list[float] = []
    slopes: list[float] = []
    fixeds: list[float] = []
    latency_rhs: list[float | None] = []
    util_slopes: list[float] = []
    for i, flow in enumerate(flows):
        task = flow.task
        mult = comm_multiplier(task, n_nodes)
        mults.append(mult)
        if mult == 0.0:
            slopes.append(0.0)
            fixeds.append(0.0)
            latency_rhs.append(None)
            util_slopes.append(0.0)
            continue
        slope = 8.0 * task.wire_bytes_per_electrode / rate_kbps_ms
        fixed = (
            (PACKET_OVERHEAD_BITS + 8.0 * task.wire_bytes_fixed)
            / rate_kbps_ms
            + tdma.guard_ms
            + round_overhead_ms
        )
        slopes.append(slope)
        fixeds.append(fixed)
        if task.comm == "all_one":
            # all-to-one aggregations pipeline across periods: no hard
            # latency row, no utilisation share
            latency_rhs.append(None)
            util_slopes.append(0.0)
            continue
        rhs = task.net_budget_ms - mult * fixed
        if rhs <= 0:
            # even an empty burst from every sender overruns the budget:
            # the flow cannot run at this node count
            caps[i] = 0.0
            latency_rhs.append(None)
            util_slopes.append(0.0)
        else:
            latency_rhs.append(rhs if slope > 0 else None)
            util_slopes.append(mult * slope / task.period_ms)

    def _fixed_util() -> float:
        return sum(
            mults[i] * fixeds[i] / flow.task.period_ms
            for i, flow in enumerate(flows)
            if caps[i] > 0 and flow.task.comm not in ("none", "all_one")
        )

    fixed_util = _fixed_util()
    medium_saturated = False
    if fixed_util >= NETWORK_UTILISATION_CAP:
        # The fixed bursts alone fill the medium: no electrode budget is
        # left for any sharing flow.  Degrade explicitly — zero their
        # caps and count the event — instead of silently clamping the
        # utilisation RHS to zero and letting the report disagree with
        # the constraint.
        medium_saturated = True
        telemetry.inc("scheduler.medium_saturated")
        for i, flow in enumerate(flows):
            if flow.task.comm not in ("none", "all_one"):
                caps[i] = 0.0
        fixed_util = 0.0

    rows = tuple(
        FlowRow(
            flow=flow,
            index=i,
            cap=caps[i],
            power_grid_cap=power_grid_caps[i],
            count=1.0 if flow.task.centralised else float(n_nodes),
            linear_share=1.0 / n_nodes if flow.task.centralised else 1.0,
            mult=mults[i],
            airtime_slope_ms=slopes[i],
            airtime_fixed_ms=fixeds[i],
            latency_rhs_ms=latency_rhs[i],
            shares_medium=flow.task.comm in ("one_all", "all_all"),
            util_slope_per_ms=util_slopes[i],
            nvm_per_ms=(
                flow.task.nvm_bytes_per_electrode_period
                / flow.task.period_ms
            ),
        )
        for i, flow in enumerate(flows)
    )
    return ConstraintSystem(
        n_nodes=n_nodes,
        power_budget_mw=power_budget_mw,
        static_mw=static_mw,
        dyn_budget_mw=dyn_budget,
        rows=rows,
        utilisation_cap=NETWORK_UTILISATION_CAP,
        fixed_util=fixed_util,
        util_rhs=max(NETWORK_UTILISATION_CAP - fixed_util, 0.0),
        medium_saturated=medium_saturated,
        nvm_budget_bytes_per_ms=bw_bytes_per_ms,
    )


def _static_mw(flows: Sequence["Flow"]) -> float:
    """Static power of the union of powered PEs plus baseline."""
    from repro.hardware.catalog import get_pe
    from repro.storage.nvm import LEAKAGE_MW

    pe_union: set[str] = set()
    uses_nvm = False
    for flow in flows:
        pe_union.update(flow.task.pe_names)
        uses_nvm = uses_nvm or flow.task.uses_nvm
    static = sum(get_pe(name).static_uw for name in pe_union) / 1e3
    static += BASE_STATIC_MW
    if uses_nvm:
        static += LEAKAGE_MW
    return static


def _power_cap(task: TaskModel, dyn_budget_mw: float, share: float) -> float:
    """Max electrodes the binding node's dynamic budget can pay for."""
    if dyn_budget_mw <= 0:
        return 0.0
    budget_uw = dyn_budget_mw * 1e3
    a = task.pairwise_uw / PAIR_NORM
    b = task.dyn_uw_per_electrode * share
    if a == 0:
        return budget_uw / b if b > 0 else float("inf")
    return (-b + (b * b + 4 * a * budget_uw) ** 0.5) / (2 * a)

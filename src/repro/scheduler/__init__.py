"""ILP scheduling: task models, LP solver, analytical twin, materialisation."""

from repro.scheduler.analytical import (
    ThroughputBreakdown,
    analytic_electrodes,
    analytic_throughput_mbps,
)
from repro.scheduler.codegen import emit_all_nodes, emit_config_program
from repro.scheduler.constraints import (
    NETWORK_UTILISATION_CAP,
    ConstraintSystem,
    FlowRow,
    build_constraints,
)
from repro.scheduler.dataflow import OPERATOR_PES, DataflowGraph, Operator
from repro.scheduler.flowsched import MinCostFlowScheduler
from repro.scheduler.heuristics import solve_greedy
from repro.scheduler.ilp import (
    AUTO_ILP_MAX_NODES,
    SOLVERS,
    Flow,
    FlowAllocation,
    Schedule,
    SchedulerProblem,
    max_throughput_mbps,
)
from repro.scheduler.model import (
    HASH_COMPRESSION_RATIO,
    MI_KF_NVM_BYTES_PER_E2,
    MOVEMENT_PERIOD_MS,
    PAIR_NORM,
    TaskModel,
    dtw_similarity_task,
    hash_similarity_task,
    mi_kf_task,
    mi_nn_task,
    mi_svm_task,
    seizure_detection_task,
    spike_sorting_task,
)
from repro.scheduler.schedule import (
    MaterialisedSchedule,
    clock_divider_for_load,
    materialise,
)

__all__ = [
    "AUTO_ILP_MAX_NODES",
    "ConstraintSystem",
    "FlowRow",
    "MinCostFlowScheduler",
    "NETWORK_UTILISATION_CAP",
    "SOLVERS",
    "ThroughputBreakdown",
    "analytic_electrodes",
    "analytic_throughput_mbps",
    "build_constraints",
    "solve_greedy",
    "emit_all_nodes",
    "emit_config_program",
    "OPERATOR_PES",
    "DataflowGraph",
    "Operator",
    "Flow",
    "FlowAllocation",
    "Schedule",
    "SchedulerProblem",
    "max_throughput_mbps",
    "HASH_COMPRESSION_RATIO",
    "MI_KF_NVM_BYTES_PER_E2",
    "MOVEMENT_PERIOD_MS",
    "PAIR_NORM",
    "TaskModel",
    "dtw_similarity_task",
    "hash_similarity_task",
    "mi_kf_task",
    "mi_nn_task",
    "mi_svm_task",
    "seizure_detection_task",
    "spike_sorting_task",
    "MaterialisedSchedule",
    "clock_divider_for_load",
    "materialise",
]

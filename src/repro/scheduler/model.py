"""Task cost models: what one electrode of each application stage costs.

Every application stage ("flow" in the ILP) is summarised by:

* the PEs it keeps powered (static power from Table 1),
* a linear dynamic power per electrode channel (PE dynamic power at the
  sustaining frequency + the ADC + NVM logging where the stage stores),
* an optional *pairwise* quadratic term for stages whose compute grows
  with channel pairs (the XCOR feature extractor) — this is what bends
  seizure detection's throughput-vs-power curve (paper §6.2),
* network traffic per period (per-electrode and fixed bytes, plus the
  communication pattern), and
* NVM bandwidth demand.

All coefficients trace to Table 1 / §5 constants; the two calibration
constants (`PAIR_NORM`, `INV_NVM_SWEEPS`) are documented where defined.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.catalog import get_pe
from repro.hardware.microcontroller import MC_IDLE_POWER_MW
from repro.storage.nvm import LEAKAGE_MW as NVM_LEAKAGE_MW
from repro.storage.nvm import NVMDevice, WRITE_NJ_PER_PAGE, PAGE_BYTES
from repro.units import (
    ADC_POWER_MW_PER_ELECTRODE,
    ELECTRODE_RATE_BPS,
    HASH_BITS_PER_WINDOW,
    WINDOW_BYTES,
    WINDOW_MS,
)

#: Channel-pair normalisation for pairwise (XCOR-style) stages: at this
#: many channels the stage burns its catalog per-electrode dynamic power
#: per channel.  Calibrated so seizure detection lands at the paper's
#: ~79 Mbps at 15 mW (§6.2).
PAIR_NORM = 150.0

#: NVM logging power per electrode (uW): streaming one channel's 480 kbps
#: to flash costs (rate / page) * write energy ~= 20.6 uW, plus a read
#: amortisation allowance.
_pages_per_s = ELECTRODE_RATE_BPS / 8 / PAGE_BYTES
NVM_LOG_UW_PER_ELECTRODE = _pages_per_s * WRITE_NJ_PER_PAGE / 1e3 + 2.0

#: Effective Gauss-Jordan sweeps over the augmented matrix for the INV
#: PE's NVM traffic (blocked elimination re-reads the matrix this many
#: times).  Calibrated so MI-KF saturates the NVM at 384 electrodes and
#: 20 intents/s, the paper's §6.2 observation.
INV_NVM_SWEEPS = 9.3

#: Compression ratio HCOMP achieves on hash streams (paper: within 10 %
#: of LZ4/LZMA; ~2x on the skewed hash distributions).
HASH_COMPRESSION_RATIO = 2.0

#: ADC power per channel, in uW.
ADC_UW_PER_ELECTRODE = ADC_POWER_MW_PER_ELECTRODE * 1e3

#: Communication patterns a stage can use.
COMM_PATTERNS = ("none", "one_all", "all_all", "all_one")


@dataclass(frozen=True)
class TaskModel:
    """Cost model of one application stage.

    Attributes:
        name: stage name.
        pe_names: catalog PEs kept powered (static power roll-up).
        dyn_uw_per_electrode: linear dynamic power per channel (uW),
            *including* the ADC share and NVM logging when applicable.
        pairwise_uw: quadratic coefficient; adds
            ``pairwise_uw * e^2 / PAIR_NORM`` uW.
        comm: communication pattern.
        wire_bytes_per_electrode: payload bytes per channel per period.
        wire_bytes_fixed: payload bytes per node per period.
        period_ms: how often the stage ships/computes (window length).
        net_budget_ms: airtime budget per period for this stage's
            exchange (response-time driven).
        nvm_bytes_per_electrode_period: NVM traffic per channel per
            period (bandwidth constraint).
        nvm_bytes_fixed_period: NVM traffic per node per period.
        uses_nvm: whether the NVM (and its leakage) is on for this stage.
        centralised: stage computes on one node (MI-KF); the central
            node's constraints bind the total electrode count.
    """

    name: str
    pe_names: tuple[str, ...]
    dyn_uw_per_electrode: float
    pairwise_uw: float = 0.0
    comm: str = "none"
    wire_bytes_per_electrode: float = 0.0
    wire_bytes_fixed: float = 0.0
    period_ms: float = WINDOW_MS
    net_budget_ms: float = WINDOW_MS
    nvm_bytes_per_electrode_period: float = 0.0
    nvm_bytes_fixed_period: float = 0.0
    uses_nvm: bool = False
    centralised: bool = False

    def __post_init__(self) -> None:
        if self.comm not in COMM_PATTERNS:
            raise ConfigurationError(f"unknown comm pattern {self.comm!r}")
        if self.dyn_uw_per_electrode < 0 or self.pairwise_uw < 0:
            raise ConfigurationError("power coefficients must be non-negative")

    # -- power -------------------------------------------------------------------

    @property
    def static_mw(self) -> float:
        """Static power of the stage's PEs (+ NVM leakage if used)."""
        static_uw = sum(get_pe(name).static_uw for name in self.pe_names)
        total = static_uw / 1e3
        if self.uses_nvm:
            total += NVM_LEAKAGE_MW
        return total

    def dynamic_mw(self, electrodes: float) -> float:
        """Dynamic power at ``electrodes`` channels (mW)."""
        if electrodes < 0:
            raise ConfigurationError("electrode count cannot be negative")
        linear = self.dyn_uw_per_electrode * electrodes
        quadratic = self.pairwise_uw * electrodes * electrodes / PAIR_NORM
        return (linear + quadratic) / 1e3

    def power_mw(self, electrodes: float) -> float:
        return self.static_mw + self.dynamic_mw(electrodes)

    def max_electrodes_for_power(self, dyn_budget_mw: float) -> float:
        """Invert :meth:`dynamic_mw` (closed form, quadratic)."""
        if dyn_budget_mw <= 0:
            return 0.0
        budget_uw = dyn_budget_mw * 1e3
        a = self.pairwise_uw / PAIR_NORM
        b = self.dyn_uw_per_electrode
        if a == 0:
            return budget_uw / b if b > 0 else float("inf")
        return (-b + (b * b + 4 * a * budget_uw) ** 0.5) / (2 * a)

    # -- network -----------------------------------------------------------------

    def wire_bytes(self, electrodes: float) -> float:
        """Payload bytes per node per period."""
        return self.wire_bytes_per_electrode * electrodes + self.wire_bytes_fixed

    # -- storage -----------------------------------------------------------------

    def nvm_bytes_per_period(self, electrodes: float) -> float:
        return (
            self.nvm_bytes_per_electrode_period * electrodes
            + self.nvm_bytes_fixed_period
        )

    def nvm_utilisation(self, electrodes: float) -> float:
        """Fraction of device bandwidth the stage needs."""
        bw_bytes_per_ms = NVMDevice.read_bandwidth_mbps() * 1e3 / 8
        need = self.nvm_bytes_per_period(electrodes) / self.period_ms
        return need / bw_bytes_per_ms


#: Per-node baseline static power: the always-on microcontroller.
BASE_STATIC_MW = MC_IDLE_POWER_MW


# --- stage builders (one per paper application stage) -------------------------


def seizure_detection_task() -> TaskModel:
    """Local seizure detection: FFT + BBF features, XCOR (pairwise), SVM."""
    dyn = (
        ADC_UW_PER_ELECTRODE
        + get_pe("FFT").dyn_uw_per_electrode
        + get_pe("BBF").dyn_uw_per_electrode
        + get_pe("SVM").dyn_uw_per_electrode
    )
    return TaskModel(
        name="seizure_detection",
        pe_names=("FFT", "BBF", "XCOR", "SVM"),
        dyn_uw_per_electrode=dyn,
        pairwise_uw=get_pe("XCOR").dyn_uw_per_electrode,
    )


def hash_similarity_task(
    comm: str = "all_all",
    net_budget_ms: float = 1.0,
    compression_ratio: float = HASH_COMPRESSION_RATIO,
) -> TaskModel:
    """Hash generation + exchange + collision check.

    Every node hashes and stores its channels (signals *and* hashes go to
    NVM so later exact comparison is possible); detecting nodes broadcast
    one compressed hash batch per window.
    """
    hash_pes = ("HCONV", "NGRAM", "EMDH", "CCHECK", "HCOMP", "HFREQ",
                "NPACK", "UNPACK", "DCOMP", "GATE", "SC")
    dyn = (
        ADC_UW_PER_ELECTRODE
        + NVM_LOG_UW_PER_ELECTRODE
        + get_pe("HCONV").dyn_uw_per_electrode
        + get_pe("NGRAM").dyn_uw_per_electrode
        + get_pe("EMDH").dyn_uw_per_electrode
        + get_pe("HCOMP").dyn_uw_per_electrode
        + get_pe("HFREQ").dyn_uw_per_electrode
        + get_pe("CCHECK").dyn_uw_per_electrode
        + get_pe("DCOMP").dyn_uw_per_electrode
        + get_pe("SC").dyn_uw_per_electrode
    )
    hash_bytes = HASH_BITS_PER_WINDOW / 8 / compression_ratio
    return TaskModel(
        name=f"hash_similarity_{comm}",
        pe_names=hash_pes,
        dyn_uw_per_electrode=dyn,
        comm=comm,
        wire_bytes_per_electrode=hash_bytes,
        net_budget_ms=net_budget_ms,
        nvm_bytes_per_electrode_period=WINDOW_BYTES + HASH_BITS_PER_WINDOW / 8,
        uses_nvm=True,
    )


def dtw_similarity_task(
    comm: str = "all_all", net_budget_ms: float = WINDOW_MS
) -> TaskModel:
    """Exact signal comparison: raw windows on the wire, DTW at receivers."""
    dyn = (
        ADC_UW_PER_ELECTRODE
        + NVM_LOG_UW_PER_ELECTRODE
        + get_pe("DTW").dyn_uw_per_electrode
        + get_pe("CSEL").dyn_uw_per_electrode
        + get_pe("SC").dyn_uw_per_electrode
    )
    return TaskModel(
        name=f"dtw_similarity_{comm}",
        pe_names=("DTW", "CSEL", "NPACK", "UNPACK", "GATE", "SC"),
        dyn_uw_per_electrode=dyn,
        comm=comm,
        wire_bytes_per_electrode=WINDOW_BYTES,
        net_budget_ms=net_budget_ms,
        nvm_bytes_per_electrode_period=WINDOW_BYTES,
        uses_nvm=True,
    )


def spike_sorting_task() -> TaskModel:
    """Local online spike sorting: NEO/THR detect, hash, template match."""
    dyn = (
        ADC_UW_PER_ELECTRODE
        + NVM_LOG_UW_PER_ELECTRODE
        + get_pe("NEO").dyn_uw_per_electrode
        + get_pe("THR").dyn_uw_per_electrode
        + get_pe("HCONV").dyn_uw_per_electrode
        + get_pe("NGRAM").dyn_uw_per_electrode
        + get_pe("EMDH").dyn_uw_per_electrode
        + get_pe("CCHECK").dyn_uw_per_electrode
        + get_pe("SC").dyn_uw_per_electrode
    )
    return TaskModel(
        name="spike_sorting",
        pe_names=("NEO", "THR", "HCONV", "NGRAM", "EMDH", "CCHECK", "SC"),
        dyn_uw_per_electrode=dyn,
        nvm_bytes_per_electrode_period=WINDOW_BYTES,
        uses_nvm=True,
    )


#: Movement stages operate on 50 ms windows.
MOVEMENT_PERIOD_MS = 50.0


def mi_svm_task() -> TaskModel:
    """Pipeline A: SBP features + partial SVM; 4 B per node on the wire.

    Like every SCALO application the movement pipelines log their signals
    to NVM (the paper excludes storage-less designs outright), which makes
    the per-electrode cost land ~3 % below the hash pipeline's — exactly
    the margin §6.2 reports between MI-SVM and hash generation.
    """
    dyn = (
        ADC_UW_PER_ELECTRODE
        + NVM_LOG_UW_PER_ELECTRODE
        + get_pe("SBP").dyn_uw_per_electrode
        + get_pe("SVM").dyn_uw_per_electrode
    )
    return TaskModel(
        name="mi_svm",
        pe_names=("SBP", "SVM", "NPACK", "UNPACK", "GATE", "SC"),
        dyn_uw_per_electrode=dyn,
        comm="all_one",
        wire_bytes_fixed=4.0,
        period_ms=MOVEMENT_PERIOD_MS,
        net_budget_ms=MOVEMENT_PERIOD_MS,
        nvm_bytes_per_electrode_period=WINDOW_BYTES,
        uses_nvm=True,
    )


def mi_nn_task(n_hidden: int = 256) -> TaskModel:
    """Pipeline C: SBP + partial hidden layer; 4 B/hidden unit per node."""
    # partial hidden layer: n_hidden MACs per local feature per period;
    # scale the BMUL per-electrode figure by the hidden width over the
    # 96-channel reference.
    mac_uw = get_pe("BMUL").dyn_uw_per_electrode * n_hidden / 96.0
    dyn = (
        ADC_UW_PER_ELECTRODE
        + NVM_LOG_UW_PER_ELECTRODE
        + get_pe("SBP").dyn_uw_per_electrode
        + mac_uw
    )
    return TaskModel(
        name="mi_nn",
        pe_names=("SBP", "BMUL", "ADD", "NPACK", "UNPACK", "GATE", "SC"),
        dyn_uw_per_electrode=dyn,
        comm="all_one",
        wire_bytes_fixed=4.0 * n_hidden,
        period_ms=MOVEMENT_PERIOD_MS,
        net_budget_ms=MOVEMENT_PERIOD_MS,
        nvm_bytes_per_electrode_period=WINDOW_BYTES,
        uses_nvm=True,
    )


def mi_kf_task() -> TaskModel:
    """Pipeline B: features to one node; centralised Kalman + INV via NVM.

    The linear coefficient covers sensing nodes (ADC + SBP + radio
    payload); the quadratic term models the central node's O(E^2)
    covariance algebra; NVM traffic is the INV PE's blocked Gauss-Jordan
    streaming, 3 * E^2 elements per sweep, INV_NVM_SWEEPS sweeps per
    intent.
    """
    dyn = (
        ADC_UW_PER_ELECTRODE
        + NVM_LOG_UW_PER_ELECTRODE
        + get_pe("SBP").dyn_uw_per_electrode
        + 4.0  # feature serialisation + central MAD row updates
    )
    quadratic = MI_KF_CENTRAL_QUADRATIC_UW
    nvm_per_elec_sq = 3 * 2 * INV_NVM_SWEEPS  # bytes per E^2 per intent
    return TaskModel(
        name="mi_kf",
        pe_names=("SBP", "BMUL", "ADD", "SUB", "INV",
                  "NPACK", "UNPACK", "GATE", "SC"),
        dyn_uw_per_electrode=dyn,
        pairwise_uw=quadratic,
        comm="all_one",
        wire_bytes_per_electrode=4.0,
        period_ms=MOVEMENT_PERIOD_MS,
        net_budget_ms=MOVEMENT_PERIOD_MS,
        # the E^2 NVM term is handled by the scheduler's centralised-NVM
        # constraint via this per-electrode-squared coefficient:
        nvm_bytes_fixed_period=0.0,
        uses_nvm=True,
        centralised=True,
    )


#: Bytes of NVM traffic per (total electrodes)^2 per intent for MI-KF.
MI_KF_NVM_BYTES_PER_E2 = 3 * 2 * INV_NVM_SWEEPS


#: Central-node covariance/INV compute cost for MI-KF (uW coefficient of
#: the E^2/PAIR_NORM term).  Calibrated so the NVM-bandwidth limit (384
#: electrodes) and the power limit cross at 8.5 mW, the paper's §6.2
#: observation ("limited only by NVM bandwidth above 8.5 mW").
MI_KF_CENTRAL_QUADRATIC_UW = 6.2

"""The scheduler: optimal and heuristic electrode allocation across flows.

Mirrors the paper's §3.5 formulation: each application stage is a *flow*;
the objective maximises the priority-weighted number of electrode signals
processed per flow, subject to per-node power, shared-TDMA network, and
NVM-bandwidth constraints.  SCALO's deterministic components make every
coefficient exact.

The exact constraint rows live in :mod:`repro.scheduler.constraints`; the
LP here is one *solver* in a portfolio (see :attr:`SchedulerProblem.solver`):

* ``"ilp"`` — the exact LP below (HiGHS via :func:`scipy.optimize.linprog`).
  Quadratic (pairwise) power terms are handled with the lambda-formulation
  of piecewise-linear convexification: because the power curve is convex
  and appears on the small side of a "<= budget" constraint, the LP
  relaxation is exact at breakpoints and conservative between them — no
  integer variables needed.  (The paper's artifact uses GLPK; same
  problem, different backend.)
* ``"greedy"`` — seeded water-filling over the same rows
  (:mod:`repro.scheduler.heuristics`).
* ``"flow"`` — min-cost-flow with an Octopus-style cost model supporting
  incremental repair (:mod:`repro.scheduler.flowsched`).
* ``"auto"`` — the LP at small node counts, the first verified heuristic
  (greedy, then flow) at fleet scale, with an LP fallback if no
  heuristic verifies.

Every heuristic solution is post-hoc verified against the exact rows
(:meth:`ConstraintSystem.verify`) before it is returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.errors import SchedulingError
from repro.network.tdma import TDMAConfig
from repro.scheduler.constraints import (
    NETWORK_UTILISATION_CAP,
    ConstraintSystem,
    build_constraints,
)
from repro.scheduler.model import PAIR_NORM, TaskModel
from repro.telemetry import NULL_TELEMETRY, TelemetryLike
from repro.units import NODE_POWER_CAP_MW, electrodes_to_mbps

__all__ = [
    "Flow",
    "FlowAllocation",
    "Schedule",
    "SchedulerProblem",
    "max_throughput_mbps",
    "NETWORK_UTILISATION_CAP",
    "SOLVERS",
    "AUTO_ILP_MAX_NODES",
]

#: Breakpoints used to convexify quadratic power terms.
N_BREAKPOINTS = 33

#: Valid values of :attr:`SchedulerProblem.solver`.
SOLVERS = ("ilp", "greedy", "flow", "auto")

#: Below this node count ``solver="auto"`` keeps the exact LP: the LP's
#: size is independent of the fleet, so at small scale the ~ms solve is
#: cheap and optimality is free.  At and above it, the heuristics win.
AUTO_ILP_MAX_NODES = 32


@dataclass(frozen=True)
class Flow:
    """One schedulable flow: a task model plus its priority weight."""

    task: TaskModel
    weight: float = 1.0
    #: per-node electrode cap (None = unbounded, the fig. 8 mode where
    #: ADCs are added until another constraint binds)
    electrode_cap: float | None = None


@dataclass
class FlowAllocation:
    """The scheduler's decision for one flow."""

    flow: Flow
    electrodes_per_node: float
    aggregate_electrodes: float
    power_mw_per_node: float
    airtime_ms_per_period: float

    @property
    def aggregate_mbps(self) -> float:
        return electrodes_to_mbps(self.aggregate_electrodes)


@dataclass
class Schedule:
    """A complete solution.

    ``network_utilisation`` is the shared-medium constraint's left-hand
    side at this solution — it counts medium-sharing flows (``one_all`` /
    ``all_all``) that are able to run; ``all_one`` aggregations pipeline
    across periods and are exempt, and flows whose electrode cap
    collapsed to zero burst nothing.  A feasible schedule therefore
    always reports utilisation <= :data:`NETWORK_UTILISATION_CAP`.
    """

    allocations: list[FlowAllocation]
    n_nodes: int
    power_budget_mw: float
    node_power_mw: float
    network_utilisation: float

    @property
    def aggregate_mbps(self) -> float:
        return sum(a.aggregate_mbps for a in self.allocations)

    def weighted_mbps(self) -> float:
        """Priority-weighted aggregate throughput.

        The paper's Fig. 9a metric: the weight-normalised sum of per-flow
        aggregate throughputs (equal weights reduce to the mean flow
        throughput).
        """
        total_weight = sum(a.flow.weight for a in self.allocations)
        if total_weight == 0:
            return 0.0
        return sum(
            a.flow.weight * a.aggregate_mbps for a in self.allocations
        ) / total_weight

    def allocation(self, task_name: str) -> FlowAllocation:
        for a in self.allocations:
            if a.flow.task.name == task_name:
                return a
        raise SchedulingError(f"no allocation for task {task_name!r}")


@dataclass
class SchedulerProblem:
    """Build and solve one scheduling instance."""

    n_nodes: int
    flows: list[Flow]
    power_budget_mw: float = NODE_POWER_CAP_MW
    tdma: TDMAConfig = field(default_factory=TDMAConfig)
    #: per-round medium overhead (ms): schedule beacon / resync per node
    round_overhead_ms: float = 0.0
    #: hard upper bound used when a flow has no electrode cap
    unbounded_cap: float = 4096.0
    #: which portfolio member solves this instance (see :data:`SOLVERS`)
    solver: str = "ilp"
    #: seed for the heuristics' randomised candidate orderings — part of
    #: the repo-wide byte-identical-per-seed determinism contract
    seed: int = 0
    #: observability handle: books ``scheduler.solves`` plus the
    #: wall-clock ``scheduler.ilp_solve_ms`` / ``scheduler.heuristic_solve_ms``
    #: histograms around the chosen solver
    telemetry: TelemetryLike = field(default=NULL_TELEMETRY, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise SchedulingError("need at least one node")
        if not self.flows:
            raise SchedulingError("need at least one flow")
        if self.power_budget_mw <= 0:
            raise SchedulingError("power budget must be positive")
        if self.solver not in SOLVERS:
            raise SchedulingError(
                f"unknown solver {self.solver!r}; expected one of {SOLVERS}"
            )

    # -- constraint rows ----------------------------------------------------------

    def constraints(self) -> ConstraintSystem:
        """The exact feasible region every portfolio member solves."""
        return build_constraints(
            n_nodes=self.n_nodes,
            flows=self.flows,
            power_budget_mw=self.power_budget_mw,
            tdma=self.tdma,
            round_overhead_ms=self.round_overhead_ms,
            unbounded_cap=self.unbounded_cap,
            telemetry=self.telemetry,
        )

    # -- solve --------------------------------------------------------------------

    def solve(self) -> Schedule:
        """Maximise priority-weighted electrodes; returns the schedule.

        Raises:
            SchedulingError: when even zero electrodes violate a
                constraint (static power over budget), the LP fails, or
                an explicitly requested heuristic produces a solution
                that fails post-hoc verification.
        """
        cs = self.constraints()
        tel = self.telemetry

        solver = self.solver
        if solver == "auto":
            solver = (
                "ilp" if self.n_nodes < AUTO_ILP_MAX_NODES else "portfolio"
            )

        if solver == "ilp":
            electrodes = self._solve_ilp(cs)
        elif solver == "portfolio":
            electrodes = self._solve_portfolio(cs)
        else:
            electrodes = self._solve_heuristic(cs, solver)
            violations = cs.verify(electrodes)
            if violations:
                tel.inc("scheduler.verify_failures")
                raise SchedulingError(
                    f"{solver} solution failed verification: "
                    + "; ".join(violations)
                )

        tel.inc("scheduler.solves")
        schedule = cs.schedule(electrodes)
        if tel.enabled:
            tel.set_gauge(
                "scheduler.node_power_mw",
                schedule.node_power_mw,
                nodes=self.n_nodes,
            )
            tel.set_gauge(
                "scheduler.network_utilisation",
                schedule.network_utilisation,
                nodes=self.n_nodes,
            )
            for alloc in schedule.allocations:
                tel.set_gauge(
                    "scheduler.electrodes_per_node",
                    alloc.electrodes_per_node,
                    flow=alloc.flow.task.name,
                    nodes=self.n_nodes,
                )
        return schedule

    def _solve_heuristic(
        self, cs: ConstraintSystem, solver: str
    ) -> np.ndarray:
        """Run one heuristic under the heuristic wall-clock histogram."""
        from repro.scheduler.flowsched import MinCostFlowScheduler
        from repro.scheduler.heuristics import solve_greedy

        tel = self.telemetry
        with tel.time("scheduler.heuristic_solve_ms"), tel.span(
            f"{solver}-solve", n_nodes=self.n_nodes, n_flows=len(self.flows)
        ):
            if solver == "greedy":
                return solve_greedy(cs, seed=self.seed)
            return MinCostFlowScheduler(cs, seed=self.seed).solve()

    def _solve_portfolio(self, cs: ConstraintSystem) -> np.ndarray:
        """``auto`` at fleet scale: first verified heuristic wins.

        The min-cost-flow solver goes first (sub-2 % gap on the paper's
        workloads at the least wall-clock of the portfolio); greedy
        water-filling is the second line, and the exact LP is the final
        fallback so an infeasible schedule can never ship.
        """
        tel = self.telemetry
        for name in ("flow", "greedy"):
            electrodes = self._solve_heuristic(cs, name)
            if not cs.verify(electrodes):
                return electrodes
            tel.inc("scheduler.verify_failures")
        tel.inc("scheduler.auto_ilp_fallbacks")
        return self._solve_ilp(cs)

    def _solve_ilp(self, cs: ConstraintSystem) -> np.ndarray:
        """The exact LP over the shared constraint rows."""
        n_flows = len(self.flows)
        caps = [row.cap for row in cs.rows]

        # variable layout: [e_0..e_{F-1}] + lambda blocks for quadratic flows
        quad_flows = [
            i for i, f in enumerate(self.flows) if f.task.pairwise_uw > 0
        ]
        lambda_offset: dict[int, int] = {}
        n_vars = n_flows
        for i in quad_flows:
            lambda_offset[i] = n_vars
            n_vars += N_BREAKPOINTS

        # objective: maximise sum w_i * n_i * e_i  (linprog minimises)
        c = np.zeros(n_vars)
        for i, row in enumerate(cs.rows):
            c[i] = -row.flow.weight * row.count

        a_ub: list[np.ndarray] = []
        b_ub: list[float] = []
        a_eq: list[np.ndarray] = []
        b_eq: list[float] = []

        # power: sum_i dyn_i(e_i) <= dyn_budget (per node; centralised
        # flows load the central node which is the binding one)
        power_row = np.zeros(n_vars)
        for i, row in enumerate(cs.rows):
            task = row.task
            # For a centralised flow the variable is the *total* electrode
            # count: sensing (linear) cost spreads over all nodes while the
            # quadratic compute lands on the central node — the binding
            # node pays linear/N + quadratic(E).
            if i in lambda_offset:
                # e_i = sum lambda_j x_j ; power uses sum lambda_j g(x_j);
                # the breakpoint grid spans the pre-network power cap so
                # the convexification is identical across node counts
                xs = np.linspace(
                    0.0, max(row.power_grid_cap, 1.0), N_BREAKPOINTS
                )
                off = lambda_offset[i]
                link = np.zeros(n_vars)
                link[i] = 1.0
                link[off : off + N_BREAKPOINTS] = -xs
                a_eq.append(link)
                b_eq.append(0.0)
                hull = np.zeros(n_vars)
                hull[off : off + N_BREAKPOINTS] = 1.0
                a_eq.append(hull)
                b_eq.append(1.0)
                power_row[off : off + N_BREAKPOINTS] += np.array(
                    [
                        task.dyn_uw_per_electrode * x * row.linear_share / 1e3
                        + task.pairwise_uw * x * x / (1e3 * PAIR_NORM)
                        for x in xs
                    ]
                )
            else:
                power_row[i] += (
                    task.dyn_uw_per_electrode * row.linear_share / 1e3
                )
        a_ub.append(power_row)
        b_ub.append(cs.dyn_budget_mw)

        # network: per-flow latency budget + shared medium utilisation.
        # all-to-one aggregations pipeline across periods (the aggregator
        # stretches its cadence when the medium saturates), so they do not
        # get a hard latency row — their rate hit shows up in the
        # application-level intents/second metric instead.
        util_row = np.zeros(n_vars)
        for i, row in enumerate(cs.rows):
            if row.latency_rhs_ms is not None:
                lat_row = np.zeros(n_vars)
                lat_row[i] = row.mult * row.airtime_slope_ms
                a_ub.append(lat_row)
                b_ub.append(row.latency_rhs_ms)
            util_row[i] = row.util_slope_per_ms
        if np.any(util_row):
            a_ub.append(util_row)
            b_ub.append(cs.util_rhs)

        # NVM bandwidth per node (linear part)
        nvm_row = np.zeros(n_vars)
        for i, row in enumerate(cs.rows):
            nvm_row[i] += row.nvm_per_ms
        if np.any(nvm_row):
            a_ub.append(nvm_row)
            b_ub.append(cs.nvm_budget_bytes_per_ms)

        bounds = [(0.0, caps[i]) for i in range(n_flows)]
        bounds += [(0.0, 1.0)] * (n_vars - n_flows)

        tel = self.telemetry
        with tel.time("scheduler.ilp_solve_ms"), tel.span(
            "ilp-solve", n_nodes=self.n_nodes, n_flows=n_flows
        ):
            result = linprog(
                c,
                A_ub=np.vstack(a_ub) if a_ub else None,
                b_ub=np.asarray(b_ub) if b_ub else None,
                A_eq=np.vstack(a_eq) if a_eq else None,
                b_eq=np.asarray(b_eq) if b_eq else None,
                bounds=bounds,
                method="highs",
            )
        if not result.success:
            tel.inc("scheduler.solve_failures")
            raise SchedulingError(f"LP failed: {result.message}")

        # HiGHS reports interior-point-ish roundoff: components can come
        # back as -1e-12 and propagate sign into every derived quantity
        # (negative electrodes, power, airtime).  Feasible solutions are
        # non-negative by construction, so clamp before deriving.
        return np.maximum(result.x[:n_flows], 0.0)


def max_throughput_mbps(
    task: TaskModel,
    n_nodes: int,
    power_budget_mw: float = NODE_POWER_CAP_MW,
    electrode_cap: float | None = None,
    tdma: TDMAConfig | None = None,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    solver: str = "ilp",
) -> float:
    """Single-flow convenience: the paper's "maximum aggregate throughput"."""
    problem = SchedulerProblem(
        n_nodes=n_nodes,
        flows=[Flow(task, electrode_cap=electrode_cap)],
        power_budget_mw=power_budget_mw,
        tdma=tdma if tdma is not None else TDMAConfig(),
        solver=solver,
        telemetry=telemetry,
    )
    return problem.solve().aggregate_mbps

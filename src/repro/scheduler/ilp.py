"""The ILP scheduler: optimal electrode allocation across flows.

Mirrors the paper's §3.5 formulation: each application stage is a *flow*;
the objective maximises the priority-weighted number of electrode signals
processed per flow, subject to per-node power, shared-TDMA network, and
NVM-bandwidth constraints.  SCALO's deterministic components make every
coefficient exact.

Quadratic (pairwise) power terms are handled with the lambda-formulation
of piecewise-linear convexification: because the power curve is convex and
appears on the small side of a "<= budget" constraint, the LP relaxation
is exact at breakpoints and conservative between them — no integer
variables needed.  The solver is HiGHS via :func:`scipy.optimize.linprog`
(the paper's artifact uses GLPK; same problem, different backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.errors import SchedulingError
from repro.network.packet import PACKET_OVERHEAD_BITS
from repro.network.tdma import TDMAConfig
from repro.scheduler.model import (
    BASE_STATIC_MW,
    MI_KF_NVM_BYTES_PER_E2,
    PAIR_NORM,
    TaskModel,
)
from repro.storage.nvm import NVMDevice
from repro.telemetry import NULL_TELEMETRY, TelemetryLike
from repro.units import NODE_POWER_CAP_MW, electrodes_to_mbps

#: Breakpoints used to convexify quadratic power terms.
N_BREAKPOINTS = 33

#: Medium-utilisation cap: the TDMA schedule cannot fill more than this
#: fraction of wall-clock time (guard slots, resync).
NETWORK_UTILISATION_CAP = 0.95


@dataclass(frozen=True)
class Flow:
    """One schedulable flow: a task model plus its priority weight."""

    task: TaskModel
    weight: float = 1.0
    #: per-node electrode cap (None = unbounded, the fig. 8 mode where
    #: ADCs are added until another constraint binds)
    electrode_cap: float | None = None


@dataclass
class FlowAllocation:
    """The scheduler's decision for one flow."""

    flow: Flow
    electrodes_per_node: float
    aggregate_electrodes: float
    power_mw_per_node: float
    airtime_ms_per_period: float

    @property
    def aggregate_mbps(self) -> float:
        return electrodes_to_mbps(self.aggregate_electrodes)


@dataclass
class Schedule:
    """A complete solution."""

    allocations: list[FlowAllocation]
    n_nodes: int
    power_budget_mw: float
    node_power_mw: float
    network_utilisation: float

    @property
    def aggregate_mbps(self) -> float:
        return sum(a.aggregate_mbps for a in self.allocations)

    def weighted_mbps(self) -> float:
        """Priority-weighted aggregate throughput.

        The paper's Fig. 9a metric: the weight-normalised sum of per-flow
        aggregate throughputs (equal weights reduce to the mean flow
        throughput).
        """
        total_weight = sum(a.flow.weight for a in self.allocations)
        if total_weight == 0:
            return 0.0
        return sum(
            a.flow.weight * a.aggregate_mbps for a in self.allocations
        ) / total_weight

    def allocation(self, task_name: str) -> FlowAllocation:
        for a in self.allocations:
            if a.flow.task.name == task_name:
                return a
        raise SchedulingError(f"no allocation for task {task_name!r}")


def _comm_multiplier(task: TaskModel, n_nodes: int) -> float:
    """How many bursts per period the pattern puts on the shared medium."""
    if task.comm == "none":
        return 0.0
    if task.comm == "one_all":
        return 1.0
    if task.comm == "all_all":
        return float(n_nodes)
    return float(max(0, n_nodes - 1))  # all_one


@dataclass
class SchedulerProblem:
    """Build and solve one scheduling instance."""

    n_nodes: int
    flows: list[Flow]
    power_budget_mw: float = NODE_POWER_CAP_MW
    tdma: TDMAConfig = field(default_factory=TDMAConfig)
    #: per-round medium overhead (ms): schedule beacon / resync per node
    round_overhead_ms: float = 0.0
    #: hard upper bound used when a flow has no electrode cap
    unbounded_cap: float = 4096.0
    #: observability handle: books ``scheduler.solves`` and the
    #: wall-clock ``scheduler.ilp_solve_ms`` histogram around the LP
    telemetry: TelemetryLike = field(default=NULL_TELEMETRY, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise SchedulingError("need at least one node")
        if not self.flows:
            raise SchedulingError("need at least one flow")
        if self.power_budget_mw <= 0:
            raise SchedulingError("power budget must be positive")

    # -- coefficient helpers -----------------------------------------------------

    def _airtime_slope_fixed(self, task: TaskModel) -> tuple[float, float]:
        """Airtime per period of one burst: (ms per electrode, fixed ms)."""
        if task.comm == "none":
            return 0.0, 0.0
        rate_kbps_ms = self.tdma.radio.data_rate_mbps * 1e3  # bits per ms
        slope = 8.0 * task.wire_bytes_per_electrode / rate_kbps_ms
        fixed = (
            (PACKET_OVERHEAD_BITS + 8.0 * task.wire_bytes_fixed) / rate_kbps_ms
            + self.tdma.guard_ms
            + self.round_overhead_ms
        )
        return slope, fixed

    def _static_mw(self) -> float:
        """Static power of the union of powered PEs plus baseline."""
        pe_union: set[str] = set()
        uses_nvm = False
        for flow in self.flows:
            pe_union.update(flow.task.pe_names)
            uses_nvm = uses_nvm or flow.task.uses_nvm
        from repro.hardware.catalog import get_pe
        from repro.storage.nvm import LEAKAGE_MW

        static = sum(get_pe(name).static_uw for name in pe_union) / 1e3
        static += BASE_STATIC_MW
        if uses_nvm:
            static += LEAKAGE_MW
        return static

    def _power_cap(self, task: TaskModel, dyn_budget_mw: float) -> float:
        """Max electrodes the binding node's dynamic budget can pay for."""
        if dyn_budget_mw <= 0:
            return 0.0
        budget_uw = dyn_budget_mw * 1e3
        share = 1.0 / self.n_nodes if task.centralised else 1.0
        a = task.pairwise_uw / PAIR_NORM
        b = task.dyn_uw_per_electrode * share
        if a == 0:
            return budget_uw / b if b > 0 else float("inf")
        return (-b + (b * b + 4 * a * budget_uw) ** 0.5) / (2 * a)

    def _centralised_cap(self, task: TaskModel) -> float:
        """Total-electrode cap of a centralised flow from NVM bandwidth."""
        bw_bytes_per_ms = NVMDevice.read_bandwidth_mbps() * 1e3 / 8
        budget_bytes = bw_bytes_per_ms * task.period_ms
        return float(np.sqrt(budget_bytes / MI_KF_NVM_BYTES_PER_E2))

    # -- solve --------------------------------------------------------------------

    def solve(self) -> Schedule:
        """Maximise priority-weighted electrodes; returns the schedule.

        Raises:
            SchedulingError: when even zero electrodes violate a
                constraint (static power over budget) or the LP fails.
        """
        static_mw = self._static_mw()
        dyn_budget = self.power_budget_mw - static_mw
        if dyn_budget <= 0:
            raise SchedulingError(
                f"static power {static_mw:.2f} mW exceeds the "
                f"{self.power_budget_mw:.2f} mW budget"
            )

        n_flows = len(self.flows)
        caps: list[float] = []
        for flow in self.flows:
            cap = flow.electrode_cap if flow.electrode_cap is not None else self.unbounded_cap
            task = flow.task
            if task.centralised:
                cap = min(cap * self.n_nodes, self._centralised_cap(task))
            # never more than the whole dynamic budget can pay for; the
            # sensing (linear) share of a centralised flow spreads over N
            cap = min(cap, self._power_cap(task, dyn_budget))
            caps.append(max(cap, 0.0))

        # variable layout: [e_0..e_{F-1}] + lambda blocks for quadratic flows
        quad_flows = [i for i, f in enumerate(self.flows) if f.task.pairwise_uw > 0]
        lambda_offset: dict[int, int] = {}
        n_vars = n_flows
        for i in quad_flows:
            lambda_offset[i] = n_vars
            n_vars += N_BREAKPOINTS

        # objective: maximise sum w_i * n_i * e_i  (linprog minimises)
        c = np.zeros(n_vars)
        for i, flow in enumerate(self.flows):
            count = 1.0 if flow.task.centralised else float(self.n_nodes)
            c[i] = -flow.weight * count

        a_ub: list[np.ndarray] = []
        b_ub: list[float] = []
        a_eq: list[np.ndarray] = []
        b_eq: list[float] = []

        # power: sum_i dyn_i(e_i) <= dyn_budget (per node; centralised
        # flows load the central node which is the binding one)
        power_row = np.zeros(n_vars)
        for i, flow in enumerate(self.flows):
            task = flow.task
            # For a centralised flow the variable is the *total* electrode
            # count: sensing (linear) cost spreads over all nodes while the
            # quadratic compute lands on the central node — the binding
            # node pays linear/N + quadratic(E).
            linear_share = 1.0 / self.n_nodes if task.centralised else 1.0
            if i in lambda_offset:
                # e_i = sum lambda_j x_j ; power uses sum lambda_j g(x_j)
                xs = np.linspace(0.0, max(caps[i], 1.0), N_BREAKPOINTS)
                off = lambda_offset[i]
                link = np.zeros(n_vars)
                link[i] = 1.0
                link[off : off + N_BREAKPOINTS] = -xs
                a_eq.append(link)
                b_eq.append(0.0)
                hull = np.zeros(n_vars)
                hull[off : off + N_BREAKPOINTS] = 1.0
                a_eq.append(hull)
                b_eq.append(1.0)
                power_row[off : off + N_BREAKPOINTS] += np.array(
                    [
                        task.dyn_uw_per_electrode * x * linear_share / 1e3
                        + task.pairwise_uw * x * x / (1e3 * PAIR_NORM)
                        for x in xs
                    ]
                )
            else:
                power_row[i] += task.dyn_uw_per_electrode * linear_share / 1e3
        a_ub.append(power_row)
        b_ub.append(dyn_budget)

        # network: per-flow latency budget + shared medium utilisation.
        # all-to-one aggregations pipeline across periods (the aggregator
        # stretches its cadence when the medium saturates), so they do not
        # get a hard latency row — their rate hit shows up in the
        # application-level intents/second metric instead.
        util_row = np.zeros(n_vars)
        for i, flow in enumerate(self.flows):
            task = flow.task
            mult = _comm_multiplier(task, self.n_nodes)
            if mult == 0.0 or task.comm == "all_one":
                continue
            slope, fixed = self._airtime_slope_fixed(task)
            latency_rhs = task.net_budget_ms - mult * fixed
            if latency_rhs <= 0:
                # even an empty burst from every sender overruns the
                # budget: the flow cannot run at this node count
                caps[i] = 0.0
                continue
            if slope > 0:
                lat_row = np.zeros(n_vars)
                lat_row[i] = mult * slope
                a_ub.append(lat_row)
                b_ub.append(latency_rhs)
            util_row[i] += mult * slope / task.period_ms
        if np.any(util_row):
            fixed_util = sum(
                _comm_multiplier(f.task, self.n_nodes)
                * self._airtime_slope_fixed(f.task)[1]
                / f.task.period_ms
                for i, f in enumerate(self.flows)
                if caps[i] > 0 and f.task.comm not in ("none", "all_one")
            )
            a_ub.append(util_row)
            b_ub.append(max(NETWORK_UTILISATION_CAP - fixed_util, 0.0))

        # NVM bandwidth per node (linear part)
        bw_bytes_per_ms = NVMDevice.read_bandwidth_mbps() * 1e3 / 8
        nvm_row = np.zeros(n_vars)
        for i, flow in enumerate(self.flows):
            task = flow.task
            per_ms = task.nvm_bytes_per_electrode_period / task.period_ms
            nvm_row[i] += per_ms
        if np.any(nvm_row):
            a_ub.append(nvm_row)
            b_ub.append(bw_bytes_per_ms)

        bounds = [(0.0, caps[i]) for i in range(n_flows)]
        bounds += [(0.0, 1.0)] * (n_vars - n_flows)

        tel = self.telemetry
        with tel.time("scheduler.ilp_solve_ms"), tel.span(
            "ilp-solve", n_nodes=self.n_nodes, n_flows=n_flows
        ):
            result = linprog(
                c,
                A_ub=np.vstack(a_ub) if a_ub else None,
                b_ub=np.asarray(b_ub) if b_ub else None,
                A_eq=np.vstack(a_eq) if a_eq else None,
                b_eq=np.asarray(b_eq) if b_eq else None,
                bounds=bounds,
                method="highs",
            )
        tel.inc("scheduler.solves")
        if not result.success:
            tel.inc("scheduler.solve_failures")
            raise SchedulingError(f"LP failed: {result.message}")

        # HiGHS reports interior-point-ish roundoff: components can come
        # back as -1e-12 and propagate sign into every derived quantity
        # (negative electrodes, power, airtime).  Feasible solutions are
        # non-negative by construction, so clamp before deriving.
        x = np.maximum(result.x, 0.0)

        allocations = []
        node_power = static_mw
        utilisation = 0.0
        for i, flow in enumerate(self.flows):
            e = float(x[i])
            task = flow.task
            count = 1.0 if task.centralised else float(self.n_nodes)
            slope, fixed = self._airtime_slope_fixed(task)
            mult = _comm_multiplier(task, self.n_nodes)
            airtime = mult * (slope * e + fixed) if mult else 0.0
            allocations.append(
                FlowAllocation(
                    flow=flow,
                    electrodes_per_node=e if not task.centralised else e / self.n_nodes,
                    aggregate_electrodes=e * count,
                    power_mw_per_node=task.dynamic_mw(e),
                    airtime_ms_per_period=airtime,
                )
            )
            node_power += task.dynamic_mw(e)
            utilisation += airtime / task.period_ms if mult else 0.0

        if tel.enabled:
            tel.set_gauge(
                "scheduler.node_power_mw", node_power, nodes=self.n_nodes
            )
            tel.set_gauge(
                "scheduler.network_utilisation",
                utilisation,
                nodes=self.n_nodes,
            )
            for alloc in allocations:
                tel.set_gauge(
                    "scheduler.electrodes_per_node",
                    alloc.electrodes_per_node,
                    flow=alloc.flow.task.name,
                    nodes=self.n_nodes,
                )
        return Schedule(
            allocations=allocations,
            n_nodes=self.n_nodes,
            power_budget_mw=self.power_budget_mw,
            node_power_mw=node_power,
            network_utilisation=utilisation,
        )


def max_throughput_mbps(
    task: TaskModel,
    n_nodes: int,
    power_budget_mw: float = NODE_POWER_CAP_MW,
    electrode_cap: float | None = None,
    tdma: TDMAConfig | None = None,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> float:
    """Single-flow convenience: the paper's "maximum aggregate throughput"."""
    problem = SchedulerProblem(
        n_nodes=n_nodes,
        flows=[Flow(task, electrode_cap=electrode_cap)],
        power_budget_mw=power_budget_mw,
        tdma=tdma if tdma is not None else TDMAConfig(),
        telemetry=telemetry,
    )
    return problem.solve().aggregate_mbps

"""Min-cost-flow scheduling with an Octopus-style cost model.

Firmament's Octopus cost model prices an arc into a resource by how
busy the resource already is (``cost = busy * BUSY_PU_OFFSET``) and
gives unscheduled demand a prohibitive cost (``UNSCHEDULED_COST``); the
scheduler then augments flow along cheapest paths, and — crucially —
*repairs* the existing flow after a cluster event instead of re-solving
from scratch.  This module transplants that structure onto SCALO's
continuous electrode-allocation problem:

* graph: ``source -> flow_i -> {power, medium, nvm} -> sink``, where
  the flow->resource arcs carry each flow's exact row coefficients and
  the per-flow caps / latency rows bound the flow_i node throughput;
* cost: each augmentation charges the *most congested* resource the
  allocation touches, ``BUSY_PU_OFFSET`` per unit of busy fraction, so
  demand drains toward the least-contended resources first while the
  unscheduled penalty (priority-weighted electrodes still parked at the
  source) makes any feasible augmentation worthwhile;
* augmentation: successive rounds push a geometrically shrinking slice
  of each flow's remaining headroom along its best reduced-gain arc —
  deterministic (no RNG in the solve; the ``seed`` is interface parity
  with the greedy solver), bounded, and feasible by construction;
* **incremental repair** (:meth:`MinCostFlowScheduler.repair`): after a
  single-node crash or recovery the constraint rows are rebuilt at the
  new fleet size, the previous solution is clipped onto the new caps,
  any over-subscribed budget row is drained cheapest-flow-first, and a
  few augmentation rounds re-pack the slack — orders of magnitude less
  work than a fresh LP because the warm point is already near-feasible.

Solutions verify against :meth:`ConstraintSystem.verify` like every
portfolio member; the caller enforces that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scheduler.constraints import ConstraintSystem

#: Octopus: cost per unit of busy fraction on a resource arc.
BUSY_PU_OFFSET = 100.0

#: Octopus: cost of leaving priority-weighted demand unscheduled.
UNSCHEDULED_COST = 1_000_000.0

#: Hard bound on cheapest-arc augmentations per solve (each one fills a
#: flow to its residual limit, so F iterations usually suffice).
MAX_AUGMENTATIONS = 64

#: Improvement (cancellation) rounds after augmentation converges: each
#: round tries to move budget from the cheapest allocated flow to the
#: most valuable budget-blocked one.
CANCEL_ROUNDS = 4

#: Relative slack on every budget debit (float-roundoff armour).
_MARGIN = 1e-12


@dataclass
class _Residual:
    """Mutable budget state of the three shared resource arcs."""

    power_mw: float
    util: float
    nvm: float

    @classmethod
    def for_system(cls, cs: ConstraintSystem) -> "_Residual":
        return cls(
            power_mw=cs.dyn_budget_mw,
            util=cs.util_rhs,
            nvm=cs.nvm_budget_bytes_per_ms,
        )

    def debit(
        self, cs: ConstraintSystem, i: int, old: float, new: float
    ) -> None:
        row = cs.rows[i]
        self.power_mw -= row.dynamic_mw(new) - row.dynamic_mw(old)
        self.util -= row.util_slope_per_ms * (new - old)
        self.nvm -= row.nvm_per_ms * (new - old)

    def busy_cost(self, cs: ConstraintSystem, i: int) -> float:
        """Octopus arc cost: busiest touched resource's busy fraction."""
        row = cs.rows[i]
        busy = 0.0
        if cs.dyn_budget_mw > 0:
            busy = max(busy, 1.0 - self.power_mw / cs.dyn_budget_mw)
        if row.util_slope_per_ms > 0 and cs.util_rhs > 0:
            busy = max(busy, 1.0 - self.util / cs.util_rhs)
        if row.nvm_per_ms > 0 and cs.nvm_budget_bytes_per_ms > 0:
            busy = max(busy, 1.0 - self.nvm / cs.nvm_budget_bytes_per_ms)
        return busy * BUSY_PU_OFFSET

    def headroom(
        self, cs: ConstraintSystem, i: int, current: float
    ) -> float:
        """Max electrodes flow ``i`` could still add on top of ``current``."""
        row = cs.rows[i]
        if row.cap <= 0.0:
            return 0.0
        limit = min(row.cap, row.latency_cap)
        if row.util_slope_per_ms > 0.0:
            limit = min(
                limit, current + self.util / row.util_slope_per_ms
            )
        if row.nvm_per_ms > 0.0:
            limit = min(limit, current + self.nvm / row.nvm_per_ms)
        limit = min(
            limit,
            row.electrodes_for_power(
                self.power_mw + row.dynamic_mw(current)
            ),
        )
        return max(limit - current, 0.0)


@dataclass
class MinCostFlowScheduler:
    """Octopus-style solver with warm-start incremental repair."""

    cs: ConstraintSystem
    #: interface parity with the greedy solver; the flow solve itself is
    #: deterministic by construction and draws no randomness
    seed: int = 0
    electrodes: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.electrodes = np.zeros(len(self.cs.rows))

    # -- full solve ---------------------------------------------------------------

    def solve(self) -> np.ndarray:
        """Augment from zero until no profitable arc remains."""
        self.electrodes = np.zeros(len(self.cs.rows))
        residual = _Residual.for_system(self.cs)
        self._augment(residual)
        return self.electrodes.copy()

    # -- incremental repair -------------------------------------------------------

    def repair(self, cs: ConstraintSystem) -> np.ndarray:
        """Adapt the current solution to a changed fleet.

        ``cs`` is the constraint system rebuilt at the new node count
        (same flow list — single-node crash/recovery changes the rows'
        coefficients, not the flows).  Clip onto the new caps, drain any
        over-subscribed budget cheapest-priority-first, then re-augment
        the slack.
        """
        if len(cs.rows) != len(self.electrodes):
            raise ValueError(
                "repair requires the same flow list as the warm solution"
            )
        self.cs = cs
        e = self.electrodes
        # 1. clip onto the new private caps (latency rows move with N)
        for i, row in enumerate(cs.rows):
            cap = min(row.cap, row.latency_cap)
            if e[i] > cap:
                e[i] = max(cap, 0.0) * (1.0 - _MARGIN)
        residual = _Residual.for_system(cs)
        for i, row in enumerate(cs.rows):
            residual.debit(cs, i, 0.0, e[i])
        # 2. drain over-subscribed budget rows, cheapest flow first (the
        #    flow whose unscheduled penalty per electrode is lowest)
        order = sorted(
            range(len(cs.rows)),
            key=lambda i: (cs.rows[i].objective_density, i),
        )
        for i in order:
            if (
                residual.power_mw >= 0.0
                and residual.util >= 0.0
                and residual.nvm >= 0.0
            ):
                break
            keep = residual.headroom(cs, i, 0.0)
            target = min(e[i], keep)
            if target < e[i]:
                residual.debit(cs, i, e[i], target)
                e[i] = target
        # 3. re-pack whatever slack the event opened up
        self._augment(residual)
        return self.electrodes.copy()

    # -- augmentation core --------------------------------------------------------

    def _augment(self, residual: _Residual) -> None:
        """Successive cheapest-arc augmentation, then cancellation.

        Each augmentation picks the arc with the best reduced gain — the
        unscheduled-penalty relief of the flow's priority density, minus
        the Octopus congestion cost of the busiest resource the arc
        touches — and pushes the flow to its residual limit.  Because the
        penalty dwarfs the congestion term, densities order the drain and
        congestion breaks near-ties toward free resources, mirroring
        Octopus's ``busy * BUSY_PU_OFFSET`` arc pricing.  A bounded
        cancellation phase then undoes ordering mistakes: budget is moved
        from the cheapest allocated flow to a denser budget-blocked one
        whenever that raises the objective (the flow-graph equivalent of
        pushing along a negative-cost residual cycle).
        """
        cs = self.cs
        e = self.electrodes
        n = len(cs.rows)
        scale = max(float(np.max(cs.densities)), 1e-12)
        done: set[int] = set()
        for _ in range(MAX_AUGMENTATIONS):
            best_gain, best_i, best_head = 0.0, -1, 0.0
            for i in range(n):
                if i in done:
                    continue
                head = residual.headroom(cs, i, e[i])
                if head <= 0.0:
                    done.add(i)
                    continue
                gain = (
                    cs.rows[i].objective_density / scale
                ) * UNSCHEDULED_COST - residual.busy_cost(cs, i)
                if gain > best_gain:
                    best_gain, best_i, best_head = gain, i, head
            if best_i < 0:
                break
            delta = best_head * (1.0 - _MARGIN)
            residual.debit(cs, best_i, e[best_i], e[best_i] + delta)
            e[best_i] += delta
            done.add(best_i)
        self._cancel(residual)

    def _cancel(self, residual: _Residual) -> None:
        """Move budget from cheap flows to denser blocked ones."""
        cs = self.cs
        e = self.electrodes
        n = len(cs.rows)
        for _ in range(CANCEL_ROUNDS):
            improved = False
            # densest flow still short of its private cap (budget-bound)
            receivers = sorted(
                (
                    i
                    for i in range(n)
                    if cs.rows[i].cap > 0.0
                    and e[i]
                    < min(cs.rows[i].cap, cs.rows[i].latency_cap) * 0.999
                ),
                key=lambda i: (-cs.rows[i].objective_density, i),
            )
            for r in receivers:
                dens_r = cs.rows[r].objective_density
                donors = sorted(
                    (
                        i
                        for i in range(n)
                        if i != r
                        and e[i] > 0.0
                        and cs.rows[i].objective_density < dens_r
                    ),
                    key=lambda i: (cs.rows[i].objective_density, i),
                )
                for d in donors:
                    if self._transfer(residual, d, r):
                        improved = True
                        break
                if improved:
                    break
            if not improved:
                break

    def _transfer(self, residual: _Residual, d: int, r: int) -> bool:
        """Shrink donor ``d`` to grow receiver ``r``; keep if it helps."""
        cs = self.cs
        e = self.electrodes
        dens_d = cs.rows[d].objective_density
        dens_r = cs.rows[r].objective_density
        chunk = e[d]
        for _ in range(8):
            if chunk <= 0.0:
                return False
            new_d = e[d] - chunk
            trial = _Residual(
                residual.power_mw, residual.util, residual.nvm
            )
            trial.debit(cs, d, e[d], new_d)
            grow = trial.headroom(cs, r, e[r]) * (1.0 - _MARGIN)
            if grow > 0.0 and dens_r * grow > dens_d * chunk:
                trial.debit(cs, r, e[r], e[r] + grow)
                e[d] = new_d
                e[r] += grow
                residual.power_mw = trial.power_mw
                residual.util = trial.util
                residual.nvm = trial.nvm
                return True
            chunk *= 0.5
        return False

"""AST for the Trill-like query language (paper §3.7, Listings 1-2)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Value:
    """A literal argument: number with optional unit, string, or symbol."""

    kind: str  # "number" | "duration_ms" | "string" | "symbol" | "lambda" | "slice"
    raw: str
    number: float | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.raw


@dataclass(frozen=True)
class Call:
    """One method invocation in a chain: ``name(arg, kw=value)``."""

    name: str
    args: tuple[Value, ...] = ()
    kwargs: tuple[tuple[str, Value], ...] = ()

    def kwarg(self, key: str) -> Value | None:
        for k, v in self.kwargs:
            if k == key:
                return v
        return None


@dataclass
class QueryChain:
    """A full query: ``var name = stream.call1(...).call2(...)``."""

    calls: list[Call] = field(default_factory=list)
    var_name: str | None = None

    @property
    def call_names(self) -> list[str]:
        return [c.name for c in self.calls]

    def call(self, name: str) -> Call:
        for c in self.calls:
            if c.name == name:
                return c
        raise KeyError(name)

"""Parser for the Trill-like query subset SCALO supports.

Grammar (supporting the paper's Listings 1 and 2)::

    program := [ "var" IDENT "=" ] chain
    chain   := ("stream" | IDENT) ("." call)*
    call    := IDENT "(" [arg ("," arg)*] ")"
    arg     := IDENT "=" value | value
    value   := NUMBER [UNIT] | STRING | IDENT | lambda | slice | call-ish

Lambdas (``s => s.data``) and slice expressions (``w[-100ms:100ms]``) are
captured verbatim as opaque values — the compiler treats them as
selection parameters, matching the paper's static-scheduling restriction
(no data-dependent control flow on device).
"""

from __future__ import annotations

import re

from repro.errors import QuerySyntaxError
from repro.lang.ast import Call, QueryChain, Value

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>=>)
  | (?P<number>-?\d+(?:\.\d+)?)(?P<unit>ms|s|us|Hz|KHz|MHz)?
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<op>[().,=\[\]:<>+\-*/])
    """,
    re.VERBOSE,
)

_UNIT_TO_MS = {"ms": 1.0, "s": 1e3, "us": 1e-3}


class _Tokens:
    def __init__(self, text: str):
        self.items: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise QuerySyntaxError(
                    f"unexpected character {text[pos]!r} at offset {pos}"
                )
            pos = match.end()
            kind = match.lastgroup
            if kind == "ws":
                continue
            if kind == "unit":
                kind = "number"
            if match.group("number") is not None:
                self.items.append(("number", match.group(0)))
            elif match.group("arrow") is not None:
                self.items.append(("arrow", "=>"))
            elif match.group("ident") is not None:
                self.items.append(("ident", match.group("ident")))
            elif match.group("string") is not None:
                self.items.append(("string", match.group("string"))),
            else:
                self.items.append(("op", match.group("op")))
        self.pos = 0

    def peek(self, ahead: int = 0) -> tuple[str, str] | None:
        index = self.pos + ahead
        return self.items[index] if index < len(self.items) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self.pos += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> str:
        token_kind, token_value = self.next()
        if token_kind != kind or (value is not None and token_value != value):
            raise QuerySyntaxError(
                f"expected {value or kind}, got {token_value!r}"
            )
        return token_value


def _parse_number(raw: str) -> Value:
    match = re.fullmatch(r"(-?\d+(?:\.\d+)?)(ms|s|us|Hz|KHz|MHz)?", raw)
    assert match is not None
    number = float(match.group(1))
    unit = match.group(2)
    if unit in _UNIT_TO_MS:
        return Value("duration_ms", raw, number * _UNIT_TO_MS[unit])
    return Value("number", raw, number)


def _capture_balanced(tokens: _Tokens) -> str:
    """Capture a balanced expression (for lambdas) verbatim until a
    top-level ',' or ')'."""
    depth = 0
    parts: list[str] = []
    while True:
        token = tokens.peek()
        if token is None:
            raise QuerySyntaxError("unterminated expression")
        kind, value = token
        if depth == 0 and kind == "op" and value in (",", ")"):
            break
        if kind == "op" and value in "([":
            depth += 1
        elif kind == "op" and value in ")]":
            depth -= 1
        tokens.next()
        parts.append(value)
    return " ".join(parts)


def _parse_value(tokens: _Tokens) -> Value:
    kind, raw = tokens.peek()  # type: ignore[misc]
    # lambda: IDENT => ...
    if kind == "ident":
        nxt = tokens.peek(1)
        if nxt is not None and nxt[0] == "arrow":
            name = tokens.next()[1]
            tokens.next()  # =>
            body = _capture_balanced(tokens)
            return Value("lambda", f"{name} => {body}")
    if kind == "number":
        tokens.next()
        return _parse_number(raw)
    if kind == "string":
        tokens.next()
        return Value("string", raw.strip("\"'"))
    if kind == "ident":
        # identifier possibly followed by slices/dots — capture verbatim
        body = _capture_balanced(tokens)
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", body):
            return Value("symbol", body)
        return Value("slice" if "[" in body else "lambda", body)
    if kind == "op" and raw == "-":
        body = _capture_balanced(tokens)
        return Value("slice", body)
    raise QuerySyntaxError(f"cannot parse value near {raw!r}")


def _parse_call(tokens: _Tokens) -> Call:
    name = tokens.expect("ident")
    tokens.expect("op", "(")
    args: list[Value] = []
    kwargs: list[tuple[str, Value]] = []
    while True:
        token = tokens.peek()
        if token is None:
            raise QuerySyntaxError("unterminated call")
        if token == ("op", ")"):
            tokens.next()
            break
        # keyword argument?
        nxt = tokens.peek(1)
        if (
            token[0] == "ident"
            and nxt == ("op", "=")
            and (tokens.peek(2) or ("", ""))[0] != "op"
        ):
            key = tokens.next()[1]
            tokens.next()  # =
            kwargs.append((key, _parse_value(tokens)))
        else:
            args.append(_parse_value(tokens))
        token = tokens.peek()
        if token == ("op", ","):
            tokens.next()
    return Call(name, tuple(args), tuple(kwargs))


def parse_query(text: str) -> QueryChain:
    """Parse one query statement into a :class:`QueryChain`.

    Examples:
        >>> chain = parse_query(
        ...     "var movements = stream.window(wsize=50ms).sbp()"
        ...     ".kf(kf_params).call_runtime()")
        >>> chain.call_names
        ['window', 'sbp', 'kf', 'call_runtime']
    """
    text = text.strip().rstrip(";")
    if not text:
        raise QuerySyntaxError("empty query")
    tokens = _Tokens(text)

    chain = QueryChain()
    token = tokens.peek()
    if token == ("ident", "var"):
        tokens.next()
        chain.var_name = tokens.expect("ident")
        tokens.expect("op", "=")

    root = tokens.expect("ident")
    if root != "stream":
        raise QuerySyntaxError(f"chains must start at 'stream', got {root!r}")
    while tokens.peek() is not None:
        tokens.expect("op", ".")
        chain.calls.append(_parse_call(tokens))
    if not chain.calls:
        raise QuerySyntaxError("a query needs at least one operation")
    return chain


def parse_program(text: str) -> list[QueryChain]:
    """Parse a multi-statement program (one chain per statement).

    Statements are separated by semicolons or blank lines; statements
    themselves may span lines (Listing 2 style), so a bare newline inside
    a chain does not split it.
    """
    statements: list[str] = []
    current: list[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("//") or line.startswith("#"):
            if current:
                statements.append(" ".join(current))
                current = []
            continue
        while ";" in line:
            head, line = line.split(";", 1)
            current.append(head)
            statements.append(" ".join(current))
            current = []
            line = line.strip()
        if line:
            current.append(line)
    if current:
        statements.append(" ".join(current))
    chains = [parse_query(s) for s in statements if s.strip()]
    if not chains:
        raise QuerySyntaxError("empty program")
    return chains

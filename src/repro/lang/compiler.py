"""Compiler: query AST -> dataflow DAG -> PE pipeline (paper §3.7).

The chain's method names map onto dataflow operators (and thence PEs);
windowing parameters become operator attributes the scheduler uses.  The
output is (a) a :class:`~repro.scheduler.dataflow.DataflowGraph`, and
(b) a wired :class:`~repro.hardware.fabric.Fabric` pipeline ready for the
latency/power roll-ups — the reproduction's stand-in for the RISC-V
configuration binary the real toolchain emits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompilationError
from repro.hardware.fabric import Fabric
from repro.hardware.pipeline import Pipeline
from repro.lang.ast import QueryChain
from repro.scheduler.dataflow import OPERATOR_PES, DataflowGraph

#: Query method name -> dataflow operator name.  Methods matching an
#: operator name map to themselves.
METHOD_OPERATORS: dict[str, str] = {
    "window": "window",
    "sbp": "sbp",
    "fft": "fft",
    "bbf": "bbf",
    "xcor": "xcor",
    "svm": "svm",
    "neo": "neo",
    "thr": "thr",
    "dwt": "dwt",
    "kf": "kf",
    "nn": "nn",
    "hash": "hash",
    "ccheck": "ccheck",
    "dtw": "dtw",
    "emd": "emd",
    "select": "select",
    "Map": "map",
    "map": "map",
    "seizure_detect": "seizure_detect",
    "stimulate": "stimulate",
    "call_runtime": "call_runtime",
    "store": "store",
    "load": "load",
}


@dataclass
class CompiledQuery:
    """The compiler's output for one query."""

    chain: QueryChain
    dataflow: DataflowGraph
    window_ms: float | None
    pe_names: list[str]
    mc_operators: list[str]

    def build_pipeline(self, fabric: Fabric | None = None) -> Pipeline:
        """Wire the PE chain on a fabric and return the pipeline."""
        fabric = fabric if fabric is not None else Fabric()
        name = self.chain.var_name or "query"
        return fabric.wire_chain(name, self.pe_names)


def compile_query(chain: QueryChain) -> CompiledQuery:
    """Lower a parsed chain to a dataflow graph and PE list.

    Raises:
        CompilationError: for methods with no operator mapping.
    """
    dataflow = DataflowGraph()
    window_ms: float | None = None
    previous = None
    for call in chain.calls:
        try:
            op_name = METHOD_OPERATORS[call.name]
        except KeyError:
            raise CompilationError(
                f"method {call.name!r} is not supported on device; "
                f"supported: {sorted(METHOD_OPERATORS)}"
            ) from None
        params = {key: value for key, value in call.kwargs}
        operator = dataflow.add_operator(op_name, **params)
        if previous is not None:
            dataflow.connect(previous, operator)
        previous = operator
        if op_name == "window":
            wsize = call.kwarg("wsize")
            if wsize is not None and wsize.kind == "duration_ms":
                window_ms = wsize.number
    dataflow.validate()

    pe_names = []
    mc_ops = []
    for operator in dataflow.operators:
        if operator.runs_on_mc:
            mc_ops.append(operator.name)
        else:
            pe_names.append(OPERATOR_PES[operator.name])
    return CompiledQuery(chain, dataflow, window_ms, pe_names, mc_ops)


def compile_text(text: str) -> CompiledQuery:
    """Parse + compile in one step."""
    from repro.lang.parser import parse_query

    return compile_query(parse_query(text))

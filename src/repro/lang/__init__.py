"""Trill-like query language: parser, compiler, runtime (paper §3.7)."""

from repro.lang.ast import Call, QueryChain, Value
from repro.lang.compiler import (
    METHOD_OPERATORS,
    CompiledQuery,
    compile_query,
    compile_text,
)
from repro.lang.parser import parse_program, parse_query
from repro.lang.runtime import QueryRuntime

__all__ = [
    "Call",
    "QueryChain",
    "Value",
    "METHOD_OPERATORS",
    "CompiledQuery",
    "compile_query",
    "compile_text",
    "parse_program",
    "parse_query",
    "QueryRuntime",
]

"""A lightweight runtime executing compiled queries on sample arrays.

The on-device MC runtime listens for code/data and reconfigures pipelines
(paper §3.7); this software twin executes a compiled chain directly on a
``(channels, samples)`` array so examples and tests can run end-to-end:
parse -> compile -> execute.

Operators needing trained models (``svm``, ``kf``, ``nn``,
``seizure_detect``) read them from the runtime's model registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import CompilationError
from repro.lang.compiler import CompiledQuery
from repro.signal.features import (
    nonlinear_energy,
    spike_band_power_multichannel,
)
from repro.signal.filters import ButterworthBandpass
from repro.signal.windows import channel_windows, ms_to_samples
from repro.units import ADC_SAMPLE_RATE_HZ


@dataclass
class QueryRuntime:
    """Execute compiled queries against multichannel recordings."""

    fs_hz: float = ADC_SAMPLE_RATE_HZ
    models: dict[str, Any] = field(default_factory=dict)
    bbf_band_hz: tuple[float, float] = (100.0, 3000.0)

    def register_model(self, name: str, model: Any) -> None:
        """Register a trained model (``svm``, ``kf``, ``nn``, ``detector``)."""
        self.models[name] = model

    def _require_model(self, name: str) -> Any:
        try:
            return self.models[name]
        except KeyError:
            raise CompilationError(
                f"query needs a registered {name!r} model"
            ) from None

    def execute(self, compiled: CompiledQuery, recording: np.ndarray) -> Any:
        """Run the chain; returns the final operator's output.

        The data shape morphs through the chain: ``(channels, samples)``
        at the source, ``(channels, windows, wlen)`` after ``window``,
        feature arrays after the extractors, decisions at the sinks.
        """
        data: Any = np.asarray(recording, dtype=float)
        if data.ndim != 2:
            raise CompilationError("recordings are (channels, samples)")

        for operator in compiled.dataflow.operators:
            data = self._apply(operator.name, operator.params, data)
        return data

    def _apply(self, op: str, params: dict, data: Any) -> Any:
        if op == "window":
            wsize = params.get("wsize")
            window_ms = wsize.number if wsize is not None else 4.0
            wlen = ms_to_samples(window_ms, self.fs_hz)
            return channel_windows(data, wlen)
        if op == "sbp":
            if data.ndim == 3:  # (channels, windows, wlen)
                return np.mean(np.abs(data), axis=2).T  # (windows, channels)
            return spike_band_power_multichannel(data)
        if op == "bbf":
            bbf = ButterworthBandpass(*self.bbf_band_hz, fs_hz=self.fs_hz)
            return bbf(data)
        if op == "fft":
            return np.abs(np.fft.rfft(data, axis=-1))
        if op == "neo":
            if data.ndim == 2:
                return np.stack([nonlinear_energy(ch) for ch in data])
            raise CompilationError("neo expects (channels, samples)")
        if op == "kf":
            from repro.decoders.kalman import KalmanFilter

            model = self._require_model("kf")
            return KalmanFilter(model).run(np.atleast_2d(data))
        if op == "nn":
            model = self._require_model("nn")
            return np.stack([model.forward(row) for row in np.atleast_2d(data)])
        if op == "svm":
            model = self._require_model("svm")
            return model.predict(np.atleast_2d(data))
        if op == "seizure_detect":
            detector = self._require_model("detector")
            if data.ndim == 3:
                return np.stack(
                    [detector.detect_channels(data[:, w, :])
                     for w in range(data.shape[1])],
                    axis=1,
                )  # (channels, windows)
            return detector.detect_channels(data)
        if op == "hash":
            from repro.hashing.lsh import LSHFamily

            lsh = self.models.get("lsh") or LSHFamily.for_measure("dtw")
            if data.ndim == 3:
                return [
                    [lsh.hash_window(data[c, w]) for w in range(data.shape[1])]
                    for c in range(data.shape[0])
                ]
            raise CompilationError("hash expects windowed data")
        if op == "select":
            return data  # selection predicates are schedule-time filters
        if op == "map":
            return data
        if op in ("call_runtime", "stimulate", "store", "load", "pack",
                  "unpack", "compress", "decompress", "ccheck", "thr",
                  "dwt", "xcor", "dtw", "emd", "ngram", "emdh"):
            return data  # pass-through in the software runtime
        raise CompilationError(f"runtime cannot execute operator {op!r}")

"""Signal-processing substrate: windows, filters, and feature kernels."""

from repro.signal.features import (
    DEFAULT_SEIZURE_BANDS_HZ,
    adaptive_threshold,
    fft_band_powers,
    haar_dwt,
    haar_idwt,
    nonlinear_energy,
    spike_band_power,
    spike_band_power_multichannel,
    threshold_crossings,
)
from repro.signal.filters import (
    ButterworthBandpass,
    butter_bandpass_zpk,
    sosfilt,
    zpk_to_sos,
)
from repro.signal.windows import (
    channel_windows,
    ms_to_samples,
    samples_to_ms,
    sliding_windows,
    window_count,
)

__all__ = [
    "DEFAULT_SEIZURE_BANDS_HZ",
    "adaptive_threshold",
    "fft_band_powers",
    "haar_dwt",
    "haar_idwt",
    "nonlinear_energy",
    "spike_band_power",
    "spike_band_power_multichannel",
    "threshold_crossings",
    "ButterworthBandpass",
    "butter_bandpass_zpk",
    "sosfilt",
    "zpk_to_sos",
    "channel_windows",
    "ms_to_samples",
    "samples_to_ms",
    "sliding_windows",
    "window_count",
]

"""Sliding-window utilities over electrode sample streams.

SCALO's pipelines operate on contiguous time windows of neural data — the
paper uses overlapping 4 ms / 120-sample windows for seizure analysis and
50 ms windows for movement decoding.  Arrays are ``(n_samples,)`` for one
channel or ``(n_channels, n_samples)`` for a multi-electrode recording.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.units import ADC_SAMPLE_RATE_HZ, WINDOW_SAMPLES


def sliding_windows(
    samples: np.ndarray, window: int = WINDOW_SAMPLES, step: int | None = None
) -> np.ndarray:
    """Slice a 1-D sample stream into overlapping windows.

    Args:
        samples: shape ``(n_samples,)``.
        window: samples per window.
        step: hop between window starts; defaults to ``window`` (disjoint).

    Returns:
        Array of shape ``(n_windows, window)``.  A zero-copy strided view
        when possible.
    """
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ConfigurationError("sliding_windows expects a 1-D stream")
    if window <= 0:
        raise ConfigurationError("window length must be positive")
    if step is None:
        step = window
    if step <= 0:
        raise ConfigurationError("window step must be positive")
    n_windows = (samples.shape[0] - window) // step + 1
    if n_windows <= 0:
        return np.empty((0, window), dtype=samples.dtype)
    return np.lib.stride_tricks.sliding_window_view(samples, window)[::step]


def channel_windows(
    recording: np.ndarray, window: int = WINDOW_SAMPLES, step: int | None = None
) -> np.ndarray:
    """Window every channel of a multi-electrode recording.

    Args:
        recording: shape ``(n_channels, n_samples)``.

    Returns:
        Array of shape ``(n_channels, n_windows, window)``.
    """
    recording = np.asarray(recording)
    if recording.ndim != 2:
        raise ConfigurationError("channel_windows expects (channels, samples)")
    views = [sliding_windows(channel, window, step) for channel in recording]
    return np.stack(views)


def window_count(n_samples: int, window: int, step: int | None = None) -> int:
    """Number of windows :func:`sliding_windows` would produce."""
    if step is None:
        step = window
    if n_samples < window:
        return 0
    return (n_samples - window) // step + 1


def ms_to_samples(duration_ms: float, rate_hz: float = ADC_SAMPLE_RATE_HZ) -> int:
    """Convert a duration to a sample count at ``rate_hz``."""
    if duration_ms < 0:
        raise ConfigurationError("duration cannot be negative")
    return int(round(duration_ms * rate_hz / 1e3))


def samples_to_ms(n_samples: int, rate_hz: float = ADC_SAMPLE_RATE_HZ) -> float:
    """Convert a sample count to milliseconds at ``rate_hz``."""
    return n_samples * 1e3 / rate_hz

"""Digital filters: the Butterworth band-pass filter (BBF PE) from scratch.

The BBF PE is central to seizure detection: band-pass filtering isolates
the ictal frequency bands before classification.  We implement Butterworth
design ourselves (analog prototype poles, band-pass transform via
pre-warped bilinear mapping, cascade of biquads) rather than defer to
scipy, because the filter *is* one of the paper's accelerators.

The implementation follows the classic recipe:

1. place the N analog low-pass prototype poles on the unit circle,
2. pre-warp the digital corner frequencies,
3. apply the low-pass -> band-pass analog transform,
4. map poles/zeros to the z-domain with the bilinear transform,
5. normalise gain to unity at the band's geometric centre.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.units import ADC_SAMPLE_RATE_HZ


def _butter_prototype_poles(order: int) -> np.ndarray:
    """Analog low-pass Butterworth poles (left half-plane, unit cutoff)."""
    k = np.arange(1, order + 1)
    theta = np.pi * (2 * k - 1) / (2 * order) + np.pi / 2
    return np.exp(1j * theta)


def butter_bandpass_zpk(
    low_hz: float, high_hz: float, order: int = 2, fs_hz: float = ADC_SAMPLE_RATE_HZ
) -> tuple[np.ndarray, np.ndarray, float]:
    """Design a digital Butterworth band-pass filter; returns (zeros, poles, gain).

    ``order`` is the order of the low-pass prototype; the band-pass filter
    has ``2 * order`` poles.
    """
    if not 0 < low_hz < high_hz < fs_hz / 2:
        raise ConfigurationError(
            f"need 0 < low ({low_hz}) < high ({high_hz}) < Nyquist ({fs_hz / 2})"
        )
    if order < 1:
        raise ConfigurationError("filter order must be >= 1")

    # Pre-warp the band edges for the bilinear transform.
    warped_low = 2 * fs_hz * np.tan(np.pi * low_hz / fs_hz)
    warped_high = 2 * fs_hz * np.tan(np.pi * high_hz / fs_hz)
    bandwidth = warped_high - warped_low
    center = np.sqrt(warped_low * warped_high)

    prototype = _butter_prototype_poles(order)

    # Low-pass -> band-pass: each prototype pole p maps to a conjugate pair.
    scaled = prototype * bandwidth / 2
    discriminant = np.sqrt(scaled**2 - center**2 + 0j)
    analog_poles = np.concatenate([scaled + discriminant, scaled - discriminant])
    analog_zeros = np.zeros(order)  # 'order' zeros at s = 0

    # Bilinear transform s -> (2 fs)(z-1)/(z+1).
    fs2 = 2 * fs_hz
    digital_poles = (fs2 + analog_poles) / (fs2 - analog_poles)
    digital_zeros = (fs2 + analog_zeros) / (fs2 - analog_zeros)
    # Remaining zeros map to z = -1.
    digital_zeros = np.concatenate([digital_zeros, -np.ones(order)])

    # Gain from matching the analog gain at the band centre.
    gain = np.real(
        np.prod(fs2 - analog_zeros)
        / np.prod(fs2 - analog_poles)
        * bandwidth**order
    )

    # Normalise |H| to exactly 1 at the digital band centre.
    w_center = 2 * np.pi * np.sqrt(low_hz * high_hz) / fs_hz
    z = np.exp(1j * w_center)
    response = gain * np.prod(z - digital_zeros) / np.prod(z - digital_poles)
    gain /= np.abs(response)
    return digital_zeros, digital_poles, float(gain)


def zpk_to_sos(
    zeros: np.ndarray, poles: np.ndarray, gain: float
) -> np.ndarray:
    """Pair conjugate zeros/poles into second-order sections.

    Returns an array of shape ``(n_sections, 6)`` with rows
    ``[b0, b1, b2, 1, a1, a2]``.
    """

    def conjugate_pairs(roots: np.ndarray) -> list[np.ndarray]:
        remaining = list(roots)
        pairs = []
        while remaining:
            root = remaining.pop(0)
            if abs(root.imag) < 1e-12:
                # find another (near-)real root to pair with
                mate_idx = next(
                    (i for i, r in enumerate(remaining) if abs(r.imag) < 1e-12),
                    None,
                )
                mate = remaining.pop(mate_idx) if mate_idx is not None else 0.0
            else:
                mate_idx = min(
                    range(len(remaining)),
                    key=lambda i: abs(remaining[i] - np.conj(root)),
                )
                mate = remaining.pop(mate_idx)
            pairs.append(np.array([root, mate]))
        return pairs

    zero_pairs = conjugate_pairs(np.asarray(zeros, dtype=complex))
    pole_pairs = conjugate_pairs(np.asarray(poles, dtype=complex))
    n_sections = max(len(zero_pairs), len(pole_pairs))
    sections = np.zeros((n_sections, 6))
    for i in range(n_sections):
        zs = zero_pairs[i] if i < len(zero_pairs) else np.array([0.0, 0.0])
        ps = pole_pairs[i] if i < len(pole_pairs) else np.array([0.0, 0.0])
        b = np.real(np.poly(zs))
        a = np.real(np.poly(ps))
        if i == 0:
            b = b * gain
        sections[i, :3] = b
        sections[i, 3:] = a
    return sections


def sosfilt(sections: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Run a cascade of biquads over ``samples`` (direct form II transposed)."""
    samples = np.asarray(samples, dtype=float)
    output = samples.copy()
    for b0, b1, b2, _, a1, a2 in sections:
        state1 = 0.0
        state2 = 0.0
        filtered = np.empty_like(output)
        for i, x in enumerate(output):
            y = b0 * x + state1
            state1 = b1 * x - a1 * y + state2
            state2 = b2 * x - a2 * y
            filtered[i] = y
        output = filtered
    return output


class ButterworthBandpass:
    """A reusable band-pass filter, the software twin of the BBF PE.

    Example:
        >>> bbf = ButterworthBandpass(4.0, 30.0, order=2, fs_hz=1000.0)
        >>> filtered = bbf(np.random.default_rng(0).normal(size=256))
    """

    def __init__(
        self,
        low_hz: float,
        high_hz: float,
        order: int = 2,
        fs_hz: float = ADC_SAMPLE_RATE_HZ,
    ):
        self.low_hz = low_hz
        self.high_hz = high_hz
        self.order = order
        self.fs_hz = fs_hz
        zeros, poles, gain = butter_bandpass_zpk(low_hz, high_hz, order, fs_hz)
        self.sections = zpk_to_sos(zeros, poles, gain)

    def __call__(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim == 1:
            return sosfilt(self.sections, samples)
        if samples.ndim == 2:
            return np.stack([sosfilt(self.sections, ch) for ch in samples])
        raise ConfigurationError("expected 1-D or 2-D sample array")

    def frequency_response(self, freqs_hz: np.ndarray) -> np.ndarray:
        """Complex response H(e^{jw}) at ``freqs_hz``."""
        w = 2 * np.pi * np.asarray(freqs_hz, dtype=float) / self.fs_hz
        z = np.exp(1j * w)
        response = np.ones_like(z, dtype=complex)
        for b0, b1, b2, a0, a1, a2 in self.sections:
            response *= (b0 + b1 / z + b2 / z**2) / (a0 + a1 / z + a2 / z**2)
        return response

    def band_power(self, samples: np.ndarray) -> float:
        """Mean squared amplitude of the filtered signal."""
        filtered = self(samples)
        return float(np.mean(filtered**2))

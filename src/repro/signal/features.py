"""Feature-extraction kernels: the software twins of SCALO's small PEs.

Implements the FFT band features, spike-band power (SBP), non-linear energy
operator (NEO), amplitude thresholding (THR), and the Haar discrete wavelet
transform (DWT) used across the paper's pipelines (Figs. 5-7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.units import ADC_SAMPLE_RATE_HZ


def fft_band_powers(
    window: np.ndarray,
    bands_hz: list[tuple[float, float]],
    fs_hz: float = ADC_SAMPLE_RATE_HZ,
) -> np.ndarray:
    """Mean spectral power of ``window`` within each frequency band.

    This is the FFT PE followed by band aggregation — the standard seizure
    feature (delta/theta/alpha/beta/gamma band powers).
    """
    window = np.asarray(window, dtype=float)
    if window.ndim != 1:
        raise ConfigurationError("fft_band_powers expects one window")
    spectrum = np.abs(np.fft.rfft(window)) ** 2
    freqs = np.fft.rfftfreq(window.shape[0], d=1.0 / fs_hz)
    powers = np.empty(len(bands_hz))
    for i, (low, high) in enumerate(bands_hz):
        if not 0 <= low < high:
            raise ConfigurationError(f"invalid band ({low}, {high})")
        mask = (freqs >= low) & (freqs < high)
        powers[i] = spectrum[mask].mean() if mask.any() else 0.0
    return powers


#: Conventional iEEG bands (Hz) used by the seizure detector.
DEFAULT_SEIZURE_BANDS_HZ: list[tuple[float, float]] = [
    (1, 4),      # delta
    (4, 8),      # theta
    (8, 13),     # alpha
    (13, 30),    # beta
    (30, 80),    # low gamma
    (80, 250),   # high gamma / ripple
]


def spike_band_power(window: np.ndarray) -> float:
    """Spike-band power (the SBP PE): mean absolute value of the window.

    The movement pipelines compute "the mean value of all neural signals in
    a time window (typically 50 ms)" on the spike-band-filtered signal;
    mean |x| is the standard SBP estimator.
    """
    window = np.asarray(window, dtype=float)
    return float(np.mean(np.abs(window)))


def spike_band_power_multichannel(windows: np.ndarray) -> np.ndarray:
    """SBP per channel for an array shaped ``(n_channels, n_samples)``."""
    windows = np.asarray(windows, dtype=float)
    if windows.ndim != 2:
        raise ConfigurationError("expected (channels, samples)")
    return np.mean(np.abs(windows), axis=1)


def nonlinear_energy(samples: np.ndarray) -> np.ndarray:
    """NEO PE: psi[n] = x[n]^2 - x[n-1] * x[n+1].

    Emphasises high-frequency, high-amplitude activity — the classic spike
    pre-detector.  Output has the same length as input; the two boundary
    values are zero.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise ConfigurationError("nonlinear_energy expects a 1-D stream")
    energy = np.zeros_like(samples)
    if samples.shape[0] >= 3:
        energy[1:-1] = samples[1:-1] ** 2 - samples[:-2] * samples[2:]
    return energy


def threshold_crossings(
    samples: np.ndarray, threshold: float, refractory: int = 30
) -> np.ndarray:
    """THR PE: indices where ``samples`` crosses above ``threshold``.

    A refractory period (samples) suppresses re-triggering inside a single
    event — one detection per spike.
    """
    samples = np.asarray(samples, dtype=float)
    if refractory < 0:
        raise ConfigurationError("refractory period cannot be negative")
    above = samples > threshold
    crossings = np.flatnonzero(above[1:] & ~above[:-1]) + 1
    if samples.size and above[0]:
        crossings = np.concatenate([[0], crossings])
    if refractory == 0 or crossings.size == 0:
        return crossings
    kept = [int(crossings[0])]
    for idx in crossings[1:]:
        if idx - kept[-1] > refractory:
            kept.append(int(idx))
    return np.asarray(kept, dtype=np.int64)


def adaptive_threshold(samples: np.ndarray, k: float = 4.0) -> float:
    """Robust spike threshold: k times the MAD-based noise sigma estimate."""
    samples = np.asarray(samples, dtype=float)
    sigma = np.median(np.abs(samples - np.median(samples))) / 0.6745
    return float(k * sigma)


def haar_dwt(window: np.ndarray, levels: int = 1) -> list[np.ndarray]:
    """DWT PE: Haar wavelet decomposition.

    Returns ``[approx_L, detail_L, detail_L-1, ..., detail_1]`` like the
    usual wavedec ordering.  Window length must be divisible by 2**levels.
    """
    window = np.asarray(window, dtype=float)
    if window.ndim != 1:
        raise ConfigurationError("haar_dwt expects a 1-D window")
    if levels < 1:
        raise ConfigurationError("levels must be >= 1")
    if window.shape[0] % (2**levels):
        raise ConfigurationError(
            f"window length {window.shape[0]} not divisible by 2^{levels}"
        )
    details: list[np.ndarray] = []
    approx = window
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    for _ in range(levels):
        even = approx[0::2]
        odd = approx[1::2]
        details.append((even - odd) * inv_sqrt2)
        approx = (even + odd) * inv_sqrt2
    return [approx] + details[::-1]


def haar_idwt(coeffs: list[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`haar_dwt` (exact reconstruction)."""
    if not coeffs:
        raise ConfigurationError("empty coefficient list")
    approx = np.asarray(coeffs[0], dtype=float)
    inv_sqrt2 = 1.0 / np.sqrt(2.0)
    for detail in coeffs[1:]:
        detail = np.asarray(detail, dtype=float)
        if detail.shape != approx.shape:
            raise ConfigurationError("coefficient shape mismatch")
        even = (approx + detail) * inv_sqrt2
        odd = (approx - detail) * inv_sqrt2
        merged = np.empty(approx.shape[0] * 2)
        merged[0::2] = even
        merged[1::2] = odd
        approx = merged
    return approx

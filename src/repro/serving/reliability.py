"""Request-reliability primitives: retries, circuit breakers, brownouts.

Three mechanisms keep the serving layer answering while a fault storm
rages, all deterministic in simulated milliseconds:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  **decorrelated jitter**, derived from a seeded RNG keyed on
  ``(seed, request key, attempt)``, so every backoff is a pure function
  of the policy and the request.  Used client-side (the load generator
  honours ``retry_after_ms`` on shed) and server-side (coverage-SLA
  re-execution once the health layer reports nodes recovered).
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-node breakers:
  ``closed`` → ``open`` after ``failure_threshold`` consecutive failed
  wave contributions, ``open`` → ``half_open`` after ``open_ms`` of
  simulated time, then one probe wave decides ``closed`` vs re-``open``.
  A latched (open) node is skipped without paying the per-wave failed
  contribution timeout, so a flapping node stops poisoning wave latency.
* :class:`BrownoutController` — graded degradation between "healthy"
  and "shed": tier 1 shrinks the scanned window range, tier 2 answers
  from the signature cache only (no NVM reads), tier 3 rejects new
  admissions outright.  The tier is a pure function of the current
  queue depth and the deadline-miss rate over a sliding window of
  recent completions, so it replays byte-identically.

Nothing here reads a wall clock or a telemetry handle; all state
machines advance on caller-supplied simulated timestamps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

# -- retries -------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded, decorrelated jitter.

    ``backoff_ms(key, attempt)`` follows the classic decorrelated-jitter
    recurrence — ``sleep = min(cap, uniform(base, 3 * prev))`` — but the
    randomness comes from ``default_rng((seed, key))``, so the whole
    backoff sequence is a deterministic function of the policy, the
    request key, and the attempt index.  ``attempt`` counts *prior*
    tries: attempt 0 is the first retry.
    """

    max_attempts: int = 3  # total attempts, including the first
    base_ms: float = 50.0
    cap_ms: float = 2000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("need at least one attempt")
        if self.base_ms <= 0:
            raise ConfigurationError("backoff base must be positive")
        if self.cap_ms < self.base_ms:
            raise ConfigurationError("backoff cap must be >= base")

    def allows(self, attempt: int) -> bool:
        """May a request run its ``attempt``-th retry (0-based)?"""
        return attempt + 1 < self.max_attempts

    def backoff_ms(self, key: int, attempt: int) -> float:
        """Simulated ms to wait before retry number ``attempt`` (0-based)."""
        rng = np.random.default_rng((self.seed, int(key) & 0x7FFFFFFF))
        sleep = self.base_ms
        for _ in range(attempt + 1):
            sleep = min(self.cap_ms, float(rng.uniform(self.base_ms, 3 * sleep)))
        return sleep


# -- circuit breakers ----------------------------------------------------------


class BreakerState(enum.Enum):
    """The classic three-state breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables for one per-node circuit breaker."""

    #: consecutive failed wave contributions before the breaker opens
    failure_threshold: int = 3
    #: simulated ms an open breaker latches before allowing a probe
    open_ms: float = 400.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure threshold must be positive")
        if self.open_ms <= 0:
            raise ConfigurationError("open duration must be positive")


@dataclass
class CircuitBreaker:
    """One node's breaker: closed → open → half-open → closed/open.

    ``allow(now)`` answers "should this wave attempt the node?" and is
    where the open → half-open transition fires (time-based).  The wave
    then reports the outcome via :meth:`record_success` /
    :meth:`record_failure`.  Every transition is appended to
    ``transitions`` as ``(now_ms, from_state, to_state)`` — the
    deterministic record the reproducibility tests compare.
    """

    config: BreakerConfig = field(default_factory=BreakerConfig)
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at_ms: float = 0.0
    transitions: list[tuple[float, str, str]] = field(default_factory=list)

    def _move(self, now_ms: float, to: BreakerState) -> None:
        self.transitions.append((now_ms, self.state.value, to.value))
        self.state = to

    def allow(self, now_ms: float) -> bool:
        """True when the node should be attempted in a wave at ``now_ms``."""
        if self.state is BreakerState.OPEN:
            if now_ms - self.opened_at_ms >= self.config.open_ms:
                self._move(now_ms, BreakerState.HALF_OPEN)
                return True
            return False
        return True

    def force_probe(self, now_ms: float) -> None:
        """External recovery evidence: an open breaker moves to half-open.

        The health layer reporting a node back is stronger information
        than the hold-off timer; the next wave probes the node instead
        of waiting out ``open_ms``.
        """
        if self.state is BreakerState.OPEN:
            self._move(now_ms, BreakerState.HALF_OPEN)

    def record_success(self, now_ms: float) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._move(now_ms, BreakerState.CLOSED)

    def record_failure(self, now_ms: float) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._move(now_ms, BreakerState.OPEN)
            self.opened_at_ms = now_ms
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._move(now_ms, BreakerState.OPEN)
            self.opened_at_ms = now_ms


@dataclass
class BreakerBoard:
    """The fleet's breakers, one per node, created on first sight."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    breakers: dict[int, CircuitBreaker] = field(default_factory=dict)
    _cursors: dict[int, int] = field(default_factory=dict)

    def breaker(self, node: int) -> CircuitBreaker:
        breaker = self.breakers.get(node)
        if breaker is None:
            breaker = self.breakers[node] = CircuitBreaker(self.config)
        return breaker

    def partition(
        self, nodes: list[int], now_ms: float
    ) -> tuple[set[int], set[int]]:
        """Split ``nodes`` into ``(attempt, latched)`` for one wave.

        Latched nodes have an open breaker still inside its hold-off;
        the wave skips them without waiting out a contribution timeout.
        Half-open transitions fire here (probes land in ``attempt``).
        """
        attempt: set[int] = set()
        latched: set[int] = set()
        for node in nodes:
            (attempt if self.breaker(node).allow(now_ms) else latched).add(node)
        return attempt, latched

    def force_probe(self, nodes, now_ms: float) -> None:
        """Move recovered nodes' open breakers straight to half-open."""
        for node in sorted(nodes):
            if node in self.breakers:
                self.breakers[node].force_probe(now_ms)

    def pop_events(self) -> list[tuple[int, float, str, str]]:
        """Transitions since the last call, as ``(node, now_ms, from, to)``.

        Lets the server book state-change counters exactly once per
        transition without the breakers knowing about telemetry.
        """
        events = []
        for node in sorted(self.breakers):
            transitions = self.breakers[node].transitions
            seen = self._cursors.get(node, 0)
            if len(transitions) > seen:
                events.extend(
                    (node, when, src, dst)
                    for when, src, dst in transitions[seen:]
                )
                self._cursors[node] = len(transitions)
        return events

    def transition_log(self) -> list[tuple[int, float, str, str]]:
        """Every transition as ``(node, now_ms, from, to)``, node-ordered."""
        log = []
        for node in sorted(self.breakers):
            for when, src, dst in self.breakers[node].transitions:
                log.append((node, when, src, dst))
        return log


# -- brownouts -----------------------------------------------------------------

#: Brownout tiers, healthy → shed.
TIER_HEALTHY = 0  # full service
TIER_REDUCED = 1  # shrink the scanned window range
TIER_CACHE_ONLY = 2  # answer from the signature cache, no NVM reads
TIER_REJECT = 3  # shed new admissions

TIER_NAMES = {
    TIER_HEALTHY: "healthy",
    TIER_REDUCED: "reduced",
    TIER_CACHE_ONLY: "cache_only",
    TIER_REJECT: "reject",
}


@dataclass(frozen=True)
class BrownoutConfig:
    """Thresholds driving the graded-degradation controller.

    ``queue_tiers`` are queue-depth fractions (of ``max_queue``) and
    ``miss_tiers`` deadline-miss rates (over the last ``window``
    completions) at which tiers 1..3 engage; the effective tier is the
    max of the two signals.
    """

    queue_tiers: tuple[float, float, float] = (0.5, 0.75, 0.95)
    miss_tiers: tuple[float, float, float] = (0.25, 0.5, 0.8)
    #: completions the deadline-miss rate is computed over
    window: int = 16
    #: retry hint handed to clients shed at tier 3 (simulated ms)
    retry_after_ms: float = 100.0

    def __post_init__(self) -> None:
        for tiers in (self.queue_tiers, self.miss_tiers):
            if len(tiers) != 3 or list(tiers) != sorted(tiers):
                raise ConfigurationError(
                    "tier thresholds must be three ascending values"
                )
        if self.window < 1:
            raise ConfigurationError("miss window must be positive")
        if self.retry_after_ms < 0:
            raise ConfigurationError("retry hint cannot be negative")


@dataclass
class BrownoutController:
    """Maps (queue pressure, recent deadline misses) to a service tier."""

    config: BrownoutConfig = field(default_factory=BrownoutConfig)
    _recent_misses: list[bool] = field(default_factory=list)
    #: tier transition log, ``(t_ms, old_tier, new_tier)`` — appended by
    #: the server at wave dispatch, consumed by health/export tooling
    transitions: list[tuple[float, int, int]] = field(default_factory=list)

    def record_completion(self, missed: bool) -> None:
        self._recent_misses.append(missed)
        if len(self._recent_misses) > self.config.window:
            del self._recent_misses[: -self.config.window]

    @property
    def miss_rate(self) -> float:
        if not self._recent_misses:
            return 0.0
        return sum(self._recent_misses) / len(self._recent_misses)

    @staticmethod
    def _tier_from(value: float, thresholds: tuple[float, float, float]) -> int:
        tier = 0
        for level, threshold in enumerate(thresholds, start=1):
            if value >= threshold:
                tier = level
        return tier

    def tier(self, queue_depth: int, max_queue: int) -> int:
        """The current service tier (0 = healthy .. 3 = reject)."""
        queue_frac = queue_depth / max_queue if max_queue else 0.0
        return max(
            self._tier_from(queue_frac, self.config.queue_tiers),
            self._tier_from(self.miss_rate, self.config.miss_tiers),
        )

"""Fleet-scale query serving: admission control, coalescing, EDF dispatch.

The multiplexing layer between many concurrent clients and the batched
query path: a bounded admission queue with per-client token buckets
(overload sheds with :class:`~repro.errors.QueryRejected`), micro-batch
coalescing of compatible queries into one scan per wave, and
earliest-deadline-first dispatch with deadline-miss accounting — all in
simulated time, deterministic for a given seed and fault plan.

:mod:`repro.serving.reliability` layers chaos hardening on top:
seeded retries (client- and server-side), per-node circuit breakers,
and graded brownout tiers.  See DESIGN.md "Serving model" and
"Fault-aware serving".
"""

from __future__ import annotations

from repro.errors import QueryRejected
from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.loadgen import (
    Arrival,
    LoadGenConfig,
    ServeReport,
    final_responses,
    generate_arrivals,
    per_client_responses,
    percentile,
    run_open_loop,
    serve_session,
    summarise,
)
from repro.serving.reliability import (
    TIER_CACHE_ONLY,
    TIER_HEALTHY,
    TIER_NAMES,
    TIER_REDUCED,
    TIER_REJECT,
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serving.server import (
    QueryRequest,
    QueryResponse,
    QueryServer,
    ServerConfig,
    ServingStats,
)

__all__ = [
    "AdmissionController",
    "Arrival",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "BrownoutConfig",
    "BrownoutController",
    "CircuitBreaker",
    "LoadGenConfig",
    "QueryRejected",
    "QueryRequest",
    "QueryResponse",
    "QueryServer",
    "RetryPolicy",
    "ServeReport",
    "ServerConfig",
    "ServingStats",
    "TIER_CACHE_ONLY",
    "TIER_HEALTHY",
    "TIER_NAMES",
    "TIER_REDUCED",
    "TIER_REJECT",
    "TokenBucket",
    "final_responses",
    "generate_arrivals",
    "per_client_responses",
    "percentile",
    "run_open_loop",
    "serve_session",
    "summarise",
]

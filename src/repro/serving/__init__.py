"""Fleet-scale query serving: admission control, coalescing, EDF dispatch.

The multiplexing layer between many concurrent clients and the batched
query path: a bounded admission queue with per-client token buckets
(overload sheds with :class:`~repro.errors.QueryRejected`), micro-batch
coalescing of compatible queries into one scan per wave, and
earliest-deadline-first dispatch with deadline-miss accounting — all in
simulated time, deterministic for a given seed and fault plan.  See
DESIGN.md "Serving model".
"""

from __future__ import annotations

from repro.errors import QueryRejected
from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.loadgen import (
    Arrival,
    LoadGenConfig,
    ServeReport,
    generate_arrivals,
    run_open_loop,
    serve_session,
    summarise,
)
from repro.serving.server import (
    QueryRequest,
    QueryResponse,
    QueryServer,
    ServerConfig,
)

__all__ = [
    "AdmissionController",
    "Arrival",
    "LoadGenConfig",
    "QueryRejected",
    "QueryRequest",
    "QueryResponse",
    "QueryServer",
    "ServeReport",
    "ServerConfig",
    "TokenBucket",
    "generate_arrivals",
    "run_open_loop",
    "serve_session",
    "summarise",
]

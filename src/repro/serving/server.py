"""The fleet-scale query server: admission → coalesce → EDF dispatch.

SCALO's query interface (§3.4, Fig. 10) assumes one caller; this module
multiplexes many concurrent, deadline-bearing clients onto the PR-4
batched/cached query path.  :class:`QueryServer` is a discrete-event
server in **simulated milliseconds**:

* :meth:`submit` stamps an arrival, runs admission control (bounded
  queue + per-client token bucket, see
  :mod:`repro.serving.admission`), then the brownout gate (tier 3 sheds
  with reason ``brownout``) and either enqueues the request or sheds it
  with :class:`~repro.errors.QueryRejected`;
* pending requests with the same *coalesce key* — identical
  :class:`~repro.apps.queries.QuerySpec`, window range, and template
  bytes — merge into one **wave** that runs
  :meth:`~repro.apps.queries.QueryEngine.run` once, so the signature
  cache and the NVM scan are hit once per wave instead of once per
  client;
* waves dispatch **earliest-deadline-first**; a wave's deadline is the
  earliest deadline among its members, ties break on the lowest request
  id, so dispatch order is total and deterministic;
* completion past a request's deadline is answered anyway but counted
  as a deadline miss (a late answer still beats a lost session);
* nodes believed dead (fed from the faults/health layer via
  :meth:`observe_health`) are routed around — responses carry the
  degraded/coverage tagging of the underlying
  :class:`~repro.apps.queries.DistributedQueryResult`.

Chaos hardening (see :mod:`repro.serving.reliability` and DESIGN.md
"Fault-aware serving") layers three mechanisms on that pipeline:

* **failed-contribution timeouts** — a node the wave attempts (or has
  not yet latched out) that cannot contribute charges
  ``failed_node_timeout_ms`` of extra service time, making fault cost
  explicit;
* **per-node circuit breakers** — ``failure_threshold`` consecutive
  failed contributions latch a node open; latched nodes are skipped
  without the timeout charge until a half-open probe wave readmits
  them, so a flapping node stops poisoning wave latency;
* **brownouts** — queue depth and the recent deadline-miss rate grade
  service into tiers: full → reduced window range → signature-cache
  only → reject; the tier is stamped on every response and log row;
* **coverage-SLA re-execution** — a request whose wave answered below
  its ``min_coverage`` is parked and deterministically re-executed
  (bounded :class:`~repro.serving.reliability.RetryPolicy` backoff)
  once :meth:`set_dead_nodes` observes a node recover.

Service time comes from the paper's Fig. 10 cost model
(:class:`~repro.apps.queries.QueryCostModel`): a wave pays one full
query latency (scan + filter + transmit + overhead) plus a small
per-extra-member merge charge, plus the timeout charges above.  The
server keeps its own ``now_ms``; telemetry is observational only, so
runs with ``NULL_TELEMETRY`` and runs with a live handle produce
byte-identical response logs.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro.apps.queries import (
    DistributedQueryResult,
    QueryCostModel,
    QueryEngine,
    QuerySpec,
)
from repro.errors import ConfigurationError, QueryRejected
from repro.serving.admission import AdmissionController
from repro.serving.reliability import (
    TIER_CACHE_ONLY,
    TIER_HEALTHY,
    TIER_NAMES,
    TIER_REDUCED,
    TIER_REJECT,
    BreakerBoard,
    BreakerConfig,
    BrownoutConfig,
    BrownoutController,
    RetryPolicy,
)
from repro.telemetry import NULL_TELEMETRY, TelemetryLike


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`QueryServer`."""

    #: bounded admission queue: pending requests beyond this are shed
    max_queue: int = 16
    #: merge compatible pending queries into one scan (off = serial)
    coalesce: bool = True
    #: per-client token bucket (burst capacity, steady-state rate)
    bucket_capacity: float = 32.0
    bucket_refill_per_s: float = 100.0
    #: deadline assigned when a request does not carry one (relative ms)
    default_deadline_ms: float = 250.0
    #: response-assembly charge per coalesced member beyond the first
    coalesce_merge_ms: float = 2.0
    #: extra service time per failed, un-latched node contribution (the
    #: wave waits this long before declaring the node absent)
    failed_node_timeout_ms: float = 25.0
    #: flat service time for a signature-cache-only (tier 2) wave
    cache_only_service_ms: float = 10.0
    #: fraction of the window range a tier-1 (reduced) wave still scans
    reduced_range_fraction: float = 0.5
    #: completed :class:`~repro.apps.queries.DistributedQueryResult`\ s
    #: retained for :meth:`QueryServer.result_for` (LRU eviction)
    result_retention: int = 512
    #: response/shed log lines retained (oldest dropped first)
    log_retention: int = 4096
    #: coverage SLA stamped on requests that do not carry one
    default_min_coverage: float = 0.0
    #: pending requests any one client may hold in the queue (None = no
    #: quota) — the fabric's tenant-isolation gate: a flooding tenant
    #: fills at most this share of the shared admission queue
    per_client_queue_quota: int | None = None
    #: partition the result-retention LRU by client: each client gets
    #: its own ``result_retention``-bounded LRU, so one tenant's churn
    #: can never evict another tenant's retained answers
    partition_results_by_client: bool = False
    #: per-node circuit breakers (None disables latching entirely)
    breaker: BreakerConfig | None = field(default_factory=BreakerConfig)
    #: graded-degradation controller (None = always serve tier 0)
    brownout: BrownoutConfig | None = None
    #: server-side coverage-SLA re-execution policy (None = no retries)
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.default_deadline_ms <= 0:
            raise ConfigurationError("default deadline must be positive")
        if self.coalesce_merge_ms < 0:
            raise ConfigurationError("merge charge cannot be negative")
        if self.failed_node_timeout_ms < 0:
            raise ConfigurationError("timeout charge cannot be negative")
        if self.cache_only_service_ms < 0:
            raise ConfigurationError("cache-only service cannot be negative")
        if not 0 < self.reduced_range_fraction <= 1:
            raise ConfigurationError(
                "reduced-range fraction must be in (0, 1]"
            )
        if self.result_retention < 1:
            raise ConfigurationError("result retention must be positive")
        if self.log_retention < 1:
            raise ConfigurationError("log retention must be positive")
        if not 0 <= self.default_min_coverage <= 1:
            raise ConfigurationError("coverage SLA must be in [0, 1]")
        if (
            self.per_client_queue_quota is not None
            and self.per_client_queue_quota < 1
        ):
            raise ConfigurationError("per-client queue quota must be positive")


@dataclass
class ServingStats:
    """Plain deterministic counters (independent of the telemetry handle).

    The serving determinism contract forbids reading state back from
    telemetry, so everything the reports and gates need is booked here
    as well; the ``serving.*`` metrics mirror these numbers when a live
    handle is attached.
    """

    retries: int = 0
    sla_violations: int = 0
    breaker_opened: int = 0
    breaker_half_open: int = 0
    breaker_closed: int = 0
    timeouts_charged: int = 0
    results_evicted: int = 0
    brownout_rejections: int = 0
    #: waves served at each brownout tier
    brownout_waves: dict[int, int] = field(default_factory=dict)
    #: retained results evicted, per client (only populated when the
    #: retention LRU is partitioned by client — the isolation gate's
    #: "zero victim evictions" evidence)
    results_evicted_by_client: dict[str, int] = field(default_factory=dict)


@dataclass
class QueryRequest:
    """One admitted request waiting in (or dispatched from) the queue."""

    request_id: int
    client: str
    spec: QuerySpec
    window_range: tuple[int, int]
    template: np.ndarray | None
    arrival_ms: float
    deadline_ms: float  # absolute simulated time
    #: minimum fleet coverage this request's answer must reach
    min_coverage: float = 0.0
    #: execution attempt (0 = first; >0 = server-side SLA re-execution)
    attempt: int = 0
    #: the relative deadline re-executions are restamped with
    relative_deadline_ms: float = 250.0

    def coalesce_key(self) -> tuple:
        """Requests with equal keys can share one batched scan."""
        tpl = self.template.tobytes() if self.template is not None else None
        return (self.spec, self.window_range, tpl)


@dataclass(frozen=True)
class QueryResponse:
    """The completion record for one request (the response-log row)."""

    request_id: int
    client: str
    kind: str
    arrival_ms: float
    start_ms: float
    finish_ms: float
    deadline_ms: float
    wave_id: int
    wave_size: int
    n_rows: int
    rows_crc: int
    coverage: float
    degraded: bool
    #: brownout tier the wave served at (0 = full service)
    tier: int = 0
    #: execution attempt (>0 = coverage-SLA re-execution)
    attempt: int = 0
    #: the coverage SLA this request carried
    min_coverage: float = 0.0

    @property
    def latency_ms(self) -> float:
        return self.finish_ms - self.arrival_ms

    @property
    def wait_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def deadline_missed(self) -> bool:
        return self.finish_ms > self.deadline_ms

    @property
    def sla_met(self) -> bool:
        return self.coverage >= self.min_coverage

    def log_line(self) -> str:
        return (
            f"id={self.request_id:06d} client={self.client} kind={self.kind} "
            f"arrive={self.arrival_ms:012.3f} start={self.start_ms:012.3f} "
            f"finish={self.finish_ms:012.3f} wave={self.wave_id:05d}"
            f"x{self.wave_size:02d} rows={self.n_rows:04d} "
            f"crc={self.rows_crc:08x} coverage={self.coverage:.3f} "
            f"miss={int(self.deadline_missed)} tier={self.tier} "
            f"try={self.attempt} sla={int(self.sla_met)}"
        )


@dataclass
class QueryServer:
    """Multiplexes concurrent clients onto one :class:`QueryEngine`."""

    engine: QueryEngine
    config: ServerConfig = field(default_factory=ServerConfig)
    #: Fig. 10 latency model used as the service-time clock; defaults to
    #: one sized to the engine's fleet
    cost_model: QueryCostModel | None = None
    telemetry: TelemetryLike = field(default=NULL_TELEMETRY, repr=False)
    #: optional :class:`~repro.telemetry.health.FlightRecorder` fed
    #: breaker/brownout/shed transitions (attached by a HealthEngine;
    #: append-only, so it cannot perturb the response log)
    recorder: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.cost_model is None:
            self.cost_model = QueryCostModel(
                n_nodes=max(1, len(self.engine.controllers))
            )
        self.now_ms = 0.0
        self.max_queue_depth = 0
        self.responses: list[QueryResponse] = []
        self.stats = ServingStats()
        self._admission = AdmissionController(
            max_queue=self.config.max_queue,
            bucket_capacity=self.config.bucket_capacity,
            bucket_refill_per_s=self.config.bucket_refill_per_s,
            max_pending_per_client=self.config.per_client_queue_quota,
        )
        self.breakers = (
            BreakerBoard(self.config.breaker)
            if self.config.breaker is not None
            else None
        )
        self.brownout = (
            BrownoutController(self.config.brownout)
            if self.config.brownout is not None
            else None
        )
        self._pending: list[QueryRequest] = []
        self._parked: list[QueryRequest] = []
        self._results: dict[int, DistributedQueryResult] = {}
        #: client-partitioned retention (used instead of ``_results``
        #: when ``partition_results_by_client`` is set)
        self._results_by_client: dict[str, dict[int, DistributedQueryResult]] = {}
        self._client_of: dict[int, str] = {}
        self._evicted: set[int] = set()
        self._log: deque[str] = deque(maxlen=self.config.log_retention)
        self._dead: set[int] = set()
        self._next_id = 0
        self._wave_id = 0
        self._last_tier = TIER_HEALTHY
        self._has_quorum = True
        #: the quorum/epoch authority steering this server, when the
        #: partition wiring attached one (chaos gates audit it)
        self.failover = None

    # -- health ------------------------------------------------------------------

    def set_dead_nodes(self, nodes) -> None:
        """Pin the set of nodes every subsequent wave routes around.

        A shrink of the dead set (the health layer or the failover
        manager reports a node back) is the recovery signal that
        reschedules parked coverage-SLA re-executions.
        """
        new_dead = set(nodes)
        recovered = self._dead - new_dead
        self._dead = new_dead
        tel = self.telemetry
        if tel.enabled:
            tel.set_gauge("serving.dead_nodes", len(self._dead))
        if recovered:
            if self.breakers is not None:
                # Recovery evidence outranks the hold-off timer: the
                # next wave probes the node instead of waiting out an
                # open breaker that latched while it was down.
                self.breakers.force_probe(recovered, self.now_ms)
                self._drain_breaker_events("recovery")
            self._reschedule_parked()

    def observe_health(self, monitor) -> None:
        """Adopt a :class:`~repro.faults.health.HealthMonitor` belief."""
        self.set_dead_nodes(monitor.dead_nodes)

    def set_quorum(self, has_quorum: bool) -> None:
        """Pin whether the fleet currently holds a coordinating quorum.

        The partition wiring feeds this from the failover manager: a
        minority side (or a fleet mid-election) must not pretend to
        full service, so while quorum is lost every wave is forced to
        signature-cache-only — read-only answers from local state, no
        fleet-wide scan authority.  Regaining quorum is a recovery
        signal like a dead-set shrink: parked below-SLA requests are
        rescheduled so minority-parked queries re-execute after heal.
        """
        has_quorum = bool(has_quorum)
        if has_quorum == self._has_quorum:
            return
        self._has_quorum = has_quorum
        state = "regained" if has_quorum else "lost"
        self._log.append(f"quorum t={self.now_ms:012.3f} state={state}")
        tel = self.telemetry
        if tel.enabled:
            tel.set_gauge("serving.quorum", int(has_quorum))
            tel.inc(f"serving.quorum.{state}")
            tel.instant("quorum-transition", state=state)
        if self.recorder is not None:
            self.recorder.record("quorum", self.now_ms, state=state)
        if has_quorum:
            self._reschedule_parked()

    def _reschedule_parked(self) -> None:
        """Re-enqueue parked below-SLA requests with jittered backoff."""
        retry = self.config.retry
        if retry is None or not self._parked:
            return
        parked = sorted(self._parked, key=lambda r: (r.request_id, r.attempt))
        self._parked = []
        tel = self.telemetry
        for request in parked:
            delay = retry.backoff_ms(request.request_id, request.attempt)
            arrival = self.now_ms + delay
            self._pending.append(
                replace(
                    request,
                    arrival_ms=arrival,
                    deadline_ms=arrival + request.relative_deadline_ms,
                    attempt=request.attempt + 1,
                )
            )
            self.stats.retries += 1
            self._log.append(
                f"retry t={arrival:012.3f} id={request.request_id:06d} "
                f"try={request.attempt + 1} backoff={delay:.3f}"
            )
            if tel.enabled:
                tel.inc("serving.retries", kind=request.spec.kind)
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))

    # -- admission ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def _current_tier(self) -> int:
        if self.brownout is None:
            return TIER_HEALTHY
        return self.brownout.tier(len(self._pending), self.config.max_queue)

    def _shed(
        self, client: str, spec: QuerySpec, at: float, reason: str,
        retry_after: float,
    ) -> QueryRejected:
        tel = self.telemetry
        if tel.enabled:
            tel.inc("serving.shed", kind=spec.kind, reason=reason)
        if self.recorder is not None:
            self.recorder.record(
                "shed", at, client=client, query=spec.kind, reason=reason
            )
        self._log.append(
            f"shed t={at:012.3f} client={client} kind={spec.kind} "
            f"reason={reason}"
        )
        return QueryRejected(client, reason, retry_after)

    def submit(
        self,
        client: str,
        spec: QuerySpec,
        window_range: tuple[int, int],
        *,
        template: np.ndarray | None = None,
        deadline_ms: float | None = None,
        arrival_ms: float | None = None,
        min_coverage: float | None = None,
    ) -> int:
        """Admit one request; returns its request id.

        ``arrival_ms`` defaults to the server's current simulated time
        (an open-loop driver passes explicit arrival stamps, which may
        lag ``now_ms`` while the server is busy).  ``deadline_ms`` is
        **relative to arrival**; omitted requests get the configured
        default.  ``min_coverage`` is the request's coverage SLA: an
        answer below it counts as a violation and (with a configured
        :class:`~repro.serving.reliability.RetryPolicy`) is re-executed
        after the fleet recovers.

        Raises:
            QueryRejected: queue full, brownout tier 3, or client over
                its token rate.
        """
        at = self.now_ms if arrival_ms is None else float(arrival_ms)
        client_pending = sum(1 for r in self._pending if r.client == client)
        shed = self._admission.admit(
            client, at, len(self._pending), client_pending
        )
        if shed is not None:
            raise self._shed(client, spec, at, *shed)
        if self.brownout is not None and self._current_tier() >= TIER_REJECT:
            self.stats.brownout_rejections += 1
            raise self._shed(
                client, spec, at, "brownout",
                self.brownout.config.retry_after_ms,
            )
        rel = self.config.default_deadline_ms if deadline_ms is None else deadline_ms
        if rel <= 0:
            raise ConfigurationError("deadline must be positive")
        sla = (
            self.config.default_min_coverage
            if min_coverage is None
            else float(min_coverage)
        )
        if not 0 <= sla <= 1:
            raise ConfigurationError("coverage SLA must be in [0, 1]")
        request = QueryRequest(
            request_id=self._next_id,
            client=client,
            spec=spec,
            window_range=window_range,
            template=template,
            arrival_ms=at,
            deadline_ms=at + rel,
            min_coverage=sla,
            relative_deadline_ms=rel,
        )
        self._next_id += 1
        self._pending.append(request)
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))
        tel = self.telemetry
        if tel.enabled:
            tel.inc("serving.submitted", kind=spec.kind)
            tel.set_gauge("serving.queue_depth", len(self._pending))
        return request.request_id

    # -- dispatch ----------------------------------------------------------------

    def _waves(self) -> list[list[QueryRequest]]:
        """Partition pending requests into dispatchable waves."""
        if not self.config.coalesce:
            return [[request] for request in self._pending]
        groups: dict[tuple, list[QueryRequest]] = {}
        for request in self._pending:
            groups.setdefault(request.coalesce_key(), []).append(request)
        return list(groups.values())

    def _select_wave(self) -> list[QueryRequest] | None:
        """EDF: earliest member deadline wins; lowest request id breaks ties."""
        waves = self._waves()
        if not waves:
            return None
        return min(
            waves,
            key=lambda wave: (
                min(r.deadline_ms for r in wave),
                min(r.request_id for r in wave),
            ),
        )

    def _reduced_range(
        self, window_range: tuple[int, int]
    ) -> tuple[tuple[int, int], float]:
        """Tier-1 degradation: keep the most recent fraction of the range."""
        start, stop = window_range
        span = max(1, stop - start)
        keep = max(1, int(np.ceil(span * self.config.reduced_range_fraction)))
        return (stop - keep, stop), keep / span

    def _drain_breaker_events(self, tier_label: str) -> None:
        """Book breaker transitions into stats and telemetry."""
        assert self.breakers is not None
        tel = self.telemetry
        for node, when, src, dst in self.breakers.pop_events():
            if dst == "open":
                self.stats.breaker_opened += 1
            elif dst == "half_open":
                self.stats.breaker_half_open += 1
            elif dst == "closed":
                self.stats.breaker_closed += 1
            if self.recorder is not None:
                self.recorder.record(
                    "breaker", when, node=node, src=src, dst=dst,
                    tier=tier_label,
                )
            if tel.enabled:
                metric = "opened" if dst == "open" else dst
                tel.inc(f"serving.breaker.{metric}", node=node)
                tel.instant(
                    "breaker-transition", node=node, src=src, dst=dst,
                    tier=tier_label,
                )

    def _note_tier_change(self, src: int, dst: int, at: float) -> None:
        """Book one brownout tier transition (observational only)."""
        if self.brownout is not None:
            self.brownout.transitions.append((at, src, dst))
        if self.recorder is not None:
            self.recorder.record(
                "brownout", at, src=TIER_NAMES[src], dst=TIER_NAMES[dst],
            )
        tel = self.telemetry
        if tel.enabled:
            tel.instant(
                "brownout-transition",
                src=TIER_NAMES[src], dst=TIER_NAMES[dst],
            )
            tel.instant("brownout-tier", counter=True, tier=dst)
            tel.set_gauge("serving.brownout.tier", dst)

    def step(self) -> list[QueryResponse]:
        """Dispatch one wave; empty list when the queue is idle."""
        wave = self._select_wave()
        if wave is None:
            return []
        lead = wave[0]
        size = len(wave)
        start = max(self.now_ms, max(r.arrival_ms for r in wave))

        # Brownout tier for this wave (tier 3 only gates new admissions;
        # an already-admitted wave degrades to cache-only instead).  A
        # fleet without quorum is pinned to cache-only regardless of
        # queue pressure: no coordinator, no fleet-wide scan authority.
        tier = min(self._current_tier(), TIER_CACHE_ONLY)
        if not self._has_quorum:
            tier = TIER_CACHE_ONLY
        cache_only = tier == TIER_CACHE_ONLY
        if tier != self._last_tier:
            self._note_tier_change(self._last_tier, tier, start)
            self._last_tier = tier

        exec_range = lead.window_range
        service_spec = lead.spec
        if tier == TIER_REDUCED:
            exec_range, kept = self._reduced_range(lead.window_range)
            service_spec = replace(
                lead.spec, time_range_ms=lead.spec.time_range_ms * kept
            )

        # Circuit breakers: latched nodes are excluded without a timeout
        # charge; half-open probes rejoin the attempt set here.
        all_nodes = list(range(len(self.engine.controllers)))
        latched: set[int] = set()
        if self.breakers is not None and not cache_only:
            _, latched = self.breakers.partition(all_nodes, start)
        exclude = self._dead | latched

        tel = self.telemetry
        self._wave_id += 1
        with tel.span(
            "serve-wave", kind=lead.spec.kind, wave=self._wave_id, size=size,
            tier=TIER_NAMES[tier],
        ):
            result = self.engine.run(
                lead.spec,
                exec_range,
                template=lead.template,
                dead_nodes=exclude,
                cache_only=cache_only,
            )
            failed = set(result.failed_nodes)
            if cache_only:
                timeout_nodes: list[int] = []
                service = self.config.cache_only_service_ms
            else:
                timeout_nodes = sorted(failed - latched)
                service = self.cost_model.cost(service_spec).latency_ms
                service += self.config.failed_node_timeout_ms * len(
                    timeout_nodes
                )
            service += self.config.coalesce_merge_ms * (size - 1)
            if self.breakers is not None and not cache_only:
                for node in timeout_nodes:
                    self.breakers.breaker(node).record_failure(start)
                for node in result.queried_nodes:
                    self.breakers.breaker(node).record_success(start)
                self._drain_breaker_events(TIER_NAMES[tier])
            self.stats.timeouts_charged += len(timeout_nodes)
            tel.advance_ms(service)
        finish = start + service
        self.now_ms = finish
        done = {r.request_id for r in wave}
        self._pending = [r for r in self._pending if r.request_id not in done]
        self.stats.brownout_waves[tier] = (
            self.stats.brownout_waves.get(tier, 0) + 1
        )

        rows_crc = zlib.crc32(
            b"".join(
                f"{n}:{e}:{w}:".encode() + s for n, e, w, s in result.row_keys()
            )
        )
        responses = []
        for request in wave:
            response = QueryResponse(
                request_id=request.request_id,
                client=request.client,
                kind=request.spec.kind,
                arrival_ms=request.arrival_ms,
                start_ms=start,
                finish_ms=finish,
                deadline_ms=request.deadline_ms,
                wave_id=self._wave_id,
                wave_size=size,
                n_rows=len(result.rows),
                rows_crc=rows_crc,
                coverage=result.coverage,
                degraded=result.degraded,
                tier=tier,
                attempt=request.attempt,
                min_coverage=request.min_coverage,
            )
            self._store_result(request.request_id, result, request.client)
            self.responses.append(response)
            self._log.append(response.log_line())
            responses.append(response)
            if self.brownout is not None:
                self.brownout.record_completion(response.deadline_missed)
            if not response.sla_met:
                self.stats.sla_violations += 1
                if tel.enabled:
                    tel.inc("serving.sla_violation", kind=request.spec.kind)
                if self.config.retry is not None and self.config.retry.allows(
                    request.attempt
                ):
                    self._parked.append(request)
            if tel.enabled:
                tel.inc("serving.completed", kind=request.spec.kind)
                tel.observe("serving.latency_ms", response.latency_ms)
                tel.observe("serving.wait_ms", response.wait_ms)
                if response.deadline_missed:
                    tel.inc("serving.deadline_miss", kind=request.spec.kind)
                if response.degraded:
                    tel.inc("serving.degraded_responses")
        if tel.enabled:
            tel.inc("serving.waves", kind=lead.spec.kind)
            tel.inc("serving.brownout.waves", tier=TIER_NAMES[tier])
            tel.observe("serving.service_ms", service)
            if timeout_nodes:
                tel.inc("serving.timeouts", len(timeout_nodes))
            if size > 1:
                tel.inc("serving.coalesced_batches")
                tel.inc("serving.coalesced_requests", size)
            tel.set_gauge("serving.queue_depth", len(self._pending))
        return responses

    def run_until(self, t_ms: float) -> None:
        """Dispatch waves that can start strictly before ``t_ms``.

        A wave whose start would land at or past ``t_ms`` stays queued:
        the arrival about to happen at ``t_ms`` may coalesce into it or
        carry an earlier deadline.  On return the server clock has
        advanced at least to ``t_ms`` (idle time passes silently).
        """
        while True:
            wave = self._select_wave()
            if wave is None:
                break
            start = max(self.now_ms, max(r.arrival_ms for r in wave))
            if start >= t_ms:
                break
            self.step()
        self.now_ms = max(self.now_ms, t_ms)

    def drain(self) -> None:
        """Dispatch every pending wave."""
        while self.step():
            pass

    # -- results -----------------------------------------------------------------

    def _store_result(
        self, request_id: int, result: DistributedQueryResult,
        client: str = "",
    ) -> None:
        """Retain one result, evicting least-recently-used past the bound.

        With ``partition_results_by_client`` each client owns its own
        LRU of ``result_retention`` entries, so eviction pressure never
        crosses a tenant boundary — one tenant churning through answers
        evicts only its own.
        """
        if self.config.partition_results_by_client:
            store = self._results_by_client.setdefault(client, {})
            self._client_of[request_id] = client
        else:
            store = self._results
        store.pop(request_id, None)
        store[request_id] = result
        self._evicted.discard(request_id)
        while len(store) > self.config.result_retention:
            evicted_id = next(iter(store))
            del store[evicted_id]
            self._evicted.add(evicted_id)
            self.stats.results_evicted += 1
            if self.config.partition_results_by_client:
                self._client_of.pop(evicted_id, None)
                by_client = self.stats.results_evicted_by_client
                by_client[client] = by_client.get(client, 0) + 1
            if self.telemetry.enabled:
                self.telemetry.inc("serving.results.evicted")

    def result_for(self, request_id: int) -> DistributedQueryResult:
        """The full query answer backing one response.

        Raises:
            KeyError: the id was never completed, or its result aged out
                of the ``result_retention`` LRU bound.
        """
        if self.config.partition_results_by_client:
            client = self._client_of.get(request_id)
            store = (
                self._results_by_client.get(client, {})
                if client is not None
                else {}
            )
        else:
            store = self._results
        result = store.get(request_id)
        if result is None:
            if request_id in self._evicted:
                raise KeyError(
                    f"result for request {request_id} was evicted "
                    f"(result_retention={self.config.result_retention}; "
                    "raise ServerConfig.result_retention to keep more)"
                )
            raise KeyError(f"no completed request with id {request_id}")
        # LRU refresh: re-insert at the most-recently-used position.
        del store[request_id]
        store[request_id] = result
        return result

    def response_log(self) -> str:
        """The canonical response/shed/retry log, in event order.

        Byte-identical across runs for the same submissions and fault
        timeline — the serving determinism contract (telemetry on or
        off, it never changes a byte here).  Bounded to the newest
        ``log_retention`` lines.
        """
        return "\n".join(self._log)

"""The fleet-scale query server: admission → coalesce → EDF dispatch.

SCALO's query interface (§3.4, Fig. 10) assumes one caller; this module
multiplexes many concurrent, deadline-bearing clients onto the PR-4
batched/cached query path.  :class:`QueryServer` is a discrete-event
server in **simulated milliseconds**:

* :meth:`submit` stamps an arrival, runs admission control (bounded
  queue + per-client token bucket, see
  :mod:`repro.serving.admission`) and either enqueues the request or
  sheds it with :class:`~repro.errors.QueryRejected`;
* pending requests with the same *coalesce key* — identical
  :class:`~repro.apps.queries.QuerySpec`, window range, and template
  bytes — merge into one **wave** that runs
  :meth:`~repro.apps.queries.QueryEngine.run` once, so the signature
  cache and the NVM scan are hit once per wave instead of once per
  client;
* waves dispatch **earliest-deadline-first**; a wave's deadline is the
  earliest deadline among its members, ties break on the lowest request
  id, so dispatch order is total and deterministic;
* completion past a request's deadline is answered anyway but counted
  as a deadline miss (a late answer still beats a lost session);
* nodes believed dead (fed from the faults/health layer via
  :meth:`observe_health`) are routed around — responses carry the
  degraded/coverage tagging of the underlying
  :class:`~repro.apps.queries.DistributedQueryResult`.

Service time comes from the paper's Fig. 10 cost model
(:class:`~repro.apps.queries.QueryCostModel`): a wave pays one full
query latency (scan + filter + transmit + overhead) plus a small
per-extra-member merge charge.  The server keeps its own ``now_ms``;
telemetry is observational only, so runs with ``NULL_TELEMETRY`` and
runs with a live handle produce byte-identical response logs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.apps.queries import (
    DistributedQueryResult,
    QueryCostModel,
    QueryEngine,
    QuerySpec,
)
from repro.errors import ConfigurationError, QueryRejected
from repro.serving.admission import AdmissionController
from repro.telemetry import NULL_TELEMETRY, TelemetryLike


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`QueryServer`."""

    #: bounded admission queue: pending requests beyond this are shed
    max_queue: int = 16
    #: merge compatible pending queries into one scan (off = serial)
    coalesce: bool = True
    #: per-client token bucket (burst capacity, steady-state rate)
    bucket_capacity: float = 32.0
    bucket_refill_per_s: float = 100.0
    #: deadline assigned when a request does not carry one (relative ms)
    default_deadline_ms: float = 250.0
    #: response-assembly charge per coalesced member beyond the first
    coalesce_merge_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.default_deadline_ms <= 0:
            raise ConfigurationError("default deadline must be positive")
        if self.coalesce_merge_ms < 0:
            raise ConfigurationError("merge charge cannot be negative")


@dataclass
class QueryRequest:
    """One admitted request waiting in (or dispatched from) the queue."""

    request_id: int
    client: str
    spec: QuerySpec
    window_range: tuple[int, int]
    template: np.ndarray | None
    arrival_ms: float
    deadline_ms: float  # absolute simulated time

    def coalesce_key(self) -> tuple:
        """Requests with equal keys can share one batched scan."""
        tpl = self.template.tobytes() if self.template is not None else None
        return (self.spec, self.window_range, tpl)


@dataclass(frozen=True)
class QueryResponse:
    """The completion record for one request (the response-log row)."""

    request_id: int
    client: str
    kind: str
    arrival_ms: float
    start_ms: float
    finish_ms: float
    deadline_ms: float
    wave_id: int
    wave_size: int
    n_rows: int
    rows_crc: int
    coverage: float
    degraded: bool

    @property
    def latency_ms(self) -> float:
        return self.finish_ms - self.arrival_ms

    @property
    def wait_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def deadline_missed(self) -> bool:
        return self.finish_ms > self.deadline_ms

    def log_line(self) -> str:
        return (
            f"id={self.request_id:06d} client={self.client} kind={self.kind} "
            f"arrive={self.arrival_ms:012.3f} start={self.start_ms:012.3f} "
            f"finish={self.finish_ms:012.3f} wave={self.wave_id:05d}"
            f"x{self.wave_size:02d} rows={self.n_rows:04d} "
            f"crc={self.rows_crc:08x} coverage={self.coverage:.3f} "
            f"miss={int(self.deadline_missed)}"
        )


@dataclass
class QueryServer:
    """Multiplexes concurrent clients onto one :class:`QueryEngine`."""

    engine: QueryEngine
    config: ServerConfig = field(default_factory=ServerConfig)
    #: Fig. 10 latency model used as the service-time clock; defaults to
    #: one sized to the engine's fleet
    cost_model: QueryCostModel | None = None
    telemetry: TelemetryLike = field(default=NULL_TELEMETRY, repr=False)

    def __post_init__(self) -> None:
        if self.cost_model is None:
            self.cost_model = QueryCostModel(
                n_nodes=max(1, len(self.engine.controllers))
            )
        self.now_ms = 0.0
        self.max_queue_depth = 0
        self.responses: list[QueryResponse] = []
        self._admission = AdmissionController(
            max_queue=self.config.max_queue,
            bucket_capacity=self.config.bucket_capacity,
            bucket_refill_per_s=self.config.bucket_refill_per_s,
        )
        self._pending: list[QueryRequest] = []
        self._results: dict[int, DistributedQueryResult] = {}
        self._log: list[str] = []
        self._dead: set[int] = set()
        self._next_id = 0
        self._wave_id = 0

    # -- health ------------------------------------------------------------------

    def set_dead_nodes(self, nodes) -> None:
        """Pin the set of nodes every subsequent wave routes around."""
        self._dead = set(nodes)
        tel = self.telemetry
        if tel.enabled:
            tel.set_gauge("serving.dead_nodes", len(self._dead))

    def observe_health(self, monitor) -> None:
        """Adopt a :class:`~repro.faults.health.HealthMonitor` belief."""
        self.set_dead_nodes(monitor.dead_nodes)

    # -- admission ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def submit(
        self,
        client: str,
        spec: QuerySpec,
        window_range: tuple[int, int],
        *,
        template: np.ndarray | None = None,
        deadline_ms: float | None = None,
        arrival_ms: float | None = None,
    ) -> int:
        """Admit one request; returns its request id.

        ``arrival_ms`` defaults to the server's current simulated time
        (an open-loop driver passes explicit arrival stamps, which may
        lag ``now_ms`` while the server is busy).  ``deadline_ms`` is
        **relative to arrival**; omitted requests get the configured
        default.

        Raises:
            QueryRejected: queue full or client over its token rate.
        """
        at = self.now_ms if arrival_ms is None else float(arrival_ms)
        tel = self.telemetry
        shed = self._admission.admit(client, at, len(self._pending))
        if shed is not None:
            reason, retry_after = shed
            if tel.enabled:
                tel.inc("serving.shed", kind=spec.kind, reason=reason)
            self._log.append(
                f"shed t={at:012.3f} client={client} kind={spec.kind} "
                f"reason={reason}"
            )
            raise QueryRejected(client, reason, retry_after)
        rel = self.config.default_deadline_ms if deadline_ms is None else deadline_ms
        if rel <= 0:
            raise ConfigurationError("deadline must be positive")
        request = QueryRequest(
            request_id=self._next_id,
            client=client,
            spec=spec,
            window_range=window_range,
            template=template,
            arrival_ms=at,
            deadline_ms=at + rel,
        )
        self._next_id += 1
        self._pending.append(request)
        self.max_queue_depth = max(self.max_queue_depth, len(self._pending))
        if tel.enabled:
            tel.inc("serving.submitted", kind=spec.kind)
            tel.set_gauge("serving.queue_depth", len(self._pending))
        return request.request_id

    # -- dispatch ----------------------------------------------------------------

    def _waves(self) -> list[list[QueryRequest]]:
        """Partition pending requests into dispatchable waves."""
        if not self.config.coalesce:
            return [[request] for request in self._pending]
        groups: dict[tuple, list[QueryRequest]] = {}
        for request in self._pending:
            groups.setdefault(request.coalesce_key(), []).append(request)
        return list(groups.values())

    def _select_wave(self) -> list[QueryRequest] | None:
        """EDF: earliest member deadline wins; lowest request id breaks ties."""
        waves = self._waves()
        if not waves:
            return None
        return min(
            waves,
            key=lambda wave: (
                min(r.deadline_ms for r in wave),
                min(r.request_id for r in wave),
            ),
        )

    def _service_ms(self, spec: QuerySpec, wave_size: int) -> float:
        cost = self.cost_model.cost(spec)
        return cost.latency_ms + self.config.coalesce_merge_ms * (wave_size - 1)

    def step(self) -> list[QueryResponse]:
        """Dispatch one wave; empty list when the queue is idle."""
        wave = self._select_wave()
        if wave is None:
            return []
        lead = wave[0]
        size = len(wave)
        start = max(self.now_ms, max(r.arrival_ms for r in wave))
        service = self._service_ms(lead.spec, size)
        finish = start + service
        self._wave_id += 1
        tel = self.telemetry
        with tel.span(
            "serve-wave", kind=lead.spec.kind, wave=self._wave_id, size=size
        ):
            result = self.engine.run(
                lead.spec,
                lead.window_range,
                template=lead.template,
                dead_nodes=set(self._dead),
            )
            tel.advance_ms(service)
        self.now_ms = finish
        done = {r.request_id for r in wave}
        self._pending = [r for r in self._pending if r.request_id not in done]

        rows_crc = zlib.crc32(
            b"".join(
                f"{n}:{e}:{w}:".encode() + s for n, e, w, s in result.row_keys()
            )
        )
        responses = []
        for request in wave:
            response = QueryResponse(
                request_id=request.request_id,
                client=request.client,
                kind=request.spec.kind,
                arrival_ms=request.arrival_ms,
                start_ms=start,
                finish_ms=finish,
                deadline_ms=request.deadline_ms,
                wave_id=self._wave_id,
                wave_size=size,
                n_rows=len(result.rows),
                rows_crc=rows_crc,
                coverage=result.coverage,
                degraded=result.degraded,
            )
            self._results[request.request_id] = result
            self.responses.append(response)
            self._log.append(response.log_line())
            responses.append(response)
            if tel.enabled:
                tel.inc("serving.completed", kind=request.spec.kind)
                tel.observe("serving.latency_ms", response.latency_ms)
                tel.observe("serving.wait_ms", response.wait_ms)
                if response.deadline_missed:
                    tel.inc("serving.deadline_miss", kind=request.spec.kind)
                if response.degraded:
                    tel.inc("serving.degraded_responses")
        if tel.enabled:
            tel.inc("serving.waves", kind=lead.spec.kind)
            tel.observe("serving.service_ms", service)
            if size > 1:
                tel.inc("serving.coalesced_batches")
                tel.inc("serving.coalesced_requests", size)
            tel.set_gauge("serving.queue_depth", len(self._pending))
        return responses

    def run_until(self, t_ms: float) -> None:
        """Dispatch waves that can start strictly before ``t_ms``.

        A wave whose start would land at or past ``t_ms`` stays queued:
        the arrival about to happen at ``t_ms`` may coalesce into it or
        carry an earlier deadline.  On return the server clock has
        advanced at least to ``t_ms`` (idle time passes silently).
        """
        while True:
            wave = self._select_wave()
            if wave is None:
                break
            start = max(self.now_ms, max(r.arrival_ms for r in wave))
            if start >= t_ms:
                break
            self.step()
        self.now_ms = max(self.now_ms, t_ms)

    def drain(self) -> None:
        """Dispatch every pending wave."""
        while self.step():
            pass

    # -- results -----------------------------------------------------------------

    def result_for(self, request_id: int) -> DistributedQueryResult:
        """The full query answer backing one response."""
        return self._results[request_id]

    def response_log(self) -> str:
        """The canonical response/shed log, in event order.

        Byte-identical across runs for the same submissions and fault
        timeline — the serving determinism contract (telemetry on or
        off, it never changes a byte here).
        """
        return "\n".join(self._log)

"""Admission control for the query-serving front end.

Two independent gates run at submit time, both in simulated
milliseconds:

* a **bounded admission queue** — the server never holds more than
  ``max_queue`` pending requests; beyond that it sheds with an explicit
  :class:`~repro.errors.QueryRejected` instead of growing an unbounded
  backlog (the swapping-centric BCI-storage argument: a stalled pipeline
  is worse than an honest 429);
* a **per-client token bucket** — each client drains one token per
  request and refills at ``refill_per_s``, so one chatty client cannot
  starve the fleet's shared scan/radio budget.

A third, optional gate serves the multi-tenant fabric: a **per-client
queue quota** bounds how many *pending* requests any single client may
hold, so a tenant that floods faster than its bucket refills can fill
at most its share of the shared admission queue — the rest of the queue
stays available to well-behaved tenants (shed reason
``"tenant_quota"``).

All gates are pure bookkeeping over caller-supplied timestamps: no wall
clock, no randomness, so admission decisions are a deterministic
function of the arrival sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class TokenBucket:
    """A classic token bucket in simulated time.

    Starts full; :meth:`try_take` refills by elapsed time since the last
    call, then takes one token if available.  Timestamps must be
    monotonically non-decreasing (the server's arrival clock).
    """

    capacity: float = 32.0
    refill_per_s: float = 100.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("bucket capacity must be positive")
        if self.refill_per_s <= 0:
            raise ConfigurationError("bucket refill rate must be positive")
        self.tokens = self.capacity
        self._last_ms = 0.0

    def _refill(self, now_ms: float) -> None:
        if now_ms > self._last_ms:
            self.tokens = min(
                self.capacity,
                self.tokens + (now_ms - self._last_ms) * self.refill_per_s / 1e3,
            )
            self._last_ms = now_ms

    def try_take(self, now_ms: float) -> bool:
        """Take one token at ``now_ms``; False when the bucket is empty."""
        self._refill(now_ms)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after_ms(self, now_ms: float) -> float:
        """Simulated ms until one token will be available again."""
        self._refill(now_ms)
        deficit = max(0.0, 1.0 - self.tokens)
        return deficit * 1e3 / self.refill_per_s


@dataclass
class AdmissionController:
    """The submit-time gate: queue bound first, then the client's bucket."""

    max_queue: int = 16
    bucket_capacity: float = 32.0
    bucket_refill_per_s: float = 100.0
    #: pending requests any one client may hold (None = no quota)
    max_pending_per_client: int | None = None
    _buckets: dict[str, TokenBucket] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ConfigurationError("admission queue bound must be positive")
        if (
            self.max_pending_per_client is not None
            and self.max_pending_per_client < 1
        ):
            raise ConfigurationError("per-client queue quota must be positive")

    def bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.bucket_capacity, self.bucket_refill_per_s
            )
        return bucket

    def admit(
        self,
        client: str,
        now_ms: float,
        queue_depth: int,
        client_pending: int = 0,
    ) -> tuple[str, float] | None:
        """Gate one request; returns ``None`` on admit.

        On shed, returns ``(reason, retry_after_ms)``.  The queue bound
        is checked before the per-client gates so a rejected-for-capacity
        request does not also burn one of the client's tokens, and the
        queue quota is checked before the bucket for the same reason: a
        tenant over its pending share keeps its tokens for when its own
        backlog drains.
        """
        if queue_depth >= self.max_queue:
            return "queue_full", 0.0
        if (
            self.max_pending_per_client is not None
            and client_pending >= self.max_pending_per_client
        ):
            return "tenant_quota", 0.0
        bucket = self.bucket(client)
        if not bucket.try_take(now_ms):
            return "rate_limited", bucket.retry_after_ms(now_ms)
        return None

"""Seeded open-loop load generation for the query server.

An *open-loop* generator emits arrivals on its own schedule regardless
of how the server is doing (the honest way to measure shedding: a
closed loop would self-throttle and hide overload).  Arrivals are drawn
from one seeded RNG — exponential inter-arrival gaps at the offered
QPS, clients and query kinds sampled from fixed mixes, Q2 templates
drawn from a small pool so compatible queries actually coalesce — and
the whole timeline is a pure function of the config, so two runs with
the same seed offer byte-identical load.

Clients can carry a :class:`~repro.serving.reliability.RetryPolicy`:
a shed request is then re-offered after the larger of the server's
``retry_after_ms`` hint and the policy's seeded backoff, keeping the
retried timeline a pure function of the seed.  *Availability* —
``completed / offered`` over unique requests — is the headline chaos
metric.

:func:`serve_session` is the everything-wired entry point used by the
``serve``/``chaos`` CLIs, the telemetry scenarios, and the benchmarks:
build a seeded fleet, ingest, optionally replay a
:class:`~repro.faults.plan.FaultPlan` against it while the load runs
(the health monitor's belief feeds the server), and return the server
plus a :class:`ServeReport`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.apps.queries import QueryEngine, QuerySpec
from repro.errors import ConfigurationError, QueryRejected
from repro.serving.reliability import RetryPolicy
from repro.serving.server import QueryResponse, QueryServer, ServerConfig
from repro.telemetry import NULL_TELEMETRY, TelemetryLike


@dataclass(frozen=True)
class LoadGenConfig:
    """One open-loop load description."""

    n_requests: int = 64
    offered_qps: float = 20.0
    seed: int = 0
    n_clients: int = 4
    #: relative deadline stamped on every request (ms after arrival)
    deadline_ms: float = 250.0
    #: q1/q2/q3 mix (normalised at draw time)
    kind_weights: tuple[float, float, float] = (0.25, 0.5, 0.25)
    #: Q2 probes are drawn from a pool this large, so repeats coalesce
    n_templates: int = 3
    #: time span each query covers (the Fig. 10 cost-model input)
    time_range_ms: float = 110.0
    #: fraction of data matching Q1/Q2 predicates (Q3 ships everything)
    match_fraction: float = 0.05
    #: coverage SLA stamped on every request (0 = answers always satisfy)
    min_coverage: float = 0.0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ConfigurationError("need at least one request")
        if self.offered_qps <= 0:
            raise ConfigurationError("offered load must be positive")
        if self.n_clients < 1:
            raise ConfigurationError("need at least one client")
        if self.n_templates < 1:
            raise ConfigurationError("need at least one template")
        if not 0 <= self.min_coverage <= 1:
            raise ConfigurationError("coverage SLA must be in [0, 1]")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, who, and what to ask."""

    at_ms: float
    client: str
    spec: QuerySpec
    template_index: int | None


def generate_arrivals(config: LoadGenConfig) -> list[Arrival]:
    """Draw the deterministic arrival timeline for one load config."""
    rng = np.random.default_rng(config.seed)
    weights = np.asarray(config.kind_weights, dtype=float)
    weights = weights / weights.sum()
    arrivals: list[Arrival] = []
    t = 0.0
    for _ in range(config.n_requests):
        t += float(rng.exponential(1e3 / config.offered_qps))
        client = f"c{int(rng.integers(config.n_clients)):02d}"
        kind = ("q1", "q2", "q3")[int(rng.choice(3, p=weights))]
        template_index = (
            int(rng.integers(config.n_templates)) if kind == "q2" else None
        )
        spec = QuerySpec(
            kind=kind,
            time_range_ms=config.time_range_ms,
            match_fraction=1.0 if kind == "q3" else config.match_fraction,
        )
        arrivals.append(Arrival(t, client, spec, template_index))
    return arrivals


@dataclass
class ServeReport:
    """What one open-loop run did, summarised for tables and gates.

    ``completed`` counts *unique* answered requests; a server-side
    coverage-SLA re-execution replaces its earlier answer rather than
    counting twice, and latency/miss statistics are taken over each
    request's final answer.
    """

    offered_qps: float
    n_offered: int
    completed: int
    shed: int
    deadline_misses: int
    waves: int
    coalesced_requests: int
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_queue_depth: int
    degraded_responses: int
    response_log: str = field(repr=False, default="")
    #: shed offers the client retried (and which later completed or
    #: exhausted the policy)
    client_retries: int = 0
    #: server-side coverage-SLA re-executions
    server_retries: int = 0
    #: responses below their coverage SLA, before/after re-execution
    sla_violations_initial: int = 0
    sla_violations_final: int = 0
    breaker_opened: int = 0
    breaker_half_open: int = 0
    breaker_closed: int = 0
    #: waves served per brownout tier (tier → count)
    brownout_waves: dict[int, int] = field(default_factory=dict)
    brownout_rejections: int = 0
    timeouts_charged: int = 0
    results_evicted: int = 0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.n_offered if self.n_offered else 0.0

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def availability(self) -> float:
        """Unique requests answered / unique requests offered."""
        return self.completed / self.n_offered if self.n_offered else 1.0


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(np.ceil(q / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def percentile(values, q: float) -> float:
    """Deterministic nearest-rank percentile over unsorted ``values``.

    The one percentile definition every serving/fabric report uses, so
    per-tenant and per-fleet numbers are always comparable.
    """
    return _percentile(sorted(float(v) for v in values), q)


def per_client_responses(
    server: QueryServer,
) -> dict[str, list[QueryResponse]]:
    """Each client's *final* answers, grouped and id-ordered.

    The per-tenant view of :func:`final_responses` — what the fabric's
    tenant reports and the isolation gate aggregate over.
    """
    grouped: dict[str, list[QueryResponse]] = {}
    for response in final_responses(server):
        grouped.setdefault(response.client, []).append(response)
    return grouped


def final_responses(server: QueryServer) -> list[QueryResponse]:
    """Each request's latest answer (re-executions supersede), id-ordered."""
    final: dict[int, QueryResponse] = {}
    for response in server.responses:
        current = final.get(response.request_id)
        if current is None or response.attempt > current.attempt:
            final[response.request_id] = response
    return [final[rid] for rid in sorted(final)]


def summarise(
    server: QueryServer,
    offered_qps: float,
    n_offered: int,
    shed: int,
    client_retries: int = 0,
) -> ServeReport:
    """Fold a finished server's responses into a :class:`ServeReport`."""
    finals = final_responses(server)
    latencies = sorted(r.latency_ms for r in finals)
    wave_ids = {r.wave_id for r in server.responses}
    coalesced = sum(1 for r in finals if r.wave_size > 1)
    stats = server.stats
    return ServeReport(
        offered_qps=offered_qps,
        n_offered=n_offered,
        completed=len(finals),
        shed=shed,
        deadline_misses=sum(r.deadline_missed for r in finals),
        waves=len(wave_ids),
        coalesced_requests=coalesced,
        mean_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
        p50_latency_ms=_percentile(latencies, 50.0),
        p99_latency_ms=_percentile(latencies, 99.0),
        max_queue_depth=server.max_queue_depth,
        degraded_responses=sum(r.degraded for r in finals),
        response_log=server.response_log(),
        client_retries=client_retries,
        server_retries=stats.retries,
        sla_violations_initial=stats.sla_violations,
        sla_violations_final=sum(not r.sla_met for r in finals),
        breaker_opened=stats.breaker_opened,
        breaker_half_open=stats.breaker_half_open,
        breaker_closed=stats.breaker_closed,
        brownout_waves=dict(sorted(stats.brownout_waves.items())),
        brownout_rejections=stats.brownout_rejections,
        timeouts_charged=stats.timeouts_charged,
        results_evicted=stats.results_evicted,
    )


def run_open_loop(
    server: QueryServer,
    arrivals: list[Arrival],
    window_range: tuple[int, int],
    templates: list[np.ndarray],
    *,
    deadline_ms: float = 250.0,
    min_coverage: float = 0.0,
    client_retry: RetryPolicy | None = None,
    on_advance=None,
    finalize=None,
) -> tuple[int, int, int]:
    """Drive one arrival timeline through a server.

    Between offers the server dispatches whatever waves can start
    (``run_until``); ``on_advance(t_ms)`` — called before each offer and
    once after the last — lets a caller interleave external timelines
    (the fault injector's TDMA rounds).  ``finalize(t_ms)`` runs after
    the last offer but *before* the final drain, so a chaos driver can
    play out the rest of its fault plan (letting crashed nodes reboot
    and parked SLA re-executions reschedule) while requests are still
    in flight.

    With a ``client_retry`` policy, a shed offer is re-enqueued at the
    larger of the server's ``retry_after_ms`` hint and the policy's
    seeded backoff; only offers that exhaust the policy count as shed.
    Offers pop in global time order, so per-client admission timestamps
    stay monotonic.  Returns ``(n_offered, n_shed, n_client_retries)``
    over *unique* arrivals; responses accumulate on the server.
    """
    heap: list[tuple[float, int, int]] = [
        (arrival.at_ms, seq, 0) for seq, arrival in enumerate(arrivals)
    ]
    heapq.heapify(heap)
    shed = 0
    client_retries = 0
    last_t = 0.0
    while heap:
        at, seq, attempt = heapq.heappop(heap)
        last_t = at
        arrival = arrivals[seq]
        if on_advance is not None:
            on_advance(at)
        server.run_until(at)
        template = (
            templates[arrival.template_index % len(templates)]
            if arrival.template_index is not None
            else None
        )
        try:
            server.submit(
                arrival.client,
                arrival.spec,
                window_range,
                template=template,
                deadline_ms=deadline_ms,
                arrival_ms=at,
                min_coverage=min_coverage,
            )
        except QueryRejected as exc:
            if client_retry is not None and client_retry.allows(attempt):
                backoff = max(
                    float(exc.retry_after_ms),
                    client_retry.backoff_ms(seq, attempt),
                )
                heapq.heappush(heap, (at + backoff, seq, attempt + 1))
                client_retries += 1
            else:
                shed += 1
    if on_advance is not None and arrivals:
        on_advance(last_t)
    if finalize is not None:
        finalize(last_t)
    server.drain()
    return len(arrivals), shed, client_retries


def serve_session(
    *,
    n_nodes: int = 4,
    electrodes: int = 8,
    n_windows: int = 4,
    seed: int = 0,
    load: LoadGenConfig | None = None,
    server_config: ServerConfig | None = None,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    fault_plan=None,
    round_ms: float = 50.0,
    client_retry: RetryPolicy | None = None,
    health=None,
) -> tuple[QueryServer, ServeReport]:
    """Build a fleet, offer one seeded load, return server + report.

    ``health`` accepts a
    :class:`~repro.telemetry.health.HealthEngine`: its flight recorder
    is attached to the server (breaker/brownout/shed evidence) and the
    engine samples the registry at every TDMA round of the load, so SLO
    burn rates, anomalies, and incident bundles accumulate as the run
    progresses.  The engine is observational — attaching one never
    changes the response log.

    With a ``fault_plan``, a :class:`~repro.faults.injector.FaultInjector`
    replays it against the system while the load runs — one TDMA round
    per ``round_ms`` of simulated serving time — and the health
    monitor's belief (unioned with ground-truth dead nodes) steers the
    server's degraded answers.  After the last offer the remaining plan
    rounds play out before the final drain, so reboots scheduled past
    the load's end still trigger coverage-SLA re-execution.  Same seed +
    same plan ⇒ byte-identical response log, with or without telemetry
    attached.

    A plan that schedules partitions additionally activates the quorum
    stack: per-node liveness views, an epoch-fenced
    :class:`~repro.recovery.failover.FailoverManager` elected by strict
    majority, and quorum-aware serving — while no side holds quorum the
    server answers cache-only, and regaining quorum (heal) reschedules
    parked below-SLA requests.
    """
    from repro.core.system import ScaloSystem
    from repro.units import WINDOW_SAMPLES

    load = load if load is not None else LoadGenConfig(seed=seed)
    system = ScaloSystem(
        n_nodes=n_nodes,
        electrodes_per_node=electrodes,
        seed=seed,
        telemetry=telemetry,
    )
    rng = np.random.default_rng(seed)
    templates: list[np.ndarray] = []
    for w in range(n_windows):
        windows = (
            rng.standard_normal((n_nodes, electrodes, WINDOW_SAMPLES)).cumsum(
                axis=2
            )
            * 300
        ).round()
        system.ingest(windows)
        if len(templates) < load.n_templates:
            templates.append(windows[0, 0].astype(float))
    while len(templates) < load.n_templates:
        templates.append(templates[-1])
    flags = {node: {0, n_windows - 1} for node in range(n_nodes)}

    engine = QueryEngine(
        controllers=[node.storage for node in system.nodes],
        lsh=system.lsh,
        seizure_flags=flags,
        telemetry=telemetry,
    )
    from repro.apps.queries import QueryCostModel

    server = QueryServer(
        engine,
        config=server_config if server_config is not None else ServerConfig(),
        cost_model=QueryCostModel(
            n_nodes=n_nodes, electrodes_per_node=electrodes
        ),
        telemetry=telemetry,
    )

    on_advance = None
    finalize = None
    if fault_plan is not None:
        from repro.faults.health import HealthMonitor
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            system, fault_plan, health=HealthMonitor(n_nodes)
        )
        # Partition plans switch on the quorum stack: per-node views
        # (the injector auto-created them), an epoch-fenced failover
        # manager over those views, and quorum-aware serving.  Plans
        # without partitions keep the legacy shared-belief path
        # byte-for-byte, so existing storm logs never shift.
        manager = None
        if fault_plan.has_partitions:
            manager = system.attach_failover(views=injector.belief)
            injector.failover = manager
            server.failover = manager

        def _sync_dead() -> None:
            if manager is not None:
                # Serve from the coordinator's vantage: its view decides
                # which nodes waves route around.  With no coordinator
                # seated (no majority side), the lowest ground-truth
                # alive node fronts read-only traffic and the server is
                # pinned cache-only via the quorum signal.
                alive = system.alive_node_ids
                vantage = manager.coordinator
                if vantage is None:
                    vantage = alive[0] if alive else 0
                server.set_quorum(manager.coordinator is not None)
                server.set_dead_nodes(
                    set(injector.belief.view(vantage).dead_nodes)
                    | set(system.dead_node_ids)
                )
            else:
                server.set_dead_nodes(
                    set(injector.health.dead_nodes) | set(system.dead_node_ids)
                )

        def on_advance(t_ms: float) -> None:
            target_round = int(t_ms // round_ms)
            while (
                injector.round_index <= target_round
                and injector.round_index < fault_plan.n_rounds
            ):
                injector.step()
            _sync_dead()

        def finalize(t_ms: float) -> None:
            while injector.round_index < fault_plan.n_rounds:
                injector.step()
            _sync_dead()

    if health is not None and health.enabled:
        health.attach_server(server)
        inner_advance, inner_finalize = on_advance, finalize

        def on_advance(t_ms: float) -> None:
            if inner_advance is not None:
                inner_advance(t_ms)
            health.observe_to(t_ms)

        def finalize(t_ms: float) -> None:
            if inner_finalize is not None:
                inner_finalize(t_ms)
            health.observe_to(t_ms)

    arrivals = generate_arrivals(load)
    n_offered, shed, client_retries = run_open_loop(
        server,
        arrivals,
        (0, n_windows),
        templates,
        deadline_ms=load.deadline_ms,
        min_coverage=load.min_coverage,
        client_retry=client_retry,
        on_advance=on_advance,
        finalize=finalize,
    )
    if health is not None:
        health.finalize(server.now_ms)
    return server, summarise(
        server, load.offered_qps, n_offered, shed, client_retries
    )

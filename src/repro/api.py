"""The stable high-level facade: build a fleet, run queries, run scenarios.

Examples, notebooks, and the README quick-start import from here instead
of reaching five modules deep::

    from repro.api import build_system, run_query

    system = build_system(n_nodes=4, electrodes_per_node=8)
    system.ingest(windows)
    result = run_query(system, "q3", (0, 1))

Many concurrent callers go through the serving layer instead — a
:class:`~repro.serving.QueryServer` (or the one-call
:func:`~repro.serving.serve_session`) multiplexes deadline-bearing
request streams onto the same query path with admission control and
coalescing.  The chaos-hardening knobs ride along: a seeded
:class:`~repro.serving.RetryPolicy` (client- and server-side), per-node
circuit breakers (:class:`~repro.serving.BreakerConfig`), graded
brownout tiers (:class:`~repro.serving.BrownoutConfig`), and the
:func:`~repro.eval.chaos.chaos_sweep` fault-storm harness.

Everything re-exported here is covered by the deprecation policy: the
deeper module paths may shuffle between releases, ``repro.api`` does not.
"""

from __future__ import annotations

import numpy as np

from repro.apps.queries import (
    DistributedQueryResult,
    QueryEngine,
    QueryResultRow,
    QuerySpec,
)
from repro.core.system import ScaloSystem
from repro.errors import QueryRejected
from repro.serving import (
    BreakerConfig,
    BrownoutConfig,
    LoadGenConfig,
    QueryServer,
    RetryPolicy,
    ServeReport,
    ServerConfig,
    serve_session,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetryLike
from repro.telemetry.scenarios import SCENARIOS, run_scenario
from repro.units import WINDOW_MS

__all__ = [
    "build_system",
    "run_query",
    "run_scenario",
    "serve_session",
    "SCENARIOS",
    "ScaloSystem",
    "QuerySpec",
    "QueryEngine",
    "QueryRejected",
    "QueryResultRow",
    "QueryServer",
    "BreakerConfig",
    "BrownoutConfig",
    "DistributedQueryResult",
    "LoadGenConfig",
    "RetryPolicy",
    "ServeReport",
    "ServerConfig",
    "Telemetry",
]


def build_system(
    n_nodes: int = 4,
    electrodes_per_node: int = 8,
    *,
    measure: str = "dtw",
    seed: int = 0,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    **overrides,
) -> ScaloSystem:
    """Assemble a :class:`~repro.core.system.ScaloSystem` fleet.

    Args:
        n_nodes: implant count.
        electrodes_per_node: electrodes per implant.
        measure: similarity measure the shared LSH approximates
            (``dtw`` | ``euclidean`` | ``xcor`` | ``emd``).
        seed: fleet-wide seed (network jitter, clock offsets).
        telemetry: optional live :class:`~repro.telemetry.Telemetry`
            handle; metrics and spans from every layer land on it.
        **overrides: any further :class:`ScaloSystem` field (``tdma``,
            ``arq``, ``power_cap_mw``, ...).
    """
    return ScaloSystem(
        n_nodes=n_nodes,
        electrodes_per_node=electrodes_per_node,
        lsh_measure=measure,
        seed=seed,
        telemetry=telemetry,
        **overrides,
    )


def run_query(
    system: ScaloSystem,
    kind: str,
    window_range: tuple[int, int],
    *,
    template: np.ndarray | None = None,
    use_hash: bool = True,
    time_range_ms: float | None = None,
    seizure_flags: dict[int, set[int]] | None = None,
    distributed: bool = False,
) -> DistributedQueryResult:
    """Run one interactive query (Q1/Q2/Q3) over the fleet.

    Args:
        system: the fleet to query.
        kind: ``"q1"`` (seizure-flagged windows), ``"q2"`` (windows
            matching ``template``), or ``"q3"`` (everything in range).
        window_range: half-open ``[start, stop)`` window-index range.
        template: the probe window (required for Q2).
        use_hash: Q2 only — hash filter (default) vs exact DTW.
        time_range_ms: time span the query covers; derived from
            ``window_range`` when omitted.
        seizure_flags: per-node window indexes the local detector
            flagged (what Q1 filters on).
        distributed: disseminate the query over the radio network and
            collect per-node responses instead of scanning storage
            coordinator-side.

    Returns:
        A :class:`~repro.apps.queries.DistributedQueryResult` — matched
        rows plus degraded/coverage accounting for dead nodes.
    """
    if time_range_ms is None:
        start, stop = window_range
        time_range_ms = max(stop - start, 1) * WINDOW_MS
    spec = QuerySpec(kind=kind, time_range_ms=time_range_ms, use_hash=use_hash)
    run = system.query_distributed if distributed else system.query
    return run(
        spec, window_range, template=template, seizure_flags=seizure_flags
    )

"""The stable high-level facade: build a fleet, run queries, run scenarios.

Examples, notebooks, and the README quick-start import from here instead
of reaching five modules deep::

    from repro.api import build_system, run_query

    system = build_system(n_nodes=4, electrodes_per_node=8)
    system.ingest(windows)
    result = run_query(system, "q3", (0, 1))

Many concurrent callers go through the serving layer instead — a
:class:`~repro.serving.QueryServer` (or the one-call
:func:`~repro.serving.serve_session`) multiplexes deadline-bearing
request streams onto the same query path with admission control and
coalescing.  The chaos-hardening knobs ride along: a seeded
:class:`~repro.serving.RetryPolicy` (client- and server-side), per-node
circuit breakers (:class:`~repro.serving.BreakerConfig`), graded
brownout tiers (:class:`~repro.serving.BrownoutConfig`), and the
:func:`~repro.eval.chaos.chaos_sweep` fault-storm harness.

Multi-tenant deployments go one level up: :func:`build_fabric` runs
many independent fleets behind one tenant-aware serving plane,
:func:`run_fleet_query` routes a tenant's query to its owning fleet
(consistent-hash shard map, per-tenant admission quotas, partitioned
result retention), and :func:`run_population_query` scatter-gathers one
query across every fleet with partial-coverage merge.
:func:`build_system`/:func:`run_query` remain the unchanged
single-tenant path.

Everything re-exported here is covered by the deprecation policy: the
deeper module paths may shuffle between releases, ``repro.api`` does not.
"""

from __future__ import annotations

import numpy as np

from repro.apps.queries import (
    DistributedQueryResult,
    QueryCostModel,
    QueryEngine,
    QueryResultRow,
    QuerySpec,
)
from repro.core.system import ScaloSystem
from repro.errors import QueryRejected, ScaloError
from repro.eval.chaos import (
    FAULT_PRESETS,
    MILD,
    MODERATE,
    PARTITION,
    SEVERE,
    STORM_LEVELS,
    ChaosConfig,
    ChaosReport,
    PartitionInvariants,
    PartitionStormReport,
    StormLevel,
    StormResult,
    chaos_sweep,
    partition_config,
    run_partition_storm,
    run_storm,
)
from repro.fabric import (
    POPULATION_CLIENT,
    FabricConfig,
    FabricLoadConfig,
    FabricReport,
    FleetAnswer,
    FleetFabric,
    FleetShard,
    IsolationConfig,
    IsolationResult,
    PopulationResult,
    ShardMap,
    TenantStats,
    fabric_session,
    generate_tenant_arrivals,
    run_fabric_load,
    run_isolation_gate,
    tenant_name,
    tenant_slos,
)
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FleetBelief,
    HealthMonitor,
)
from repro.network import SPLIT_MODES, PartitionMatrix
from repro.recovery import (
    FailoverEvent,
    FailoverManager,
    JournalRecord,
    WriteAheadJournal,
)
from repro.scheduler.constraints import ConstraintSystem, build_constraints
from repro.scheduler.ilp import (
    AUTO_ILP_MAX_NODES,
    SOLVERS,
    Flow,
    FlowAllocation,
    Schedule,
    SchedulerProblem,
)
from repro.serving import (
    TIER_CACHE_ONLY,
    TIER_HEALTHY,
    TIER_NAMES,
    TIER_REDUCED,
    TIER_REJECT,
    AdmissionController,
    Arrival,
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    CircuitBreaker,
    LoadGenConfig,
    QueryRequest,
    QueryResponse,
    QueryServer,
    RetryPolicy,
    ServeReport,
    ServerConfig,
    ServingStats,
    TokenBucket,
    final_responses,
    generate_arrivals,
    per_client_responses,
    percentile,
    run_open_loop,
    serve_session,
    summarise,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetryLike
from repro.telemetry.health import (
    DEFAULT_SERVING_SLOS,
    SLO,
    Alert,
    Anomaly,
    AnomalyConfig,
    AnomalyDetector,
    BurnRateWindow,
    FlightRecorder,
    HealthConfig,
    HealthEngine,
    QuantileSketch,
    SLOEngine,
    SLOStatus,
)
from repro.telemetry.scenarios import SCENARIOS, run_scenario
from repro.units import WINDOW_MS

__all__ = [
    # single-tenant entry points
    "build_system",
    "run_query",
    "run_scenario",
    "serve_session",
    # multi-tenant entry points
    "build_fabric",
    "run_fleet_query",
    "run_population_query",
    "fabric_session",
    # core types
    "SCENARIOS",
    "ScaloSystem",
    "ScaloError",
    "QuerySpec",
    "QueryCostModel",
    "QueryEngine",
    "QueryRejected",
    "QueryResultRow",
    "DistributedQueryResult",
    "WINDOW_MS",
    # serving (PR 5)
    "AdmissionController",
    "Arrival",
    "LoadGenConfig",
    "QueryRequest",
    "QueryResponse",
    "QueryServer",
    "ServeReport",
    "ServerConfig",
    "ServingStats",
    "TokenBucket",
    "final_responses",
    "generate_arrivals",
    "per_client_responses",
    "percentile",
    "run_open_loop",
    "summarise",
    # chaos hardening (PR 6)
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "BrownoutConfig",
    "BrownoutController",
    "ChaosConfig",
    "ChaosReport",
    "CircuitBreaker",
    "FAULT_PRESETS",
    "MILD",
    "MODERATE",
    "PARTITION",
    "SEVERE",
    "STORM_LEVELS",
    "StormLevel",
    "StormResult",
    "RetryPolicy",
    "TIER_CACHE_ONLY",
    "TIER_HEALTHY",
    "TIER_NAMES",
    "TIER_REDUCED",
    "TIER_REJECT",
    "chaos_sweep",
    "run_storm",
    # fleet health (PR 7)
    "Alert",
    "Anomaly",
    "AnomalyConfig",
    "AnomalyDetector",
    "BurnRateWindow",
    "DEFAULT_SERVING_SLOS",
    "FlightRecorder",
    "HealthConfig",
    "HealthEngine",
    "QuantileSketch",
    "SLO",
    "SLOEngine",
    "SLOStatus",
    # partitions + coordination (PR 8)
    "FailoverEvent",
    "FailoverManager",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FleetBelief",
    "HealthMonitor",
    "JournalRecord",
    "PartitionInvariants",
    "PartitionMatrix",
    "PartitionStormReport",
    "SPLIT_MODES",
    "WriteAheadJournal",
    "partition_config",
    "run_partition_storm",
    # fleet fabric (PR 9)
    "FabricConfig",
    "FabricLoadConfig",
    "FabricReport",
    "FleetAnswer",
    "FleetFabric",
    "FleetShard",
    "IsolationConfig",
    "IsolationResult",
    "POPULATION_CLIENT",
    "PopulationResult",
    "ShardMap",
    "TenantStats",
    "generate_tenant_arrivals",
    "run_fabric_load",
    "run_isolation_gate",
    "tenant_name",
    "tenant_slos",
    # scheduler portfolio (PR 10)
    "AUTO_ILP_MAX_NODES",
    "ConstraintSystem",
    "Flow",
    "FlowAllocation",
    "SOLVERS",
    "Schedule",
    "SchedulerProblem",
    "build_constraints",
    "solve_schedule",
    # telemetry
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryLike",
]


def build_system(
    n_nodes: int = 4,
    electrodes_per_node: int = 8,
    *,
    measure: str = "dtw",
    seed: int = 0,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    **overrides,
) -> ScaloSystem:
    """Assemble a :class:`~repro.core.system.ScaloSystem` fleet.

    Args:
        n_nodes: implant count.
        electrodes_per_node: electrodes per implant.
        measure: similarity measure the shared LSH approximates
            (``dtw`` | ``euclidean`` | ``xcor`` | ``emd``).
        seed: fleet-wide seed (network jitter, clock offsets).
        telemetry: optional live :class:`~repro.telemetry.Telemetry`
            handle; metrics and spans from every layer land on it.
        **overrides: any further :class:`ScaloSystem` field (``tdma``,
            ``arq``, ``power_cap_mw``, ...).
    """
    return ScaloSystem(
        n_nodes=n_nodes,
        electrodes_per_node=electrodes_per_node,
        lsh_measure=measure,
        seed=seed,
        telemetry=telemetry,
        **overrides,
    )


def solve_schedule(
    flows: list[Flow],
    n_nodes: int,
    *,
    power_budget_mw: float | None = None,
    solver: str = "auto",
    seed: int = 0,
    telemetry: TelemetryLike = NULL_TELEMETRY,
) -> Schedule:
    """Solve one electrode-allocation instance with the solver portfolio.

    Args:
        flows: the schedulable flows (task model + priority weight each).
        n_nodes: fleet size the schedule spans.
        power_budget_mw: per-node power budget; defaults to the paper's
            node cap.
        solver: ``"ilp"`` (exact LP), ``"greedy"`` (seeded
            water-filling), ``"flow"`` (min-cost-flow), or ``"auto"``
            (exact below :data:`~repro.scheduler.ilp.AUTO_ILP_MAX_NODES`
            nodes, first verified heuristic at fleet scale).  Heuristic
            solutions are always post-hoc verified against the exact
            constraint rows.
        seed: heuristic ordering seed (byte-identical per seed).
        telemetry: books ``scheduler.solves`` and the
            ``scheduler.ilp_solve_ms`` / ``scheduler.heuristic_solve_ms``
            wall-clock histograms.

    Returns:
        The :class:`~repro.scheduler.ilp.Schedule`.
    """
    from repro.units import NODE_POWER_CAP_MW

    return SchedulerProblem(
        n_nodes=n_nodes,
        flows=flows,
        power_budget_mw=(
            NODE_POWER_CAP_MW if power_budget_mw is None else power_budget_mw
        ),
        solver=solver,
        seed=seed,
        telemetry=telemetry,
    ).solve()


def run_query(
    system: ScaloSystem,
    kind: str,
    window_range: tuple[int, int],
    *,
    template: np.ndarray | None = None,
    use_hash: bool = True,
    time_range_ms: float | None = None,
    seizure_flags: dict[int, set[int]] | None = None,
    distributed: bool = False,
) -> DistributedQueryResult:
    """Run one interactive query (Q1/Q2/Q3) over the fleet.

    Args:
        system: the fleet to query.
        kind: ``"q1"`` (seizure-flagged windows), ``"q2"`` (windows
            matching ``template``), or ``"q3"`` (everything in range).
        window_range: half-open ``[start, stop)`` window-index range.
        template: the probe window (required for Q2).
        use_hash: Q2 only — hash filter (default) vs exact DTW.
        time_range_ms: time span the query covers; derived from
            ``window_range`` when omitted.
        seizure_flags: per-node window indexes the local detector
            flagged (what Q1 filters on).
        distributed: disseminate the query over the radio network and
            collect per-node responses instead of scanning storage
            coordinator-side.

    Returns:
        A :class:`~repro.apps.queries.DistributedQueryResult` — matched
        rows plus degraded/coverage accounting for dead nodes.
    """
    if time_range_ms is None:
        start, stop = window_range
        time_range_ms = max(stop - start, 1) * WINDOW_MS
    spec = QuerySpec(kind=kind, time_range_ms=time_range_ms, use_hash=use_hash)
    run = system.query_distributed if distributed else system.query
    return run(
        spec, window_range, template=template, seizure_flags=seizure_flags
    )


def build_fabric(
    n_fleets: int = 4,
    nodes_per_fleet: int = 4,
    seed: int = 0,
    *,
    electrodes: int = 8,
    n_windows: int = 4,
    telemetry: TelemetryLike = NULL_TELEMETRY,
    **overrides,
) -> FleetFabric:
    """Assemble a multi-tenant :class:`~repro.fabric.FleetFabric`.

    Each of the ``n_fleets`` fleets is an independent, pre-ingested
    :class:`ScaloSystem` seeded ``seed + fleet_id`` behind its own
    tenant-isolated :class:`~repro.serving.QueryServer`; tenants route
    to fleets via a consistent-hash shard map.

    Args:
        n_fleets: fleets (patient sites) in the fabric.
        nodes_per_fleet: implant count per fleet.
        seed: fabric seed; fleet ``i`` runs at ``seed + i``.
        electrodes: electrodes per implant.
        n_windows: pre-ingested windows per fleet.
        telemetry: optional shared :class:`~repro.telemetry.Telemetry`
            handle (per-tenant ``fabric.*`` counters land on it).
        **overrides: any further :class:`~repro.fabric.FabricConfig`
            field (``tenant_queue_quota``, ``gather_base_ms``, ...).
    """
    config = FabricConfig(
        n_fleets=n_fleets,
        nodes_per_fleet=nodes_per_fleet,
        electrodes=electrodes,
        n_windows=n_windows,
        seed=seed,
        **overrides,
    )
    return FleetFabric(config=config, telemetry=telemetry)


def _resolve_spec(
    kind: str | QuerySpec,
    window_range: tuple[int, int] | None,
    time_range_ms: float | None,
) -> QuerySpec:
    if isinstance(kind, QuerySpec):
        return kind
    if time_range_ms is None:
        if window_range is not None:
            start, stop = window_range
            time_range_ms = max(stop - start, 1) * WINDOW_MS
        else:
            time_range_ms = WINDOW_MS
    return QuerySpec(kind=kind, time_range_ms=time_range_ms)


def run_fleet_query(
    fabric: FleetFabric,
    tenant: str,
    kind: str | QuerySpec,
    window_range: tuple[int, int] | None = None,
    *,
    template: np.ndarray | None = None,
    deadline_ms: float | None = None,
    min_coverage: float | None = None,
    time_range_ms: float | None = None,
) -> QueryResponse:
    """Run one tenant query through its owning fleet's serving plane.

    Routes via the shard map, submits through admission control (a shed
    raises :class:`~repro.errors.QueryRejected` with the fleet's
    reason), dispatches, and returns the tenant's
    :class:`~repro.serving.QueryResponse`.  ``kind`` is a query kind
    string or a pre-built :class:`QuerySpec`; ``window_range`` defaults
    to the fleet's full ingested range.
    """
    spec = _resolve_spec(kind, window_range, time_range_ms)
    fleet_id, request_id = fabric.submit(
        tenant,
        spec,
        window_range=window_range,
        template=template,
        deadline_ms=deadline_ms,
        min_coverage=min_coverage,
    )
    shard = fabric.shards[fleet_id]
    shard.server.drain()
    return next(
        r
        for r in reversed(shard.server.responses)
        if r.request_id == request_id
    )


def run_population_query(
    fabric: FleetFabric,
    kind: str | QuerySpec,
    window_range: tuple[int, int] | None = None,
    *,
    template: np.ndarray | None = None,
    min_coverage: float = 0.0,
    fleets: tuple[int, ...] | None = None,
    time_range_ms: float | None = None,
) -> PopulationResult:
    """Scatter one query across fleets, gather with coverage merge.

    The cross-fleet entry point: submits through every targeted fleet's
    serving plane concurrently and merges with node-weighted partial
    coverage (a shed or degraded fleet lowers ``coverage`` instead of
    failing the query — gate on ``result.sla_met``).
    """
    spec = _resolve_spec(kind, window_range, time_range_ms)
    return fabric.population_query(
        spec,
        template=template,
        min_coverage=min_coverage,
        fleets=fleets,
    )

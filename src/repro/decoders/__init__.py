"""Neural decoders: linear SVM, shallow NN, Kalman filter + decomposition."""

from repro.decoders.adaptive import (
    AdaptiveKalmanFilter,
    DeepDecoder,
    observation_drift,
    train_deep_decoder,
)
from repro.decoders.kalman import KalmanFilter, KalmanModel, fit_kalman
from repro.decoders.nn import (
    PartialNN,
    ShallowNN,
    aggregate_nn,
    decompose_nn,
    distributed_forward,
    train_shallow_nn,
)
from repro.decoders.svm import (
    LinearSVM,
    PartialSVM,
    aggregate_scores,
    decompose_svm,
    distributed_predict,
    train_linear_svm,
)

__all__ = [
    "AdaptiveKalmanFilter",
    "DeepDecoder",
    "observation_drift",
    "train_deep_decoder",
    "KalmanFilter",
    "KalmanModel",
    "fit_kalman",
    "PartialNN",
    "ShallowNN",
    "aggregate_nn",
    "decompose_nn",
    "distributed_forward",
    "train_shallow_nn",
    "LinearSVM",
    "PartialSVM",
    "aggregate_scores",
    "decompose_svm",
    "distributed_predict",
    "train_linear_svm",
]

"""Shallow feed-forward networks and their distributed decomposition.

SCALO supports the shallow decoder of Willsey et al. (movement pipeline
C): one hidden ReLU layer with input normalisation, mapped onto the MAD
PEs.  Distribution splits the *input* dimension: each node multiplies its
own feature slice by the corresponding weight columns, producing a partial
pre-activation vector; the aggregator sums the partials, adds the bias,
applies ReLU, and runs the (small) output layer — identical maths to the
centralised network (paper §3.1: "NNs are similarly decomposed by
distributing the rows of the weight matrices").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.linalg.mad import PostOp, mad
from repro.linalg.tiling import split_even


@dataclass
class ShallowNN:
    """A 1-hidden-layer ReLU network with input normalisation."""

    w_hidden: np.ndarray  # (n_hidden, n_features)
    b_hidden: np.ndarray  # (n_hidden,)
    w_out: np.ndarray  # (n_outputs, n_hidden)
    b_out: np.ndarray  # (n_outputs,)
    input_mean: np.ndarray | float = 0.0
    input_std: np.ndarray | float = 1.0

    def __post_init__(self) -> None:
        self.w_hidden = np.atleast_2d(np.asarray(self.w_hidden, dtype=float))
        self.w_out = np.atleast_2d(np.asarray(self.w_out, dtype=float))
        self.b_hidden = np.atleast_1d(np.asarray(self.b_hidden, dtype=float))
        self.b_out = np.atleast_1d(np.asarray(self.b_out, dtype=float))
        if self.w_hidden.shape[0] != self.b_hidden.shape[0]:
            raise ConfigurationError("hidden bias size mismatch")
        if self.w_out.shape[1] != self.w_hidden.shape[0]:
            raise ConfigurationError("output layer width mismatch")
        if self.w_out.shape[0] != self.b_out.shape[0]:
            raise ConfigurationError("output bias size mismatch")

    @property
    def n_features(self) -> int:
        return self.w_hidden.shape[1]

    @property
    def n_hidden(self) -> int:
        return self.w_hidden.shape[0]

    @property
    def n_outputs(self) -> int:
        return self.w_out.shape[0]

    def forward(self, features: np.ndarray) -> np.ndarray:
        """Centralised inference, expressed with the MAD PE post-ops."""
        features = np.asarray(features, dtype=float)
        normalise = PostOp(
            normalise=True, mean=self.input_mean, std=self.input_std
        )
        x = normalise.apply(features)
        hidden = mad(self.w_hidden, x, self.b_hidden, PostOp(relu=True))
        return mad(self.w_out, hidden, self.b_out)


@dataclass
class PartialNN:
    """One node's input-slice of a decomposed shallow network."""

    w_hidden_cols: np.ndarray  # (n_hidden, span)
    feature_span: tuple[int, int]
    input_mean: np.ndarray | float
    input_std: np.ndarray | float

    def partial_preactivation(self, local_features: np.ndarray) -> np.ndarray:
        x = np.asarray(local_features, dtype=float)
        expected = self.feature_span[1] - self.feature_span[0]
        if x.shape[-1] != expected:
            raise ConfigurationError(
                f"node expected {expected} features, got {x.shape[-1]}"
            )
        x = PostOp(normalise=True, mean=self.input_mean, std=self.input_std).apply(x)
        return x @ self.w_hidden_cols.T

    @property
    def wire_bytes(self) -> int:
        """Bytes shipped per decision: one fp/fixed value per hidden unit.

        The paper's MI-NN transmits 1024 B per node — a 256-unit hidden
        layer at 4 B per value.
        """
        return 4 * self.w_hidden_cols.shape[0]


def decompose_nn(nn: ShallowNN, n_nodes: int) -> list[PartialNN]:
    """Split the input dimension of the hidden layer across nodes."""
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    spans = split_even(nn.n_features, n_nodes)
    mean = np.broadcast_to(np.asarray(nn.input_mean, dtype=float), (nn.n_features,))
    std = np.broadcast_to(np.asarray(nn.input_std, dtype=float), (nn.n_features,))
    return [
        PartialNN(
            nn.w_hidden[:, start:stop],
            (start, stop),
            mean[start:stop].copy(),
            std[start:stop].copy(),
        )
        for start, stop in spans
    ]


def aggregate_nn(
    nn: ShallowNN, partial_preactivations: list[np.ndarray]
) -> np.ndarray:
    """Aggregator: sum partials, bias + ReLU, then the output layer."""
    if not partial_preactivations:
        raise ConfigurationError("no partials to aggregate")
    hidden_pre = np.sum(
        np.stack([np.asarray(p, dtype=float) for p in partial_preactivations]),
        axis=0,
    )
    hidden = np.maximum(hidden_pre + nn.b_hidden, 0.0)
    return mad(nn.w_out, hidden, nn.b_out)


def distributed_forward(nn: ShallowNN, node_features: list[np.ndarray]) -> np.ndarray:
    """End-to-end distributed inference (equals centralised forward)."""
    partials = decompose_nn(nn, len(node_features))
    preactivations = [
        p.partial_preactivation(f) for p, f in zip(partials, node_features)
    ]
    return aggregate_nn(nn, preactivations)


def train_shallow_nn(
    features: np.ndarray,
    targets: np.ndarray,
    n_hidden: int = 32,
    epochs: int = 200,
    lr: float = 1e-2,
    seed: int = 0,
) -> ShallowNN:
    """Train a regression network with plain full-batch gradient descent.

    Sufficient for the synthetic movement-decoding workloads; kept
    dependency-free on purpose.
    """
    x = np.asarray(features, dtype=float)
    y = np.atleast_2d(np.asarray(targets, dtype=float))
    if y.shape[0] == x.shape[0] and y.ndim == 2:
        pass
    elif y.shape[1] == x.shape[0]:
        y = y.T
    else:
        raise ConfigurationError("targets must align with features")

    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    xn = (x - mean) / std

    rng = np.random.default_rng(seed)
    w1 = rng.normal(scale=np.sqrt(2.0 / x.shape[1]), size=(n_hidden, x.shape[1]))
    b1 = np.zeros(n_hidden)
    w2 = rng.normal(scale=np.sqrt(1.0 / n_hidden), size=(y.shape[1], n_hidden))
    b2 = np.zeros(y.shape[1])

    n = x.shape[0]
    for _ in range(epochs):
        pre = xn @ w1.T + b1
        hidden = np.maximum(pre, 0.0)
        out = hidden @ w2.T + b2
        grad_out = 2.0 * (out - y) / n
        grad_w2 = grad_out.T @ hidden
        grad_b2 = grad_out.sum(axis=0)
        grad_hidden = (grad_out @ w2) * (pre > 0)
        grad_w1 = grad_hidden.T @ xn
        grad_b1 = grad_hidden.sum(axis=0)
        w2 -= lr * grad_w2
        b2 -= lr * grad_b2
        w1 -= lr * grad_w1
        b1 -= lr * grad_b1

    return ShallowNN(w1, b1, w2, b2, input_mean=mean, input_std=std)

"""Linear SVM classification and its distributed decomposition.

SCALO decomposes linear classifiers hierarchically: each node computes a
*partial* dot product over its own electrodes' features and ships only
that scalar (4 B per class) to an aggregator, which adds the partials and
the bias — mathematically identical to the centralised classifier, so
"decomposing linear SVMs is trivial and does not affect accuracy"
(paper §3.1).  Multi-class uses one-vs-rest rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.linalg.tiling import split_even


@dataclass
class LinearSVM:
    """A trained linear classifier: ``scores = W @ x + b``.

    For binary problems ``W`` has one row and the decision is the score's
    sign; multi-class takes the arg-max row.
    """

    weights: np.ndarray  # (n_classes, n_features)
    bias: np.ndarray  # (n_classes,)

    def __post_init__(self) -> None:
        self.weights = np.atleast_2d(np.asarray(self.weights, dtype=float))
        self.bias = np.atleast_1d(np.asarray(self.bias, dtype=float))
        if self.weights.shape[0] != self.bias.shape[0]:
            raise ConfigurationError("one bias per class row required")

    @property
    def n_features(self) -> int:
        return self.weights.shape[1]

    @property
    def n_classes(self) -> int:
        return self.weights.shape[0]

    def scores(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.shape[-1] != self.n_features:
            raise ConfigurationError(
                f"expected {self.n_features} features, got {features.shape[-1]}"
            )
        return features @ self.weights.T + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray | int:
        """Class index (multi-class) or {0, 1} (binary)."""
        score = self.scores(features)
        if self.n_classes == 1:
            result = (score > 0).astype(int).squeeze(-1)
        else:
            result = np.argmax(score, axis=-1)
        return int(result) if np.ndim(result) == 0 else result


@dataclass
class PartialSVM:
    """One node's slice of a decomposed SVM (a contiguous feature span)."""

    weights: np.ndarray  # (n_classes, span_features)
    feature_span: tuple[int, int]

    def partial_scores(self, local_features: np.ndarray) -> np.ndarray:
        local_features = np.asarray(local_features, dtype=float)
        expected = self.feature_span[1] - self.feature_span[0]
        if local_features.shape[-1] != expected:
            raise ConfigurationError(
                f"node expected {expected} local features, "
                f"got {local_features.shape[-1]}"
            )
        return local_features @ self.weights.T

    @property
    def wire_bytes(self) -> int:
        """Bytes this node transmits per decision (4 B per class score)."""
        return 4 * self.weights.shape[0]


def decompose_svm(svm: LinearSVM, n_nodes: int) -> list[PartialSVM]:
    """Split an SVM's feature dimension across ``n_nodes`` implants."""
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    spans = split_even(svm.n_features, n_nodes)
    return [
        PartialSVM(svm.weights[:, start:stop], (start, stop))
        for start, stop in spans
    ]


def aggregate_scores(
    partials: list[np.ndarray], bias: np.ndarray
) -> np.ndarray:
    """The aggregator node: sum partial scores and add the bias."""
    if not partials:
        raise ConfigurationError("no partial scores to aggregate")
    total = np.sum(np.stack([np.asarray(p, dtype=float) for p in partials]), axis=0)
    return total + np.asarray(bias, dtype=float)


def distributed_predict(
    svm: LinearSVM, node_features: list[np.ndarray]
) -> int:
    """End-to-end distributed classification over per-node feature slices.

    Equivalent to ``svm.predict(concat(node_features))`` — the equality the
    tests assert.
    """
    partials = decompose_svm(svm, len(node_features))
    scores = aggregate_scores(
        [p.partial_scores(f) for p, f in zip(partials, node_features)], svm.bias
    )
    if svm.n_classes == 1:
        return int(scores.squeeze() > 0)
    return int(np.argmax(scores))


def train_linear_svm(
    features: np.ndarray,
    labels: np.ndarray,
    n_classes: int | None = None,
    l2: float = 1e-2,
    epochs: int = 60,
    lr: float = 0.05,
    seed: int = 0,
) -> LinearSVM:
    """Train by SGD on the hinge loss (one-vs-rest for multi-class).

    Small and dependency-free; adequate for the band-power features these
    pipelines use.  Features are z-scored internally and the scaling is
    folded back into the returned weights so inference needs no separate
    normalisation step.
    """
    x = np.asarray(features, dtype=float)
    y = np.asarray(labels, dtype=int)
    if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
        raise ConfigurationError("features must be (n, d) with n labels")
    if n_classes is None:
        n_classes = int(y.max()) + 1 if y.max() > 1 else 2

    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    xn = (x - mean) / std

    rng = np.random.default_rng(seed)
    rows = 1 if n_classes == 2 else n_classes
    weights = np.zeros((rows, x.shape[1]))
    bias = np.zeros(rows)

    for row in range(rows):
        target = np.where(y == (1 if rows == 1 else row), 1.0, -1.0)
        w = np.zeros(x.shape[1])
        b = 0.0
        for epoch in range(epochs):
            order = rng.permutation(x.shape[0])
            step = lr / (1 + 0.1 * epoch)
            for i in order:
                margin = target[i] * (xn[i] @ w + b)
                if margin < 1:
                    w = (1 - step * l2) * w + step * target[i] * xn[i]
                    b += step * target[i]
                else:
                    w = (1 - step * l2) * w
        weights[row] = w
        bias[row] = b

    # fold the z-scoring into the weights: w.(x-m)/s + b = (w/s).x + (b - w.m/s)
    folded = weights / std
    folded_bias = bias - folded @ mean
    return LinearSVM(folded, folded_bias)

"""Adaptive decoding: the paper's declared extensions, implemented.

Two features SCALO's authors flag but defer:

* **Online Kalman recalibration** — "we do not change the Kalman filter
  parameters online as done in some variants although SCALO supports
  it" (§4).  :class:`AdaptiveKalmanFilter` adds recursive-least-squares
  re-estimation of the observation matrix H, tracking the neural tuning
  drift that §2.3 motivates recalibration with.
* **Deeper networks** — "We will study SCALO support for DNNs in future
  work" (§2.2).  :class:`DeepDecoder` stacks multiple ReLU layers and
  decomposes the *first* layer across implants exactly like the shallow
  network (the deeper layers are small and run on the aggregator), so
  the distributed equality property is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.decoders.kalman import KalmanFilter, KalmanModel
from repro.decoders.nn import PartialNN, aggregate_nn, decompose_nn
from repro.errors import ConfigurationError
from repro.linalg.mad import PostOp, mad


@dataclass
class AdaptiveKalmanFilter(KalmanFilter):
    """Kalman filtering with RLS tracking of the observation matrix.

    After each update, when a supervision signal (the true state, e.g.
    from a calibration block) is available, H is refreshed with one
    recursive-least-squares step per observation row.  ``forgetting``
    below 1 lets old tuning fade — the knob that follows electrode drift.
    """

    forgetting: float = 0.995
    _p_rls: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.8 < self.forgetting <= 1.0:
            raise ConfigurationError("forgetting factor must be in (0.8, 1]")
        self._p_rls = np.eye(self.model.n_state) * 10.0

    def adapt(self, observation: np.ndarray, true_state: np.ndarray) -> None:
        """One RLS step: refresh H from a supervised (state, obs) pair."""
        z = np.asarray(observation, dtype=float)
        x = np.asarray(true_state, dtype=float)
        if z.shape != (self.model.n_obs,) or x.shape != (self.model.n_state,):
            raise ConfigurationError("bad supervision shapes")
        # shared gain for all rows (common regressor x)
        p_x = self._p_rls @ x
        gain = p_x / (self.forgetting + x @ p_x)
        self._p_rls = (self._p_rls - np.outer(gain, p_x)) / self.forgetting
        residual = z - self.model.h @ x
        self.model.h += np.outer(residual, gain)

    def step_supervised(self, observation: np.ndarray,
                        true_state: np.ndarray) -> np.ndarray:
        """Filter one step, then adapt H with the supervision."""
        estimate = self.step(observation)
        self.adapt(observation, true_state)
        return estimate


def observation_drift(model_a: KalmanModel, model_b: KalmanModel) -> float:
    """Frobenius distance between two observation matrices (drift metric)."""
    return float(np.linalg.norm(model_a.h - model_b.h))


@dataclass
class DeepDecoder:
    """A multi-hidden-layer ReLU regressor with a distributed first layer.

    Layer 0 (the wide, electrode-facing layer) decomposes across
    implants exactly like :class:`~repro.decoders.nn.ShallowNN`; layers
    1..L run on the aggregator node, whose matrices are small enough for
    the MAD cluster.
    """

    weights: list[np.ndarray]  # layer l: (n_out_l, n_in_l)
    biases: list[np.ndarray]
    input_mean: np.ndarray | float = 0.0
    input_std: np.ndarray | float = 1.0

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.biases):
            raise ConfigurationError("one bias per layer required")
        if len(self.weights) < 2:
            raise ConfigurationError("a deep decoder needs >= 2 layers")
        for l, (w, b) in enumerate(zip(self.weights, self.biases)):
            if w.shape[0] != b.shape[0]:
                raise ConfigurationError(f"layer {l} bias mismatch")
            if l and w.shape[1] != self.weights[l - 1].shape[0]:
                raise ConfigurationError(f"layer {l} width mismatch")

    @property
    def n_features(self) -> int:
        return self.weights[0].shape[1]

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def forward(self, features: np.ndarray) -> np.ndarray:
        x = PostOp(normalise=True, mean=self.input_mean,
                   std=self.input_std).apply(np.asarray(features, dtype=float))
        for l in range(self.n_layers - 1):
            x = mad(self.weights[l], x, self.biases[l], PostOp(relu=True))
        return mad(self.weights[-1], x, self.biases[-1])

    # -- distribution -----------------------------------------------------------

    def _first_layer_shallow(self):
        """View the first layer as a ShallowNN for decomposition reuse."""
        from repro.decoders.nn import ShallowNN

        return ShallowNN(
            self.weights[0], self.biases[0],
            np.eye(self.weights[0].shape[0]),
            np.zeros(self.weights[0].shape[0]),
            input_mean=self.input_mean, input_std=self.input_std,
        )

    def decompose(self, n_nodes: int) -> list[PartialNN]:
        """Per-implant slices of the first layer."""
        return decompose_nn(self._first_layer_shallow(), n_nodes)

    def aggregate(self, partials: list[np.ndarray]) -> np.ndarray:
        """Aggregator: finish layer 0, then run the deep stack."""
        hidden = aggregate_nn(self._first_layer_shallow(), partials)
        x = hidden
        for l in range(1, self.n_layers - 1):
            x = mad(self.weights[l], x, self.biases[l], PostOp(relu=True))
        return mad(self.weights[-1], x, self.biases[-1])

    def distributed_forward(self, node_features: list[np.ndarray]
                            ) -> np.ndarray:
        partials = self.decompose(len(node_features))
        return self.aggregate(
            [p.partial_preactivation(f)
             for p, f in zip(partials, node_features)]
        )


def train_deep_decoder(
    features: np.ndarray,
    targets: np.ndarray,
    hidden: tuple[int, ...] = (64, 32),
    epochs: int = 250,
    lr: float = 5e-3,
    seed: int = 0,
) -> DeepDecoder:
    """Full-batch gradient descent for the deep regressor."""
    x = np.asarray(features, dtype=float)
    y = np.atleast_2d(np.asarray(targets, dtype=float))
    if y.shape[0] != x.shape[0]:
        y = y.T
    if y.shape[0] != x.shape[0]:
        raise ConfigurationError("targets must align with features")
    if not hidden:
        raise ConfigurationError("need at least one hidden layer")

    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0] = 1.0
    xn = (x - mean) / std

    rng = np.random.default_rng(seed)
    dims = [x.shape[1], *hidden, y.shape[1]]
    weights = [
        rng.normal(scale=np.sqrt(2.0 / dims[l]), size=(dims[l + 1], dims[l]))
        for l in range(len(dims) - 1)
    ]
    biases = [np.zeros(dims[l + 1]) for l in range(len(dims) - 1)]

    n = x.shape[0]
    for _ in range(epochs):
        activations = [xn]
        pres = []
        a = xn
        for l in range(len(weights) - 1):
            pre = a @ weights[l].T + biases[l]
            pres.append(pre)
            a = np.maximum(pre, 0.0)
            activations.append(a)
        out = a @ weights[-1].T + biases[-1]

        grad = 2.0 * (out - y) / n
        for l in range(len(weights) - 1, -1, -1):
            grad_w = grad.T @ activations[l]
            grad_b = grad.sum(axis=0)
            if l:
                grad = (grad @ weights[l]) * (pres[l - 1] > 0)
            weights[l] -= lr * grad_w
            biases[l] -= lr * grad_b

    return DeepDecoder(weights, biases, input_mean=mean, input_std=std)

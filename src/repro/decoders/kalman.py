"""The Kalman-filter movement decoder (movement pipeline B).

Follows Wu et al. (NeurIPS 2002): the state is hand/cursor kinematics
(position + velocity), the observation is the per-electrode spike-band
power vector.  The update inverts the innovation covariance — an
``n_features x n_features`` matrix.  Because that matrix is large, SCALO
*centralises* this computation: every node ships its feature slice (4 B
per electrode) to one node which runs the whole filter, including the
Gauss-Jordan INV PE with NVM-streamed operands (paper §3.1, §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.linalg.inverse import gauss_jordan_inverse
from repro.linalg.tiling import needs_nvm


@dataclass
class KalmanModel:
    """The fitted model matrices.

    Attributes:
        a: state transition ``(n_state, n_state)``.
        w: process noise covariance ``(n_state, n_state)``.
        h: observation matrix ``(n_obs, n_state)``.
        q: observation noise covariance ``(n_obs, n_obs)``.
    """

    a: np.ndarray
    w: np.ndarray
    h: np.ndarray
    q: np.ndarray

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=float)
        self.w = np.asarray(self.w, dtype=float)
        self.h = np.asarray(self.h, dtype=float)
        self.q = np.asarray(self.q, dtype=float)
        n_state = self.a.shape[0]
        if self.a.shape != (n_state, n_state):
            raise ConfigurationError("A must be square")
        if self.w.shape != (n_state, n_state):
            raise ConfigurationError("W must match A")
        if self.h.shape[1] != n_state:
            raise ConfigurationError("H columns must match the state size")
        n_obs = self.h.shape[0]
        if self.q.shape != (n_obs, n_obs):
            raise ConfigurationError("Q must match H rows")

    @property
    def n_state(self) -> int:
        return self.a.shape[0]

    @property
    def n_obs(self) -> int:
        return self.h.shape[0]

    @property
    def inversion_dim(self) -> int:
        """Size of the matrix the INV PE inverts each step."""
        return self.n_obs

    @property
    def inversion_needs_nvm(self) -> bool:
        """Does the innovation covariance spill past the 16 KB registers?"""
        return needs_nvm(self.n_obs, self.n_obs)


@dataclass
class KalmanFilter:
    """A running filter: model + (state, covariance) posterior.

    The previous step's output is saved to a buffer at the end of the
    pipeline (paper Fig. 6b) — here, the ``state``/``covariance`` fields.
    """

    model: KalmanModel
    state: np.ndarray = field(default=None)  # type: ignore[assignment]
    covariance: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.state is None:
            self.state = np.zeros(self.model.n_state)
        if self.covariance is None:
            self.covariance = np.eye(self.model.n_state)
        self.state = np.asarray(self.state, dtype=float)
        self.covariance = np.asarray(self.covariance, dtype=float)

    def step(self, observation: np.ndarray) -> np.ndarray:
        """One predict + update cycle; returns the new state estimate."""
        z = np.asarray(observation, dtype=float)
        if z.shape != (self.model.n_obs,):
            raise ConfigurationError(
                f"expected {self.model.n_obs} observations, got {z.shape}"
            )
        a, w, h, q = self.model.a, self.model.w, self.model.h, self.model.q

        # predict
        x_prior = a @ self.state
        p_prior = a @ self.covariance @ a.T + w

        # update (the INV PE inverts the innovation covariance)
        innovation_cov = h @ p_prior @ h.T + q
        gain = p_prior @ h.T @ gauss_jordan_inverse(innovation_cov)
        self.state = x_prior + gain @ (z - h @ x_prior)
        self.covariance = (
            np.eye(self.model.n_state) - gain @ h
        ) @ p_prior
        return self.state.copy()

    def run(self, observations: np.ndarray) -> np.ndarray:
        """Filter a whole sequence; returns ``(n_steps, n_state)``."""
        observations = np.asarray(observations, dtype=float)
        if observations.ndim != 2:
            raise ConfigurationError("expected (n_steps, n_obs)")
        return np.stack([self.step(z) for z in observations])

    def reset(self) -> None:
        self.state = np.zeros(self.model.n_state)
        self.covariance = np.eye(self.model.n_state)


def fit_kalman(states: np.ndarray, observations: np.ndarray,
               ridge: float = 1e-6) -> KalmanModel:
    """Fit A, W, H, Q by least squares from paired trajectories.

    Args:
        states: ``(n_steps, n_state)`` ground-truth kinematics.
        observations: ``(n_steps, n_obs)`` simultaneous neural features.
    """
    x = np.asarray(states, dtype=float)
    z = np.asarray(observations, dtype=float)
    if x.ndim != 2 or z.ndim != 2 or x.shape[0] != z.shape[0]:
        raise ConfigurationError("states and observations must align")
    if x.shape[0] < max(x.shape[1], z.shape[1]) + 2:
        raise ConfigurationError("not enough steps to fit the model")

    x_prev, x_next = x[:-1], x[1:]
    reg_s = ridge * np.eye(x.shape[1])
    a = np.linalg.solve(x_prev.T @ x_prev + reg_s, x_prev.T @ x_next).T
    w_resid = x_next - x_prev @ a.T
    w = w_resid.T @ w_resid / max(1, x_prev.shape[0] - 1)

    h = np.linalg.solve(x.T @ x + reg_s, x.T @ z).T
    q_resid = z - x @ h.T
    q = q_resid.T @ q_resid / max(1, x.shape[0] - 1)
    # regularise the noise covariances so the filter stays invertible
    w += ridge * np.eye(w.shape[0])
    q += ridge * np.eye(q.shape[0])
    return KalmanModel(a, w, h, q)

"""Exception hierarchy for the SCALO reproduction.

All library-raised exceptions derive from :class:`ScaloError` so callers can
catch everything from this package with one ``except`` clause.
"""

from __future__ import annotations


class ScaloError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ScaloError):
    """A component was configured with invalid or inconsistent parameters."""


class PowerBudgetExceeded(ScaloError):
    """A pipeline or schedule requires more power than the implant cap."""

    def __init__(self, required_mw: float, budget_mw: float, detail: str = ""):
        self.required_mw = required_mw
        self.budget_mw = budget_mw
        message = (
            f"required {required_mw:.3f} mW exceeds budget {budget_mw:.3f} mW"
        )
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class DeadlineExceeded(ScaloError):
    """A pipeline or schedule cannot meet its response-time target."""

    def __init__(self, latency_ms: float, deadline_ms: float, detail: str = ""):
        self.latency_ms = latency_ms
        self.deadline_ms = deadline_ms
        message = (
            f"latency {latency_ms:.3f} ms exceeds deadline {deadline_ms:.3f} ms"
        )
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class UnknownPEError(ScaloError, KeyError):
    """A processing element name is not in the catalog."""


class FabricError(ScaloError):
    """Invalid fabric wiring (cycles, dangling ports, double connections)."""


class SchedulingError(ScaloError):
    """The ILP scheduler could not produce a feasible schedule."""


class StorageError(ScaloError):
    """Invalid NVM operation (bad address, write to unerased page, ...)."""


class UncorrectableError(StorageError):
    """A page failed ECC decode beyond the SECDED correction capability.

    Raised instead of silently returning rotted bytes; callers that can
    degrade (the resilient query path) treat the node's storage as
    unavailable, exactly like a dead node.
    """

    def __init__(self, page_index: int, detail: str = ""):
        self.page_index = page_index
        message = f"page {page_index} has uncorrectable bit errors"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class RecoveryError(ScaloError):
    """Crash recovery could not restore a consistent node state."""


class NetworkError(ScaloError):
    """Invalid network operation (oversized packet, no TDMA slot, ...)."""


class PacketCorrupted(NetworkError):
    """A received packet failed its CRC check."""


class RetryExhausted(NetworkError):
    """An ARQ transfer ran out of retries without an acknowledgement."""

    def __init__(self, seq: int, attempts: int, targets: list[int] | None = None):
        self.seq = seq
        self.attempts = attempts
        self.targets = targets or []
        message = f"packet seq={seq} unacknowledged after {attempts} attempts"
        if self.targets:
            message = f"{message} (targets {self.targets})"
        super().__init__(message)


class NodeFailure(ScaloError):
    """An operation addressed a node that is down (crashed or dark)."""

    def __init__(self, node_id: int, detail: str = ""):
        self.node_id = node_id
        message = f"node {node_id} is down"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class QueryRejected(ScaloError):
    """The query server shed a request at admission (HTTP-429 analogue).

    ``reason`` is ``"queue_full"`` (the bounded admission queue is at
    capacity) or ``"rate_limited"`` (the client's token bucket is empty);
    ``retry_after_ms`` is the earliest simulated time offset at which a
    resubmission could be admitted (0 when unknowable, e.g. queue_full).
    """

    def __init__(self, client: str, reason: str, retry_after_ms: float = 0.0):
        self.client = client
        self.reason = reason
        self.retry_after_ms = retry_after_ms
        message = f"query from client {client!r} shed ({reason})"
        if retry_after_ms > 0:
            message = f"{message}, retry after {retry_after_ms:.1f} ms"
        super().__init__(message)


class QuerySyntaxError(ScaloError):
    """The Trill-like query text could not be parsed."""


class CompilationError(ScaloError):
    """A parsed query could not be lowered onto the PE fabric."""

"""The deployed PE pipelines of paper §4 (Figs. 5-7), wired on the fabric.

"Deploying SCALO" maps each application onto concrete PE chains; this
module builds those chains on a :class:`~repro.hardware.fabric.Fabric`,
rolls up their latency/power, and checks them against the response-time
targets — the hardware-level counterpart of the functional apps in
:mod:`repro.apps`.

Each builder returns a :class:`DeployedPipeline` with the per-stage
chains (feature extraction, hashing, comparison, ...) so callers can
inspect or re-tune individual stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeadlineExceeded
from repro.hardware.fabric import Fabric
from repro.hardware.pipeline import Pipeline
from repro.units import (
    MOVEMENT_RESPONSE_MS,
    SEIZURE_RESPONSE_MS,
    SPIKE_SORT_RESPONSE_MS,
)

#: Airtime allowances (ms) for the network hops inside the loops, at the
#: 7 Mbps intra radio: one compressed hash packet / one signal window.
HASH_HOP_MS = 0.15
SIGNAL_HOP_MS = 0.35


@dataclass
class DeployedPipeline:
    """A deployed application: named PE chains plus the response budget."""

    name: str
    fabric: Fabric
    stages: dict[str, Pipeline]
    network_ms: float
    deadline_ms: float
    #: stages that run concurrently with (not ahead of) the critical path
    background_stages: tuple[str, ...] = ()

    @property
    def critical_path_ms(self) -> float:
        """Latency of the serial stages plus the network hops."""
        compute = sum(
            pipeline.latency_ms
            for name, pipeline in self.stages.items()
            if name not in self.background_stages
        )
        return compute + self.network_ms

    @property
    def power_mw(self) -> float:
        return self.fabric.power_mw

    @property
    def area_kge(self) -> float:
        return self.fabric.area_kge

    def check_deadline(self) -> None:
        if self.critical_path_ms > self.deadline_ms:
            raise DeadlineExceeded(
                self.critical_path_ms, self.deadline_ms, self.name
            )

    def set_electrodes(self, n_electrodes: float) -> None:
        for pipeline in self.stages.values():
            pipeline.set_electrodes(n_electrodes)


def seizure_propagation_pipeline(n_electrodes: float = 16.0
                                 ) -> DeployedPipeline:
    """Fig. 5: detection + hashing + comparison on one node.

    Local detection (FFT/BBF/XCOR/SVM) and hash generation (every window
    is hashed and stored as it arrives, §3.1) run continuously in the
    background, so on a detection the hashes *already exist*.  The 10 ms
    budget covers the distributed confirmation path: pack and broadcast
    the flagged hashes, remote collision check, exchange the signal,
    exact DTW, stimulate.
    """
    fabric = Fabric()
    detection = fabric.wire_chain(
        "detect", ["FFT", "BBF", "XCOR", "SVM"], n_electrodes=n_electrodes
    )
    hashing = fabric.wire_chain(
        "hash", ["HCONV", "NGRAM", "HFREQ", "HCOMP"],
        n_electrodes=n_electrodes,
    )
    transmit = fabric.wire_chain(
        "transmit", ["NPACK"], n_electrodes=n_electrodes
    )
    checking = fabric.wire_chain(
        "check", ["UNPACK", "DCOMP", "CCHECK", "CSEL"],
        n_electrodes=n_electrodes,
    )
    comparison = fabric.wire_chain(
        "compare", ["DTW", "GATE"], n_electrodes=n_electrodes
    )
    return DeployedPipeline(
        name="seizure_propagation",
        fabric=fabric,
        stages={
            "detect": detection,
            "hash": hashing,
            "transmit": transmit,
            "check": checking,
            "compare": comparison,
        },
        network_ms=HASH_HOP_MS + SIGNAL_HOP_MS,
        deadline_ms=SEIZURE_RESPONSE_MS,
        background_stages=("detect", "hash"),
    )


def movement_svm_pipeline(n_electrodes: float = 96.0) -> DeployedPipeline:
    """Fig. 6a: SBP features, partial SVM, network, aggregation."""
    fabric = Fabric()
    features = fabric.wire_chain(
        "features", ["SBP", "SVM", "NPACK"], n_electrodes=n_electrodes
    )
    aggregate = fabric.wire_chain(
        "aggregate", ["UNPACK", "ADD", "THR"], n_electrodes=n_electrodes
    )
    return DeployedPipeline(
        name="movement_svm",
        fabric=fabric,
        stages={"features": features, "aggregate": aggregate},
        network_ms=HASH_HOP_MS,
        deadline_ms=MOVEMENT_RESPONSE_MS,
    )


def movement_kalman_pipeline(n_electrodes: float = 96.0) -> DeployedPipeline:
    """Fig. 6b: features to the central node, Kalman with NVM-backed INV.

    The previous step's output feeds back through a buffer (GATE) and
    the inversion streams via the SC — both on the critical path.
    """
    fabric = Fabric()
    features = fabric.wire_chain(
        "features", ["SBP", "NPACK"], n_electrodes=n_electrodes
    )
    kalman = fabric.wire_chain(
        "kalman", ["UNPACK", "BMUL", "ADD", "SC", "INV", "SUB", "GATE"],
        n_electrodes=n_electrodes,
    )
    return DeployedPipeline(
        name="movement_kalman",
        fabric=fabric,
        stages={"features": features, "kalman": kalman},
        network_ms=HASH_HOP_MS,
        deadline_ms=MOVEMENT_RESPONSE_MS,
    )


def movement_nn_pipeline(n_electrodes: float = 96.0) -> DeployedPipeline:
    """Fig. 6c: partial hidden layer per node, aggregation + output layer."""
    fabric = Fabric()
    partial = fabric.wire_chain(
        "partial", ["SBP", "BMUL", "NPACK"], n_electrodes=n_electrodes
    )
    aggregate = fabric.wire_chain(
        "aggregate", ["UNPACK", "ADD", "BMUL", "THR"],
        n_electrodes=n_electrodes,
    )
    return DeployedPipeline(
        name="movement_nn",
        fabric=fabric,
        stages={"partial": partial, "aggregate": aggregate},
        network_ms=SIGNAL_HOP_MS,  # 1 KB partials
        deadline_ms=MOVEMENT_RESPONSE_MS,
    )


def spike_sorting_pipeline(n_electrodes: float = 96.0) -> DeployedPipeline:
    """Fig. 7: detect, EMD-hash, collision-check against stored templates.

    Fully local (no network); NEO runs as the always-on front end while
    the per-spike budget covers threshold -> hash -> match -> SC fetch.
    """
    fabric = Fabric()
    frontend = fabric.wire_chain(
        "frontend", ["NEO"], n_electrodes=n_electrodes
    )
    sorting = fabric.wire_chain(
        "sort", ["THR", "HCONV", "EMDH", "CCHECK", "SC"],
        n_electrodes=n_electrodes,
    )
    return DeployedPipeline(
        name="spike_sorting",
        fabric=fabric,
        stages={"frontend": frontend, "sort": sorting},
        network_ms=0.0,
        deadline_ms=SPIKE_SORT_RESPONSE_MS,
        background_stages=("frontend",),
    )


def all_pipelines() -> dict[str, DeployedPipeline]:
    """Every deployed pipeline of §4."""
    builders = (
        seizure_propagation_pipeline,
        movement_svm_pipeline,
        movement_kalman_pipeline,
        movement_nn_pipeline,
        spike_sorting_pipeline,
    )
    return {p.name: p for p in (b() for b in builders)}

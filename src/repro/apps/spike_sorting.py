"""Online spike sorting with hash-based template matching (Fig. 3c/7).

The pipeline: NEO emphasises spikes, a threshold detects them, each spike
snippet is hashed (EMD hash) and compared against the hashes of stored
templates; only colliding templates get the exact (EMD) comparison.  The
exact-matching baseline compares every spike against every template — the
accuracy reference the paper reports being within 5 % of (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.spikes import SPIKE_SAMPLES, SpikeDataset
from repro.errors import ConfigurationError
from repro.hashing.emd_hash import EMDHash
from repro.signal.features import adaptive_threshold, nonlinear_energy, threshold_crossings
from repro.similarity.emd import emd_signal


#: Boxcar width for NEO smoothing before thresholding (samples).
NEO_SMOOTH_SAMPLES = 6


def detect_spikes(
    data: np.ndarray,
    k_sigma: float = 10.0,
    refractory: int = 3 * SPIKE_SAMPLES // 4,
) -> np.ndarray:
    """Detect spike onsets across channels with smoothed NEO + threshold.

    Returns sorted, deduplicated sample indexes (the start of each
    snippet window, aligned a few samples before the NEO peak).
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ConfigurationError("expected (channels, samples)")
    boxcar = np.ones(NEO_SMOOTH_SAMPLES) / NEO_SMOOTH_SAMPLES
    detections: list[int] = []
    for channel in data:
        energy = np.convolve(nonlinear_energy(channel), boxcar, mode="same")
        threshold = adaptive_threshold(energy, k=k_sigma)
        crossings = threshold_crossings(energy, threshold, refractory)
        detections.extend(int(c) for c in crossings)
    detections.sort()
    merged: list[int] = []
    for t in detections:
        if merged and t - merged[-1] <= refractory:
            continue
        merged.append(t)
    # back up so the trough sits inside the snippet
    return np.asarray([max(0, t - 10) for t in merged], dtype=np.int64)


#: Amplitude histogramming of peak-normalised waveforms: range and bins
#: calibrated so within-neuron hash jitter is ~3x smaller than
#: between-template spread.
_WAVE_RANGE = (-1.3, 1.1)
_WAVE_BINS = 24


def _default_spike_hasher() -> EMDHash:
    return EMDHash(
        n_bins=_WAVE_BINS,
        bucket_width=0.08,
        n_components=4,
        value_range=_WAVE_RANGE,
        normalise=False,  # the matcher peak-normalises waveforms itself
    )


def _peak_normalise(wave: np.ndarray) -> np.ndarray:
    peak = float(np.max(np.abs(wave)))
    return wave / peak if peak > 0 else wave


@dataclass
class TemplateMatcher:
    """Hash-filtered template matching over a node's stored templates.

    Waveforms are peak-normalised before histogramming so the EMD compares
    *shape* rather than amplitude (spike amplitudes jitter and drift).
    """

    templates: np.ndarray  # (n_neurons, n_channels, SPIKE_SAMPLES)
    hasher: EMDHash = field(default_factory=_default_spike_hasher)

    def __post_init__(self) -> None:
        self.templates = np.asarray(self.templates, dtype=float)
        if self.templates.ndim != 3:
            raise ConfigurationError("templates must be (neurons, channels, t)")
        self._dominant = np.array(
            [
                int(np.argmax(np.max(np.abs(t), axis=1)))
                for t in self.templates
            ]
        )
        self._waves = np.stack(
            [_peak_normalise(t[c]) for t, c in zip(self.templates, self._dominant)]
        )
        self._signatures = [self.hasher.hash_window(w) for w in self._waves]

    @property
    def n_neurons(self) -> int:
        return self.templates.shape[0]

    def _snippet_wave(self, snippet: np.ndarray) -> np.ndarray:
        """The snippet's strongest channel, peak-normalised."""
        snippet = np.asarray(snippet, dtype=float)
        if snippet.ndim != 2:
            raise ConfigurationError("snippet must be (channels, samples)")
        channel = int(np.argmax(np.max(np.abs(snippet), axis=1)))
        return _peak_normalise(snippet[channel])

    def _emd(self, wave_a: np.ndarray, wave_b: np.ndarray) -> float:
        return emd_signal(wave_a, wave_b, n_bins=_WAVE_BINS,
                          value_range=_WAVE_RANGE)

    def classify_exact(self, snippet: np.ndarray) -> int:
        """Baseline: exact EMD against every template."""
        wave = self._snippet_wave(snippet)
        costs = [self._emd(wave, t) for t in self._waves]
        return int(np.argmin(costs))

    def classify_hashed(self, snippet: np.ndarray) -> tuple[int, int]:
        """Hash-filtered matching.

        Returns:
            (neuron, n_exact_comparisons) — the comparison count is the
            work the hash filter saved versus ``n_neurons``.
        """
        wave = self._snippet_wave(snippet)
        signature = self.hasher.hash_window(wave)
        candidates = [
            i
            for i, template_sig in enumerate(self._signatures)
            if self.hasher.collision(signature, template_sig)
        ]
        if not candidates:
            # hash miss: fall back to the full exact scan (rare)
            return self.classify_exact(snippet), self.n_neurons
        costs = [self._emd(wave, self._waves[i]) for i in candidates]
        return candidates[int(np.argmin(costs))], len(candidates)


@dataclass
class SortingResult:
    """Output of one sorting run."""

    spike_times: np.ndarray  # detected snippet starts
    assignments: np.ndarray  # neuron per detected spike
    exact_comparisons: int  # total exact-EMD invocations
    method: str

    @property
    def n_sorted(self) -> int:
        return self.spike_times.shape[0]


@dataclass
class SpikeSorter:
    """Detection + template matching over a whole recording."""

    matcher: TemplateMatcher
    k_sigma: float = 10.0

    @classmethod
    def from_dataset(cls, dataset: SpikeDataset, **kwargs) -> "SpikeSorter":
        """Build with the dataset's ground-truth templates (offline-trained
        templates, per Rutishauser et al.)."""
        hasher = kwargs.pop("hasher", None)
        matcher = (
            TemplateMatcher(dataset.templates, hasher)
            if hasher is not None
            else TemplateMatcher(dataset.templates)
        )
        return cls(matcher, **kwargs)

    def sort(self, data: np.ndarray, method: str = "hash") -> SortingResult:
        if method not in ("hash", "exact"):
            raise ConfigurationError("method must be 'hash' or 'exact'")
        data = np.asarray(data, dtype=float)
        times = detect_spikes(data, self.k_sigma)
        times = times[times + SPIKE_SAMPLES <= data.shape[1]]
        assignments = np.empty(times.shape[0], dtype=np.int64)
        comparisons = 0
        for i, t in enumerate(times):
            snippet = data[:, t : t + SPIKE_SAMPLES]
            if method == "exact":
                assignments[i] = self.matcher.classify_exact(snippet)
                comparisons += self.matcher.n_neurons
            else:
                neuron, n_cmp = self.matcher.classify_hashed(snippet)
                assignments[i] = neuron
                comparisons += n_cmp
        return SortingResult(times, assignments, comparisons, method)


def sorting_accuracy(
    dataset: SpikeDataset,
    result: SortingResult,
    tolerance: int = 3 * SPIKE_SAMPLES // 4,
) -> float:
    """Fraction of *matched* detections assigned the right neuron.

    A detection matches the nearest ground-truth spike within the
    tolerance; unmatched detections (false positives) count as errors,
    and undetected spikes are excluded (detection recall is reported
    separately by :func:`detection_recall`).
    """
    if result.n_sorted == 0:
        return 0.0
    truth_times = dataset.spike_times
    correct = 0
    for t, neuron in zip(result.spike_times, result.assignments):
        idx = int(np.searchsorted(truth_times, t))
        best = None
        for j in (idx - 1, idx, idx + 1):
            if 0 <= j < truth_times.shape[0]:
                dist = abs(int(truth_times[j]) - int(t))
                if best is None or dist < best[0]:
                    best = (dist, j)
        if best is not None and best[0] <= tolerance:
            if dataset.spike_labels[best[1]] == neuron:
                correct += 1
    return correct / result.n_sorted


def detection_recall(
    dataset: SpikeDataset,
    result: SortingResult,
    tolerance: int = 3 * SPIKE_SAMPLES // 4,
) -> float:
    """Fraction of ground-truth spikes with a nearby detection."""
    if dataset.n_spikes == 0:
        return 1.0
    detected_times = np.sort(result.spike_times)
    found = 0
    for t in dataset.spike_times:
        idx = int(np.searchsorted(detected_times, t))
        for j in (idx - 1, idx):
            if 0 <= j < detected_times.shape[0] and abs(
                int(detected_times[j]) - int(t)
            ) <= tolerance:
                found += 1
                break
    return found / dataset.n_spikes

"""Seizure detection and distributed propagation analysis (paper Fig. 3a/5).

Two layers:

* :class:`SeizureDetector` — the local per-node pipeline: FFT/band-power
  features through a linear SVM (Shiao et al. style), running on 4 ms
  windows.
* :class:`SeizurePropagationSimulator` — the distributed protocol: on a
  local detection, a node broadcasts the window's *hashes*; receivers
  check them against their recent local hashes (CCHECK); on a collision
  the full signal window is exchanged and compared exactly (DTW); a
  confirmed match forecasts spread and triggers stimulation at the
  receiver (paper §3.1).

The simulator exposes the two error knobs of the paper's Fig. 15
experiments: a hash *encoding* error rate (a window hashes to garbage)
and the network bit-error rate (a lost packet costs the whole round,
recovered at the next window).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.synthetic_ieeg import SyntheticIEEG
from repro.errors import ConfigurationError
from repro.decoders.svm import LinearSVM, train_linear_svm
from repro.faults.plan import FaultPlan
from repro.hashing.collision import CollisionChecker, RecentHashStore
from repro.hashing.lsh import LSHFamily
from repro.network.packet import PACKET_OVERHEAD_BITS
from repro.similarity.dtw import dtw_distance
from repro.units import WINDOW_SAMPLES


def window_features(window: np.ndarray) -> np.ndarray:
    """Per-window detection features: amplitude + spectral summary.

    A 4 ms window sees a seizure as a large low-frequency excursion, so
    the discriminative features are amplitude statistics plus the coarse
    FFT magnitude profile (the FFT PE's output, aggregated).
    """
    w = np.asarray(window, dtype=float)
    spectrum = np.abs(np.fft.rfft(w))
    n = spectrum.shape[0]
    thirds = [spectrum[: n // 3].mean(), spectrum[n // 3 : 2 * n // 3].mean(),
              spectrum[2 * n // 3 :].mean()]
    return np.array(
        [
            np.mean(np.abs(w)),
            np.std(w),
            np.max(np.abs(w)),
            np.mean(np.abs(np.diff(w))),  # line length
            *thirds,
        ]
    )


@dataclass
class SeizureDetector:
    """The local detection stage: features -> linear SVM."""

    svm: LinearSVM

    def detect_window(self, window: np.ndarray) -> bool:
        return bool(self.svm.predict(window_features(window)))

    def detect_channels(self, windows: np.ndarray) -> np.ndarray:
        """Per-electrode decisions for ``(channels, samples)``."""
        windows = np.asarray(windows, dtype=float)
        if windows.ndim != 2:
            raise ConfigurationError("expected (channels, samples)")
        return np.array([self.detect_window(row) for row in windows], dtype=bool)

    @classmethod
    def train(
        cls,
        windows: np.ndarray,
        labels: np.ndarray,
        seed: int = 0,
    ) -> "SeizureDetector":
        """Train from labelled windows ``(n_windows, n_samples)``."""
        features = np.stack([window_features(w) for w in np.asarray(windows)])
        svm = train_linear_svm(features, np.asarray(labels, dtype=int), seed=seed)
        return cls(svm)


def train_detector_from_recording(
    recording: SyntheticIEEG,
    window_samples: int = WINDOW_SAMPLES,
    max_windows_per_node: int = 400,
    seed: int = 0,
) -> SeizureDetector:
    """Fit one shared detector from a recording's ground truth."""
    rng = np.random.default_rng(seed)
    all_windows = []
    all_labels = []
    n_windows = recording.n_samples // window_samples
    for node in range(recording.n_nodes):
        labels = recording.window_labels(window_samples, node)
        pick = rng.permutation(n_windows)[:max_windows_per_node]
        for w in pick:
            electrode = int(rng.integers(recording.n_electrodes))
            start = w * window_samples
            all_windows.append(
                recording.data[node, electrode, start : start + window_samples]
            )
            all_labels.append(labels[w])
    return SeizureDetector.train(
        np.stack(all_windows), np.asarray(all_labels), seed=seed
    )


@dataclass
class PropagationEvent:
    """One confirmed propagation: who confirmed whose seizure, and when."""

    source_node: int
    confirming_node: int
    window_index: int
    dtw_cost: float
    #: how many independent electrode-level hash collisions backed this
    #: confirmation — the redundancy that makes hash errors survivable
    n_collisions: int = 1


@dataclass
class SimulationResult:
    """Everything a propagation run produced."""

    detections: dict[int, list[int]] = field(default_factory=dict)
    confirmations: list[PropagationEvent] = field(default_factory=list)
    hash_broadcasts: int = 0
    hash_rounds_lost: int = 0
    signal_exchanges: int = 0
    stimulations: list[tuple[int, int]] = field(default_factory=list)
    #: node-windows skipped because the node was down (fault plan)
    node_windows_skipped: int = 0
    #: total node-windows the run covered (alive or not)
    node_windows_total: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of node-windows actually processed."""
        if self.node_windows_total == 0:
            return 1.0
        return 1.0 - self.node_windows_skipped / self.node_windows_total

    @property
    def degraded(self) -> bool:
        return self.node_windows_skipped > 0

    def first_confirmation_window(
        self, source_node: int, confirming_node: int
    ) -> int | None:
        candidates = [
            e.window_index
            for e in self.confirmations
            if e.source_node == source_node and e.confirming_node == confirming_node
        ]
        return min(candidates) if candidates else None


@dataclass
class SeizurePropagationSimulator:
    """Window-synchronous functional simulation of the distributed protocol.

    Args:
        recording: the multi-node dataset.
        detector: shared local detector.
        lsh: the configured hash family (all nodes share seeds).
        dtw_threshold: exact-comparison match threshold.
        hash_error_rate: probability an electrode-window's hash encodes to
            garbage (Fig. 15a's knob).
        packet_loss_rate: probability a node's per-window hash packet is
            lost entirely (Fig. 15b: one packet carries all the node's
            hashes, so a hit loses the whole round).
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan` mapped
            window-index -> TDMA round.  A down node neither hashes nor
            detects; an alive node in a radio outage keeps working
            locally but cannot broadcast or receive.  The run proceeds
            over survivors and reports ``coverage``/``degraded`` instead
            of raising.
        seed: RNG seed for the error processes.
    """

    recording: SyntheticIEEG
    detector: SeizureDetector
    lsh: LSHFamily
    window_samples: int = WINDOW_SAMPLES
    horizon_ms: float = 100.0
    dtw_threshold: float = 60.0
    dtw_band: int = 10
    hash_error_rate: float = 0.0
    packet_loss_rate: float = 0.0
    fault_plan: FaultPlan | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.hash_error_rate <= 1:
            raise ConfigurationError("hash error rate must be in [0, 1]")
        if not 0 <= self.packet_loss_rate < 1:
            raise ConfigurationError("packet loss rate must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def _window_ms(self) -> float:
        return self.window_samples * 1e3 / self.recording.fs_hz

    def run(self, max_windows: int | None = None) -> SimulationResult:
        rec = self.recording
        n_windows = rec.n_samples // self.window_samples
        if max_windows is not None:
            n_windows = min(n_windows, max_windows)
        window_ms = self._window_ms()

        stores = [RecentHashStore(self.horizon_ms) for _ in range(rec.n_nodes)]
        checker = CollisionChecker(self.lsh.config.min_matching)
        result = SimulationResult(
            detections={node: [] for node in range(rec.n_nodes)}
        )

        for w in range(n_windows):
            start = w * self.window_samples
            now_ms = (w + 1) * window_ms
            windows = rec.data[:, :, start : start + self.window_samples]
            # the fault plan is scheduled in TDMA rounds; one window = one round
            alive = [
                self.fault_plan is None or self.fault_plan.node_alive(n, w)
                for n in range(rec.n_nodes)
            ]
            connected = [
                alive[n]
                and (self.fault_plan is None or self.fault_plan.radio_ok(n, w))
                for n in range(rec.n_nodes)
            ]
            result.node_windows_total += rec.n_nodes
            result.node_windows_skipped += rec.n_nodes - sum(alive)

            # 1. every live node hashes and stores its window (always-on)
            node_hashes: list[list[tuple[int, ...]]] = []
            for node in range(rec.n_nodes):
                if not alive[node]:
                    node_hashes.append([])
                    continue
                signatures = []
                for electrode in range(rec.n_electrodes):
                    sig = self.lsh.hash_window(windows[node, electrode])
                    if (
                        self.hash_error_rate
                        and self._rng.random() < self.hash_error_rate
                    ):
                        sig = tuple(
                            int(self._rng.integers(1 << self.lsh.config.bits))
                            for _ in sig
                        )
                    signatures.append(sig)
                stores[node].add_batch(now_ms, signatures)
                stores[node].evict_before(now_ms - 4 * self.horizon_ms)
                node_hashes.append(signatures)

            # 2. local detection (cheap proxy: the node's mean channel)
            detecting = []
            for node in range(rec.n_nodes):
                if not alive[node]:
                    continue
                mean_channel = windows[node].mean(axis=0)
                if self.detector.detect_window(mean_channel):
                    detecting.append(node)
                    result.detections[node].append(w)

            # 3. detecting nodes broadcast hashes; receivers collision-check
            for src in detecting:
                result.hash_broadcasts += 1
                if not connected[src]:
                    # radio dark: the round is lost, detection stays local
                    result.hash_rounds_lost += 1
                    continue
                if (
                    self.packet_loss_rate
                    and self._rng.random() < self.packet_loss_rate
                ):
                    result.hash_rounds_lost += 1
                    continue
                for dst in range(rec.n_nodes):
                    if dst == src or not connected[dst]:
                        continue
                    local = stores[dst].recent(now_ms)
                    collisions = checker.check(node_hashes[src], local)
                    if not collisions:
                        continue
                    # 4. exact comparison of the colliding pair
                    result.signal_exchanges += 1
                    src_electrode, record = collisions[0]
                    src_window = windows[src, src_electrode]
                    dst_window = windows[dst, record.electrode]
                    cost = dtw_distance(src_window, dst_window, self.dtw_band)
                    if cost <= self.dtw_threshold:
                        result.confirmations.append(
                            PropagationEvent(src, dst, w, cost,
                                             n_collisions=len(collisions))
                        )
                        result.stimulations.append((dst, w))
        return result

    # -- analytic helpers used by the evaluation ---------------------------------

    def hash_packet_bits(self) -> int:
        """Size of one node's per-window hash broadcast on the wire."""
        payload = self.recording.n_electrodes * self.lsh.config.hash_bytes
        return PACKET_OVERHEAD_BITS + 8 * payload

"""Online spike-template learning (OSort-style clustering).

The paper's spike templates "may be obtained offline from prior
recordings or generated online with clustering [Rutishauser et al.]"
(§2.2).  :class:`OnlineTemplateLearner` is that online path: each
detected spike either joins the nearest running cluster (whose template
is the running mean of its members) or seeds a new one; clusters whose
templates drift together get merged.  The learned templates then feed
the same :class:`~repro.apps.spike_sorting.TemplateMatcher` the offline
path uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.spike_sorting import detect_spikes
from repro.datasets.spikes import SPIKE_SAMPLES
from repro.errors import ConfigurationError


@dataclass
class Cluster:
    """One running cluster: mean waveform and member count."""

    template: np.ndarray  # (n_channels, SPIKE_SAMPLES)
    count: int = 1

    def absorb(self, snippet: np.ndarray) -> None:
        self.count += 1
        self.template += (snippet - self.template) / self.count


def _distance(a: np.ndarray, b: np.ndarray) -> float:
    """Peak-normalised RMS distance between multichannel waveforms."""
    peak = max(float(np.max(np.abs(a))), float(np.max(np.abs(b))), 1e-12)
    return float(np.sqrt(np.mean((a - b) ** 2))) / peak


#: Sample the trough is aligned to within a snippet.
TROUGH_INDEX = 20


def align_to_trough(snippet: np.ndarray, target: int = TROUGH_INDEX
                    ) -> np.ndarray:
    """Circularly shift a snippet so its dominant trough sits at ``target``.

    Detection timing jitters by a few samples; without alignment the
    running cluster means smear and distinct neurons blur together.
    """
    snippet = np.asarray(snippet, dtype=float)
    channel = int(np.argmax(np.max(np.abs(snippet), axis=1)))
    trough = int(np.argmin(snippet[channel]))
    return np.roll(snippet, target - trough, axis=1)


@dataclass
class OnlineTemplateLearner:
    """Streaming cluster formation over detected spikes.

    Args:
        join_threshold: normalised distance under which a spike joins an
            existing cluster (else it seeds a new one).
        merge_threshold: clusters whose templates fall this close get
            merged (drift correction).
        min_count: clusters below this size are discarded as noise when
            :meth:`templates` is read out.
        max_clusters: safety bound on cluster count.
    """

    join_threshold: float = 0.08
    merge_threshold: float = 0.05
    min_count: int = 3
    max_clusters: int = 128
    #: align spikes to their trough before clustering (strongly
    #: recommended: detection jitter otherwise smears the templates)
    align: bool = True
    clusters: list[Cluster] = field(default_factory=list)
    n_spikes_seen: int = 0

    def observe(self, snippet: np.ndarray) -> int:
        """Feed one spike snippet; returns the cluster index it joined."""
        snippet = np.asarray(snippet, dtype=float)
        if snippet.ndim != 2 or snippet.shape[1] != SPIKE_SAMPLES:
            raise ConfigurationError(
                f"snippet must be (channels, {SPIKE_SAMPLES})"
            )
        if self.align:
            snippet = align_to_trough(snippet)
        self.n_spikes_seen += 1
        if self.clusters:
            distances = [
                _distance(snippet, c.template) for c in self.clusters
            ]
            best = int(np.argmin(distances))
            if distances[best] <= self.join_threshold:
                self.clusters[best].absorb(snippet)
                self._maybe_merge(best)
                return best
        if len(self.clusters) >= self.max_clusters:
            # out of room: absorb into the nearest anyway
            distances = [
                _distance(snippet, c.template) for c in self.clusters
            ]
            best = int(np.argmin(distances))
            self.clusters[best].absorb(snippet)
            return best
        self.clusters.append(Cluster(template=snippet.copy()))
        return len(self.clusters) - 1

    def _maybe_merge(self, index: int) -> None:
        """Merge cluster ``index`` into a neighbour it drifted onto."""
        target = self.clusters[index]
        for other_index, other in enumerate(self.clusters):
            if other_index == index:
                continue
            if _distance(target.template, other.template) <= self.merge_threshold:
                total = target.count + other.count
                other.template = (
                    other.template * other.count
                    + target.template * target.count
                ) / total
                other.count = total
                del self.clusters[index]
                return

    def templates(self) -> np.ndarray:
        """The learned templates, noise clusters dropped, biggest first."""
        kept = [c for c in self.clusters if c.count >= self.min_count]
        kept.sort(key=lambda c: -c.count)
        if not kept:
            raise ConfigurationError("no clusters above the noise floor")
        return np.stack([c.template for c in kept])

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


def learn_templates_from_recording(
    data: np.ndarray,
    learner: OnlineTemplateLearner | None = None,
    k_sigma: float = 10.0,
) -> tuple[np.ndarray, OnlineTemplateLearner]:
    """Detect spikes in ``data`` and cluster them online.

    Returns:
        (templates, the learner) — the templates array plugs straight
        into :class:`~repro.apps.spike_sorting.TemplateMatcher`.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ConfigurationError("expected (channels, samples)")
    learner = learner if learner is not None else OnlineTemplateLearner()
    times = detect_spikes(data, k_sigma)
    times = times[times + SPIKE_SAMPLES <= data.shape[1]]
    for t in times:
        learner.observe(data[:, t : t + SPIKE_SAMPLES])
    return learner.templates(), learner


def match_templates_to_truth(
    learned: np.ndarray, truth: np.ndarray
) -> dict[int, int]:
    """Greedy assignment of learned templates to ground-truth neurons.

    Returns a mapping learned-index -> truth-index by nearest distance;
    used to score online learning against the generator's templates.
    """
    learned = np.asarray(learned, dtype=float)
    truth = np.asarray(truth, dtype=float)
    pairs = []
    for i, template in enumerate(learned):
        for j, reference in enumerate(truth):
            pairs.append((_distance(template, reference), i, j))
    pairs.sort()
    mapping: dict[int, int] = {}
    used = set()
    for _, i, j in pairs:
        if i in mapping or j in used:
            continue
        mapping[i] = j
        used.add(j)
    return mapping

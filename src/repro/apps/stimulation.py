"""Electrical stimulation: the closed loop's actuator (paper §2.1-2.2).

When propagation is confirmed (seizure spread) or sensory feedback is
needed (movement loop), the electrodes are repurposed through the DAC to
deliver charge-balanced biphasic pulse trains.  This module provides:

* :class:`StimulationProtocol` — amplitude/width/frequency of a biphasic
  train, with the charge-balance invariant built in;
* :func:`check_safety` — the Shannon charge-density limit every protocol
  must clear before the MC will execute it;
* :class:`Stimulator` — per-node execution: waveform synthesis, DAC power
  accounting, refractory enforcement, and an event log;
* :func:`stimulate_from_confirmations` — the glue from propagation
  events to stimulation commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.units import ADC_SAMPLE_RATE_HZ, DAC_POWER_MW

#: Shannon safety limit: k = log10(Q/A) + log10(Q/area) <= 1.85 (uC, cm^2).
SHANNON_K_LIMIT = 1.85

#: Geometric surface area of one micro-electrode site (cm^2).
ELECTRODE_AREA_CM2 = 1e-4

#: Minimum gap between stimulation trains on one electrode (ms).
REFRACTORY_MS = 100.0


@dataclass(frozen=True)
class StimulationProtocol:
    """A charge-balanced biphasic pulse train.

    Attributes:
        amplitude_ua: current of each phase (uA).
        phase_us: duration of each phase (us).
        frequency_hz: pulse repetition rate.
        train_ms: total train duration.
    """

    amplitude_ua: float = 100.0
    phase_us: float = 200.0
    frequency_hz: float = 130.0
    train_ms: float = 100.0

    def __post_init__(self) -> None:
        if min(self.amplitude_ua, self.phase_us, self.frequency_hz,
               self.train_ms) <= 0:
            raise ConfigurationError("protocol parameters must be positive")
        if self.frequency_hz * 2 * self.phase_us * 1e-6 > 1.0:
            raise ConfigurationError(
                "phases overlap: frequency x pulse width exceeds 100 % duty"
            )

    @property
    def charge_per_phase_uc(self) -> float:
        """Charge per phase (uC) — balanced by the opposite phase."""
        return self.amplitude_ua * self.phase_us * 1e-6

    @property
    def n_pulses(self) -> int:
        return max(1, int(self.train_ms * self.frequency_hz / 1e3))

    def shannon_k(self, electrode_area_cm2: float = ELECTRODE_AREA_CM2) -> float:
        """The Shannon parameter k for this protocol."""
        charge = self.charge_per_phase_uc
        density = charge / electrode_area_cm2
        return float(np.log10(charge) + np.log10(density))


def check_safety(
    protocol: StimulationProtocol,
    electrode_area_cm2: float = ELECTRODE_AREA_CM2,
) -> bool:
    """True when the protocol sits below the Shannon damage threshold."""
    return protocol.shannon_k(electrode_area_cm2) <= SHANNON_K_LIMIT


def synthesize_waveform(
    protocol: StimulationProtocol, fs_hz: float = ADC_SAMPLE_RATE_HZ
) -> np.ndarray:
    """The DAC sample stream for one train (uA per sample).

    Cathodic phase first, then the balancing anodic phase — the samples
    sum to ~0 (charge balance).
    """
    n_samples = int(round(protocol.train_ms * fs_hz / 1e3))
    waveform = np.zeros(n_samples)
    phase_samples = max(1, int(round(protocol.phase_us * fs_hz / 1e6)))
    period_samples = int(round(fs_hz / protocol.frequency_hz))
    if period_samples < 2 * phase_samples:
        raise ConfigurationError("pulse does not fit the period at this fs")
    for pulse in range(protocol.n_pulses):
        start = pulse * period_samples
        if start + 2 * phase_samples > n_samples:
            break
        waveform[start : start + phase_samples] = -protocol.amplitude_ua
        waveform[start + phase_samples : start + 2 * phase_samples] = (
            protocol.amplitude_ua
        )
    return waveform


@dataclass(frozen=True)
class StimulationEvent:
    """One executed train."""

    node: int
    electrode: int
    time_ms: float
    protocol: StimulationProtocol


@dataclass
class Stimulator:
    """Per-node stimulation execution with safety and refractory checks."""

    node_id: int
    n_electrodes: int
    default_protocol: StimulationProtocol = field(
        default_factory=StimulationProtocol
    )
    events: list[StimulationEvent] = field(default_factory=list)
    _last_train_ms: dict[int, float] = field(default_factory=dict)

    def stimulate(
        self,
        electrode: int,
        time_ms: float,
        protocol: StimulationProtocol | None = None,
    ) -> StimulationEvent | None:
        """Execute a train; returns None when suppressed by refractory.

        Raises:
            ConfigurationError: for unsafe protocols or bad electrodes.
        """
        if not 0 <= electrode < self.n_electrodes:
            raise ConfigurationError(f"electrode {electrode} out of range")
        protocol = protocol if protocol is not None else self.default_protocol
        if not check_safety(protocol):
            raise ConfigurationError(
                f"protocol exceeds the Shannon limit "
                f"(k={protocol.shannon_k():.2f} > {SHANNON_K_LIMIT})"
            )
        last = self._last_train_ms.get(electrode)
        if last is not None and time_ms - last < REFRACTORY_MS:
            return None
        event = StimulationEvent(self.node_id, electrode, time_ms, protocol)
        self.events.append(event)
        self._last_train_ms[electrode] = time_ms
        return event

    def energy_mj(self) -> float:
        """DAC energy spent across all logged trains."""
        total_ms = sum(e.protocol.train_ms for e in self.events)
        return DAC_POWER_MW * total_ms / 1e3

    def duty_cycle(self, horizon_ms: float) -> float:
        """Fraction of the horizon the DAC was driving."""
        if horizon_ms <= 0:
            raise ConfigurationError("horizon must be positive")
        total_ms = sum(
            e.protocol.train_ms for e in self.events
            if e.time_ms >= -1e-9
        )
        return min(1.0, total_ms / horizon_ms)


def sensory_feedback_events(
    decoded_velocities,
    stimulator: Stimulator,
    step_ms: float,
    contact_threshold: float = 1.0,
    electrode: int = 0,
) -> list[StimulationEvent]:
    """Close the sensory loop of the movement pipelines (paper §2.2).

    When the decoded movement implies contact (speed above the
    threshold, standing in for the prosthetic's force sensor), the BCI
    stimulates somatosensory sites to emulate the feeling of movement.
    Refractory and Shannon safety apply as for any other train.
    """
    import numpy as np

    velocities = np.atleast_2d(np.asarray(decoded_velocities, dtype=float))
    if velocities.shape[1] < 2:
        raise ConfigurationError("expected (steps, >=2) velocity array")
    executed = []
    for step, velocity in enumerate(velocities):
        speed = float(np.hypot(velocity[0], velocity[1]))
        if speed < contact_threshold:
            continue
        event = stimulator.stimulate(electrode, step * step_ms)
        if event is not None:
            executed.append(event)
    return executed


def stimulate_from_confirmations(
    confirmations,
    stimulators: dict[int, Stimulator],
    window_ms: float,
    electrode: int = 0,
) -> list[StimulationEvent]:
    """Drive stimulators from seizure-propagation confirmations.

    Each confirmed propagation triggers a train at the confirming node
    (the site anticipating spread), subject to safety and refractory.
    """
    executed = []
    for event in confirmations:
        stimulator = stimulators.get(event.confirming_node)
        if stimulator is None:
            raise ConfigurationError(
                f"no stimulator for node {event.confirming_node}"
            )
        result = stimulator.stimulate(
            electrode, event.window_index * window_ms
        )
        if result is not None:
            executed.append(result)
    return executed

"""External telemetry offload: HALO's compress-encrypt-transmit pipeline.

SCALO retains HALO's single-implant offload path: raw neural data is
compressed (LIC for samples, or LZ / Markov-range-coding for byte
streams), AES-encrypted, packetised, and shipped over the 46 Mbps
external radio to a base station (paper §2.1, §3.4 — the LZ/LZMA/AES/
RC/MA/LIC PEs exist for exactly this).

:class:`TelemetryOffloader` is the functional transmit side;
:class:`TelemetryReceiver` undoes it (the base station), and
:func:`offload_budget` computes the sustainable electrode count from the
radio rate and the achieved compression ratio.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.compression.lic import lic_compress, lic_decompress
from repro.compression.lz import lz_compress, lz_decompress
from repro.compression.range_coder import rc_compress, rc_decompress
from repro.crypto.aes import AES128
from repro.errors import ConfigurationError
from repro.network.packet import MAX_PAYLOAD_BYTES, Packet, PayloadKind
from repro.network.radio import EXTERNAL_RADIO, RadioSpec
from repro.units import ELECTRODE_RATE_BPS


class Codec(enum.Enum):
    """Compression choices, each backed by a Table 1 PE."""

    LIC = "lic"  # linear integer coding of raw samples
    LZ = "lz"  # Lempel-Ziv on the byte stream
    RC = "rc"  # Markov-modelled range coding


@dataclass
class OffloadChunk:
    """One encrypted, compressed telemetry unit plus its packets."""

    sequence: int
    codec: Codec
    nonce: bytes
    ciphertext: bytes
    packets: list[Packet]

    @property
    def wire_bytes(self) -> int:
        return sum(len(p.payload) for p in self.packets)


@dataclass
class TelemetryOffloader:
    """The implant-side pipeline: compress -> encrypt -> packetise."""

    key: bytes
    codec: Codec = Codec.LIC
    node_id: int = 0
    radio: RadioSpec = field(default_factory=lambda: EXTERNAL_RADIO)

    def __post_init__(self) -> None:
        self._cipher = AES128(self.key)
        self._sequence = 0

    def _compress(self, samples: np.ndarray) -> bytes:
        samples = np.asarray(samples, dtype=np.int64)
        if samples.ndim != 1:
            raise ConfigurationError("offload expects a 1-D sample stream")
        if self.codec is Codec.LIC:
            return lic_compress(samples)
        raw = samples.astype("<i2").tobytes()
        if self.codec is Codec.LZ:
            return lz_compress(raw)
        return rc_compress(raw, order=1)

    def offload(self, samples: np.ndarray) -> OffloadChunk:
        """Run one chunk through the pipeline."""
        compressed = self._compress(samples)
        nonce = self._sequence.to_bytes(8, "big")
        ciphertext = self._cipher.ctr_encrypt(compressed, nonce)

        packets = []
        for i in range(0, len(ciphertext), MAX_PAYLOAD_BYTES):
            packets.append(
                Packet.build(
                    self.node_id,
                    0,
                    PayloadKind.SIGNAL,
                    ciphertext[i : i + MAX_PAYLOAD_BYTES],
                    seq=(self._sequence + len(packets)) & 0xFFFF,
                )
            )
        chunk = OffloadChunk(self._sequence, self.codec, nonce, ciphertext,
                             packets)
        self._sequence += 1
        return chunk

    def airtime_ms(self, chunk: OffloadChunk) -> float:
        """External-radio time to ship the chunk."""
        bits = sum(p.wire_bits for p in chunk.packets)
        return self.radio.airtime_ms(bits)


@dataclass
class TelemetryReceiver:
    """The base-station side: reassemble -> decrypt -> decompress."""

    key: bytes

    def __post_init__(self) -> None:
        self._cipher = AES128(self.key)

    def receive(self, chunk: OffloadChunk) -> np.ndarray:
        ciphertext = b"".join(p.payload for p in chunk.packets)
        if ciphertext != chunk.ciphertext:
            raise ConfigurationError("packet reassembly mismatch")
        compressed = self._cipher.ctr_decrypt(ciphertext, chunk.nonce)
        if chunk.codec is Codec.LIC:
            return lic_decompress(compressed)
        if chunk.codec is Codec.LZ:
            raw = lz_decompress(compressed)
        else:
            raw = rc_decompress(compressed)
        return np.frombuffer(raw, dtype="<i2").astype(np.int64)


def offload_budget(
    compression_ratio: float,
    radio: RadioSpec | None = None,
    electrode_rate_bps: float = ELECTRODE_RATE_BPS,
) -> float:
    """Electrodes whose raw stream the external radio sustains.

    HALO's headline 46 Mbps interfacing rate is exactly this quantity at
    ratio 1 for 96 electrodes; compression multiplies it.
    """
    if compression_ratio <= 0:
        raise ConfigurationError("compression ratio must be positive")
    radio = radio if radio is not None else EXTERNAL_RADIO
    return radio.data_rate_mbps * 1e6 * compression_ratio / electrode_rate_bps
